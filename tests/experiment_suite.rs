//! Smoke test for the complete evaluation harness: every experiment
//! (E1–E13 and the ablations) runs end to end in quick mode and produces
//! a well-formed, non-empty table. This is the regression net under
//! `cargo bench` — if a protocol change breaks an experiment, it fails
//! here first, in `cargo test`.

use loramesher_repro::scenario::experiments::{self, ExpOptions};

#[test]
fn every_experiment_produces_a_table() {
    let tables = experiments::all(&ExpOptions::quick());
    assert_eq!(tables.len(), 17, "E1–E13 + A1–A4");
    for table in &tables {
        assert!(!table.title.is_empty());
        assert!(!table.columns.is_empty(), "{}", table.title);
        assert!(!table.rows.is_empty(), "{} produced no rows", table.title);
        for row in &table.rows {
            assert_eq!(row.len(), table.columns.len(), "{}", table.title);
            assert!(row.iter().all(|c| !c.is_empty()), "{}", table.title);
        }
        // Every rendering path works on every table.
        assert!(!table.to_string().is_empty());
        assert!(table.to_markdown().starts_with("### "));
        assert!(table.to_csv().lines().count() == table.rows.len() + 1);
    }
}

#[test]
fn experiments_are_deterministic_across_invocations() {
    let a = experiments::e1_convergence(&ExpOptions::quick());
    let b = experiments::e1_convergence(&ExpOptions::quick());
    assert_eq!(a, b);
}

#[test]
fn seed_changes_tables() {
    let a = experiments::e3_pdr_vs_hops(&ExpOptions::quick());
    let b = experiments::e3_pdr_vs_hops(&ExpOptions {
        seed: 1234,
        quick: true,
        ..ExpOptions::default()
    });
    // Grey-zone losses depend on the seed, so the PDR column differs.
    assert_ne!(a, b);
}
