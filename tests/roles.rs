//! End-to-end role propagation: gateways advertise their role bit in
//! every hello, and any node can discover the nearest gateway through
//! the routing table — without knowing the topology.

use std::time::Duration;

use loramesher_repro::loramesher::{Role, RoleQueries};
use loramesher_repro::radio_sim::topology;
use loramesher_repro::scenario::experiments::default_spacing;
use loramesher_repro::scenario::runner::{NetworkBuilder, Runner};
use loramesher_repro::scenario::workload::{self, Target};

#[test]
fn gateway_role_propagates_across_hops() {
    // Line of 5; the far end (node 4) is a gateway.
    let spacing = default_spacing();
    let mut roles = vec![0u8; 5];
    roles[4] = Role::GATEWAY.bits();
    let mut net = NetworkBuilder::mesh(topology::line(5, spacing), 1)
        .roles(roles)
        .build();
    net.run_until_converged(Duration::from_secs(2), Duration::from_secs(1200))
        .expect("line converges");
    // Node 0, four hops away, discovers the gateway through hellos alone.
    let table = net.mesh_node(0).unwrap().routing_table();
    assert_eq!(table.closest_gateway(), Some(Runner::address_of(4)));
    let gw_route = table.route(Runner::address_of(4)).unwrap();
    assert_eq!(gw_route.metric, 4);
    assert!(Role::from_bits(gw_route.role).contains(Role::GATEWAY));
}

#[test]
fn closest_of_several_gateways_wins() {
    // Line of 6 with gateways at both ends; the node at index 4 is
    // closer to the right-hand gateway.
    let spacing = default_spacing();
    let mut roles = vec![0u8; 6];
    roles[0] = Role::GATEWAY.bits();
    roles[5] = Role::GATEWAY.bits();
    let mut net = NetworkBuilder::mesh(topology::line(6, spacing), 2)
        .roles(roles)
        .build();
    net.run_until_converged(Duration::from_secs(2), Duration::from_secs(1200))
        .expect("line converges");
    let table = net.mesh_node(4).unwrap().routing_table();
    assert_eq!(table.closest_gateway(), Some(Runner::address_of(5)));
    // And the node at index 1 prefers the left one.
    let table = net.mesh_node(1).unwrap().routing_table();
    assert_eq!(table.closest_gateway(), Some(Runner::address_of(0)));
    // Both gateways are visible to everyone.
    for i in 1..5 {
        let found = net
            .mesh_node(i)
            .unwrap()
            .routing_table()
            .nodes_with_role(Role::GATEWAY)
            .len();
        assert_eq!(found, 2, "node {i} sees {found} gateways");
    }
}

#[test]
fn sensor_reports_route_to_discovered_gateway() {
    // The application pattern the roles exist for: sensors discover the
    // gateway via the role bit and send readings there, with no
    // addressing configuration at all.
    let spacing = default_spacing();
    let mut roles = vec![0u8; 4];
    roles[3] = Role::GATEWAY.bits();
    let mut net = NetworkBuilder::mesh(topology::line(4, spacing), 3)
        .roles(roles)
        .build();
    net.run_until_converged(Duration::from_secs(2), Duration::from_secs(1200))
        .expect("line converges");
    // Node 0 looks the gateway up and addresses it.
    let gw = net
        .mesh_node(0)
        .unwrap()
        .routing_table()
        .closest_gateway()
        .expect("gateway discovered");
    assert_eq!(gw, Runner::address_of(3));
    let start = net.now() + Duration::from_secs(1);
    net.apply(&workload::periodic(
        0,
        Target::Node(3),
        16,
        start,
        Duration::from_secs(10),
        5,
    ));
    net.run_until(start + Duration::from_secs(120));
    assert_eq!(net.report().pdr(), Some(1.0));
}

#[test]
fn plain_nodes_have_no_gateway() {
    let spacing = default_spacing();
    let mut net = NetworkBuilder::mesh(topology::line(3, spacing), 4).build();
    net.run_until_converged(Duration::from_secs(2), Duration::from_secs(1200))
        .expect("line converges");
    assert_eq!(
        net.mesh_node(0).unwrap().routing_table().closest_gateway(),
        None
    );
}
