//! Integration tests for the parallel multi-seed sweep engine: the
//! worker-thread count must never change any aggregated table, and the
//! whole multi-seed evaluation suite must stay cheap enough to run
//! inside `cargo test`.

use std::time::{Duration, Instant};

use loramesher_repro::scenario::experiments::{self, ExpOptions};
use loramesher_repro::scenario::{run_parallel, seed_list};

fn opts(seeds: usize, jobs: usize) -> ExpOptions {
    ExpOptions {
        seeds,
        jobs,
        ..ExpOptions::quick()
    }
}

fn opts_sharded(seeds: usize, jobs: usize, shards: usize) -> ExpOptions {
    ExpOptions {
        shards,
        ..opts(seeds, jobs)
    }
}

fn opts_threaded(seeds: usize, jobs: usize, shards: usize, threads: usize) -> ExpOptions {
    ExpOptions {
        threads,
        // Every leg — including the threads=1 reference — uses the
        // per-node stream family: threads > 1 requires it (PR 9), and
        // the family must match across legs for the tables to compare
        // byte-identical.
        rng_streams: true,
        ..opts_sharded(seeds, jobs, shards)
    }
}

/// E5 (the headline protocol comparison) replicated over 4 seeds must
/// render byte-identical tables whether the runs are sharded over 1 or
/// 4 worker threads.
#[test]
fn e5_multi_seed_tables_are_jobs_invariant() {
    let serial = experiments::e5_protocol_comparison(&opts(4, 1));
    let parallel = experiments::e5_protocol_comparison(&opts(4, 4));
    assert_eq!(serial, parallel);
    // With several seeds the cells carry dispersion, proving the seeds
    // actually differ.
    let rendered = serial.to_string();
    assert!(
        rendered.contains('±'),
        "expected mean ± sd cells:\n{rendered}"
    );
}

/// A single replication seed must reproduce the legacy single-run table
/// exactly, no matter how many workers are configured.
#[test]
fn single_seed_table_matches_legacy_output() {
    let legacy = experiments::e5_protocol_comparison(&ExpOptions::quick());
    let pool = experiments::e5_protocol_comparison(&opts(1, 4));
    assert_eq!(legacy, pool);
    assert!(
        !legacy.to_string().contains('±'),
        "single runs have no dispersion"
    );
}

/// Worker threads parallelise *across* runs; spatial shards batch
/// events *inside* each run. Both are behaviourally transparent, so any
/// (jobs, shards) pair must render the same E5 table byte for byte.
#[test]
fn e5_tables_are_invariant_across_jobs_and_shards() {
    let reference = experiments::e5_protocol_comparison(&opts_sharded(3, 1, 1));
    for (jobs, shards) in [(1, 4), (4, 1), (4, 4), (2, 8)] {
        assert_eq!(
            reference,
            experiments::e5_protocol_comparison(&opts_sharded(3, jobs, shards)),
            "table drift at jobs={jobs}, shards={shards}"
        );
    }
}

/// Three orthogonal axes of parallelism — sweep jobs across seeds,
/// spatial shards inside a run, and worker threads inside the evaluate
/// regions of a run — must compose without changing a single table
/// byte.
#[test]
fn e5_tables_are_invariant_across_jobs_shards_and_threads() {
    let reference = experiments::e5_protocol_comparison(&opts_threaded(2, 1, 1, 1));
    for (jobs, shards, threads) in [(1, 1, 4), (4, 4, 2), (2, 8, 4), (4, 1, 2)] {
        assert_eq!(
            reference,
            experiments::e5_protocol_comparison(&opts_threaded(2, jobs, shards, threads)),
            "table drift at jobs={jobs}, shards={shards}, threads={threads}"
        );
    }
}

/// The raw pool primitive returns results in work order for any mix of
/// job counts and work sizes.
#[test]
fn run_parallel_matches_serial_for_simulation_sized_work() {
    let seeds = seed_list(7, 9);
    let f = |&s: &u64| {
        // A cheap stand-in with seed-dependent output.
        s.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(17)
    };
    for jobs in [1, 2, 3, 8] {
        assert_eq!(
            run_parallel(&seeds, jobs, f),
            run_parallel(&seeds, 1, f),
            "jobs = {jobs}"
        );
    }
}

/// Down-scaled exp_all smoke: the full 17-experiment suite, replicated
/// over 2 seeds and sharded over 2 workers, finishes well inside the
/// tier-1 test budget and yields well-formed tables.
#[test]
fn quick_suite_runs_multi_seed_end_to_end() {
    let start = Instant::now();
    let tables = experiments::all(&opts(2, 2));
    let elapsed = start.elapsed();
    assert_eq!(tables.len(), 17, "E1–E13 + A1–A4");
    for table in &tables {
        assert!(!table.rows.is_empty(), "{} produced no rows", table.title);
        for row in &table.rows {
            assert_eq!(row.len(), table.columns.len(), "{}", table.title);
        }
    }
    assert!(elapsed < Duration::from_secs(60), "suite took {elapsed:?}");
}
