//! Path-level assertions using the frame log: verify not just *that* a
//! datagram arrived, but the exact hop-by-hop route it took.

use std::time::Duration;

use loramesher_repro::loramesher::PacketKind;
use loramesher_repro::radio_sim::topology;
use loramesher_repro::scenario::experiments::default_spacing;
use loramesher_repro::scenario::runner::{NetworkBuilder, Runner};
use loramesher_repro::scenario::workload::{self, Target};

#[test]
fn datagram_follows_the_advertised_route() {
    let spacing = default_spacing();
    let mut net = NetworkBuilder::mesh(topology::line(4, spacing), 1)
        .log_frames(true)
        .build();
    net.run_until_converged(Duration::from_secs(2), Duration::from_secs(1200))
        .expect("line converges");
    let start = net.now() + Duration::from_secs(1);
    net.apply(&workload::periodic(
        0,
        Target::Node(3),
        16,
        start,
        Duration::from_secs(30),
        1,
    ));
    net.run_until(start + Duration::from_secs(60));
    assert_eq!(net.report().delivered, 1);

    // Reconstruct the data packet's journey from the per-node frame logs:
    // node 1 must have heard it with via=node1, node 2 with via=node2,
    // node 3 with via=node3, with TTL decreasing along the way.
    let src = Runner::address_of(0);
    let dst = Runner::address_of(3);
    let mut ttls = Vec::new();
    for hop in 1..4usize {
        let log = &net.sim().node(net.id(hop)).frame_log;
        // The copy addressed to this hop as next hop — exactly one.
        let addressed: Vec<_> = log
            .iter()
            .filter(|(_, m)| {
                m.kind == PacketKind::Data
                    && m.src == src
                    && m.dst == dst
                    && m.via == Runner::address_of(hop)
            })
            .collect();
        assert_eq!(
            addressed.len(),
            1,
            "node {hop} should receive exactly one copy for it"
        );
        ttls.push(addressed[0].1.ttl);
    }
    // TTL decreases by one per relay.
    assert_eq!(ttls[1], ttls[0] - 1);
    assert_eq!(ttls[2], ttls[1] - 1);
    // Adjacency also means node 1 *overhears* node 2's onward relay
    // (addressed to node 3) — the radio is a broadcast medium.
    let overheard = net
        .sim()
        .node(net.id(1))
        .frame_log
        .iter()
        .filter(|(_, m)| {
            m.kind == PacketKind::Data && m.src == src && m.via == Runner::address_of(3)
        })
        .count();
    assert_eq!(overheard, 1, "node 1 overhears node 2's relay");
}

#[test]
fn hello_broadcasts_reach_only_neighbours() {
    let spacing = default_spacing();
    let mut net = NetworkBuilder::mesh(topology::line(4, spacing), 2)
        .log_frames(true)
        .build();
    net.run_until(Duration::from_secs(60));
    // Node 0's hellos are heard by node 1 only.
    let src = Runner::address_of(0);
    let heard_by = |i: usize| {
        net.sim()
            .node(net.id(i))
            .frame_log
            .iter()
            .filter(|(_, m)| m.kind == PacketKind::Hello && m.src == src)
            .count()
    };
    assert!(heard_by(1) >= 2, "direct neighbour hears hellos");
    assert_eq!(heard_by(2), 0, "two hops away: silence");
    assert_eq!(heard_by(3), 0);
}

#[test]
fn frame_log_disabled_by_default() {
    let spacing = default_spacing();
    let mut net = NetworkBuilder::mesh(topology::line(2, spacing), 3).build();
    net.run_until(Duration::from_secs(60));
    assert!(net.sim().node(net.id(0)).frame_log.is_empty());
    assert!(net.sim().node(net.id(1)).frame_log.is_empty());
}
