//! Allocation regression test for the PR 4 event-engine overhaul: once
//! a simulation reaches steady state, processing events must not touch
//! the heap at all. A counting `#[global_allocator]` wraps the system
//! allocator; after a warm-up phase (which grows every buffer — calendar
//! buckets, fan-out and command scratch, dense metrics, medium roster —
//! to its steady capacity), a long measured window must report exactly
//! zero allocations.
//!
//! The firmware transmits a pre-built `Arc<[u8]>` frame each beacon,
//! mirroring how `bench::scaling` exercises the simulator hot path.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use lora_phy::link::SignalQuality;
use lora_phy::propagation::Position;
use radio_sim::firmware::{Context, Firmware};
use radio_sim::{SimConfig, Simulator};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Beacons a cached frame every 3 s; the `Arc` clone bumps a refcount
/// instead of copying, so steady-state transmission is allocation-free
/// end to end.
struct Beacon {
    next: Duration,
    frame: Arc<[u8]>,
    heard: u64,
}

impl Beacon {
    fn new(phase: Duration) -> Self {
        Beacon {
            next: phase,
            frame: vec![0xB3; 16].into(),
            heard: 0,
        }
    }
}

impl Firmware for Beacon {
    fn on_timer(&mut self, ctx: &mut Context) {
        if ctx.now() >= self.next {
            self.next += Duration::from_secs(3);
            ctx.transmit(self.frame.clone());
        }
    }
    fn on_frame(&mut self, _bytes: &[u8], _q: SignalQuality, _ctx: &mut Context) {
        self.heard += 1;
    }
    fn next_wake(&self) -> Option<Duration> {
        Some(self.next)
    }
}

fn assert_steady_state_alloc_free(mut config: SimConfig, shards: usize) {
    config.shards = shards;
    let mut sim = Simulator::new(config, 42);
    // A tight grid, everyone in range of everyone. Beacon phases are
    // spaced 180 ms apart — far wider than a 16-byte frame's airtime —
    // so transmissions never overlap and every event type except
    // interference fires repeatedly.
    for k in 0..16u64 {
        let phase = Duration::from_millis(200 + 180 * k);
        let x = (k % 4) as f64 * 60.0;
        let y = (k / 4) as f64 * 60.0;
        sim.add_node(Beacon::new(phase), Position::new(x, y));
    }

    // Warm-up: every beacon slot cycles through the calendar ring many
    // times, growing each bucket heap, the scratch buffers and the
    // per-node metrics to their steady-state capacities. (The sharded
    // engine's per-band queues and rosters are built at `start` and
    // grow through the same warm-up.)
    sim.run_for(Duration::from_secs(500));
    let events_before = sim.events_processed();

    let allocs_before = ALLOCS.load(Ordering::Relaxed);
    sim.run_for(Duration::from_secs(300));
    let allocs = ALLOCS.load(Ordering::Relaxed) - allocs_before;
    let events = sim.events_processed() - events_before;

    assert!(
        events > 10_000,
        "only {events} events in the measured window — not a steady-state workload"
    );
    // Deliveries must actually be happening, or "no allocations" would
    // be vacuous.
    let delivered = sim.metrics().frames_delivered;
    assert!(delivered > 1_000, "only {delivered} deliveries");
    assert_eq!(
        allocs, 0,
        "steady state ({shards} shards) allocated {allocs} times over {events} events"
    );
}

#[test]
fn steady_state_event_processing_does_not_allocate() {
    assert_steady_state_alloc_free(SimConfig::default(), 1);
}

/// PR 6: the sharded engine's hot path — k-way merge, batch draining,
/// roster registration and range-scoped sweeps — must be just as
/// allocation-free as the sequential reference.
#[test]
fn sharded_steady_state_does_not_allocate() {
    assert_steady_state_alloc_free(SimConfig::default(), 4);
}
