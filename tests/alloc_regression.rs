//! Allocation regression tests for the event-engine hot path, with
//! **per-thread accounting** (PR 7): a counting `#[global_allocator]`
//! keeps one thread-local counter per thread, so the coordinator's
//! allocation behaviour can be pinned exactly even when worker threads
//! are allocating on purpose.
//!
//! Three regimes are pinned:
//!
//! * **Static steady state** (PR 4/PR 6 invariant, unchanged): after a
//!   warm-up phase grows every buffer — calendar buckets, fan-out and
//!   command scratch, dense metrics, medium roster, link-cache rows —
//!   a long measured window performs **exactly zero** allocations on
//!   the coordinator thread, at every shard and thread count. (With a
//!   static topology the parallel prefetch regions only run during
//!   `start`, so worker threads never even spin up in the window.)
//! * **Mobile steady state, single-threaded**: mobility ticks
//!   invalidate and rebuild link-cache rows, and each rebuilt sparse
//!   row costs a bounded handful of allocations (its candidate and
//!   link vectors). Allocations must scale with *row rebuilds*, never
//!   with events — this measured per-rebuild constant is the
//!   documented per-worker bound, since workers run exactly this row
//!   construction and nothing else.
//! * **Mobile steady state, threaded**: with workers doing the row
//!   prefetch, the coordinator's own allocation count must not exceed
//!   the single-threaded engine's total — threads offload work, they
//!   never add coordinator-side churn beyond the per-region fork-join
//!   constants.
//!
//! The firmware transmits a pre-built `Arc<[u8]>` frame each beacon,
//! mirroring how `bench::scaling` exercises the simulator hot path.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::Arc;
use std::time::Duration;

use lora_phy::link::SignalQuality;
use lora_phy::propagation::Position;
use radio_sim::firmware::{Context, Firmware};
use radio_sim::mobility::Mobility;
use radio_sim::{SimConfig, Simulator};

struct CountingAlloc;

thread_local! {
    /// Per-thread allocation count. `const` init keeps the TLS access
    /// itself allocation-free; `try_with` below tolerates TLS teardown
    /// (allocations during thread destruction are simply not counted).
    static LOCAL_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

fn bump() {
    let _ = LOCAL_ALLOCS.try_with(|c| c.set(c.get() + 1));
}

/// Allocations performed by *the calling thread* so far.
fn local_allocs() -> u64 {
    LOCAL_ALLOCS.try_with(Cell::get).unwrap_or(0)
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump();
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump();
        unsafe { System.realloc(ptr, layout, new_size) }
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        bump();
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Beacons a cached frame every 3 s; the `Arc` clone bumps a refcount
/// instead of copying, so steady-state transmission is allocation-free
/// end to end.
struct Beacon {
    next: Duration,
    frame: Arc<[u8]>,
    heard: u64,
}

impl Beacon {
    fn new(phase: Duration) -> Self {
        Beacon {
            next: phase,
            frame: vec![0xB3; 16].into(),
            heard: 0,
        }
    }
}

impl Firmware for Beacon {
    fn on_timer(&mut self, ctx: &mut Context) {
        if ctx.now() >= self.next {
            self.next += Duration::from_secs(3);
            ctx.transmit(self.frame.clone());
        }
    }
    fn on_frame(&mut self, _bytes: &[u8], _q: SignalQuality, _ctx: &mut Context) {
        self.heard += 1;
    }
    fn next_wake(&self) -> Option<Duration> {
        Some(self.next)
    }
}

fn assert_steady_state_alloc_free(mut config: SimConfig, shards: usize, threads: usize) {
    config.shards = shards;
    config.threads = threads;
    // Threaded runs require the per-node stream family (PR 9).
    config.rng_streams = threads > 1;
    let mut sim = Simulator::new(config, 42);
    // A tight grid, everyone in range of everyone. Beacon phases are
    // spaced 180 ms apart — far wider than a 16-byte frame's airtime —
    // so transmissions never overlap and every event type except
    // interference fires repeatedly.
    for k in 0..16u64 {
        let phase = Duration::from_millis(200 + 180 * k);
        let x = (k % 4) as f64 * 60.0;
        let y = (k / 4) as f64 * 60.0;
        sim.add_node(Beacon::new(phase), Position::new(x, y));
    }

    // Warm-up: every beacon slot cycles through the calendar ring many
    // times, growing each bucket heap, the scratch buffers and the
    // per-node metrics to their steady-state capacities. (The sharded
    // engine's per-band queues and rosters are built at `start` and
    // grow through the same warm-up.)
    sim.run_for(Duration::from_secs(500));
    let events_before = sim.events_processed();

    let allocs_before = local_allocs();
    sim.run_for(Duration::from_secs(300));
    let allocs = local_allocs() - allocs_before;
    let events = sim.events_processed() - events_before;

    assert!(
        events > 10_000,
        "only {events} events in the measured window — not a steady-state workload"
    );
    // Deliveries must actually be happening, or "no allocations" would
    // be vacuous.
    let delivered = sim.metrics().frames_delivered;
    assert!(delivered > 1_000, "only {delivered} deliveries");
    assert_eq!(
        allocs, 0,
        "steady state ({shards} shards, {threads} threads) allocated \
         {allocs} times on the coordinator over {events} events"
    );
}

#[test]
fn steady_state_event_processing_does_not_allocate() {
    assert_steady_state_alloc_free(SimConfig::default(), 1, 1);
}

/// PR 6: the sharded engine's hot path — k-way merge, batch draining,
/// roster registration and range-scoped sweeps — must be just as
/// allocation-free as the sequential reference.
#[test]
fn sharded_steady_state_does_not_allocate() {
    assert_steady_state_alloc_free(SimConfig::default(), 4, 2);
}

/// Mobile workload (above the parallel region threshold so prefetch
/// regions genuinely fire when threaded): returns the coordinator's
/// allocation count, the event count and the row-rebuild count over a
/// measured steady-state window.
fn mobile_window(threads: usize) -> (u64, u64, u64) {
    // Both legs use the per-node stream family: the threaded leg needs
    // it (PR 9), and the sequential reference must share it so the two
    // event streams compare equal.
    let config = SimConfig {
        shards: 4,
        threads,
        rng_streams: true,
        ..SimConfig::default()
    };
    let mut sim = Simulator::new(config, 42);
    let walk = Mobility::RandomWaypoint {
        width_m: 1_200.0,
        height_m: 600.0,
        min_speed: 2.0,
        max_speed: 12.0,
        pause: Duration::from_secs(1),
    };
    for k in 0..72u64 {
        let phase = Duration::from_millis(40 * k + 11);
        let pos = Position::new((k % 12) as f64 * 100.0, (k / 12) as f64 * 100.0);
        if k % 3 == 0 {
            sim.add_mobile_node(Beacon::new(phase), pos, walk.clone());
        } else {
            sim.add_node(Beacon::new(phase), pos);
        }
    }
    sim.run_for(Duration::from_secs(120));
    let events_before = sim.events_processed();
    let rebuilds_before = sim.link_rebuilds();
    let allocs_before = local_allocs();
    sim.run_for(Duration::from_secs(120));
    (
        local_allocs() - allocs_before,
        sim.events_processed() - events_before,
        sim.link_rebuilds() - rebuilds_before,
    )
}

/// A rebuilt sparse row allocates its candidate and link vectors and
/// nothing more: a small measured constant per rebuild, independent of
/// the event count. This is the documented per-worker allocation bound
/// — a worker thread runs exactly this row construction.
#[test]
fn mobile_steady_state_allocations_scale_with_rebuilds_not_events() {
    let (allocs, events, rebuilds) = mobile_window(1);
    assert!(
        events > 10_000,
        "only {events} events — not a steady-state workload"
    );
    assert!(rebuilds > 0, "mobility produced no row rebuilds");
    // Sparse row construction: candidate scratch + the row's two
    // vectors, each possibly reallocated a few times while growing.
    // 8 allocations per rebuild is the documented ceiling; the grid
    // itself reuses its buffers across rebuilds.
    assert!(
        allocs <= 8 * rebuilds + 64,
        "{allocs} allocations over {rebuilds} rebuilds ({events} events): \
         allocation traffic no longer scales with row rebuilds"
    );
}

/// With worker threads doing the prefetch, the coordinator still runs
/// chunk 0 of every region itself and pays a few allocations per
/// fork-join (thread spawns, chunk handles, result buffers). That
/// scaffolding must stay marginal: the coordinator's count is pinned
/// to within 12.5% of the single-threaded engine's total — workers may
/// shift row builds around, never multiply coordinator-side churn.
#[test]
fn threaded_mobile_coordinator_allocates_no_more_than_sequential() {
    let (serial_allocs, serial_events, _) = mobile_window(1);
    let (threaded_allocs, threaded_events, _) = mobile_window(2);
    assert_eq!(
        serial_events, threaded_events,
        "thread count changed the event stream — determinism bug"
    );
    assert!(
        threaded_allocs <= serial_allocs + serial_allocs / 8 + 256,
        "coordinator allocated {threaded_allocs} times with workers vs \
         {serial_allocs} single-threaded"
    );
}
