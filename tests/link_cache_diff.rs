//! Differential tests proving the link cache is behaviourally
//! transparent: with `SimConfig::link_cache` on or off, a simulation
//! produces byte-identical traces, identical metrics (including RNG-fed
//! grey-zone outcomes, so the draw sequences must match too) and
//! identical sweep aggregates — across multiple seeds, under CAD
//! traffic, node churn and mobility (the cache-invalidation paths).

use std::time::Duration;

use lora_phy::link::SignalQuality;
use lora_phy::propagation::{Position, Shadowing};
use radio_sim::firmware::{Context, Firmware};
use radio_sim::metrics::Metrics;
use radio_sim::mobility::Mobility;
use radio_sim::time::SimTime;
use radio_sim::trace::TraceEvent;
use radio_sim::{SimConfig, Simulator};
use scenario::workload;
use scenario::{seed_list, NetworkBuilder, Target};

/// PHY-exercising firmware: periodically runs a CAD scan and transmits
/// when the channel is clear (with an RNG backoff when busy), so a run
/// covers fan-out, receiver locking, interference seeding, CAD scans
/// and grey-zone RNG draws.
struct Chatty {
    next: Duration,
    interval: Duration,
    len: usize,
    heard: u64,
    rng: radio_sim::SimRng,
}

impl Chatty {
    fn new(phase_ms: u64, len: usize) -> Self {
        Chatty {
            next: Duration::from_millis(phase_ms),
            interval: Duration::from_millis(800),
            len,
            heard: 0,
            rng: radio_sim::SimRng::new(phase_ms ^ 0xC4A7),
        }
    }
}

impl Firmware for Chatty {
    fn on_timer(&mut self, ctx: &mut Context) {
        if ctx.now() >= self.next {
            self.next += self.interval;
            ctx.start_cad();
        }
    }
    fn on_cad_done(&mut self, busy: bool, ctx: &mut Context) {
        if busy {
            // RNG-jittered retry: cached and uncached runs must make
            // the very same draw here for the timelines to stay equal.
            self.next = ctx.now() + Duration::from_millis(20 + self.rng.gen_range(60));
        } else {
            ctx.transmit(vec![0xC7; self.len]);
        }
    }
    fn on_frame(&mut self, _b: &[u8], _q: SignalQuality, _ctx: &mut Context) {
        self.heard += 1;
    }
    fn next_wake(&self) -> Option<Duration> {
        Some(self.next)
    }
}

/// Everything observable about a finished run.
type Fingerprint = (Vec<(SimTime, TraceEvent)>, Metrics, Vec<u64>, u64);

fn fingerprint(s: &Simulator<Chatty>) -> Fingerprint {
    (
        s.trace().entries().cloned().collect(),
        s.metrics().clone(),
        (0..s.node_count())
            .map(|i| s.node(radio_sim::NodeId(i)).heard)
            .collect(),
        s.events_processed(),
    )
}

fn config(link_cache: bool) -> SimConfig {
    config_grid(link_cache, true)
}

fn config_grid(link_cache: bool, spatial_grid: bool) -> SimConfig {
    let mut cfg = SimConfig::default();
    cfg.rf.grey_zone = true;
    cfg.rf.shadowing = Shadowing::new(4.0, 7);
    cfg.trace_capacity = 1 << 16;
    cfg.link_cache = link_cache;
    cfg.spatial_grid = spatial_grid;
    cfg
}

/// Static line + churn: kills and revives hit the rx_nodes bookkeeping
/// and the Off/Idle fan-out paths.
fn run_static(seed: u64, link_cache: bool) -> Fingerprint {
    run_static_cfg(seed, config(link_cache))
}

fn run_static_cfg(seed: u64, cfg: SimConfig) -> Fingerprint {
    let mut s = Simulator::new(cfg, seed);
    for k in 0..10u64 {
        s.add_node(
            Chatty::new(40 * k + 5, 10 + k as usize),
            Position::new(k as f64 * 95.0, (k % 3) as f64 * 40.0),
        );
    }
    s.schedule_kill(Duration::from_secs(3), radio_sim::NodeId(4));
    s.schedule_revive(Duration::from_secs(7), radio_sim::NodeId(4));
    s.run_for(Duration::from_secs(12));
    fingerprint(&s)
}

/// Mobile scenario: RandomWaypoint nodes force a cache invalidation on
/// every mobility tick, and frames regularly span ticks (sender moved
/// since transmission start), exercising the origin-vs-position
/// fallback in interference seeding and CAD.
fn run_mobile(seed: u64, link_cache: bool) -> Fingerprint {
    run_mobile_cfg(seed, config(link_cache))
}

fn run_mobile_cfg(seed: u64, cfg: SimConfig) -> Fingerprint {
    let mut s = Simulator::new(cfg, seed);
    let waypoint = Mobility::RandomWaypoint {
        width_m: 600.0,
        height_m: 600.0,
        min_speed: 10.0,
        max_speed: 30.0,
        pause: Duration::ZERO,
    };
    for k in 0..8u64 {
        s.add_mobile_node(
            Chatty::new(37 * k + 3, 60),
            Position::new(k as f64 * 70.0, k as f64 * 50.0),
            waypoint.clone(),
        );
    }
    // A late-added node resizes (and thus invalidates) the cache.
    s.run_for(Duration::from_secs(2));
    s.add_node(Chatty::new(11, 24), Position::new(300.0, 300.0));
    s.run_for(Duration::from_secs(10));
    fingerprint(&s)
}

#[test]
fn static_runs_identical_across_seeds() {
    for seed in [1u64, 2, 3, 999] {
        let cached = run_static(seed, true);
        let uncached = run_static(seed, false);
        assert_eq!(cached, uncached, "divergence at seed {seed}");
        assert!(
            cached.1.frames_transmitted > 0 && cached.1.frames_delivered > 0,
            "seed {seed} produced no traffic — the test proves nothing"
        );
    }
}

#[test]
fn mobile_runs_identical_across_seeds() {
    for seed in [5u64, 6, 7] {
        let cached = run_mobile(seed, true);
        let uncached = run_mobile(seed, false);
        assert_eq!(cached, uncached, "divergence at seed {seed}");
        assert!(
            cached.1.frames_transmitted > 0,
            "seed {seed} produced no traffic"
        );
    }
}

/// Full-stack check: a LoRaMesher network with unicast traffic yields
/// the same traffic report and PHY metrics either way.
#[test]
fn mesh_scenario_identical() {
    let run = |link_cache: bool| {
        let spacing = radio_sim::topology::radio_range_m(&SimConfig::default().rf) * 0.8;
        let mut runner = NetworkBuilder::mesh(radio_sim::topology::line(5, spacing), 31)
            .link_cache(link_cache)
            .build();
        runner.apply(&workload::periodic(
            0,
            Target::Node(4),
            12,
            Duration::from_secs(60),
            Duration::from_secs(20),
            10,
        ));
        runner.run_until(Duration::from_secs(400));
        let r = runner.report();
        (
            runner.phy_metrics().clone(),
            r.sent,
            r.delivered,
            r.latencies,
            r.frames_transmitted,
            r.collisions,
        )
    };
    assert_eq!(run(true), run(false));
}

/// PR 1's sweep engine on top: aggregate tables (mean/min/max over the
/// seed set) must be bit-identical with the cache on or off, for any
/// jobs count.
#[test]
fn sweep_aggregates_identical() {
    let aggregate = |link_cache: bool, jobs: usize| {
        let seeds = seed_list(42, 4);
        scenario::run_parallel(&seeds, jobs, |&seed| {
            let f = run_static(seed, link_cache);
            (
                f.1.frames_delivered,
                f.1.total_losses(),
                f.1.frames_transmitted,
                f.3,
            )
        })
    };
    let cached = aggregate(true, 1);
    assert_eq!(cached, aggregate(false, 1));
    // Jobs-invariance (PR 1) must survive the cache: sharding the cached
    // runs over threads changes nothing.
    assert_eq!(cached, aggregate(true, 4));
}

/// PR 7: the spatial candidate grid must be exactly as invisible as the
/// cache itself — toggling `spatial_grid` (which switches sparse rows
/// back to full O(n) row fills and disables the weighted partitioner)
/// changes nothing, in every combination with the `link_cache` toggle,
/// on static-churn and mobile scenarios alike.
#[test]
fn spatial_grid_toggle_is_invisible() {
    for seed in [2u64, 7] {
        let reference = run_static_cfg(seed, config_grid(true, true));
        assert!(reference.1.frames_delivered > 0, "seed {seed}: no traffic");
        for (link_cache, spatial_grid) in [(true, false), (false, true), (false, false)] {
            assert_eq!(
                reference,
                run_static_cfg(seed, config_grid(link_cache, spatial_grid)),
                "static divergence at seed {seed},                  link_cache={link_cache}, spatial_grid={spatial_grid}"
            );
        }
        let mobile_ref = run_mobile_cfg(seed, config_grid(true, true));
        assert_eq!(
            mobile_ref,
            run_mobile_cfg(seed, config_grid(true, false)),
            "mobile divergence at seed {seed} with the grid off"
        );
    }
}
