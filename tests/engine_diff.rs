//! Differential tests proving the PR 4 event-engine overhaul is
//! behaviourally transparent: with `SimConfig::timer_tombstones` on
//! (generation-stamped timers, stale wakes dropped O(1) at pop) or off
//! (the pre-overhaul resync behaviour, every scheduled wake pops and is
//! re-checked), a simulation produces byte-identical traces, identical
//! metrics and identical firmware state — across multiple seeds, under
//! CAD traffic, node churn and mobility. Both modes run on the same
//! calendar queue, so these runs also pin the queue's ordering against
//! the old binary-heap semantics via the recorded timelines.
//!
//! The only allowed differences are the bookkeeping counters
//! `events_processed` (legacy mode pops stale wakes as real events) and
//! `stale_timers_dropped` (zero by construction in legacy mode), which
//! the fingerprint deliberately excludes.

use std::time::Duration;

use lora_phy::link::SignalQuality;
use lora_phy::propagation::{Position, Shadowing};
use radio_sim::firmware::{Context, Firmware};
use radio_sim::metrics::Metrics;
use radio_sim::mobility::Mobility;
use radio_sim::time::SimTime;
use radio_sim::trace::TraceEvent;
use radio_sim::{SimConfig, Simulator};
use scenario::workload;
use scenario::{seed_list, NetworkBuilder, Target};

/// Timer-churning firmware: every CAD-busy verdict moves the next wake
/// by an RNG-jittered delay, so tombstone mode constantly invalidates
/// and reschedules timers while legacy mode lets the stale wakes pop
/// and resync — the exact divergence the engines must hide.
struct Chatty {
    next: Duration,
    interval: Duration,
    len: usize,
    heard: u64,
    rng: radio_sim::SimRng,
}

impl Chatty {
    fn new(phase_ms: u64, len: usize) -> Self {
        Chatty {
            next: Duration::from_millis(phase_ms),
            interval: Duration::from_millis(800),
            len,
            heard: 0,
            rng: radio_sim::SimRng::new(phase_ms ^ 0xC4A7),
        }
    }
}

impl Firmware for Chatty {
    fn on_timer(&mut self, ctx: &mut Context) {
        if ctx.now() >= self.next {
            self.next += self.interval;
            ctx.start_cad();
        }
    }
    fn on_cad_done(&mut self, busy: bool, ctx: &mut Context) {
        if busy {
            // RNG-jittered retry: both engines must make the very same
            // draw here for the timelines to stay equal.
            self.next = ctx.now() + Duration::from_millis(20 + self.rng.gen_range(60));
        } else {
            ctx.transmit(vec![0xE4; self.len]);
        }
    }
    fn on_frame(&mut self, _b: &[u8], _q: SignalQuality, _ctx: &mut Context) {
        self.heard += 1;
    }
    fn next_wake(&self) -> Option<Duration> {
        Some(self.next)
    }
}

/// Everything observable about a finished run, minus the two counters
/// the tombstone engine is allowed to change.
type Fingerprint = (Vec<(SimTime, TraceEvent)>, Metrics, Vec<u64>);

fn fingerprint(s: &Simulator<Chatty>) -> Fingerprint {
    let mut metrics = s.metrics().clone();
    // Legacy mode never tombstones, so this counter is the one metric
    // allowed to differ; everything else must match bit-for-bit.
    metrics.stale_timers_dropped = 0;
    (
        s.trace().entries().cloned().collect(),
        metrics,
        (0..s.node_count())
            .map(|i| s.node(radio_sim::NodeId(i)).heard)
            .collect(),
    )
}

fn config(timer_tombstones: bool) -> SimConfig {
    let mut cfg = SimConfig::default();
    cfg.rf.grey_zone = true;
    cfg.rf.shadowing = Shadowing::new(4.0, 7);
    cfg.trace_capacity = 1 << 16;
    cfg.timer_tombstones = timer_tombstones;
    cfg
}

/// Static line + churn: kills exercise `cancel_timer`, revives restart
/// the per-node timer generation mid-run.
fn run_static(seed: u64, timer_tombstones: bool) -> (Fingerprint, u64) {
    let mut s = Simulator::new(config(timer_tombstones), seed);
    for k in 0..10u64 {
        s.add_node(
            Chatty::new(40 * k + 5, 10 + k as usize),
            Position::new(k as f64 * 95.0, (k % 3) as f64 * 40.0),
        );
    }
    s.schedule_kill(Duration::from_secs(3), radio_sim::NodeId(4));
    s.schedule_revive(Duration::from_secs(7), radio_sim::NodeId(4));
    s.run_for(Duration::from_secs(12));
    let stale = s.metrics().stale_timers_dropped;
    (fingerprint(&s), stale)
}

/// Mobile scenario: mobility ticks interleave with timer churn so
/// same-instant orderings between timers and other event kinds are
/// stressed, including across the calendar queue's overflow horizon.
fn run_mobile(seed: u64, timer_tombstones: bool) -> (Fingerprint, u64) {
    let mut s = Simulator::new(config(timer_tombstones), seed);
    let waypoint = Mobility::RandomWaypoint {
        width_m: 600.0,
        height_m: 600.0,
        min_speed: 10.0,
        max_speed: 30.0,
        pause: Duration::ZERO,
    };
    for k in 0..8u64 {
        s.add_mobile_node(
            Chatty::new(37 * k + 3, 60),
            Position::new(k as f64 * 70.0, k as f64 * 50.0),
            waypoint.clone(),
        );
    }
    // A late-added node grows the queue's per-node generation tables.
    s.run_for(Duration::from_secs(2));
    s.add_node(Chatty::new(11, 24), Position::new(300.0, 300.0));
    s.run_for(Duration::from_secs(10));
    let stale = s.metrics().stale_timers_dropped;
    (fingerprint(&s), stale)
}

#[test]
fn static_runs_identical_across_seeds() {
    for seed in [1u64, 2, 3, 999] {
        let (tombstoned, stale) = run_static(seed, true);
        let (legacy, legacy_stale) = run_static(seed, false);
        assert_eq!(tombstoned, legacy, "divergence at seed {seed}");
        assert!(
            tombstoned.1.frames_transmitted > 0 && tombstoned.1.frames_delivered > 0,
            "seed {seed} produced no traffic — the test proves nothing"
        );
        assert!(
            stale > 0,
            "seed {seed} dropped no stale timers — reschedule churn untested"
        );
        assert_eq!(legacy_stale, 0, "legacy mode must never tombstone");
    }
}

#[test]
fn mobile_runs_identical_across_seeds() {
    for seed in [5u64, 6, 7] {
        let (tombstoned, stale) = run_mobile(seed, true);
        let (legacy, _) = run_mobile(seed, false);
        assert_eq!(tombstoned, legacy, "divergence at seed {seed}");
        assert!(
            tombstoned.1.frames_transmitted > 0,
            "seed {seed} produced no traffic"
        );
        assert!(stale > 0, "seed {seed} dropped no stale timers");
    }
}

/// Full-stack check: a LoRaMesher network (hello cache, routing version
/// counter and all) yields the same traffic report, PHY metrics and
/// per-node routing state with either engine.
#[test]
fn mesh_scenario_identical() {
    let run = |timer_tombstones: bool| {
        let cfg = SimConfig {
            timer_tombstones,
            ..SimConfig::default()
        };
        let spacing = radio_sim::topology::radio_range_m(&cfg.rf) * 0.8;
        let mut runner = NetworkBuilder::mesh(radio_sim::topology::line(5, spacing), 31)
            .sim_config(cfg)
            .build();
        runner.apply(&workload::periodic(
            0,
            Target::Node(4),
            12,
            Duration::from_secs(60),
            Duration::from_secs(20),
            10,
        ));
        runner.run_until(Duration::from_secs(400));
        let r = runner.report();
        let mut metrics = runner.phy_metrics().clone();
        metrics.stale_timers_dropped = 0;
        let routes: Vec<String> = (0..runner.len())
            .filter_map(|i| runner.mesh_node(i))
            .map(|m| format!("{}", m.routing_table()))
            .collect();
        (
            metrics,
            r.sent,
            r.delivered,
            r.latencies,
            r.frames_transmitted,
            r.collisions,
            routes,
        )
    };
    assert_eq!(run(true), run(false));
}

/// PR 1's sweep engine on top: aggregate tables must be bit-identical
/// with either engine, for any jobs count.
#[test]
fn sweep_aggregates_identical() {
    let aggregate = |timer_tombstones: bool, jobs: usize| {
        let seeds = seed_list(42, 4);
        scenario::run_parallel(&seeds, jobs, |&seed| {
            let (f, _) = run_static(seed, timer_tombstones);
            (
                f.1.frames_delivered,
                f.1.total_losses(),
                f.1.frames_transmitted,
                f.2.iter().sum::<u64>(),
            )
        })
    };
    let tombstoned = aggregate(true, 1);
    assert_eq!(tombstoned, aggregate(false, 1));
    // Jobs-invariance (PR 1) must survive the engine swap.
    assert_eq!(tombstoned, aggregate(true, 4));
}
