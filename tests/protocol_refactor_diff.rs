//! Golden-fingerprint battery pinning the default LoRaMesher stack
//! byte-identical across the protocol-pluggability refactor (ISSUE 10:
//! `Protocol` abstraction + managed-flooding second stack).
//!
//! Unlike `tests/stack_refactor_diff.rs` (which pins the PR 5 layer
//! split on the sequential engine only), this battery pins the mesh
//! stack across the full engine matrix the refactor must not disturb:
//! seeds × shards {1, 4} × threads {1, 2}. Two fingerprint families
//! exist per seed because `SimConfig::rng_streams` selects a different
//! (but engine-invariant) per-node stream derivation:
//!
//! * `fork` — the default fork-chain RNG family, valid for any shard
//!   count at `threads = 1`;
//! * `streams` — the counter-keyed per-node stream family, valid for
//!   every shards × threads combination.
//!
//! Within a family every engine configuration must produce the same
//! dump; the pinned constant then freezes that dump across refactors.
//! The hashes below were captured on the pre-refactor tree (before the
//! `Protocol` trait existed). To regenerate after an *intentional*
//! behaviour change, run:
//!
//! ```text
//! PROTOCOL_DIFF_REGEN=1 cargo test --test protocol_refactor_diff -- --nocapture
//! ```
//!
//! and paste the printed table, with a review of why the behaviour
//! moved. Regen history: none — captured pre-refactor, never moved.

use std::fmt::Write as _;
use std::time::Duration;

use lora_phy::propagation::Shadowing;
use radio_sim::{topology, NodeId, SimConfig};
use scenario::runner::ProtocolChoice;
use scenario::workload::{self, Target, TrafficEvent};
use scenario::{seed_list, NetworkBuilder, Runner};

/// FNV-1a 64-bit over the canonical dump.
fn fnv1a(text: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in text.bytes() {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Serialises everything observable about a finished run: the
/// wire-level timeline, the PHY metrics, and each node's full
/// protocol-visible state plus the traffic report.
fn dump(runner: &mut Runner) -> String {
    runner.sim_mut().finish();
    let mut out = String::new();
    for entry in runner.sim().trace().entries() {
        let _ = writeln!(out, "trace {entry:?}");
    }
    let _ = writeln!(out, "metrics {:?}", runner.phy_metrics());
    for i in 0..runner.len() {
        let fw = runner.sim().node(runner.id(i));
        let _ = writeln!(out, "node {i} send_errors {}", fw.send_errors);
        for (t, event) in &fw.event_log {
            let _ = writeln!(out, "node {i} app {t:?} {event:?}");
        }
        if let Some(mesh) = runner.mesh_node(i) {
            let _ = writeln!(out, "node {i} stats {:?}", mesh.stats());
            let _ = writeln!(out, "node {i} txq {}", mesh.tx_queue_len());
            let _ = writeln!(
                out,
                "node {i} transfers out={:?} in={:?}",
                mesh.outbound_transfers(),
                mesh.inbound_transfers()
            );
            let _ = write!(out, "node {i} routes\n{}", mesh.routing_table());
        }
    }
    let report = runner.report();
    let _ = writeln!(
        out,
        "report sent={} delivered={} latencies={:?} frames={} collisions={} \
         reliable_attempted={} reliable_latencies={:?}",
        report.sent,
        report.delivered,
        report.latencies,
        report.frames_transmitted,
        report.collisions,
        report.reliable_attempted,
        report.reliable_latencies,
    );
    out
}

/// Shadowing + grey-zone reception keep the simulator RNG hot, so the
/// two stream families genuinely diverge (with a quiet RNG they would
/// collapse into one vacuous family).
fn traced_config(shards: usize, threads: usize, rng_streams: bool) -> SimConfig {
    let mut cfg = SimConfig {
        trace_capacity: 1 << 16,
        shards,
        threads,
        rng_streams,
        ..SimConfig::default()
    };
    cfg.rf.grey_zone = true;
    cfg.rf.shadowing = Shadowing::new(4.0, 7);
    cfg
}

/// The pinned scenario: a 3×2 mesh grid with multi-hop unicast streams,
/// a broadcast stream, a fragmented reliable transfer and relay churn —
/// every mesh layer (routing daemon, transport, app codec, MAC) leaves
/// a mark in the dump.
fn run_mesh(seed: u64, shards: usize, threads: usize, rng_streams: bool) -> Runner {
    let spacing = topology::radio_range_m(&SimConfig::default().rf) * 0.8;
    let mut runner = NetworkBuilder::mesh(topology::grid(3, 2, spacing), seed)
        .sim_config(traced_config(shards, threads, rng_streams))
        .build();
    runner.apply(&workload::periodic(
        0,
        Target::Node(5),
        12,
        Duration::from_secs(60),
        Duration::from_secs(15),
        10,
    ));
    runner.apply(&workload::periodic(
        5,
        Target::Broadcast,
        10,
        Duration::from_secs(75),
        Duration::from_secs(30),
        4,
    ));
    runner.schedule(TrafficEvent {
        at: Duration::from_secs(90),
        from: 1,
        to: Target::Node(4),
        payload_len: 200,
        reliable: true,
    });
    runner
        .sim_mut()
        .schedule_kill(Duration::from_secs(150), NodeId(2));
    runner
        .sim_mut()
        .schedule_revive(Duration::from_secs(230), NodeId(2));
    runner.run_until(Duration::from_secs(360));
    runner
}

/// The flooding counterpart of [`run_mesh`]: same grid, unicast and
/// broadcast streams (no reliable transfer — flooding has no transport
/// layer) and the same relay churn. Every flood mechanism leaves a
/// mark: dedup (densely meshed grid), hop-limit decrements, the
/// SNR/contention-weighted relay delay (grey zone + shadowing vary the
/// per-frame SNR) and the seen-cache FIFO.
fn run_flood(seed: u64, shards: usize, threads: usize, rng_streams: bool) -> Runner {
    let spacing = topology::radio_range_m(&SimConfig::default().rf) * 0.8;
    let mut runner = NetworkBuilder::mesh(topology::grid(3, 2, spacing), seed)
        .protocol(ProtocolChoice::Flooding { ttl: 5 })
        .sim_config(traced_config(shards, threads, rng_streams))
        .build();
    runner.apply(&workload::periodic(
        0,
        Target::Node(5),
        12,
        Duration::from_secs(10),
        Duration::from_secs(15),
        10,
    ));
    runner.apply(&workload::periodic(
        5,
        Target::Broadcast,
        10,
        Duration::from_secs(18),
        Duration::from_secs(30),
        4,
    ));
    runner
        .sim_mut()
        .schedule_kill(Duration::from_secs(80), NodeId(2));
    runner
        .sim_mut()
        .schedule_revive(Duration::from_secs(160), NodeId(2));
    runner.run_until(Duration::from_secs(280));
    runner
}

/// Appends each node's flooding-specific state to the dump (the shared
/// [`dump`] already covers the trace, PHY metrics and app events).
fn dump_flood(runner: &mut Runner) -> String {
    let mut out = dump(runner);
    for i in 0..runner.len() {
        if let Some(flood) = runner.flood_node(i) {
            let _ = writeln!(
                out,
                "node {i} flood {:?} txq={} pending={} seen={}/{}",
                flood.stats(),
                flood.tx_queue_len(),
                flood.pending_relays(),
                flood.seen_len(),
                flood.seen_capacity(),
            );
        }
    }
    out
}

/// Golden hashes captured on the pre-refactor tree. One row per
/// (seed, rng family); every engine configuration inside a family must
/// reproduce the row's hash bit-for-bit.
///
/// The `flood-*` rows pin the *new* flooding stack (there is no
/// pre-refactor recording to compare against — the baseline flooder it
/// replaces spoke the same wire format but drew no relay jitter): they
/// freeze `meshsim --protocol flooding`-equivalent runs across the
/// engine matrix so any future drift in the flood dispatch/RNG order
/// shows up as a diff here.
const GOLDEN: &[(&str, u64, u64)] = &[
    ("fork", 21, 0x6672931df6c35bfd),
    ("fork", 22, 0xcfeea4909736e189),
    ("fork", 23, 0x1d48e2a2db8f58c0),
    ("streams", 21, 0xe03a0b893e452128),
    ("streams", 22, 0x782913300f3f1502),
    ("streams", 23, 0xc7d93e0a622113a0),
    ("sweep", 41, 0x71765483347c9b6c),
    ("flood-fork", 21, 0x1446063dcf6d2c64),
    ("flood-fork", 22, 0xe847b72aaac2fd4f),
    ("flood-streams", 21, 0x23465c0d568b731e),
    ("flood-streams", 22, 0xc4f503b93db3285b),
];

fn check(family: &str, seed: u64, actual: u64) {
    if std::env::var_os("PROTOCOL_DIFF_REGEN").is_some() {
        println!("    (\"{family}\", {seed}, {actual:#018x}),");
        return;
    }
    let expected = GOLDEN
        .iter()
        .find(|(s, n, _)| *s == family && *n == seed)
        .map(|(_, _, h)| *h)
        .unwrap_or_else(|| panic!("no golden entry for {family}/{seed}"));
    assert_eq!(
        actual, expected,
        "LoRaMesher stack diverged from the pre-refactor golden \
         fingerprint ({family}, seed {seed})"
    );
}

/// Fork-chain family: shards {1, 4} at threads = 1 must agree with each
/// other and with the pinned constant.
#[test]
fn mesh_fork_family_matches_golden() {
    for seed in [21u64, 22, 23] {
        let mut hashes = Vec::new();
        for shards in [1usize, 4] {
            let mut runner = run_mesh(seed, shards, 1, false);
            let text = dump(&mut runner);
            let report = runner.report();
            assert!(report.delivered > 0, "seed {seed}: nothing delivered");
            assert!(
                !report.reliable_latencies.is_empty(),
                "seed {seed}: reliable transfer never completed"
            );
            hashes.push((shards, fnv1a(&text)));
        }
        let (_, reference) = hashes[0];
        for (shards, h) in &hashes {
            assert_eq!(
                *h, reference,
                "seed {seed}: shards={shards} diverged from the sequential engine"
            );
        }
        check("fork", seed, reference);
    }
}

/// Stream family: the full shards {1, 4} × threads {1, 2} matrix must
/// agree and match the pinned constant.
#[test]
fn mesh_stream_family_matches_golden() {
    for seed in [21u64, 22, 23] {
        let mut hashes = Vec::new();
        for shards in [1usize, 4] {
            for threads in [1usize, 2] {
                let mut runner = run_mesh(seed, shards, threads, true);
                let text = dump(&mut runner);
                assert!(
                    runner.report().delivered > 0,
                    "seed {seed}: nothing delivered"
                );
                hashes.push((shards, threads, fnv1a(&text)));
            }
        }
        let (_, _, reference) = hashes[0];
        for (shards, threads, h) in &hashes {
            assert_eq!(
                *h, reference,
                "seed {seed}: shards={shards} threads={threads} diverged"
            );
        }
        check("streams", seed, reference);
    }
}

/// Flooding, fork-chain family: shards {1, 4} at threads = 1 must agree
/// with each other and with the pinned constant — `meshsim --protocol
/// flooding` is deterministic (same seed → same trace) on the
/// sequential and sharded engines alike.
#[test]
fn flood_fork_family_matches_golden() {
    for seed in [21u64, 22] {
        let mut hashes = Vec::new();
        for shards in [1usize, 4] {
            let mut runner = run_flood(seed, shards, 1, false);
            let text = dump_flood(&mut runner);
            let report = runner.report();
            assert!(report.delivered > 0, "seed {seed}: nothing delivered");
            hashes.push((shards, fnv1a(&text)));
        }
        let (_, reference) = hashes[0];
        for (shards, h) in &hashes {
            assert_eq!(
                *h, reference,
                "seed {seed}: flooding shards={shards} diverged from the \
                 sequential engine"
            );
        }
        check("flood-fork", seed, reference);
    }
}

/// Flooding, stream family: the full shards {1, 4} × threads {1, 2}
/// matrix must agree and match the pinned constant.
#[test]
fn flood_stream_family_matches_golden() {
    for seed in [21u64, 22] {
        let mut hashes = Vec::new();
        for shards in [1usize, 4] {
            for threads in [1usize, 2] {
                let mut runner = run_flood(seed, shards, threads, true);
                let text = dump_flood(&mut runner);
                assert!(
                    runner.report().delivered > 0,
                    "seed {seed}: nothing delivered"
                );
                hashes.push((shards, threads, fnv1a(&text)));
            }
        }
        let (_, _, reference) = hashes[0];
        for (shards, threads, h) in &hashes {
            assert_eq!(
                *h, reference,
                "seed {seed}: flooding shards={shards} threads={threads} diverged"
            );
        }
        check("flood-streams", seed, reference);
    }
}

/// Sweep aggregates over the scenario must be jobs-invariant and match
/// the pinned pre-refactor aggregate (run on the parallel engine).
#[test]
fn sweep_aggregates_match_golden() {
    let aggregate = |jobs: usize| -> Vec<(u64, usize)> {
        let seeds = seed_list(41, 3);
        scenario::run_parallel(&seeds, jobs, |&seed| {
            let mut runner = run_mesh(seed, 4, 2, true);
            (fnv1a(&dump(&mut runner)), runner.report().delivered)
        })
    };
    let serial = aggregate(1);
    assert_eq!(
        serial,
        aggregate(2),
        "sweep aggregates depend on jobs count"
    );
    let mut text = String::new();
    for (hash, delivered) in &serial {
        let _ = writeln!(text, "{hash:#018x} {delivered}");
    }
    check("sweep", 41, fnv1a(&text));
}
