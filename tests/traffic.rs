//! Full-stack integration tests: datagram and reliable traffic through
//! the simulated mesh, including lossy links and failures.

use std::time::Duration;

use loramesher_repro::radio_sim::sim::SimConfig;
use loramesher_repro::radio_sim::topology;
use loramesher_repro::scenario::experiments::default_spacing;
use loramesher_repro::scenario::runner::{NetworkBuilder, ProtocolChoice};
use loramesher_repro::scenario::workload::{self, Target, TrafficEvent};

fn converged_line(n: usize, seed: u64) -> loramesher_repro::scenario::Runner {
    let spacing = default_spacing();
    let mut net = NetworkBuilder::mesh(topology::line(n, spacing), seed).build();
    net.run_until_converged(Duration::from_secs(2), Duration::from_secs(1800))
        .expect("line converges");
    net
}

#[test]
fn clean_links_deliver_everything() {
    let mut net = converged_line(4, 1);
    let start = net.now() + Duration::from_secs(1);
    net.apply(&workload::periodic(
        0,
        Target::Node(3),
        32,
        start,
        Duration::from_secs(10),
        10,
    ));
    net.run_until(start + Duration::from_secs(160));
    let report = net.report();
    assert_eq!(report.pdr(), Some(1.0), "{report:?}");
    assert_eq!(report.duplicates, 0);
    // 3 hops at SF7: ~240 ms end to end.
    let mean = report.mean_latency().unwrap();
    assert!(
        mean > Duration::from_millis(200) && mean < Duration::from_millis(600),
        "{mean:?}"
    );
}

#[test]
fn bidirectional_traffic_coexists() {
    let mut net = converged_line(3, 2);
    let start = net.now() + Duration::from_secs(1);
    let mut events = workload::periodic(0, Target::Node(2), 16, start, Duration::from_secs(7), 8);
    events.extend(workload::periodic(
        2,
        Target::Node(0),
        16,
        start + Duration::from_secs(3),
        Duration::from_secs(7),
        8,
    ));
    net.apply(&events);
    net.run_until(start + Duration::from_secs(120));
    let report = net.report();
    assert_eq!(report.sent, 16);
    assert!(report.delivered >= 14, "lost too much: {report:?}");
}

#[test]
fn lossy_links_degrade_but_do_not_break() {
    let mut sim = SimConfig::default();
    sim.rf.grey_zone = true;
    let spacing = topology::radio_range_m(&sim.rf) * 0.88;
    let mut net = NetworkBuilder::mesh(topology::line(3, spacing), 3)
        .sim_config(sim)
        .build();
    net.run_until_converged(Duration::from_secs(5), Duration::from_secs(1800))
        .expect("lossy line still converges");
    let start = net.now() + Duration::from_secs(1);
    net.apply(&workload::periodic(
        0,
        Target::Node(2),
        16,
        start,
        Duration::from_secs(10),
        30,
    ));
    net.run_until(start + Duration::from_secs(400));
    let report = net.report();
    let pdr = report.pdr().unwrap();
    assert!(
        pdr > 0.3 && pdr < 1.0,
        "expected partial delivery, got {pdr}"
    );
}

#[test]
fn reliable_transfer_survives_lossy_links() {
    let mut sim = SimConfig::default();
    sim.rf.grey_zone = true;
    let spacing = topology::radio_range_m(&sim.rf) * 0.88;
    let mut net = NetworkBuilder::mesh(topology::line(2, spacing), 4)
        .sim_config(sim)
        .build();
    net.run_until_converged(Duration::from_secs(5), Duration::from_secs(1800))
        .expect("pair converges");
    let at = net.now() + Duration::from_secs(1);
    net.schedule(workload::bulk(0, 1, 2048, at));
    net.run_until(at + Duration::from_secs(900));
    let report = net.report();
    assert_eq!(
        report.reliable_completed, 1,
        "transfer should complete despite losses: {report:?}"
    );
    // Losses almost certainly forced retransmissions.
    let stats = net.mesh_node(0).unwrap().stats();
    assert!(stats.reliable_sent == 1);
}

#[test]
fn reliable_transfer_fails_cleanly_when_peer_dies() {
    let mut net = converged_line(2, 5);
    let at = net.now() + Duration::from_secs(1);
    net.schedule(workload::bulk(0, 1, 4096, at));
    // Kill the receiver mid-transfer.
    let rx = net.id(1);
    net.sim_mut().schedule_kill(at + Duration::from_secs(3), rx);
    net.run_until(at + Duration::from_secs(600));
    let report = net.report();
    assert_eq!(report.reliable_completed, 0);
    assert_eq!(report.reliable_failed, 1, "{report:?}");
    let stats = net.mesh_node(0).unwrap().stats();
    assert_eq!(stats.reliable_aborted, 1);
    assert!(stats.reliable_retransmits > 0);
}

#[test]
fn concurrent_reliable_transfers_to_different_destinations() {
    // Star-ish line where node 1 pushes to both ends.
    let mut net = converged_line(3, 6);
    let at = net.now() + Duration::from_secs(1);
    net.schedule(workload::bulk(1, 0, 1000, at));
    net.schedule(workload::bulk(1, 2, 1000, at + Duration::from_secs(1)));
    net.run_until(at + Duration::from_secs(600));
    let report = net.report();
    assert_eq!(report.reliable_completed, 2, "{report:?}");
}

#[test]
fn queue_overflow_surfaces_as_send_errors() {
    let mut net = converged_line(2, 7);
    let start = net.now() + Duration::from_secs(1);
    // Burst far beyond the queue capacity in one instant.
    let events: Vec<TrafficEvent> = (0..120)
        .map(|_| TrafficEvent {
            at: start,
            from: 0,
            to: Target::Node(1),
            payload_len: 200,
            reliable: false,
        })
        .collect();
    net.apply(&events);
    net.run_until(start + Duration::from_secs(600));
    let report = net.report();
    assert!(report.send_errors > 0, "queue should overflow: {report:?}");
    // Whatever was accepted is eventually delivered.
    assert_eq!(
        report.delivered as u64,
        report.sent as u64 - report.send_errors,
        "{report:?}"
    );
}

#[test]
fn broadcast_reaches_only_direct_neighbours() {
    // Broadcasts are single-hop in LoRaMesher (no rebroadcast).
    let mut net = converged_line(4, 8);
    let at = net.now() + Duration::from_secs(1);
    net.schedule(TrafficEvent {
        at,
        from: 1,
        to: Target::Broadcast,
        payload_len: 16,
        reliable: false,
    });
    net.run_until(at + Duration::from_secs(30));
    let report = net.report();
    // Node 1's broadcast is heard by nodes 0 and 2 but not node 3.
    assert_eq!(report.delivered, 2, "{report:?}");
}

#[test]
fn duty_cycle_throttles_but_never_violates() {
    use loramesher_repro::lora_phy::region::Region;
    let spacing = default_spacing();
    let mut net = NetworkBuilder::mesh(topology::line(2, spacing), 9)
        .protocol(ProtocolChoice::Mesh {
            hello_interval: Duration::from_secs(600),
            route_timeout: Duration::from_secs(3600),
        })
        .region(Region::Eu868)
        .build();
    net.run_until_converged(Duration::from_secs(5), Duration::from_secs(1800))
        .expect("pair converges");
    let start = net.now() + Duration::from_secs(1);
    // Offer ~4x the duty budget.
    net.apply(&workload::periodic(
        0,
        Target::Node(1),
        50,
        start,
        Duration::from_secs(2),
        1500,
    ));
    net.run_until(start + Duration::from_secs(3600));
    // The sender's own airtime within the window must respect 1 %.
    let stats = net.mesh_node(0).unwrap().stats();
    let elapsed = net.now().as_secs_f64();
    assert!(
        stats.airtime.as_secs_f64() <= elapsed * 0.0105,
        "airtime {:.1} s over {elapsed:.0} s violates 1 %",
        stats.airtime.as_secs_f64()
    );
    assert!(stats.duty_cycle_deferrals > 0, "{stats:?}");
}

#[test]
fn forwarding_respects_ttl_limit() {
    // A 12-node line exceeds the default TTL of 10: the farthest node is
    // 11 hops away, so end-to-end datagrams die en route.
    let spacing = default_spacing();
    let mut net = NetworkBuilder::mesh(topology::line(12, spacing), 10).build();
    net.run_until_converged(Duration::from_secs(5), Duration::from_secs(3600))
        .expect("line-12 converges");
    let at = net.now() + Duration::from_secs(1);
    net.apply(&workload::periodic(
        0,
        Target::Node(11),
        16,
        at,
        Duration::from_secs(20),
        3,
    ));
    net.run_until(at + Duration::from_secs(200));
    let report = net.report();
    assert_eq!(report.delivered, 0, "TTL should kill 11-hop datagrams");
    let ttl_drops: u64 = (0..12)
        .map(|i| net.mesh_node(i).unwrap().stats().ttl_expired)
        .sum();
    assert!(ttl_drops >= 3, "drops: {ttl_drops}");
}

#[test]
fn reliable_transfer_respects_duty_cycle() {
    use loramesher_repro::lora_phy::region::Region;
    // A 4 KiB transfer needs 17 full-size fragments (~7.2 s of airtime
    // at SF7) from the sender — well over 36 s/h ÷ ... no: within the
    // budget, but with hellos and ACK traffic the sender's airtime must
    // still respect the 1 % window at all times, and the transfer must
    // complete regardless (deferred, not dropped).
    let spacing = default_spacing();
    let mut net = NetworkBuilder::mesh(topology::line(2, spacing), 21)
        .protocol(ProtocolChoice::Mesh {
            hello_interval: Duration::from_secs(600),
            route_timeout: Duration::from_secs(3600),
        })
        .region(Region::Eu868)
        .build();
    net.run_until_converged(Duration::from_secs(5), Duration::from_secs(1800))
        .expect("pair converges");
    let at = net.now() + Duration::from_secs(1);
    net.schedule(workload::bulk(0, 1, 4096, at));
    net.run_until(at + Duration::from_secs(3600));
    let report = net.report();
    assert_eq!(report.reliable_completed, 1, "{report:?}");
    for i in 0..2 {
        let stats = net.mesh_node(i).unwrap().stats();
        let elapsed = net.now().as_secs_f64();
        assert!(
            stats.airtime.as_secs_f64() <= elapsed * 0.0105,
            "node {i} airtime {:.1} s over {elapsed:.0} s violates 1 %",
            stats.airtime.as_secs_f64()
        );
    }
}
