//! Differential tests proving the PR 6 sharded event engine and the
//! PR 7 parallel evaluate regions are behaviourally transparent: with
//! `SimConfig::shards` at 1 (the classic sequential engine) or any
//! larger value (per-band calendar queues, range-scoped medium rosters,
//! scoped link-cache invalidation, lookahead-batched k-way merge), and
//! with `SimConfig::threads` at 1 (coordinator only) or any larger
//! value (worker-thread mobility stepping and link-row prefetch), a
//! simulation produces byte-identical traces, identical metrics,
//! identical firmware state and identical routing tables — across
//! seeds, shard counts, thread counts, node churn, mobility and a full
//! LoRaMesher mesh. The `SimConfig::rng_streams` derivation gets the
//! same battery: engine-invariant under every (shards, threads) pair,
//! while remaining a genuinely different stream family than the pinned
//! fork derivation.
//!
//! The only allowed difference is the bookkeeping counter
//! `stale_timers_dropped`: the merge settles queue heads at slightly
//! different moments, so a superseded timer may be discarded before or
//! after the run's horizon depending on the engine. The fingerprint
//! deliberately zeroes it, exactly as `tests/engine_diff.rs` does for
//! the tombstone toggle.

use std::time::Duration;

use lora_phy::link::SignalQuality;
use lora_phy::propagation::{Position, Shadowing};
use radio_sim::firmware::{Context, Firmware};
use radio_sim::metrics::Metrics;
use radio_sim::mobility::Mobility;
use radio_sim::time::SimTime;
use radio_sim::trace::TraceEvent;
use radio_sim::{SimConfig, Simulator};
use scenario::workload;
use scenario::{seed_list, NetworkBuilder, Target};

/// Shard counts every scenario is checked at. 1 is the sequential
/// reference; 2/4/8 exercise narrow bands (including bands narrower
/// than the audible range, where rosters overlap heavily).
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Worker-thread counts the parallel evaluate regions are checked at.
const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

/// Timer- and channel-churning firmware (same shape as
/// `tests/engine_diff.rs`): CAD-busy verdicts move the next wake by an
/// RNG-jittered delay, so every engine divergence — event order, CAD
/// verdicts, interference sums — snowballs into a different timeline.
struct Chatty {
    next: Duration,
    interval: Duration,
    len: usize,
    heard: u64,
    rng: radio_sim::SimRng,
}

impl Chatty {
    fn new(phase_ms: u64, len: usize) -> Self {
        Chatty {
            next: Duration::from_millis(phase_ms),
            interval: Duration::from_millis(800),
            len,
            heard: 0,
            rng: radio_sim::SimRng::new(phase_ms ^ 0x54A8),
        }
    }
}

impl Firmware for Chatty {
    fn on_timer(&mut self, ctx: &mut Context) {
        if ctx.now() >= self.next {
            self.next += self.interval;
            ctx.start_cad();
        }
    }
    fn on_cad_done(&mut self, busy: bool, ctx: &mut Context) {
        if busy {
            self.next = ctx.now() + Duration::from_millis(20 + self.rng.gen_range(60));
        } else {
            ctx.transmit(vec![0x6D; self.len]);
        }
    }
    fn on_frame(&mut self, _b: &[u8], _q: SignalQuality, _ctx: &mut Context) {
        self.heard += 1;
    }
    fn next_wake(&self) -> Option<Duration> {
        Some(self.next)
    }
}

/// Everything observable about a finished run, minus the one counter
/// the sharded engine is allowed to time differently.
type Fingerprint = (Vec<(SimTime, TraceEvent)>, Metrics, Vec<u64>);

fn fingerprint(s: &Simulator<Chatty>) -> Fingerprint {
    let mut metrics = s.metrics().clone();
    metrics.stale_timers_dropped = 0;
    (
        s.trace().entries().cloned().collect(),
        metrics,
        (0..s.node_count())
            .map(|i| s.node(radio_sim::NodeId(i)).heard)
            .collect(),
    )
}

fn config(shards: usize) -> SimConfig {
    config_with(shards, 1, false)
}

fn config_with(shards: usize, threads: usize, rng_streams: bool) -> SimConfig {
    let mut cfg = SimConfig::default();
    cfg.rf.grey_zone = true;
    cfg.rf.shadowing = Shadowing::new(4.0, 7);
    cfg.trace_capacity = 1 << 16;
    cfg.shards = shards;
    cfg.threads = threads;
    cfg.rng_streams = rng_streams;
    cfg
}

/// Static line + churn: the kill truncates a possibly-in-flight frame
/// (roster unregistration), cancels timers in the victim's home queue,
/// and the revive fires `on_start` from the coordinator queue mid-run.
fn run_static(seed: u64, shards: usize) -> (Fingerprint, u64) {
    run_static_cfg(seed, config(shards))
}

fn run_static_cfg(seed: u64, cfg: SimConfig) -> (Fingerprint, u64) {
    let mut s = Simulator::new(cfg, seed);
    for k in 0..10u64 {
        s.add_node(
            Chatty::new(40 * k + 5, 10 + k as usize),
            Position::new(k as f64 * 95.0, (k % 3) as f64 * 40.0),
        );
    }
    s.schedule_kill(Duration::from_secs(3), radio_sim::NodeId(4));
    s.schedule_revive(Duration::from_secs(7), radio_sim::NodeId(4));
    s.run_for(Duration::from_secs(12));
    let events = s.events_processed();
    (fingerprint(&s), events)
}

/// Mobile scenario: nodes cross band edges (homes stay fixed), scoped
/// invalidation runs every tick, and a late joiner grows the home table.
fn run_mobile(seed: u64, shards: usize) -> (Fingerprint, u64) {
    run_mobile_cfg(seed, config(shards))
}

fn run_mobile_cfg(seed: u64, cfg: SimConfig) -> (Fingerprint, u64) {
    let mut s = Simulator::new(cfg, seed);
    let waypoint = Mobility::RandomWaypoint {
        width_m: 600.0,
        height_m: 600.0,
        min_speed: 10.0,
        max_speed: 30.0,
        pause: Duration::ZERO,
    };
    for k in 0..8u64 {
        s.add_mobile_node(
            Chatty::new(37 * k + 3, 60),
            Position::new(k as f64 * 70.0, k as f64 * 50.0),
            waypoint.clone(),
        );
    }
    s.run_for(Duration::from_secs(2));
    s.add_node(Chatty::new(11, 24), Position::new(300.0, 300.0));
    s.run_for(Duration::from_secs(10));
    let events = s.events_processed();
    (fingerprint(&s), events)
}

/// Dense cluster: every node hears every other, so each transmission
/// lands in every band roster and interference sums have many terms —
/// any float-ordering difference between engines shows up here.
fn run_full_mesh(seed: u64, shards: usize) -> (Fingerprint, u64) {
    let mut s = Simulator::new(config(shards), seed);
    for k in 0..12u64 {
        s.add_node(
            Chatty::new(29 * k + 7, 20),
            Position::new((k % 4) as f64 * 30.0, (k / 4) as f64 * 30.0),
        );
    }
    s.run_for(Duration::from_secs(8));
    let events = s.events_processed();
    (fingerprint(&s), events)
}

#[test]
fn static_churn_runs_identical_for_every_shard_count() {
    for seed in [1u64, 2, 3, 999] {
        let (reference, ref_events) = run_static(seed, 1);
        assert!(
            reference.1.frames_transmitted > 0 && reference.1.frames_delivered > 0,
            "seed {seed} produced no traffic — the test proves nothing"
        );
        for shards in &SHARD_COUNTS[1..] {
            let (sharded, events) = run_static(seed, *shards);
            assert_eq!(
                reference, sharded,
                "divergence at seed {seed}, {shards} shards"
            );
            assert_eq!(
                ref_events, events,
                "event count drift at seed {seed}, {shards} shards"
            );
        }
    }
}

#[test]
fn mobile_runs_identical_for_every_shard_count() {
    for seed in [5u64, 6, 7] {
        let (reference, ref_events) = run_mobile(seed, 1);
        assert!(
            reference.1.frames_transmitted > 0,
            "seed {seed} produced no traffic"
        );
        for shards in &SHARD_COUNTS[1..] {
            let (sharded, events) = run_mobile(seed, *shards);
            assert_eq!(
                reference, sharded,
                "divergence at seed {seed}, {shards} shards"
            );
            assert_eq!(ref_events, events, "event count drift at seed {seed}");
        }
    }
}

#[test]
fn full_mesh_runs_identical_for_every_shard_count() {
    for seed in [21u64, 22] {
        let (reference, ref_events) = run_full_mesh(seed, 1);
        assert!(
            reference.1.frames_delivered > 0,
            "seed {seed} delivered nothing"
        );
        for shards in &SHARD_COUNTS[1..] {
            let (sharded, events) = run_full_mesh(seed, *shards);
            assert_eq!(
                reference, sharded,
                "divergence at seed {seed}, {shards} shards"
            );
            assert_eq!(ref_events, events, "event count drift at seed {seed}");
        }
    }
}

/// Scoped invalidation must actually be scoped: a mobile run on several
/// shards must rebuild strictly fewer link-cache rows than the
/// sequential engine's wholesale invalidation — while producing the
/// same output (asserted above; re-asserted here on the same runs).
#[test]
fn scoped_invalidation_rebuilds_fewer_rows() {
    let run = |shards: usize| {
        let mut s = Simulator::new(config(shards), 5);
        let walk = Mobility::RandomWaypoint {
            width_m: 150.0,
            height_m: 150.0,
            min_speed: 5.0,
            max_speed: 15.0,
            pause: Duration::ZERO,
        };
        // Two clusters far outside audible range of each other: moves in
        // one cluster must not invalidate the other's rows.
        for k in 0..6u64 {
            s.add_mobile_node(
                Chatty::new(31 * k + 3, 16),
                Position::new(k as f64 * 20.0, k as f64 * 15.0),
                walk.clone(),
            );
        }
        for k in 0..6u64 {
            s.add_node(
                Chatty::new(41 * k + 9, 16),
                Position::new(1.0e6 + k as f64 * 20.0, k as f64 * 15.0),
            );
        }
        s.run_for(Duration::from_secs(10));
        (fingerprint(&s), s.link_rebuilds())
    };
    let (reference, seq_rebuilds) = run(1);
    let (sharded, shard_rebuilds) = run(4);
    assert_eq!(reference, sharded, "scoped invalidation changed behaviour");
    assert!(
        shard_rebuilds < seq_rebuilds,
        "scoped invalidation saved nothing: {shard_rebuilds} vs {seq_rebuilds} rebuilds"
    );
}

/// Full-stack check: a LoRaMesher network (hello cache, routing tables,
/// reliable transfers) yields the same traffic report, PHY metrics and
/// per-node routing state at every shard count.
#[test]
fn mesh_scenario_identical_for_every_shard_count() {
    let run = |shards: usize| {
        let cfg = SimConfig {
            shards,
            ..SimConfig::default()
        };
        let spacing = radio_sim::topology::radio_range_m(&cfg.rf) * 0.8;
        let mut runner = NetworkBuilder::mesh(radio_sim::topology::line(5, spacing), 31)
            .sim_config(cfg)
            .build();
        runner.apply(&workload::periodic(
            0,
            Target::Node(4),
            12,
            Duration::from_secs(60),
            Duration::from_secs(20),
            10,
        ));
        runner.run_until(Duration::from_secs(400));
        let r = runner.report();
        let mut metrics = runner.phy_metrics().clone();
        metrics.stale_timers_dropped = 0;
        let routes: Vec<String> = (0..runner.len())
            .filter_map(|i| runner.mesh_node(i))
            .map(|m| format!("{}", m.routing_table()))
            .collect();
        (
            metrics,
            r.sent,
            r.delivered,
            r.latencies,
            r.frames_transmitted,
            r.collisions,
            routes,
        )
    };
    let reference = run(1);
    for shards in &SHARD_COUNTS[1..] {
        assert_eq!(
            reference,
            run(*shards),
            "mesh divergence at {shards} shards"
        );
    }
}

/// Sweep aggregates must be bit-identical for any (jobs, shards) pair:
/// parallel workers and spatial shards are orthogonal and neither may
/// leak into results.
#[test]
fn sweep_aggregates_identical_across_jobs_and_shards() {
    let aggregate = |shards: usize, jobs: usize| {
        let seeds = seed_list(42, 4);
        scenario::run_parallel(&seeds, jobs, |&seed| {
            let (f, _) = run_static(seed, shards);
            (
                f.1.frames_delivered,
                f.1.total_losses(),
                f.1.frames_transmitted,
                f.2.iter().sum::<u64>(),
            )
        })
    };
    let reference = aggregate(1, 1);
    for (shards, jobs) in [(4, 1), (1, 4), (4, 4), (8, 2)] {
        assert_eq!(
            reference,
            aggregate(shards, jobs),
            "sweep drift at shards={shards}, jobs={jobs}"
        );
    }
}

/// Wide mixed scenario: enough nodes (above the simulator's parallel
/// region threshold) that worker threads genuinely spin up for the
/// start-of-run row prefetch, the mobility stepping and the wake-gated
/// post-tick prefetch.
fn run_wide(seed: u64, cfg: SimConfig) -> (Fingerprint, u64) {
    let mut s = Simulator::new(cfg, seed);
    let walk = Mobility::RandomWaypoint {
        width_m: 900.0,
        height_m: 500.0,
        min_speed: 5.0,
        max_speed: 20.0,
        pause: Duration::ZERO,
    };
    for k in 0..72u64 {
        let pos = Position::new((k % 12) as f64 * 80.0, (k / 12) as f64 * 70.0);
        if k % 3 == 0 {
            s.add_mobile_node(Chatty::new(23 * k + 5, 14), pos, walk.clone());
        } else {
            s.add_node(Chatty::new(23 * k + 5, 14), pos);
        }
    }
    s.run_for(Duration::from_secs(6));
    let events = s.events_processed();
    (fingerprint(&s), events)
}

/// The tentpole invariance, in two halves. The fork-chain RNG family is
/// inherently sequential (each node's generator is split off a shared
/// root), so threaded commit refuses it at startup; its battery covers
/// every shard count at `threads = 1`. The per-node stream family — the
/// only one the parallel batch commit accepts — gets the full
/// (shards, threads) matrix, including thread counts beyond the host's
/// core count, and must reproduce its own sequential single-threaded
/// run byte for byte.
#[test]
fn wide_runs_identical_for_every_shard_and_thread_count() {
    // Fork family: shard transparency at threads = 1.
    let (fork_ref, fork_events) = run_wide(11, config_with(1, 1, false));
    assert!(
        fork_ref.1.frames_transmitted > 0 && fork_ref.1.frames_delivered > 0,
        "wide scenario produced no traffic — the test proves nothing"
    );
    for &shards in &SHARD_COUNTS[1..] {
        let (other, events) = run_wide(11, config_with(shards, 1, false));
        assert_eq!(fork_ref, other, "fork divergence at shards={shards}");
        assert_eq!(fork_events, events, "fork event drift at shards={shards}");
    }
    // Stream family: the full matrix, parallel batch commit included.
    let (reference, ref_events) = run_wide(11, config_with(1, 1, true));
    assert!(
        reference.1.frames_transmitted > 0 && reference.1.frames_delivered > 0,
        "stream scenario produced no traffic — the test proves nothing"
    );
    for &shards in &SHARD_COUNTS {
        for &threads in &THREAD_COUNTS {
            if (shards, threads) == (1, 1) {
                continue;
            }
            let (other, events) = run_wide(11, config_with(shards, threads, true));
            assert_eq!(
                reference, other,
                "divergence at shards={shards}, threads={threads}"
            );
            assert_eq!(
                ref_events, events,
                "event count drift at shards={shards}, threads={threads}"
            );
        }
    }
}

/// Thread counts must also be invisible on scenarios *below* the
/// parallel thresholds (the gates themselves must not change
/// behaviour), with and without sharding. Stream family throughout:
/// threaded runs accept nothing else.
#[test]
fn small_runs_identical_for_every_thread_count() {
    for seed in [1u64, 5] {
        let (st_ref, _) = run_static_cfg(seed, config_with(1, 1, true));
        let (mo_ref, _) = run_mobile_cfg(seed, config_with(1, 1, true));
        for &threads in &THREAD_COUNTS[1..] {
            for shards in [1usize, 4] {
                let (st, _) = run_static_cfg(seed, config_with(shards, threads, true));
                assert_eq!(
                    st_ref, st,
                    "static divergence at seed {seed}, shards={shards}, threads={threads}"
                );
                let (mo, _) = run_mobile_cfg(seed, config_with(shards, threads, true));
                assert_eq!(
                    mo_ref, mo,
                    "mobile divergence at seed {seed}, shards={shards}, threads={threads}"
                );
            }
        }
    }
}

/// The counter-keyed per-node stream derivation must be exactly as
/// engine-invariant as the fork derivation — and genuinely different
/// from it (otherwise it would not be a new stream family and the
/// pinned fork reference would be redundant).
#[test]
fn rng_stream_runs_identical_across_engines() {
    let (reference, ref_events) = run_wide(13, config_with(1, 1, true));
    assert!(
        reference.1.frames_transmitted > 0,
        "stream battery produced no traffic"
    );
    for &(shards, threads) in &[(2usize, 1usize), (4, 2), (8, 4)] {
        let (other, events) = run_wide(13, config_with(shards, threads, true));
        assert_eq!(
            reference, other,
            "stream divergence at shards={shards}, threads={threads}"
        );
        assert_eq!(ref_events, events, "stream event count drift");
    }
    let (forked, _) = run_wide(13, config_with(1, 1, false));
    assert_ne!(
        reference.0, forked.0,
        "stream derivation must draw differently than fork"
    );
}
