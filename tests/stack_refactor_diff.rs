//! Golden-fingerprint tests pinning the behaviour of the protocol stack
//! across the PR 5 layered-stack refactor (`MeshNode` split into
//! `core::stack::{mac, routing, transport, app}`, host traits unified).
//!
//! Unlike `tests/engine_diff.rs`, the refactor has no runtime toggle to
//! diff against, so these tests pin *constants*: each scenario's full
//! observable state — simulator trace, PHY metrics, per-node protocol
//! stats, routing tables, queue/transfer occupancy, app event logs and
//! traffic reports — is serialised to a canonical dump and FNV-1a
//! hashed. The hashes below were captured on the pre-split monolith;
//! the refactored stack must reproduce every one of them bit-for-bit.
//!
//! To regenerate after an *intentional* behaviour change, run:
//!
//! ```text
//! STACK_DIFF_REGEN=1 cargo test --test stack_refactor_diff -- --nocapture
//! ```
//!
//! and paste the printed table, with a review of why the behaviour
//! moved.
//!
//! Regen history:
//!
//! * PR 6 ("mobile" rows 11 and 13): interference sums became
//!   audibility-gated — sub-sensitivity power no longer enters a
//!   receiver's interference total (required for the sharded engine's
//!   range-scoped rosters and scoped link-cache invalidation to be
//!   exact; see DESIGN.md "Sharded engine"). Only mobile scenarios
//!   moved: with shadowing and movement, a handful of marginal-SIR
//!   judgements sat close enough to the capture threshold for the
//!   vanishing sub-floor terms to flip them.

use std::fmt::Write as _;
use std::time::Duration;

use radio_sim::mobility::Mobility;
use radio_sim::{topology, NodeId, SimConfig};
use scenario::workload::{self, Target, TrafficEvent};
use scenario::{seed_list, NetworkBuilder, ProtocolChoice, Runner};

/// FNV-1a 64-bit over the canonical dump. Stable across platforms: the
/// dump is plain text and every float in it comes from Rust's
/// shortest-roundtrip formatting of deterministic values.
fn fnv1a(text: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in text.bytes() {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Serialises everything observable about a finished run: the wire-level
/// timeline, the PHY metrics, and each node's full protocol-visible
/// state (stats counters, routing table, queue and transfer occupancy,
/// delivered app events, send errors) plus the traffic report.
fn dump(runner: &mut Runner) -> String {
    runner.sim_mut().finish();
    let mut out = String::new();
    for entry in runner.sim().trace().entries() {
        let _ = writeln!(out, "trace {entry:?}");
    }
    let _ = writeln!(out, "metrics {:?}", runner.phy_metrics());
    for i in 0..runner.len() {
        let fw = runner.sim().node(runner.id(i));
        let _ = writeln!(out, "node {i} send_errors {}", fw.send_errors);
        for (t, event) in &fw.event_log {
            let _ = writeln!(out, "node {i} app {t:?} {event:?}");
        }
        if let Some(mesh) = runner.mesh_node(i) {
            let _ = writeln!(out, "node {i} stats {:?}", mesh.stats());
            let _ = writeln!(out, "node {i} txq {}", mesh.tx_queue_len());
            let _ = writeln!(
                out,
                "node {i} transfers out={:?} in={:?}",
                mesh.outbound_transfers(),
                mesh.inbound_transfers()
            );
            let _ = write!(out, "node {i} routes\n{}", mesh.routing_table());
        }
    }
    let report = runner.report();
    let _ = writeln!(
        out,
        "report sent={} delivered={} latencies={:?} frames={} collisions={} \
         reliable_attempted={} reliable_latencies={:?}",
        report.sent,
        report.delivered,
        report.latencies,
        report.frames_transmitted,
        report.collisions,
        report.reliable_attempted,
        report.reliable_latencies,
    );
    out
}

fn traced_config() -> SimConfig {
    SimConfig {
        trace_capacity: 1 << 16,
        ..SimConfig::default()
    }
}

/// Scenario 1 — static line with node churn: multi-hop forwarding,
/// route expiry when the middle relay dies, re-convergence when it
/// returns, plus a fragmented reliable transfer crossing the outage.
fn run_static_churn(seed: u64) -> Runner {
    let spacing = topology::radio_range_m(&SimConfig::default().rf) * 0.8;
    let mut runner = NetworkBuilder::mesh(topology::line(6, spacing), seed)
        .sim_config(traced_config())
        .build();
    runner.apply(&workload::periodic(
        0,
        Target::Node(5),
        12,
        Duration::from_secs(60),
        Duration::from_secs(15),
        12,
    ));
    runner.apply(&workload::periodic(
        5,
        Target::Node(0),
        16,
        Duration::from_secs(75),
        Duration::from_secs(30),
        5,
    ));
    runner.schedule(TrafficEvent {
        at: Duration::from_secs(90),
        from: 1,
        to: Target::Node(4),
        payload_len: 200,
        reliable: true,
    });
    runner
        .sim_mut()
        .schedule_kill(Duration::from_secs(150), NodeId(2));
    runner
        .sim_mut()
        .schedule_revive(Duration::from_secs(260), NodeId(2));
    runner.run_until(Duration::from_secs(420));
    runner
}

/// Scenario 2 — mobility: every node wanders a 500 m square, so routes
/// keep churning and hello adjacency changes through the whole run.
fn run_mobile(seed: u64) -> Runner {
    let spacing = topology::radio_range_m(&SimConfig::default().rf) * 0.6;
    let waypoint = Mobility::RandomWaypoint {
        width_m: 500.0,
        height_m: 500.0,
        min_speed: 5.0,
        max_speed: 15.0,
        pause: Duration::from_secs(10),
    };
    let positions = topology::grid(3, 2, spacing);
    let n = positions.len();
    let mut runner = NetworkBuilder::mesh(positions, seed)
        .sim_config(traced_config())
        .mobility(vec![waypoint; n])
        .build();
    runner.apply(&workload::periodic(
        0,
        Target::Node(5),
        12,
        Duration::from_secs(50),
        Duration::from_secs(25),
        8,
    ));
    runner.apply(&workload::periodic(
        3,
        Target::Broadcast,
        10,
        Duration::from_secs(70),
        Duration::from_secs(40),
        4,
    ));
    runner.run_until(Duration::from_secs(300));
    runner
}

/// Scenario 3 — full mesh: everyone hears everyone, so hello caching,
/// CSMA contention and one-hop routes dominate; includes a reliable
/// transfer and crossing unicast streams.
fn run_full_mesh(seed: u64) -> Runner {
    let spacing = topology::radio_range_m(&SimConfig::default().rf) * 0.2;
    let mut runner = NetworkBuilder::mesh(topology::line(5, spacing), seed)
        .sim_config(traced_config())
        .build();
    runner.apply(&workload::periodic(
        0,
        Target::Node(4),
        12,
        Duration::from_secs(45),
        Duration::from_secs(20),
        8,
    ));
    runner.apply(&workload::periodic(
        2,
        Target::Node(1),
        14,
        Duration::from_secs(55),
        Duration::from_secs(35),
        4,
    ));
    runner.schedule(TrafficEvent {
        at: Duration::from_secs(80),
        from: 4,
        to: Target::Node(0),
        payload_len: 150,
        reliable: true,
    });
    runner.run_until(Duration::from_secs(300));
    runner
}

/// Scenario 4 — the same full-mesh layout on the baseline protocols,
/// pinning the flooding and star reimplementations on the unified
/// host trait.
fn run_baseline(seed: u64, protocol: ProtocolChoice) -> Runner {
    let spacing = topology::radio_range_m(&SimConfig::default().rf) * 0.2;
    let mut runner = NetworkBuilder::mesh(topology::line(4, spacing), seed)
        .protocol(protocol)
        .sim_config(traced_config())
        .build();
    runner.apply(&workload::periodic(
        1,
        Target::Node(0),
        12,
        Duration::from_secs(30),
        Duration::from_secs(20),
        6,
    ));
    runner.apply(&workload::periodic(
        3,
        Target::Broadcast,
        10,
        Duration::from_secs(40),
        Duration::from_secs(45),
        3,
    ));
    runner.run_until(Duration::from_secs(200));
    runner
}

/// Golden hashes captured on the pre-split `MeshNode` monolith.
///
/// Regen history: the "flooding" row was re-pinned when the
/// mesh-baselines flooder was retired in favour of the first-class
/// `loramesher::flood` stack (SNR/contention-weighted rebroadcast delay
/// and the shared-bus MAC make the traces intentionally different); all
/// mesh/star/sweep rows are the original monolith recordings and must
/// never move.
const GOLDEN: &[(&str, u64, u64)] = &[
    ("static", 11, 0x1ac234958047f884),
    ("static", 12, 0x0dfa3239f693301b),
    ("static", 13, 0xb2887df902538bb9),
    ("mobile", 11, 0xb60b03110289d79f),
    ("mobile", 12, 0xf38a48772c227c46),
    ("mobile", 13, 0xf0c57fd85d2d4c7f),
    ("full", 11, 0xa1df7cbd03bd3898),
    ("full", 12, 0x41ac1d1b60bbeb07),
    ("full", 13, 0x68812fdf7845c4ce),
    ("flooding", 11, 0x0035e4932ff05a73),
    ("star", 11, 0xc7fd375da09ac3d3),
    ("sweep", 29, 0x967778a70f116a33),
];

fn check(scenario: &str, seed: u64, actual: u64) {
    if std::env::var_os("STACK_DIFF_REGEN").is_some() {
        println!("    (\"{scenario}\", {seed}, {actual:#018x}),");
        return;
    }
    let expected = GOLDEN
        .iter()
        .find(|(s, n, _)| *s == scenario && *n == seed)
        .map(|(_, _, h)| *h)
        .unwrap_or_else(|| panic!("no golden entry for {scenario}/{seed}"));
    assert_eq!(
        actual, expected,
        "stack behaviour diverged from the pre-split golden fingerprint \
         ({scenario}, seed {seed})"
    );
}

#[test]
fn static_churn_matches_golden() {
    for seed in [11u64, 12, 13] {
        let mut runner = run_static_churn(seed);
        let text = dump(&mut runner);
        // The run must actually exercise the stack, or the hash proves
        // nothing: multi-hop delivery, forwarding and a completed
        // reliable transfer.
        let report = runner.report();
        assert!(report.delivered > 0, "seed {seed}: nothing delivered");
        assert!(
            !report.reliable_latencies.is_empty(),
            "seed {seed}: reliable transfer never completed"
        );
        let forwarded: u64 = (0..runner.len())
            .filter_map(|i| runner.mesh_node(i))
            .map(|m| m.stats().forwarded)
            .sum();
        assert!(forwarded > 0, "seed {seed}: no multi-hop forwarding");
        check("static", seed, fnv1a(&text));
    }
}

#[test]
fn mobile_matches_golden() {
    for seed in [11u64, 12, 13] {
        let mut runner = run_mobile(seed);
        let text = dump(&mut runner);
        assert!(
            runner.phy_metrics().frames_transmitted > 0,
            "seed {seed}: no traffic"
        );
        check("mobile", seed, fnv1a(&text));
    }
}

#[test]
fn full_mesh_matches_golden() {
    for seed in [11u64, 12, 13] {
        let mut runner = run_full_mesh(seed);
        let text = dump(&mut runner);
        let report = runner.report();
        assert!(report.delivered > 0, "seed {seed}: nothing delivered");
        assert!(
            !report.reliable_latencies.is_empty(),
            "seed {seed}: reliable transfer never completed"
        );
        check("full", seed, fnv1a(&text));
    }
}

#[test]
fn baselines_match_golden() {
    let mut flooding = run_baseline(11, ProtocolChoice::Flooding { ttl: 3 });
    let text = dump(&mut flooding);
    assert!(
        flooding.report().delivered > 0,
        "flooding delivered nothing"
    );
    check("flooding", 11, fnv1a(&text));

    let mut star = run_baseline(11, ProtocolChoice::Star { gateway: 0 });
    let text = dump(&mut star);
    assert!(star.report().delivered > 0, "star delivered nothing");
    check("star", 11, fnv1a(&text));
}

/// PR 1's parallel sweep on top of scenario 1: per-seed hashes and the
/// aggregate must be identical for any jobs count *and* match the
/// pinned pre-split aggregate.
#[test]
fn sweep_aggregates_match_golden() {
    let aggregate = |jobs: usize| -> Vec<(u64, usize)> {
        let seeds = seed_list(29, 3);
        scenario::run_parallel(&seeds, jobs, |&seed| {
            let mut runner = run_static_churn(seed);
            (fnv1a(&dump(&mut runner)), runner.report().delivered)
        })
    };
    let serial = aggregate(1);
    assert_eq!(
        serial,
        aggregate(3),
        "sweep aggregates depend on jobs count"
    );
    let mut text = String::new();
    for (hash, delivered) in &serial {
        let _ = writeln!(text, "{hash:#018x} {delivered}");
    }
    check("sweep", 29, fnv1a(&text));
}
