//! Integration tests comparing the three protocols on identical physics —
//! the invariants behind experiment E5.

use std::time::Duration;

use loramesher_repro::radio_sim::rng::SimRng;
use loramesher_repro::radio_sim::topology;
use loramesher_repro::scenario::experiments::default_spacing;
use loramesher_repro::scenario::runner::{NetworkBuilder, ProtocolChoice, TrafficReport};
use loramesher_repro::scenario::workload;

/// Runs the same all-to-one workload over the same placement for one
/// protocol and returns the report.
fn run_protocol(protocol: ProtocolChoice, seed: u64) -> TrafficReport {
    let spacing = default_spacing();
    let n = 10;
    let side = spacing * (n as f64).sqrt() * 0.85;
    let mut rng = SimRng::new(99);
    let positions = topology::connected_random(n, side, side, spacing, &mut rng, 2000)
        .expect("connected placement");
    let mut net = NetworkBuilder::mesh(positions, seed)
        .protocol(protocol)
        .build();
    let start = Duration::from_secs(300);
    net.run_until(start);
    net.apply(&workload::all_to_one(
        n,
        0,
        16,
        start,
        Duration::from_secs(60),
        4,
    ));
    net.run_until(start + Duration::from_secs(60 * 4 + 120));
    net.report()
}

#[test]
fn mesh_beats_star_on_multi_hop_topologies() {
    let mesh = run_protocol(ProtocolChoice::mesh_fast(), 42);
    let star = run_protocol(ProtocolChoice::Star { gateway: 0 }, 42);
    assert!(
        mesh.pdr().unwrap() > star.pdr().unwrap(),
        "mesh {:?} vs star {:?}",
        mesh.pdr(),
        star.pdr()
    );
    // The star reaches exactly the gateway's direct neighbours.
    assert!(star.pdr().unwrap() < 1.0);
}

#[test]
fn flooding_delivers_but_burns_more_frames_per_packet() {
    let mesh = run_protocol(ProtocolChoice::mesh_fast(), 42);
    let flooding = run_protocol(ProtocolChoice::Flooding { ttl: 7 }, 42);
    assert!(
        flooding.pdr().unwrap() >= 0.9,
        "flooding pdr {:?}",
        flooding.pdr()
    );
    // Flooding's data-plane cost: every delivery involves ~N relays,
    // whereas the mesh forwards along one path. Compare frames net of
    // the mesh's routing chatter by using per-delivered-packet data
    // frames for flooding vs. hop count for mesh — flooding must be
    // strictly more expensive per packet on a 10-node network.
    let flood_frames_per_pkt = flooding.frames_transmitted as f64 / flooding.delivered as f64;
    assert!(
        flood_frames_per_pkt > 3.0,
        "flooding should relay broadly: {flood_frames_per_pkt:.1} frames/packet"
    );
    // Mesh delivers at least as reliably on a converged network.
    assert!(mesh.pdr().unwrap() >= flooding.pdr().unwrap() - 0.25);
}

#[test]
fn star_never_relays() {
    let star = run_protocol(ProtocolChoice::Star { gateway: 0 }, 42);
    // Every frame on the air was an original transmission: sends == frames
    // (no relays, no routing traffic).
    assert_eq!(star.frames_transmitted as usize, star.sent);
}

#[test]
fn flooding_ttl_bounds_reach() {
    // A 5-node line with TTL 2: floods reach at most 2 hops.
    let spacing = default_spacing();
    let mut net = NetworkBuilder::mesh(topology::line(5, spacing), 7)
        .protocol(ProtocolChoice::Flooding { ttl: 2 })
        .build();
    let start = Duration::from_secs(10);
    net.apply(&workload::periodic(
        0,
        loramesher_repro::scenario::workload::Target::Node(4),
        16,
        start,
        Duration::from_secs(10),
        3,
    ));
    net.run_until(start + Duration::from_secs(120));
    assert_eq!(net.report().delivered, 0, "TTL 2 cannot span 4 hops");

    let mut net = NetworkBuilder::mesh(topology::line(5, spacing), 7)
        .protocol(ProtocolChoice::Flooding { ttl: 7 })
        .build();
    net.apply(&workload::periodic(
        0,
        loramesher_repro::scenario::workload::Target::Node(4),
        16,
        start,
        Duration::from_secs(10),
        3,
    ));
    net.run_until(start + Duration::from_secs(120));
    assert_eq!(net.report().delivered, 3, "TTL 7 spans the line");
}

#[test]
fn flooding_dedup_prevents_app_duplicates() {
    // Dense cluster: every node hears every relay; without dedup the app
    // would see each packet many times.
    let mut net = NetworkBuilder::mesh(topology::grid(2, 2, 50.0), 8)
        .protocol(ProtocolChoice::Flooding { ttl: 5 })
        .build();
    let start = Duration::from_secs(5);
    net.apply(&workload::periodic(
        0,
        loramesher_repro::scenario::workload::Target::Broadcast,
        16,
        start,
        Duration::from_secs(10),
        5,
    ));
    net.run_until(start + Duration::from_secs(120));
    let report = net.report();
    assert_eq!(report.duplicates, 0, "{report:?}");
    // Broadcast delivered to all three other nodes.
    assert_eq!(report.delivered, 15);
}
