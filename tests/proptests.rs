//! Property-based tests on the core data structures and invariants.

use std::time::Duration;

use proptest::prelude::*;

use loramesher_repro::lora_phy::modulation::{
    Bandwidth, CodingRate, LoRaModulation, SpreadingFactor,
};
use loramesher_repro::lora_phy::region::DutyCycleTracker;
use loramesher_repro::loramesher::addr::Address;
use loramesher_repro::loramesher::codec;
use loramesher_repro::loramesher::packet::{Forwarding, Packet, RouteEntry};
use loramesher_repro::loramesher::reliable::{
    InboundTransfer, OutboundTransfer, ReceiverAction, SenderAction,
};
use loramesher_repro::loramesher::routing::RoutingTable;
use loramesher_repro::radio_sim::rng::SimRng;

// ----------------------------------------------------------------------
// strategies
// ----------------------------------------------------------------------

fn arb_address() -> impl Strategy<Value = Address> {
    any::<u16>().prop_map(Address::new)
}

fn arb_forwarding() -> impl Strategy<Value = Forwarding> {
    (any::<u16>(), any::<u8>()).prop_map(|(via, ttl)| Forwarding {
        via: Address::new(via),
        ttl,
    })
}

fn arb_route_entry() -> impl Strategy<Value = RouteEntry> {
    (any::<u16>(), any::<u8>(), any::<u8>()).prop_map(|(a, metric, role)| RouteEntry {
        address: Address::new(a),
        metric,
        role,
    })
}

fn arb_packet() -> impl Strategy<Value = Packet> {
    let hello = (
        arb_address(),
        any::<u8>(),
        any::<u8>(),
        prop::collection::vec(arb_route_entry(), 0..=codec::MAX_HELLO_ENTRIES),
    )
        .prop_map(|(src, id, role, entries)| Packet::Hello { src, id, role, entries });
    let data = (
        arb_address(),
        arb_address(),
        any::<u8>(),
        arb_forwarding(),
        prop::collection::vec(any::<u8>(), 0..=codec::MAX_DATA_PAYLOAD),
    )
        .prop_map(|(dst, src, id, fwd, payload)| Packet::Data { dst, src, id, fwd, payload });
    let sync = (
        arb_address(),
        arb_address(),
        any::<u8>(),
        arb_forwarding(),
        any::<u8>(),
        any::<u16>(),
        any::<u32>(),
    )
        .prop_map(|(dst, src, id, fwd, seq, frag_count, total_len)| Packet::Sync {
            dst,
            src,
            id,
            fwd,
            seq,
            frag_count,
            total_len,
        });
    let frag = (
        arb_address(),
        arb_address(),
        any::<u8>(),
        arb_forwarding(),
        any::<u8>(),
        any::<u16>(),
        prop::collection::vec(any::<u8>(), 0..=codec::MAX_FRAG_PAYLOAD),
    )
        .prop_map(|(dst, src, id, fwd, seq, index, data)| Packet::Frag {
            dst,
            src,
            id,
            fwd,
            seq,
            index,
            data,
        });
    let ack = (
        arb_address(),
        arb_address(),
        any::<u8>(),
        arb_forwarding(),
        any::<u8>(),
        any::<u16>(),
    )
        .prop_map(|(dst, src, id, fwd, seq, index)| Packet::Ack { dst, src, id, fwd, seq, index });
    let lost = (
        arb_address(),
        arb_address(),
        any::<u8>(),
        arb_forwarding(),
        any::<u8>(),
        prop::collection::vec(any::<u16>(), 0..=100),
    )
        .prop_map(|(dst, src, id, fwd, seq, missing)| Packet::Lost {
            dst,
            src,
            id,
            fwd,
            seq,
            missing,
        });
    prop_oneof![hello, data, sync, frag, ack, lost]
}

fn arb_modulation() -> impl Strategy<Value = LoRaModulation> {
    (
        prop::sample::select(SpreadingFactor::ALL.to_vec()),
        prop::sample::select(Bandwidth::ALL.to_vec()),
        prop::sample::select(CodingRate::ALL.to_vec()),
    )
        .prop_map(|(sf, bw, cr)| LoRaModulation::new(sf, bw, cr))
}

// ----------------------------------------------------------------------
// codec
// ----------------------------------------------------------------------

proptest! {
    /// Every representable packet survives an encode/decode round trip.
    #[test]
    fn codec_round_trip(packet in arb_packet()) {
        let wire = codec::encode(&packet).expect("all generated packets fit a frame");
        prop_assert!(wire.len() <= codec::MAX_FRAME_LEN);
        prop_assert_eq!(wire.len(), codec::encoded_len(&packet));
        let back = codec::decode(&wire).expect("round trip");
        prop_assert_eq!(back, packet);
    }

    /// Arbitrary bytes never panic the decoder: they decode or error.
    #[test]
    fn decoder_is_total(bytes in prop::collection::vec(any::<u8>(), 0..300)) {
        let _ = codec::decode(&bytes);
    }

    /// Corrupting any single byte of a valid frame never panics and never
    /// yields a frame longer than the original could describe.
    #[test]
    fn single_byte_corruption_is_safe(
        packet in arb_packet(),
        pos in any::<prop::sample::Index>(),
        xor in 1u8..=255,
    ) {
        let mut wire = codec::encode(&packet).unwrap();
        let i = pos.index(wire.len());
        wire[i] ^= xor;
        let _ = codec::decode(&wire);
    }
}

// ----------------------------------------------------------------------
// airtime
// ----------------------------------------------------------------------

proptest! {
    /// Time-on-air is monotone in payload length for every modulation.
    #[test]
    fn airtime_monotone_in_payload(
        m in arb_modulation(),
        a in 0usize..=LoRaModulation::MAX_PHY_PAYLOAD,
        b in 0usize..=LoRaModulation::MAX_PHY_PAYLOAD,
    ) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(m.time_on_air(lo) <= m.time_on_air(hi));
    }

    /// A frame always costs at least its preamble plus 8 payload symbols.
    #[test]
    fn airtime_lower_bound(m in arb_modulation(), len in 0usize..=255) {
        let floor = m.preamble_time() + m.symbol_time() * 8;
        prop_assert!(m.time_on_air(len) >= floor);
    }
}

// ----------------------------------------------------------------------
// routing table
// ----------------------------------------------------------------------

proptest! {
    /// Whatever hellos arrive: no route to self, no broadcast routes,
    /// vias are known neighbours, metrics within bounds, and wire size
    /// is consistent.
    #[test]
    fn routing_invariants(
        hellos in prop::collection::vec(
            (1u16..50, prop::collection::vec(arb_route_entry(), 0..12)),
            1..40,
        )
    ) {
        let me = Address::new(0xAAAA);
        let mut table = RoutingTable::new();
        let mut neighbours = std::collections::BTreeSet::new();
        for (i, (n, entries)) in hellos.iter().enumerate() {
            let neighbour = Address::new(*n);
            neighbours.insert(neighbour);
            table.apply_hello(me, neighbour, 0, entries, 0.0, Duration::from_secs(i as u64));
        }
        for route in table.routes() {
            prop_assert_ne!(route.destination, me);
            prop_assert!(!route.destination.is_broadcast());
            prop_assert!(route.metric >= 1);
            prop_assert!(route.metric < RoutingTable::INFINITY_METRIC);
            // The next hop is always a node we have actually heard.
            prop_assert!(
                neighbours.contains(&route.via),
                "via {} not a neighbour",
                route.via
            );
            if route.via == route.destination {
                prop_assert_eq!(route.metric, 1);
            }
        }
        prop_assert_eq!(table.wire_size(), table.len() * codec::ROUTE_ENTRY_LEN);
    }

    /// Purging with a zero timeout empties the table; next_expiry is the
    /// minimum of the remaining deadlines.
    #[test]
    fn purge_clears_everything_at_zero_timeout(
        neighbours in prop::collection::vec(1u16..100, 1..20)
    ) {
        let _me = Address::new(0xAAAA);
        let mut table = RoutingTable::new();
        for (i, n) in neighbours.iter().enumerate() {
            table.heard_from(Address::new(*n), 0.0, Duration::from_secs(i as u64));
        }
        let purged = table.purge(Duration::from_secs(1000), Duration::ZERO);
        prop_assert_eq!(purged.len(), {
            let unique: std::collections::BTreeSet<_> = neighbours.iter().collect();
            unique.len()
        });
        prop_assert!(table.is_empty());
        prop_assert_eq!(table.next_expiry(Duration::from_secs(60)), None);
    }
}

// ----------------------------------------------------------------------
// reliable transfer
// ----------------------------------------------------------------------

proptest! {
    /// Fragmenting then walking the happy path reassembles the exact
    /// payload for arbitrary sizes and fragment limits.
    #[test]
    fn fragmentation_reassembles_exactly(
        payload in prop::collection::vec(any::<u8>(), 1..5000),
        max_frag in 1usize..=codec::MAX_FRAG_PAYLOAD,
    ) {
        let dst = Address::new(2);
        let src = Address::new(1);
        let now = Duration::from_secs(1);
        let mut tx = OutboundTransfer::new(dst, 0, &payload, max_frag, Duration::from_secs(8), 3);
        let mut rx = InboundTransfer::new(src, 0, tx.frag_count(), tx.total_len(), now);

        prop_assert_eq!(tx.start(now), SenderAction::SendSync);
        prop_assert_eq!(rx.on_sync(now), ReceiverAction::AckSync);
        let mut action = tx.on_ack(loramesher_repro::loramesher::packet::SYNC_ACK_INDEX, now);
        let mut reassembled = None;
        while let SenderAction::SendFrag(i) = action {
            let data = tx.fragment(i).to_vec();
            for r in rx.on_frag(i, &data, now) {
                if let ReceiverAction::Complete(p) = r {
                    reassembled = Some(p);
                }
            }
            action = tx.on_ack(i, now);
        }
        prop_assert_eq!(action, SenderAction::Completed);
        prop_assert_eq!(reassembled.expect("delivered"), payload);
    }

    /// Losing an arbitrary subset of fragments and recovering through
    /// Lost requests still reassembles the payload exactly.
    #[test]
    fn lost_recovery_reassembles(
        payload in prop::collection::vec(any::<u8>(), 100..3000),
        drop_mask in any::<u64>(),
    ) {
        let src = Address::new(1);
        let now = Duration::from_secs(1);
        let tx = OutboundTransfer::new(Address::new(2), 0, &payload, 100, Duration::from_secs(8), 3);
        let mut rx = InboundTransfer::new(src, 0, tx.frag_count(), tx.total_len(), now);
        // First pass: deliver only the fragments whose mask bit is set.
        let mut delivered = None;
        for i in 0..tx.frag_count() {
            if drop_mask >> (i % 64) & 1 == 1 {
                for r in rx.on_frag(i, tx.fragment(i), now) {
                    if let ReceiverAction::Complete(p) = r {
                        delivered = Some(p);
                    }
                }
            }
        }
        // Recovery pass: send exactly what the receiver lists as missing.
        for i in rx.missing() {
            for r in rx.on_frag(i, tx.fragment(i), now) {
                if let ReceiverAction::Complete(p) = r {
                    delivered = Some(p);
                }
            }
        }
        prop_assert!(rx.missing().is_empty());
        prop_assert_eq!(delivered.expect("completed"), payload);
    }
}

// ----------------------------------------------------------------------
// duty cycle
// ----------------------------------------------------------------------

proptest! {
    /// Whatever transmission pattern is attempted, the tracker never
    /// lets the windowed airtime exceed the budget.
    #[test]
    fn duty_cycle_never_exceeds_budget(
        attempts in prop::collection::vec((0u64..7200, 1u64..5000), 1..200)
    ) {
        let mut tracker = DutyCycleTracker::new(0.01, Duration::from_secs(3600));
        let budget = tracker.budget();
        let mut sorted = attempts.clone();
        sorted.sort_unstable();
        for (at, ms) in sorted {
            let now = Duration::from_secs(at);
            let airtime = Duration::from_millis(ms);
            let _ = tracker.try_transmit(now, airtime);
            prop_assert!(tracker.used(now) <= budget);
        }
    }
}

// ----------------------------------------------------------------------
// MAC state machine
// ----------------------------------------------------------------------

proptest! {
    /// Whatever sequence of channel outcomes the MAC sees, it never
    /// issues overlapping transmissions, never transmits more windowed
    /// airtime than the duty budget allows, and every DropFrame leaves it
    /// ready for new work.
    #[test]
    fn mac_invariants_under_random_channel(
        events in prop::collection::vec((any::<bool>(), 1u64..2000), 1..200),
        seed in any::<u64>(),
    ) {
        use loramesher_repro::loramesher::mac::{Mac, MacAction};
        use loramesher_repro::loramesher::rng::ProtocolRng;

        let mut mac = Mac::new(
            DutyCycleTracker::new(0.01, Duration::from_secs(3600)),
            Duration::from_millis(100),
            6,
            4,
        );
        let mut rng = ProtocolRng::new(seed);
        let mut now = Duration::ZERO;
        let mut transmitting = false;
        let mut history: Vec<(Duration, Duration)> = Vec::new();
        let budget = mac.duty().budget();
        let window = Duration::from_secs(3600);

        for (busy, airtime_ms) in events {
            let airtime = Duration::from_millis(airtime_ms);
            // Advance time a little and finish any transmission.
            if transmitting {
                now += airtime;
                mac.on_tx_done();
                transmitting = false;
            }
            match mac.kick(now) {
                MacAction::StartCad => {
                    match mac.on_cad_done(busy, airtime, now, &mut rng) {
                        MacAction::Transmit => {
                            prop_assert!(!transmitting, "overlapping transmissions");
                            transmitting = true;
                            history.push((now, airtime));
                            // Airtime within the sliding regulatory window.
                            let horizon = now.saturating_sub(window);
                            let windowed: Duration = history
                                .iter()
                                .filter(|(start, _)| *start >= horizon)
                                .map(|(_, a)| *a)
                                .sum();
                            prop_assert!(
                                windowed <= budget,
                                "duty budget exceeded: {windowed:?} > {budget:?}"
                            );
                        }
                        MacAction::DropFrame => {
                            prop_assert!(mac.is_ready(), "drop must leave the MAC ready");
                        }
                        MacAction::None | MacAction::StartCad => {}
                    }
                }
                MacAction::Transmit | MacAction::DropFrame => {
                    prop_assert!(false, "kick never transmits or drops directly");
                }
                MacAction::None => {}
            }
            // Jump to any pending deadline so the machine can progress.
            if let Some(wake) = mac.next_wake() {
                now = now.max(wake);
            } else {
                now += Duration::from_millis(50);
            }
        }
    }
}

// ----------------------------------------------------------------------
// simulator RNG
// ----------------------------------------------------------------------

proptest! {
    /// Forked streams never collide for distinct ids (first few outputs).
    #[test]
    fn rng_forks_are_independent(seed in any::<u64>(), a in 0u64..1000, b in 0u64..1000) {
        prop_assume!(a != b);
        let root = SimRng::new(seed);
        let mut fa = root.fork(a);
        let mut fb = root.fork(b);
        let va: Vec<u64> = (0..4).map(|_| fa.next_u64()).collect();
        let vb: Vec<u64> = (0..4).map(|_| fb.next_u64()).collect();
        prop_assert_ne!(va, vb);
    }

    /// gen_range stays in bounds for arbitrary bounds.
    #[test]
    fn rng_range_in_bounds(seed in any::<u64>(), bound in 1u64..u64::MAX) {
        let mut rng = SimRng::new(seed);
        for _ in 0..16 {
            prop_assert!(rng.gen_range(bound) < bound);
        }
    }
}
