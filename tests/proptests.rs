//! Property-based tests on the core data structures and invariants,
//! driven by the in-repo [`testkit`] harness (no external dependencies;
//! failures print a `TESTKIT_SEED` for exact replay).

use std::time::Duration;

use testkit::{forall, Gen};
use testkit::{prop_assert, prop_assert_eq, prop_assert_ne};

use loramesher_repro::lora_phy::modulation::{
    Bandwidth, CodingRate, LoRaModulation, SpreadingFactor,
};
use loramesher_repro::lora_phy::region::DutyCycleTracker;
use loramesher_repro::loramesher::addr::Address;
use loramesher_repro::loramesher::codec;
use loramesher_repro::loramesher::packet::{Forwarding, Packet, RouteEntry};
use loramesher_repro::loramesher::reliable::{
    InboundTransfer, OutboundTransfer, ReceiverAction, SenderAction,
};
use loramesher_repro::loramesher::routing::RoutingTable;
use loramesher_repro::radio_sim::rng::SimRng;

// ----------------------------------------------------------------------
// generators
// ----------------------------------------------------------------------

fn gen_address(g: &mut Gen) -> Address {
    Address::new(g.u16())
}

fn gen_forwarding(g: &mut Gen) -> Forwarding {
    Forwarding {
        via: Address::new(g.u16()),
        ttl: g.u8(),
    }
}

fn gen_route_entry(g: &mut Gen) -> RouteEntry {
    RouteEntry {
        address: Address::new(g.u16()),
        metric: g.u8(),
        role: g.u8(),
    }
}

fn gen_packet(g: &mut Gen) -> Packet {
    match g.int_in(0, 5) {
        0 => Packet::Hello {
            src: gen_address(g),
            id: g.u8(),
            role: g.u8(),
            entries: g.vec_of(0, codec::MAX_HELLO_ENTRIES, gen_route_entry),
        },
        1 => Packet::Data {
            dst: gen_address(g),
            src: gen_address(g),
            id: g.u8(),
            fwd: gen_forwarding(g),
            payload: g.bytes(0, codec::MAX_DATA_PAYLOAD),
        },
        2 => Packet::Sync {
            dst: gen_address(g),
            src: gen_address(g),
            id: g.u8(),
            fwd: gen_forwarding(g),
            seq: g.u8(),
            frag_count: g.u16(),
            total_len: g.u32(),
        },
        3 => Packet::Frag {
            dst: gen_address(g),
            src: gen_address(g),
            id: g.u8(),
            fwd: gen_forwarding(g),
            seq: g.u8(),
            index: g.u16(),
            data: g.bytes(0, codec::MAX_FRAG_PAYLOAD),
        },
        4 => Packet::Ack {
            dst: gen_address(g),
            src: gen_address(g),
            id: g.u8(),
            fwd: gen_forwarding(g),
            seq: g.u8(),
            index: g.u16(),
        },
        _ => Packet::Lost {
            dst: gen_address(g),
            src: gen_address(g),
            id: g.u8(),
            fwd: gen_forwarding(g),
            seq: g.u8(),
            missing: g.vec_of(0, 100, Gen::u16),
        },
    }
}

fn gen_modulation(g: &mut Gen) -> LoRaModulation {
    let sf = g.choose(&SpreadingFactor::ALL);
    let bw = g.choose(&Bandwidth::ALL);
    let cr = g.choose(&CodingRate::ALL);
    LoRaModulation::new(sf, bw, cr)
}

// ----------------------------------------------------------------------
// codec
// ----------------------------------------------------------------------

/// Every representable packet survives an encode/decode round trip.
#[test]
fn codec_round_trip() {
    forall("codec_round_trip", gen_packet, |packet| {
        let wire = codec::encode(packet).expect("all generated packets fit a frame");
        prop_assert!(wire.len() <= codec::MAX_FRAME_LEN);
        prop_assert_eq!(wire.len(), codec::encoded_len(packet));
        let back = codec::decode(&wire).expect("round trip");
        prop_assert_eq!(&back, packet);
        Ok(())
    });
}

/// Arbitrary bytes never panic the decoder: they decode or error.
#[test]
fn decoder_is_total() {
    forall(
        "decoder_is_total",
        |g| g.bytes(0, 300),
        |bytes| {
            let _ = codec::decode(bytes);
            Ok(())
        },
    );
}

/// Corrupting any single byte of a valid frame never panics.
#[test]
fn single_byte_corruption_is_safe() {
    forall(
        "single_byte_corruption_is_safe",
        |g| {
            let packet = gen_packet(g);
            let pos = g.f64();
            let xor = g.int_in(1, 255) as u8;
            (packet, pos, xor)
        },
        |(packet, pos, xor)| {
            let mut wire = codec::encode(packet).unwrap();
            let i = ((pos * wire.len() as f64) as usize).min(wire.len() - 1);
            wire[i] ^= xor;
            let _ = codec::decode(&wire);
            Ok(())
        },
    );
}

// ----------------------------------------------------------------------
// airtime
// ----------------------------------------------------------------------

/// Time-on-air is monotone in payload length for every modulation.
#[test]
fn airtime_monotone_in_payload() {
    forall(
        "airtime_monotone_in_payload",
        |g| {
            let m = gen_modulation(g);
            let a = g.usize_in(0, LoRaModulation::MAX_PHY_PAYLOAD);
            let b = g.usize_in(0, LoRaModulation::MAX_PHY_PAYLOAD);
            (m, a, b)
        },
        |&(m, a, b)| {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(m.time_on_air(lo) <= m.time_on_air(hi));
            Ok(())
        },
    );
}

/// A frame always costs at least its preamble plus 8 payload symbols.
#[test]
fn airtime_lower_bound() {
    forall(
        "airtime_lower_bound",
        |g| (gen_modulation(g), g.usize_in(0, 255)),
        |&(m, len)| {
            let floor = m.preamble_time() + m.symbol_time() * 8;
            prop_assert!(m.time_on_air(len) >= floor);
            Ok(())
        },
    );
}

// ----------------------------------------------------------------------
// routing table
// ----------------------------------------------------------------------

/// Whatever hellos arrive: no route to self, no broadcast routes, vias
/// are known neighbours, metrics within bounds, and wire size is
/// consistent.
#[test]
fn routing_invariants() {
    forall(
        "routing_invariants",
        |g| {
            g.vec_of(1, 40, |g| {
                (g.int_in(1, 49) as u16, g.vec_of(0, 12, gen_route_entry))
            })
        },
        |hellos| {
            let me = Address::new(0xAAAA);
            let mut table = RoutingTable::new();
            let mut neighbours = std::collections::BTreeSet::new();
            for (i, (n, entries)) in hellos.iter().enumerate() {
                let neighbour = Address::new(*n);
                neighbours.insert(neighbour);
                table.apply_hello(
                    me,
                    neighbour,
                    0,
                    entries,
                    0.0,
                    Duration::from_secs(i as u64),
                );
            }
            for route in table.routes() {
                prop_assert_ne!(route.destination, me);
                prop_assert!(!route.destination.is_broadcast());
                prop_assert!(route.metric >= 1);
                prop_assert!(route.metric < RoutingTable::INFINITY_METRIC);
                // The next hop is always a node we have actually heard.
                prop_assert!(
                    neighbours.contains(&route.via),
                    "via {} not a neighbour",
                    route.via
                );
                if route.via == route.destination {
                    prop_assert_eq!(route.metric, 1);
                }
            }
            prop_assert_eq!(table.wire_size(), table.len() * codec::ROUTE_ENTRY_LEN);
            Ok(())
        },
    );
}

/// Purging with a zero timeout empties the table; next_expiry is the
/// minimum of the remaining deadlines.
#[test]
fn purge_clears_everything_at_zero_timeout() {
    forall(
        "purge_clears_everything_at_zero_timeout",
        |g| g.vec_of(1, 20, |g| g.int_in(1, 99) as u16),
        |neighbours| {
            let mut table = RoutingTable::new();
            for (i, n) in neighbours.iter().enumerate() {
                table.heard_from(Address::new(*n), 0.0, Duration::from_secs(i as u64));
            }
            let purged = table.purge(Duration::from_secs(1000), Duration::ZERO);
            let unique: std::collections::BTreeSet<_> = neighbours.iter().collect();
            prop_assert_eq!(purged.len(), unique.len());
            prop_assert!(table.is_empty());
            prop_assert_eq!(table.next_expiry(Duration::from_secs(60)), None);
            Ok(())
        },
    );
}

// ----------------------------------------------------------------------
// reliable transfer
// ----------------------------------------------------------------------

/// Fragmenting then walking the happy path reassembles the exact payload
/// for arbitrary sizes and fragment limits.
#[test]
fn fragmentation_reassembles_exactly() {
    forall(
        "fragmentation_reassembles_exactly",
        |g| (g.bytes(1, 5000), g.usize_in(1, codec::MAX_FRAG_PAYLOAD)),
        |(payload, max_frag)| {
            let dst = Address::new(2);
            let src = Address::new(1);
            let now = Duration::from_secs(1);
            let mut tx =
                OutboundTransfer::new(dst, 0, payload, *max_frag, Duration::from_secs(8), 3);
            let mut rx = InboundTransfer::new(src, 0, tx.frag_count(), tx.total_len(), now);

            prop_assert_eq!(tx.start(now), SenderAction::SendSync);
            prop_assert_eq!(rx.on_sync(now), ReceiverAction::AckSync);
            let mut action = tx.on_ack(loramesher_repro::loramesher::packet::SYNC_ACK_INDEX, now);
            let mut reassembled = None;
            while let SenderAction::SendFrag(i) = action {
                let data = tx.fragment(i).to_vec();
                for r in rx.on_frag(i, &data, now) {
                    if let ReceiverAction::Complete(p) = r {
                        reassembled = Some(p);
                    }
                }
                action = tx.on_ack(i, now);
            }
            prop_assert_eq!(action, SenderAction::Completed);
            prop_assert_eq!(&reassembled.expect("delivered"), payload);
            Ok(())
        },
    );
}

/// Losing an arbitrary subset of fragments and recovering through Lost
/// requests still reassembles the payload exactly.
#[test]
fn lost_recovery_reassembles() {
    forall(
        "lost_recovery_reassembles",
        |g| (g.bytes(100, 3000), g.u64()),
        |(payload, drop_mask)| {
            let src = Address::new(1);
            let now = Duration::from_secs(1);
            let tx =
                OutboundTransfer::new(Address::new(2), 0, payload, 100, Duration::from_secs(8), 3);
            let mut rx = InboundTransfer::new(src, 0, tx.frag_count(), tx.total_len(), now);
            // First pass: deliver only the fragments whose mask bit is set.
            let mut delivered = None;
            for i in 0..tx.frag_count() {
                if drop_mask >> (i % 64) & 1 == 1 {
                    for r in rx.on_frag(i, tx.fragment(i), now) {
                        if let ReceiverAction::Complete(p) = r {
                            delivered = Some(p);
                        }
                    }
                }
            }
            // Recovery pass: send exactly what the receiver lists as missing.
            for i in rx.missing() {
                for r in rx.on_frag(i, tx.fragment(i), now) {
                    if let ReceiverAction::Complete(p) = r {
                        delivered = Some(p);
                    }
                }
            }
            prop_assert!(rx.missing().is_empty());
            prop_assert_eq!(&delivered.expect("completed"), payload);
            Ok(())
        },
    );
}

// ----------------------------------------------------------------------
// duty cycle
// ----------------------------------------------------------------------

/// Whatever transmission pattern is attempted, the tracker never lets
/// the windowed airtime exceed the budget.
#[test]
fn duty_cycle_never_exceeds_budget() {
    forall(
        "duty_cycle_never_exceeds_budget",
        |g| g.vec_of(1, 200, |g| (g.int_in(0, 7199), g.int_in(1, 4999))),
        |attempts| {
            let mut tracker = DutyCycleTracker::new(0.01, Duration::from_secs(3600));
            let budget = tracker.budget();
            let mut sorted = attempts.clone();
            sorted.sort_unstable();
            for (at, ms) in sorted {
                let now = Duration::from_secs(at);
                let airtime = Duration::from_millis(ms);
                let _ = tracker.try_transmit(now, airtime);
                prop_assert!(tracker.used(now) <= budget);
            }
            Ok(())
        },
    );
}

// ----------------------------------------------------------------------
// MAC state machine
// ----------------------------------------------------------------------

/// Shared body of the MAC property: whatever sequence of channel
/// outcomes the MAC sees, it never issues overlapping transmissions,
/// never transmits more windowed airtime than the duty budget allows,
/// and every DropFrame leaves it ready for new work.
fn check_mac_invariants(events: &[(bool, u64)], seed: u64) -> Result<(), String> {
    use loramesher_repro::loramesher::mac::{Mac, MacAction};
    use loramesher_repro::loramesher::rng::ProtocolRng;

    let mut mac = Mac::new(
        DutyCycleTracker::new(0.01, Duration::from_secs(3600)),
        Duration::from_millis(100),
        6,
        4,
    );
    let mut rng = ProtocolRng::new(seed);
    let mut now = Duration::ZERO;
    let mut transmitting = false;
    let mut history: Vec<(Duration, Duration)> = Vec::new();
    let budget = mac.duty().budget();
    let window = Duration::from_secs(3600);

    for &(busy, airtime_ms) in events {
        let airtime = Duration::from_millis(airtime_ms);
        // Advance time a little and finish any transmission.
        if transmitting {
            now += airtime;
            mac.on_tx_done();
            transmitting = false;
        }
        match mac.kick(now) {
            MacAction::StartCad => match mac.on_cad_done(busy, airtime, now, &mut rng) {
                MacAction::Transmit => {
                    prop_assert!(!transmitting, "overlapping transmissions");
                    transmitting = true;
                    history.push((now, airtime));
                    // Airtime within the sliding regulatory window.
                    let horizon = now.saturating_sub(window);
                    let windowed: Duration = history
                        .iter()
                        .filter(|(start, _)| *start >= horizon)
                        .map(|(_, a)| *a)
                        .sum();
                    prop_assert!(
                        windowed <= budget,
                        "duty budget exceeded: {windowed:?} > {budget:?}"
                    );
                }
                MacAction::DropFrame => {
                    prop_assert!(mac.is_ready(), "drop must leave the MAC ready");
                }
                MacAction::None | MacAction::StartCad => {}
            },
            MacAction::Transmit | MacAction::DropFrame => {
                prop_assert!(false, "kick never transmits or drops directly");
            }
            MacAction::None => {}
        }
        // Jump to any pending deadline so the machine can progress.
        if let Some(wake) = mac.next_wake() {
            now = now.max(wake);
        } else {
            now += Duration::from_millis(50);
        }
    }
    Ok(())
}

/// Historical counterexample once recorded by the property runner (a
/// long run of idle-channel CAD outcomes that used to overdraw the duty
/// budget), pinned as an explicit case so it is re-checked on every run.
#[test]
fn mac_regression_idle_channel_duty_overdraw() {
    let events: [(bool, u64); 31] = [
        (false, 1678),
        (false, 1015),
        (false, 1031),
        (false, 1626),
        (false, 950),
        (false, 1928),
        (false, 1929),
        (false, 1036),
        (false, 1854),
        (false, 1777),
        (false, 1481),
        (false, 735),
        (false, 1037),
        (false, 652),
        (false, 567),
        (false, 1741),
        (false, 953),
        (false, 1344),
        (false, 1375),
        (false, 1478),
        (false, 1502),
        (false, 755),
        (false, 601),
        (false, 998),
        (false, 1695),
        (false, 1331),
        (false, 636),
        (false, 673),
        (false, 912),
        (false, 711),
        (false, 711),
    ];
    check_mac_invariants(&events, 0).unwrap();
}

#[test]
fn mac_invariants_under_random_channel() {
    forall(
        "mac_invariants_under_random_channel",
        |g| {
            (
                g.vec_of(1, 200, |g| (g.bool(0.5), g.int_in(1, 1999))),
                g.u64(),
            )
        },
        |(events, seed)| check_mac_invariants(events, *seed),
    );
}

// ----------------------------------------------------------------------
// simulator RNG
// ----------------------------------------------------------------------

/// Forked streams never collide for distinct ids (first few outputs).
#[test]
fn rng_forks_are_independent() {
    forall(
        "rng_forks_are_independent",
        |g| {
            let a = g.int_in(0, 999);
            let mut b = g.int_in(0, 999);
            if b == a {
                b = (a + 1) % 1000;
            }
            (g.u64(), a, b)
        },
        |&(seed, a, b)| {
            let root = SimRng::new(seed);
            let mut fa = root.fork(a);
            let mut fb = root.fork(b);
            let va: Vec<u64> = (0..4).map(|_| fa.next_u64()).collect();
            let vb: Vec<u64> = (0..4).map(|_| fb.next_u64()).collect();
            prop_assert_ne!(va, vb);
            Ok(())
        },
    );
}

/// gen_range stays in bounds for arbitrary bounds.
#[test]
fn rng_range_in_bounds() {
    forall(
        "rng_range_in_bounds",
        |g| (g.u64(), g.int_in(1, u64::MAX - 1)),
        |&(seed, bound)| {
            let mut rng = SimRng::new(seed);
            for _ in 0..16 {
                prop_assert!(rng.gen_range(bound) < bound);
            }
            Ok(())
        },
    );
}
