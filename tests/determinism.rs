//! End-to-end determinism: a simulation is a pure function of its
//! configuration and seed, across the whole stack (PHY, MAC, routing,
//! reliable transfers, workloads).

use std::time::Duration;

use loramesher_repro::radio_sim::sim::SimConfig;
use loramesher_repro::radio_sim::topology;
use loramesher_repro::scenario::experiments::default_spacing;
use loramesher_repro::scenario::runner::{NetworkBuilder, ProtocolChoice};
use loramesher_repro::scenario::workload::{self, Target};

/// Fingerprint of a run: everything an experiment would report.
fn fingerprint(seed: u64, grey_zone: bool) -> String {
    let mut sim = SimConfig::default();
    sim.rf.grey_zone = grey_zone;
    let spacing = default_spacing();
    let mut net = NetworkBuilder::mesh(topology::grid(3, 2, spacing), seed)
        .sim_config(sim)
        .build();
    net.run_until(Duration::from_secs(120));
    let start = Duration::from_secs(125);
    net.apply(&workload::all_to_one(
        6,
        0,
        16,
        start,
        Duration::from_secs(30),
        4,
    ));
    net.schedule(workload::bulk(1, 5, 900, start + Duration::from_secs(10)));
    let victim = net.id(2);
    net.sim_mut()
        .schedule_kill(start + Duration::from_secs(60), victim);
    net.sim_mut()
        .schedule_revive(start + Duration::from_secs(180), victim);
    net.run_until(start + Duration::from_secs(400));

    let report = net.report();
    let metrics = net.phy_metrics();
    let mut tables = String::new();
    for i in 0..net.len() {
        let mesh = net.mesh_node(i).unwrap();
        for r in mesh.routing_table().routes() {
            tables.push_str(&format!(
                "{}:{}via{}m{};",
                i, r.destination, r.via, r.metric
            ));
        }
        let s = mesh.stats();
        tables.push_str(&format!(
            "s{}={},{},{};",
            i, s.frames_sent, s.forwarded, s.hellos_received
        ));
    }
    format!(
        "sent={} del={} lat={:?} rel={} frames={} coll={} floor={} | {}",
        report.sent,
        report.delivered,
        report.mean_latency(),
        report.reliable_completed,
        metrics.frames_transmitted,
        metrics.lost_collision,
        metrics.lost_below_floor,
        tables
    )
}

#[test]
fn same_seed_same_everything() {
    let a = fingerprint(1234, false);
    let b = fingerprint(1234, false);
    assert_eq!(a, b);
}

#[test]
fn same_seed_same_everything_with_grey_zone() {
    // The grey zone draws from per-node RNGs: still fully deterministic.
    let a = fingerprint(777, true);
    let b = fingerprint(777, true);
    assert_eq!(a, b);
}

#[test]
fn different_seeds_change_outcomes() {
    // With probabilistic reception, different seeds virtually always
    // produce different fingerprints.
    let a = fingerprint(1, true);
    let b = fingerprint(2, true);
    assert_ne!(a, b);
}

#[test]
fn baseline_protocols_are_deterministic_too() {
    let run = |seed: u64| {
        let spacing = default_spacing();
        let mut net = NetworkBuilder::mesh(topology::line(4, spacing), seed)
            .protocol(ProtocolChoice::Flooding { ttl: 5 })
            .build();
        net.apply(&workload::periodic(
            0,
            Target::Node(3),
            16,
            Duration::from_secs(5),
            Duration::from_secs(10),
            5,
        ));
        net.run_until(Duration::from_secs(120));
        let r = net.report();
        (
            r.delivered,
            r.frames_transmitted,
            format!("{:?}", r.latencies),
        )
    };
    assert_eq!(run(5), run(5));
}
