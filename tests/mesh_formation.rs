//! Full-stack integration tests: mesh formation and routing behaviour
//! across the simulator, exactly as the demo paper stages it.

use std::time::Duration;

use loramesher_repro::lora_phy::propagation::Position;
use loramesher_repro::radio_sim::rng::SimRng;
use loramesher_repro::radio_sim::topology;
use loramesher_repro::scenario::experiments::default_spacing;
use loramesher_repro::scenario::runner::{NetworkBuilder, ProtocolChoice, Runner};

#[test]
fn line_of_five_converges_with_correct_metrics() {
    let spacing = default_spacing();
    let mut net = NetworkBuilder::mesh(topology::line(5, spacing), 1).build();
    net.run_until_converged(Duration::from_secs(2), Duration::from_secs(1200))
        .expect("line-5 converges");
    // Node 0's metric to node k is exactly k hops, via node 1.
    let table = net.mesh_node(0).unwrap().routing_table();
    for k in 1..5 {
        let route = table.route(Runner::address_of(k)).unwrap();
        assert_eq!(route.metric, k as u8, "metric to node {k}");
        assert_eq!(route.via, Runner::address_of(1), "via for node {k}");
    }
    // And symmetrically from the other end.
    let table = net.mesh_node(4).unwrap().routing_table();
    assert_eq!(table.route(Runner::address_of(0)).unwrap().metric, 4);
}

#[test]
fn ring_offers_two_hop_directions() {
    // A ring of 6: opposite nodes are 3 hops away either way.
    let spacing = default_spacing();
    // Ring radius such that adjacent nodes are `spacing` apart.
    let radius = spacing / (2.0 * (std::f64::consts::PI / 6.0).sin());
    let mut net = NetworkBuilder::mesh(topology::ring(6, radius), 2).build();
    net.run_until_converged(Duration::from_secs(2), Duration::from_secs(1200))
        .expect("ring-6 converges");
    let table = net.mesh_node(0).unwrap().routing_table();
    let opposite = table.route(Runner::address_of(3)).unwrap();
    assert_eq!(opposite.metric, 3);
    // Neighbours on both sides are direct.
    assert_eq!(table.route(Runner::address_of(1)).unwrap().metric, 1);
    assert_eq!(table.route(Runner::address_of(5)).unwrap().metric, 1);
}

#[test]
fn grid_converges_and_uses_short_paths() {
    let spacing = default_spacing();
    let mut net = NetworkBuilder::mesh(topology::grid(3, 3, spacing), 3).build();
    net.run_until_converged(Duration::from_secs(2), Duration::from_secs(1200))
        .expect("grid-9 converges");
    // Corner to corner on a 3×3 4-neighbour grid is 4 hops.
    let table = net.mesh_node(0).unwrap().routing_table();
    assert_eq!(table.route(Runner::address_of(8)).unwrap().metric, 4);
    // The centre is 2 hops from every corner.
    let centre = net.mesh_node(4).unwrap().routing_table();
    for corner in [0usize, 2, 6, 8] {
        assert_eq!(centre.route(Runner::address_of(corner)).unwrap().metric, 2);
    }
}

#[test]
fn random_topologies_converge_across_seeds() {
    let spacing = default_spacing();
    for seed in 1..=5u64 {
        let side = spacing * (10f64).sqrt() * 0.85;
        let mut rng = SimRng::new(seed);
        let positions = topology::connected_random(10, side, side, spacing, &mut rng, 2000)
            .expect("connected placement");
        let mut net = NetworkBuilder::mesh(positions, seed).build();
        assert!(
            net.run_until_converged(Duration::from_secs(5), Duration::from_secs(1800))
                .is_some(),
            "seed {seed} failed to converge"
        );
    }
}

#[test]
fn isolated_node_learns_nothing() {
    let spacing = default_spacing();
    let mut positions = topology::line(3, spacing);
    positions.push(Position::new(1.0e6, 1.0e6)); // far away
    let mut net = NetworkBuilder::mesh(positions, 4).build();
    net.run_until(Duration::from_secs(300));
    assert!(net.mesh_node(3).unwrap().routing_table().is_empty());
    // The connected trio still formed a mesh.
    assert_eq!(net.mesh_node(0).unwrap().routing_table().len(), 2);
}

#[test]
fn routes_across_partition_expire() {
    let spacing = default_spacing();
    let mut net = NetworkBuilder::mesh(topology::line(3, spacing), 5)
        .protocol(ProtocolChoice::Mesh {
            hello_interval: Duration::from_secs(10),
            route_timeout: Duration::from_secs(60),
        })
        .build();
    net.run_until_converged(Duration::from_secs(2), Duration::from_secs(600))
        .expect("converges");
    // Kill the middle node: the chain is cut.
    let mid = net.id(1);
    let kill_at = net.now() + Duration::from_secs(1);
    net.sim_mut().schedule_kill(kill_at, mid);
    // After the route timeout everything beyond the cut is gone.
    net.run_until(kill_at + Duration::from_secs(90));
    let table = net.mesh_node(0).unwrap().routing_table();
    assert!(
        table.next_hop(Runner::address_of(1)).is_none(),
        "dead neighbour kept"
    );
    assert!(
        table.next_hop(Runner::address_of(2)).is_none(),
        "unreachable kept"
    );
}

#[test]
fn late_joiner_is_absorbed() {
    let spacing = default_spacing();
    let mut net = NetworkBuilder::mesh(topology::line(3, spacing), 6)
        .protocol(ProtocolChoice::Mesh {
            hello_interval: Duration::from_secs(10),
            route_timeout: Duration::from_secs(60),
        })
        .build();
    net.run_until_converged(Duration::from_secs(2), Duration::from_secs(600))
        .expect("converges");
    // A fourth node appears at the end of the line after the fact: model
    // a node reboot by killing and reviving the end node and checking it
    // relearns the whole mesh.
    let end = net.id(2);
    let t = net.now();
    net.sim_mut().schedule_kill(t + Duration::from_secs(1), end);
    net.sim_mut()
        .schedule_revive(t + Duration::from_secs(120), end);
    net.run_until(t + Duration::from_secs(300));
    let table = net.mesh_node(2).unwrap().routing_table();
    assert_eq!(table.len(), 2, "revived node relearned the mesh: {table:?}");
    assert_eq!(
        table.route(Runner::address_of(0)).unwrap().metric,
        2,
        "multi-hop route relearned"
    );
}

#[test]
fn hello_interval_controls_convergence_speed() {
    let spacing = default_spacing();
    let time_for = |hello_secs: u64| {
        let mut net = NetworkBuilder::mesh(topology::line(5, spacing), 7)
            .protocol(ProtocolChoice::Mesh {
                hello_interval: Duration::from_secs(hello_secs),
                route_timeout: Duration::from_secs(hello_secs * 6),
            })
            .build();
        net.run_until_converged(Duration::from_secs(2), Duration::from_secs(3600))
            .expect("converges")
    };
    let fast = time_for(10);
    let slow = time_for(60);
    assert!(
        slow > fast,
        "longer hello interval must converge slower: {fast:?} vs {slow:?}"
    );
}
