//! Differential test for the determinism-motivated collection swap
//! (PR 3): replacing `HashMap`/`HashSet` with `BTreeMap`/`BTreeSet` in
//! `radio_sim::sim` (injected link loss), `radio_sim::metrics`
//! (per-node counters), `scenario::runner` (delivery dedup keys) and
//! `mesh_baselines::flooding` (duplicate suppression) must not change
//! any observable behaviour.
//!
//! The golden fingerprints below were recorded at commit 052e215 —
//! immediately *before* the swap — by running these exact scenarios on
//! the `HashMap` implementations. The post-swap tree must reproduce
//! them bit-for-bit: traces, PHY metrics (including RNG-fed grey-zone
//! outcomes), traffic reports and per-node routing state.

use std::time::Duration;

use lora_phy::propagation::Shadowing;
use loramesher_repro::radio_sim::sim::SimConfig;
use loramesher_repro::radio_sim::topology;
use loramesher_repro::scenario::runner::{NetworkBuilder, ProtocolChoice, Runner};
use loramesher_repro::scenario::workload::{self, Target};

/// FNV-1a: a stable, dependency-free 64-bit digest.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Serialises everything observable about a finished run into one
/// string: the full event trace, global and per-node PHY metrics (in
/// ascending node order), the traffic report and per-node protocol
/// state.
fn observe(net: &Runner) -> String {
    let mut out = String::new();
    for (t, ev) in net.sim().trace().entries() {
        out.push_str(&format!("{t:?}|{ev:?};"));
    }
    let m = net.phy_metrics();
    out.push_str(&format!(
        "tx={} del={} floor={} coll={} trunc={} inj={} busy={} dead={} air={:?};",
        m.frames_transmitted,
        m.frames_delivered,
        m.lost_below_floor,
        m.lost_collision,
        m.lost_truncated,
        m.lost_injected,
        m.tx_while_busy,
        m.tx_while_dead,
        m.total_airtime,
    ));
    for (i, c) in m.per_node.iter().enumerate() {
        out.push_str(&format!(
            "n{}:{},{},{},{},{};",
            i, c.transmitted, c.received, c.lost, c.cad_scans, c.cad_busy
        ));
    }
    let r = net.report();
    out.push_str(&format!(
        "sent={} del={} dup={} err={} lat={:?} rel={}/{};",
        r.sent,
        r.delivered,
        r.duplicates,
        r.send_errors,
        r.latencies,
        r.reliable_completed,
        r.reliable_failed,
    ));
    for i in 0..net.len() {
        if let Some(mesh) = net.mesh_node(i) {
            for route in mesh.routing_table().routes() {
                out.push_str(&format!(
                    "{}:{}via{}m{};",
                    i, route.destination, route.via, route.metric
                ));
            }
            let s = mesh.stats();
            out.push_str(&format!(
                "s{}={},{},{},{};",
                i, s.frames_sent, s.forwarded, s.hellos_received, s.data_delivered
            ));
        }
    }
    out
}

fn traced_config() -> SimConfig {
    let mut cfg = SimConfig::default();
    cfg.rf.grey_zone = true;
    cfg.rf.shadowing = Shadowing::new(4.0, 7);
    cfg.trace_capacity = 1 << 16;
    cfg
}

/// Mesh grid with unicast traffic, a reliable transfer and node churn:
/// exercises `sim.rs` (trace, churn), `metrics.rs` (per-node counters)
/// and `runner.rs` (delivery dedup keys).
fn mesh_fingerprint(seed: u64) -> u64 {
    let spacing = topology::radio_range_m(&SimConfig::default().rf) * 0.8;
    let mut net = NetworkBuilder::mesh(topology::grid(3, 2, spacing), seed)
        .sim_config(traced_config())
        .build();
    net.run_until(Duration::from_secs(120));
    let start = Duration::from_secs(125);
    net.apply(&workload::all_to_one(
        6,
        0,
        16,
        start,
        Duration::from_secs(30),
        4,
    ));
    net.schedule(workload::bulk(1, 5, 900, start + Duration::from_secs(10)));
    let victim = net.id(2);
    net.sim_mut()
        .schedule_kill(start + Duration::from_secs(60), victim);
    net.sim_mut()
        .schedule_revive(start + Duration::from_secs(180), victim);
    net.run_until(start + Duration::from_secs(400));
    fnv1a(observe(&net).as_bytes())
}

/// Managed flooding over a line: every relay consults the
/// duplicate-suppression cache in `loramesher::flood`.
fn flooding_fingerprint(seed: u64) -> u64 {
    let mut net = NetworkBuilder::mesh(topology::line(4, 100.0), seed)
        .protocol(ProtocolChoice::Flooding { ttl: 5 })
        .sim_config(traced_config())
        .build();
    net.apply(&workload::periodic(
        0,
        Target::Node(3),
        16,
        Duration::from_secs(5),
        Duration::from_secs(10),
        6,
    ));
    net.apply(&workload::periodic(
        3,
        Target::Broadcast,
        12,
        Duration::from_secs(8),
        Duration::from_secs(15),
        4,
    ));
    net.run_until(Duration::from_secs(180));
    fnv1a(observe(&net).as_bytes())
}

/// (seed, golden digest) pairs recorded on the pre-swap `HashMap`
/// implementations at commit 052e215.
///
/// The mesh digests were re-pinned in PR 6: audibility-gating the
/// interference sums (see DESIGN.md "Sharded engine") flipped a couple
/// of marginal-SIR judgements in these runs. The digests were
/// re-recorded on the sequential engine and still pin the collection
/// swap: both engines and both collection families reproduce them
/// bit-for-bit.
const MESH_GOLDEN: [(u64, u64); 2] = [
    (11, 13_788_772_325_276_016_391),
    (31, 10_569_796_329_372_555_057),
];
/// Regen history: re-pinned when the mesh-baselines flooder was retired
/// in favour of the first-class `loramesher::flood` stack (protocol
/// refactor PR) — the new stack's SNR/contention-weighted rebroadcast
/// delay intentionally changes the traces. Regenerate with
/// `COLLECTION_SWAP_REGEN=1 cargo test --test collection_swap_diff --
/// --nocapture`. The MESH_GOLDEN rows above are original recordings and
/// must never move.
const FLOODING_GOLDEN: [(u64, u64); 2] = [
    (11, 6_921_568_027_091_372_036),
    (31, 2_630_881_976_373_650_847),
];

fn check(label: &str, seed: u64, actual: u64, golden: u64) {
    if std::env::var_os("COLLECTION_SWAP_REGEN").is_some() {
        println!("    ({seed}, {actual}),  // {label}");
        return;
    }
    assert_eq!(
        actual, golden,
        "{label} run at seed {seed} diverged from the pre-swap recording"
    );
}

#[test]
fn mesh_traces_unchanged_by_collection_swap() {
    for (seed, golden) in MESH_GOLDEN {
        check("mesh", seed, mesh_fingerprint(seed), golden);
    }
}

#[test]
fn flooding_traces_unchanged_by_collection_swap() {
    for (seed, golden) in FLOODING_GOLDEN {
        check("flooding", seed, flooding_fingerprint(seed), golden);
    }
}
