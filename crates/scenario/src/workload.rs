//! Traffic generators.
//!
//! A workload is a plain list of [`TrafficEvent`]s — *who sends what to
//! whom, when* — that the [`crate::Runner`] schedules into the simulator.
//! Keeping workloads as data makes every experiment's traffic auditable
//! and replayable.

use std::time::Duration;

use radio_sim::rng::SimRng;

/// Where a traffic event is addressed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Target {
    /// A specific node (by index in the runner's node list).
    Node(usize),
    /// The broadcast address.
    Broadcast,
}

/// One application send.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TrafficEvent {
    /// When the application submits the payload.
    pub at: Duration,
    /// The sending node (index).
    pub from: usize,
    /// The destination.
    pub to: Target,
    /// Payload size in bytes (≥ 4; the runner embeds a 4-byte marker).
    pub payload_len: usize,
    /// Whether to use the reliable large-payload service.
    pub reliable: bool,
}

/// A periodic unicast stream: `count` datagrams from `from` to `to`,
/// every `interval` starting at `start`.
#[must_use]
pub fn periodic(
    from: usize,
    to: Target,
    payload_len: usize,
    start: Duration,
    interval: Duration,
    count: usize,
) -> Vec<TrafficEvent> {
    (0..count)
        .map(|k| TrafficEvent {
            at: start + interval * k as u32,
            from,
            to,
            payload_len,
            reliable: false,
        })
        .collect()
}

/// Poisson arrivals with the given mean inter-arrival time, from `start`
/// until `until`.
#[must_use]
pub fn poisson(
    from: usize,
    to: Target,
    payload_len: usize,
    start: Duration,
    mean_interval: Duration,
    until: Duration,
    rng: &mut SimRng,
) -> Vec<TrafficEvent> {
    let mut events = Vec::new();
    let mut t = start;
    loop {
        t += Duration::from_secs_f64(rng.gen_exponential(mean_interval.as_secs_f64()));
        if t >= until {
            break;
        }
        events.push(TrafficEvent {
            at: t,
            from,
            to,
            payload_len,
            reliable: false,
        });
    }
    events
}

/// A sensor-field workload: every node except `sink` periodically reports
/// to `sink`, with start times staggered across one interval so reports
/// do not synchronise.
#[must_use]
pub fn all_to_one(
    n_nodes: usize,
    sink: usize,
    payload_len: usize,
    start: Duration,
    interval: Duration,
    count: usize,
) -> Vec<TrafficEvent> {
    let mut events = Vec::new();
    let senders: Vec<usize> = (0..n_nodes).filter(|&i| i != sink).collect();
    for (k, &from) in senders.iter().enumerate() {
        let stagger = interval.mul_f64(k as f64 / senders.len().max(1) as f64);
        events.extend(periodic(
            from,
            Target::Node(sink),
            payload_len,
            start + stagger,
            interval,
            count,
        ));
    }
    events.sort_by_key(|e| e.at);
    events
}

/// A single reliable bulk transfer.
#[must_use]
pub fn bulk(from: usize, to: usize, payload_len: usize, at: Duration) -> TrafficEvent {
    TrafficEvent {
        at,
        from,
        to: Target::Node(to),
        payload_len,
        reliable: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn periodic_spacing() {
        let ev = periodic(
            0,
            Target::Node(1),
            16,
            Duration::from_secs(10),
            Duration::from_secs(5),
            4,
        );
        assert_eq!(ev.len(), 4);
        assert_eq!(ev[0].at, Duration::from_secs(10));
        assert_eq!(ev[3].at, Duration::from_secs(25));
        assert!(ev.iter().all(|e| e.from == 0 && !e.reliable));
    }

    #[test]
    fn poisson_mean_is_respected() {
        let mut rng = SimRng::new(3);
        let ev = poisson(
            0,
            Target::Broadcast,
            16,
            Duration::ZERO,
            Duration::from_secs(10),
            Duration::from_secs(10_000),
            &mut rng,
        );
        // ~1000 events expected; allow wide tolerance.
        assert!((800..1200).contains(&ev.len()), "got {}", ev.len());
        assert!(ev.windows(2).all(|w| w[0].at <= w[1].at));
        assert!(ev.iter().all(|e| e.at < Duration::from_secs(10_000)));
    }

    #[test]
    fn all_to_one_excludes_sink_and_staggers() {
        let ev = all_to_one(
            4,
            0,
            16,
            Duration::from_secs(100),
            Duration::from_secs(30),
            2,
        );
        assert_eq!(ev.len(), 6); // 3 senders × 2
        assert!(ev.iter().all(|e| e.from != 0));
        assert!(ev.iter().all(|e| e.to == Target::Node(0)));
        // Staggered: not all first sends at the same instant.
        let first_times: Vec<Duration> = ev.iter().map(|e| e.at).take(3).collect();
        assert_ne!(first_times[0], first_times[1]);
        // Sorted by time.
        assert!(ev.windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn bulk_is_reliable() {
        let e = bulk(2, 5, 4096, Duration::from_secs(60));
        assert!(e.reliable);
        assert_eq!(e.to, Target::Node(5));
        assert_eq!(e.payload_len, 4096);
    }
}
