//! Experiment scenarios for the LoRaMesher reproduction.
//!
//! This crate is the glue between the protocol implementations
//! (`loramesher`, `mesh-baselines`) and the `radio-sim` simulator, plus
//! the experiment definitions every table and figure of the evaluation is
//! generated from:
//!
//! * [`adapter`] — hosts any [`loramesher::driver::NodeProtocol`] as
//!   simulator firmware, logging application events with timestamps.
//! * [`workload`] — traffic generators (periodic sensors, Poisson
//!   arrivals, bulk transfers).
//! * [`runner`] — builds a network, injects traffic, and produces a
//!   [`runner::TrafficReport`] with delivery/latency/airtime statistics.
//! * [`experiments`] — the parameter sweeps E1–E13 and ablations A1–A4
//!   from DESIGN.md, each
//!   returning a printable [`report::ExpTable`].
//! * [`report`] — plain-text table formatting shared by the benchmark
//!   binaries and EXPERIMENTS.md.
//! * [`sweep`] — the parallel multi-seed sweep engine: shards a
//!   parameter grid × seed set across a worker pool and reduces each
//!   cell to mean / stddev / min / max / 95 % CI, independent of the
//!   thread count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adapter;
pub mod experiments;
pub mod report;
pub mod runner;
pub mod summary;
pub mod sweep;
pub mod workload;

pub use adapter::{AppEvent, HostedProtocol, ProtocolFirmware, ProtocolNode};
pub use report::ExpTable;
pub use runner::{NetworkBuilder, ProtocolChoice, Runner, TrafficReport};
pub use summary::Summary;
pub use sweep::{run_parallel, seed_list, CellStats};
pub use workload::{Target, TrafficEvent};
