//! The reconstructed LoRaMesher evaluation: experiments E1–E13 and the
//! A1–A4 ablations.
//!
//! Each function reproduces one table or figure from DESIGN.md's
//! per-experiment index and returns a printable [`ExpTable`]. The
//! `quick` option shrinks sweeps to seconds of wall-clock for tests; the
//! benchmark binaries run the full versions.
//!
//! All experiments share the urban RF profile (SF7/125 kHz, log-distance
//! path loss) unless the sweep itself varies it; nodes are spaced
//! relative to the computed radio range so the connectivity graph is
//! meaningful regardless of the propagation profile.

use std::time::Duration;

use lora_phy::modulation::{Bandwidth, CodingRate, LoRaModulation, SpreadingFactor};
use lora_phy::region::Region;

use loramesher::addr::Address;
use loramesher::codec;
use loramesher::packet::{Forwarding, Packet, RouteEntry, SYNC_ACK_INDEX};
use radio_sim::rng::SimRng;
use radio_sim::sim::SimConfig;
use radio_sim::topology;

use crate::report::{fmt_pct, fmt_rate, fmt_secs, ExpTable};
use crate::runner::{NetworkBuilder, ProtocolChoice, Runner};
use crate::workload::{self, Target};

/// Sweep-size options shared by all experiments.
#[derive(Clone, Copy, Debug)]
pub struct ExpOptions {
    /// Shrink sweeps for fast runs (tests); full sweeps otherwise.
    pub quick: bool,
    /// Master seed.
    pub seed: u64,
    /// Replications per sweep cell. 1 = single-sample runs; > 1 turns
    /// every stochastic figure into a mean ± deviation distribution.
    pub seeds: usize,
    /// Worker threads for the sweep engine. Runs are deterministic and
    /// independent, so any value yields identical tables.
    pub jobs: usize,
    /// Spatial shards for the event engine inside each run. The sharded
    /// engine is behaviourally transparent, so any value yields
    /// identical tables; larger values batch range-isolated regions.
    pub shards: usize,
    /// Worker threads inside each simulator (parallel evaluate regions).
    /// Behaviourally transparent, so any value yields identical tables.
    pub threads: usize,
    /// Per-node RNG stream family (PR 9). Required when `threads > 1`.
    /// NOT behaviourally transparent — it selects a different (equally
    /// valid) sequence of stochastic draws — so every leg of a
    /// comparison must use the same setting.
    pub rng_streams: bool,
    /// Restrict the protocol-comparison experiments (E5 and the E13
    /// head-to-head) to a single stack; `None` runs every protocol in
    /// the comparison. Mirrors `meshsim --protocol` so one leg of a
    /// comparison can be regenerated offline without re-running the
    /// others. Experiments that inspect LoRaMesher-specific state
    /// (routing tables, hello counters) ignore this and always run the
    /// mesh stack.
    pub protocol: Option<ProtocolChoice>,
}

impl Default for ExpOptions {
    fn default() -> Self {
        ExpOptions {
            quick: false,
            seed: 42,
            seeds: 1,
            jobs: 1,
            shards: 1,
            threads: 1,
            rng_streams: false,
            protocol: None,
        }
    }
}

impl ExpOptions {
    /// Quick options for tests.
    #[must_use]
    pub fn quick() -> Self {
        ExpOptions {
            quick: true,
            ..ExpOptions::default()
        }
    }

    /// The replication seed set: `seeds` seeds spread from the master
    /// seed (the master seed itself first).
    #[must_use]
    pub fn seed_set(&self) -> Vec<u64> {
        crate::sweep::seed_list(self.seed, self.seeds)
    }

    /// Like [`ExpOptions::seed_set`], but an experiment that always
    /// replicates (grey-zone losses need a distribution to mean
    /// anything) supplies its own default count, used unless the user
    /// asked for more than one seed explicitly.
    #[must_use]
    pub fn seed_set_or(&self, default_reps: usize) -> Vec<u64> {
        let count = if self.seeds > 1 {
            self.seeds
        } else {
            default_reps
        };
        crate::sweep::seed_list(self.seed, count)
    }
}

/// Formats an optional summary with `f`, `-` when no seed observed it.
fn fmt_opt(s: Option<&crate::summary::Summary>, f: impl Fn(f64) -> String) -> String {
    s.map_or("-".into(), |s| s.fmt_pm(f))
}

/// Whether `choice` is the stack selected by [`ExpOptions::protocol`]
/// (variant match — the experiment's own timers/TTL presets win over
/// the ones carried by the option).
fn protocol_selected(opt: &ExpOptions, choice: &ProtocolChoice) -> bool {
    opt.protocol
        .is_none_or(|only| core::mem::discriminant(&only) == core::mem::discriminant(choice))
}

/// Seconds formatter matching [`fmt_secs`] on raw `f64` seconds.
fn fmt_secs_f(v: f64) -> String {
    format!("{v:.3} s")
}

/// The default node spacing: 80 % of the radio range under the default
/// RF profile, so adjacent nodes link reliably but skipping a hop fails.
#[must_use]
pub fn default_spacing() -> f64 {
    let cfg = SimConfig::default();
    topology::radio_range_m(&cfg.rf) * 0.8
}

/// A connected random placement of `n` nodes. The square's side grows as
/// `0.85 · spacing · √n`, which keeps the average node degree a little
/// above the `log n` connectivity threshold of random geometric graphs,
/// so resampling finds a connected instance quickly at every size.
fn random_positions(n: usize, spacing: f64, seed: u64) -> Vec<lora_phy::propagation::Position> {
    let area = spacing * (n as f64).sqrt() * 0.85;
    let mut rng = SimRng::new(seed);
    topology::connected_random(n, area, area, spacing, &mut rng, 2000)
        .expect("connected placement within attempt budget")
}

/// A connected random placement that stays connected at *hundreds* of
/// nodes: [`random_positions`]' fixed `0.85` factor holds the average
/// node degree constant (~4.3), which sails past the `log n`
/// connectivity threshold of random geometric graphs somewhere around
/// 50 nodes. Here the square is sized for a target degree of
/// `ln n + 3`, so the E13 scale sweep finds connected instances at
/// every size while the density grows only logarithmically.
fn scaled_positions(n: usize, spacing: f64, seed: u64) -> Vec<lora_phy::propagation::Position> {
    let degree = (n as f64).ln() + 3.0;
    let area = spacing * (n as f64 * core::f64::consts::PI / degree).sqrt();
    let mut rng = SimRng::new(seed);
    topology::connected_random(n, area, area, spacing, &mut rng, 2000)
        .expect("connected placement within attempt budget")
}

// ----------------------------------------------------------------------
// E1 — routing convergence time vs. network size and topology
// ----------------------------------------------------------------------

/// E1 (Figure A): time until every node has a route to every other node,
/// as a function of network size, for line / grid / random topologies.
/// With `--seeds N` each cell is replicated (random placements and hello
/// jitter differ per seed) and reported as mean ± sd.
#[must_use]
pub fn e1_convergence(opt: &ExpOptions) -> ExpTable {
    let sizes: &[usize] = if opt.quick {
        &[2, 4]
    } else {
        &[2, 4, 8, 12, 16, 20, 24]
    };
    let spacing = default_spacing();
    let mut table = ExpTable::new(
        "E1 — routing convergence time vs. network size (hello = 20 s)",
        &[
            "topology",
            "nodes",
            "diameter(hops)",
            "convergence",
            "hellos sent",
        ],
    );
    let cells: Vec<(usize, &str)> = sizes
        .iter()
        .flat_map(|&n| ["line", "grid", "random"].map(|t| (n, t)))
        .collect();
    let seeds = opt.seed_set();
    let stats = crate::sweep::sweep(&cells, &seeds, opt.jobs, |&(n, topo), seed| {
        let positions = match topo {
            "line" => topology::line(n, spacing),
            "grid" => {
                let side = (n as f64).sqrt().ceil() as usize;
                let mut g = topology::grid(side, side.max(1), spacing);
                g.truncate(n);
                g
            }
            _ => random_positions(n, spacing, seed ^ n as u64),
        };
        let diameter = graph_diameter(&positions, spacing * 1.05);
        let mut runner = NetworkBuilder::mesh(positions, seed).build();
        let converged =
            runner.run_until_converged(Duration::from_secs(2), Duration::from_secs(3600));
        let hellos: u64 = (0..runner.len())
            .map(|i| runner.mesh_node(i).unwrap().stats().hellos_sent)
            .sum();
        vec![
            ("diameter", Some(diameter as f64)),
            ("convergence", converged.map(|d| d.as_secs_f64())),
            ("hellos", Some(hellos as f64)),
        ]
    });
    for (&(n, topo), cell) in cells.iter().zip(&stats) {
        let convergence = match cell.get("convergence") {
            None => "timeout".to_string(),
            Some(s) if s.n < seeds.len() => {
                format!(
                    "{} [{}/{} converged]",
                    s.fmt_pm(fmt_secs_f),
                    s.n,
                    seeds.len()
                )
            }
            Some(s) => s.fmt_pm(fmt_secs_f),
        };
        table.push_row(vec![
            topo.to_string(),
            n.to_string(),
            fmt_opt(cell.get("diameter"), |v| format!("{v:.0}")),
            convergence,
            fmt_opt(cell.get("hellos"), |v| format!("{v:.0}")),
        ]);
    }
    table
}

/// Hop diameter of the geometric graph (longest shortest path).
fn graph_diameter(positions: &[lora_phy::propagation::Position], range: f64) -> usize {
    let n = positions.len();
    let mut best = 0;
    for s in 0..n {
        let mut dist = vec![usize::MAX; n];
        dist[s] = 0;
        let mut frontier = vec![s];
        while let Some(i) = frontier.pop() {
            for j in 0..n {
                if dist[j] == usize::MAX && positions[i].distance(&positions[j]) <= range {
                    dist[j] = dist[i] + 1;
                    frontier.push(j);
                }
            }
        }
        best = best.max(
            dist.iter()
                .copied()
                .filter(|&d| d != usize::MAX)
                .max()
                .unwrap_or(0),
        );
    }
    best
}

// ----------------------------------------------------------------------
// E2 — routing overhead vs. hello interval
// ----------------------------------------------------------------------

/// E2 (Figure B): airtime consumed by routing broadcasts as a function of
/// the hello interval (3×3 grid, no data traffic).
#[must_use]
pub fn e2_overhead(opt: &ExpOptions) -> ExpTable {
    let intervals: &[u64] = if opt.quick {
        &[30, 120]
    } else {
        &[30, 60, 120, 240, 480]
    };
    let horizon = Duration::from_secs(if opt.quick { 600 } else { 3600 });
    let spacing = default_spacing();
    let mut table = ExpTable::new(
        "E2 — routing overhead vs. hello interval (3×3 grid, no data)",
        &[
            "hello interval",
            "frames",
            "airtime",
            "channel util",
            "convergence",
        ],
    );
    for &secs in intervals {
        let mut runner = NetworkBuilder::mesh(topology::grid(3, 3, spacing), opt.seed)
            .protocol(ProtocolChoice::Mesh {
                hello_interval: Duration::from_secs(secs),
                route_timeout: Duration::from_secs(secs * 6),
            })
            .build();
        let converged = runner.run_until_converged(Duration::from_secs(2), horizon);
        runner.run_until(horizon);
        let m = runner.phy_metrics();
        table.push_row(vec![
            format!("{secs} s"),
            m.frames_transmitted.to_string(),
            fmt_secs(m.total_airtime),
            fmt_pct(m.total_airtime.as_secs_f64() / horizon.as_secs_f64()),
            converged.map_or("timeout".into(), fmt_secs),
        ]);
    }
    table
}

// ----------------------------------------------------------------------
// E3 — multi-hop delivery on a line
// ----------------------------------------------------------------------

/// E3 (Table I): packet delivery ratio over 1–7 hops on a line of
/// marginal links (grey-zone reception enabled), replicated across
/// seeds and reported as mean ± standard deviation.
#[must_use]
pub fn e3_pdr_vs_hops(opt: &ExpOptions) -> ExpTable {
    let max_hops = if opt.quick { 2 } else { 7 };
    let packets = if opt.quick { 6 } else { 30 };
    let seeds = opt.seed_set_or(if opt.quick { 2 } else { 5 });
    let mut table = ExpTable::new(
        "E3 — delivery ratio vs. hop count (line, marginal links; mean ± sd over seeds)",
        &["hops", "sent", "PDR", "mean latency"],
    );
    let cells: Vec<usize> = (1..=max_hops).collect();
    let stats = crate::sweep::sweep(&cells, &seeds, opt.jobs, |&hops, seed| {
        let mut sim = SimConfig::default();
        sim.rf.grey_zone = true;
        // ~88 % of range: a few dB of margin — good but lossy links.
        let spacing = topology::radio_range_m(&sim.rf) * 0.88;
        let n = hops + 1;
        let mut runner = NetworkBuilder::mesh(topology::line(n, spacing), seed)
            .sim_config(sim)
            .build();
        runner.run_until_converged(Duration::from_secs(5), Duration::from_secs(1800));
        let start = runner.now() + Duration::from_secs(5);
        runner.apply(&workload::periodic(
            0,
            Target::Node(n - 1),
            16,
            start,
            Duration::from_secs(10),
            packets,
        ));
        runner.run_until(start + Duration::from_secs(10 * packets as u64 + 60));
        let report = runner.report();
        vec![
            ("sent", Some(report.sent as f64)),
            ("pdr", report.pdr()),
            (
                "lat_ms",
                report.mean_latency().map(|d| d.as_secs_f64() * 1000.0),
            ),
        ]
    });
    for (hops, cell) in cells.iter().zip(&stats) {
        table.push_row(vec![
            hops.to_string(),
            format!("{:.0}", cell.total("sent")),
            fmt_opt(cell.get("pdr"), fmt_pct),
            fmt_opt(cell.get("lat_ms"), |v| format!("{v:.0} ms")),
        ]);
    }
    table
}

// ----------------------------------------------------------------------
// E4 — end-to-end latency vs. hops × spreading factor
// ----------------------------------------------------------------------

/// E4 (Figure C): end-to-end latency across 1–5 hops for SF7 / SF9 /
/// SF12 (clean links; latency is driven by time-on-air and CSMA).
#[must_use]
pub fn e4_latency(opt: &ExpOptions) -> ExpTable {
    let sfs: &[SpreadingFactor] = if opt.quick {
        &[SpreadingFactor::Sf7, SpreadingFactor::Sf12]
    } else {
        &[
            SpreadingFactor::Sf7,
            SpreadingFactor::Sf9,
            SpreadingFactor::Sf12,
        ]
    };
    let hop_counts: &[usize] = if opt.quick { &[1, 3] } else { &[1, 2, 3, 4, 5] };
    let packets = if opt.quick { 5 } else { 20 };
    let mut table = ExpTable::new(
        "E4 — end-to-end latency vs. hops × spreading factor (16-byte payload)",
        &["SF", "hops", "PDR", "mean latency", "p95 latency"],
    );
    for &sf in sfs {
        let mut sim = SimConfig::default();
        sim.rf.modulation = LoRaModulation::new(sf, Bandwidth::Khz125, CodingRate::Cr4_7);
        let spacing = topology::radio_range_m(&sim.rf) * 0.8;
        for &hops in hop_counts {
            let n = hops + 1;
            let mut runner = NetworkBuilder::mesh(topology::line(n, spacing), opt.seed)
                .sim_config(sim.clone())
                .build();
            runner
                .run_until_converged(Duration::from_secs(5), Duration::from_secs(3600))
                .expect("clean links must converge");
            let start = runner.now() + Duration::from_secs(5);
            runner.apply(&workload::periodic(
                0,
                Target::Node(n - 1),
                16,
                start,
                Duration::from_secs(20),
                packets,
            ));
            runner.run_until(start + Duration::from_secs(20 * packets as u64 + 120));
            let report = runner.report();
            table.push_row(vec![
                format!("SF{}", sf.value()),
                hops.to_string(),
                report.pdr().map_or("-".into(), fmt_pct),
                report
                    .mean_latency()
                    .map_or("-".into(), crate::report::fmt_ms),
                report
                    .latency_percentile(0.95)
                    .map_or("-".into(), crate::report::fmt_ms),
            ]);
        }
    }
    table
}

// ----------------------------------------------------------------------
// E5 — LoRaMesher vs. flooding vs. star
// ----------------------------------------------------------------------

/// E5 (Figure D): delivery ratio and airtime cost of the three protocols
/// on the same random topologies with the same all-to-one workload.
/// With `--seeds N`, each (size, protocol) cell is replicated on N
/// placements/schedules and reported as mean ± sd — the per-seed runs
/// are sharded across `--jobs` worker threads.
#[must_use]
pub fn e5_protocol_comparison(opt: &ExpOptions) -> ExpTable {
    let sizes: &[usize] = if opt.quick {
        &[4, 8]
    } else {
        &[4, 8, 12, 16, 20]
    };
    let reports = if opt.quick { 3 } else { 5 };
    let spacing = default_spacing();
    let mut table = ExpTable::new(
        "E5 — protocol comparison (all-to-one reports on random topologies)",
        &[
            "nodes", "protocol", "sent", "PDR", "airtime", "frames", "dupes",
        ],
    );
    let protocols: Vec<(&str, ProtocolChoice)> = [
        ("mesh", ProtocolChoice::mesh_fast()),
        ("flooding", ProtocolChoice::Flooding { ttl: 7 }),
        ("star", ProtocolChoice::Star { gateway: 0 }),
    ]
    .into_iter()
    .filter(|(_, p)| protocol_selected(opt, p))
    .collect();
    let cells: Vec<(usize, &str, ProtocolChoice)> = sizes
        .iter()
        .flat_map(|&n| protocols.iter().map(move |(name, p)| (n, *name, *p)))
        .collect();
    let seeds = opt.seed_set();
    let stats = crate::sweep::sweep(&cells, &seeds, opt.jobs, |(n, _, protocol), seed| {
        let n = *n;
        // All protocols of a (size, seed) cell share the placement, so
        // the comparison is paired per replication.
        let positions = random_positions(n, spacing, seed ^ (n as u64) << 8);
        let mut runner = NetworkBuilder::mesh(positions, seed)
            .protocol(*protocol)
            .shards(opt.shards)
            .threads(opt.threads)
            .rng_streams(opt.rng_streams)
            .build();
        // Identical warm-up for all protocols (mesh uses it to
        // converge; the baselines are simply idle).
        let start = Duration::from_secs(300);
        runner.run_until(start);
        runner.apply(&workload::all_to_one(
            n,
            0,
            16,
            start,
            Duration::from_secs(60),
            reports,
        ));
        runner.run_until(start + Duration::from_secs(60 * reports as u64 + 120));
        let report = runner.report();
        vec![
            ("sent", Some(report.sent as f64)),
            ("pdr", report.pdr()),
            ("airtime", Some(report.total_airtime.as_secs_f64())),
            ("frames", Some(report.frames_transmitted as f64)),
            ("dupes", Some(report.duplicates as f64)),
        ]
    });
    for ((n, name, _), cell) in cells.iter().zip(&stats) {
        table.push_row(vec![
            n.to_string(),
            (*name).to_string(),
            fmt_opt(cell.get("sent"), |v| format!("{v:.0}")),
            fmt_opt(cell.get("pdr"), fmt_pct),
            fmt_opt(cell.get("airtime"), fmt_secs_f),
            fmt_opt(cell.get("frames"), |v| format!("{v:.0}")),
            fmt_opt(cell.get("dupes"), |v| format!("{v:.0}")),
        ]);
    }
    table
}

// ----------------------------------------------------------------------
// E6 — reliable large-payload goodput
// ----------------------------------------------------------------------

/// E6 (Table II): completion time and goodput of the reliable transfer
/// service vs. payload size, over 1 and 2 hops.
#[must_use]
pub fn e6_reliable_goodput(opt: &ExpOptions) -> ExpTable {
    let sizes: &[usize] = if opt.quick {
        &[128, 1024]
    } else {
        &[128, 512, 2048, 8192]
    };
    let hop_cases: &[usize] = if opt.quick { &[1] } else { &[1, 2] };
    let spacing = default_spacing();
    let mut table = ExpTable::new(
        "E6 — reliable transfer: goodput vs. payload size",
        &["hops", "payload", "fragments", "completion", "goodput"],
    );
    for &hops in hop_cases {
        for &size in sizes {
            let n = hops + 1;
            let mut runner = NetworkBuilder::mesh(topology::line(n, spacing), opt.seed).build();
            runner
                .run_until_converged(Duration::from_secs(5), Duration::from_secs(1800))
                .expect("clean links converge");
            let at = runner.now() + Duration::from_secs(1);
            runner.schedule(workload::bulk(0, n - 1, size, at));
            runner.run_until(at + Duration::from_secs(1800));
            let report = runner.report();
            let frags = size.div_ceil(codec::MAX_FRAG_PAYLOAD);
            let (completion, goodput) = match report.reliable_latencies.first() {
                Some(d) => (fmt_secs(*d), fmt_rate(size as f64 / d.as_secs_f64())),
                None => ("failed".into(), "-".into()),
            };
            table.push_row(vec![
                hops.to_string(),
                format!("{size} B"),
                frags.to_string(),
                completion,
                goodput,
            ]);
        }
    }
    table
}

// ----------------------------------------------------------------------
// E7 — route repair after node failure
// ----------------------------------------------------------------------

/// E7 (Figure E): time to repair an end-to-end route after the relay it
/// uses dies, as a function of the hello interval (diamond topology with
/// a redundant relay).
#[must_use]
pub fn e7_route_repair(opt: &ExpOptions) -> ExpTable {
    let intervals: &[u64] = if opt.quick { &[10] } else { &[10, 20, 40] };
    let mut table = ExpTable::new(
        "E7 — route repair time after relay failure (diamond topology)",
        &[
            "hello interval",
            "route timeout",
            "repair time",
            "detour metric",
        ],
    );
    let spacing = default_spacing();
    for &secs in intervals {
        // Diamond: 0 -(1|2)- 3, with 1 and 2 both reaching 0 and 3.
        let d = spacing * 0.9;
        let positions = vec![
            lora_phy::propagation::Position::new(0.0, 0.0),
            lora_phy::propagation::Position::new(d * 0.85, d * 0.5),
            lora_phy::propagation::Position::new(d * 0.85, -d * 0.5),
            lora_phy::propagation::Position::new(d * 1.7, 0.0),
        ];
        let route_timeout = Duration::from_secs(secs * 6);
        let mut runner = NetworkBuilder::mesh(positions, opt.seed)
            .protocol(ProtocolChoice::Mesh {
                hello_interval: Duration::from_secs(secs),
                route_timeout,
            })
            .build();
        runner
            .run_until_converged(Duration::from_secs(2), Duration::from_secs(3600))
            .expect("diamond converges");
        let dst = Runner::address_of(3);
        let relay_in_use = runner
            .mesh_node(0)
            .unwrap()
            .routing_table()
            .next_hop(dst)
            .expect("route exists");
        // Kill the relay node 0 currently routes through.
        let victim = usize::from(relay_in_use.value()) - 1;
        let kill_at = runner.now() + Duration::from_secs(1);
        let victim_id = runner.id(victim);
        runner.sim_mut().schedule_kill(kill_at, victim_id);
        // Sample until the route is re-established through the other relay.
        let mut repaired = None;
        let deadline = kill_at + route_timeout * 3;
        while runner.now() < deadline {
            runner.run_for(Duration::from_secs(1));
            let hop = runner.mesh_node(0).unwrap().routing_table().next_hop(dst);
            if let Some(h) = hop {
                if h != relay_in_use {
                    repaired = Some(runner.now() - kill_at);
                    break;
                }
            }
        }
        let metric = runner
            .mesh_node(0)
            .unwrap()
            .routing_table()
            .route(dst)
            .map_or("-".into(), |r| r.metric.to_string());
        table.push_row(vec![
            format!("{secs} s"),
            fmt_secs(route_timeout),
            repaired.map_or("not repaired".into(), fmt_secs),
            metric,
        ]);
    }
    table
}

// ----------------------------------------------------------------------
// E8 — duty-cycle compliance under load
// ----------------------------------------------------------------------

/// E8 (Table III): offered vs. achieved throughput under the EU868 1 %
/// duty cycle (one sender, one receiver, 50-byte payloads).
#[must_use]
pub fn e8_duty_cycle(opt: &ExpOptions) -> ExpTable {
    let intervals: &[f64] = if opt.quick {
        &[30.0, 1.0]
    } else {
        &[60.0, 30.0, 15.0, 10.0, 5.0, 2.0]
    };
    let horizon = Duration::from_secs(if opt.quick { 1200 } else { 7200 });
    let spacing = default_spacing();
    let mut table = ExpTable::new(
        "E8 — EU868 1 % duty cycle: offered vs. achieved (50-byte frames)",
        &[
            "send interval",
            "offered/hr",
            "delivered/hr",
            "deferrals",
            "dropped",
            "utilisation",
        ],
    );
    for &secs in intervals {
        let mut runner = NetworkBuilder::mesh(topology::line(2, spacing), opt.seed)
            .protocol(ProtocolChoice::Mesh {
                // Long hello interval so data dominates the budget.
                hello_interval: Duration::from_secs(600),
                route_timeout: Duration::from_secs(3600),
            })
            .region(Region::Eu868)
            .build();
        runner
            .run_until_converged(Duration::from_secs(5), Duration::from_secs(1800))
            .expect("pair converges");
        let start = runner.now() + Duration::from_secs(5);
        let count = ((horizon.as_secs_f64() - start.as_secs_f64()) / secs) as usize;
        runner.apply(&workload::periodic(
            0,
            Target::Node(1),
            50,
            start,
            Duration::from_secs_f64(secs),
            count,
        ));
        runner.run_until(horizon);
        let report = runner.report();
        let stats = runner.mesh_node(0).unwrap().stats();
        let hours = (horizon - start).as_secs_f64() / 3600.0;
        table.push_row(vec![
            format!("{secs} s"),
            format!("{:.0}", report.sent as f64 / hours),
            format!("{:.0}", report.delivered as f64 / hours),
            stats.duty_cycle_deferrals.to_string(),
            (report.sent - report.delivered).to_string(),
            fmt_pct(report.channel_utilisation()),
        ]);
    }
    table
}

// ----------------------------------------------------------------------
// E9 — routing state scalability
// ----------------------------------------------------------------------

/// E9 (Figure F): routing-table size (entries and Hello bytes) vs.
/// network size.
#[must_use]
pub fn e9_state_size(opt: &ExpOptions) -> ExpTable {
    let sizes: &[usize] = if opt.quick {
        &[4, 8]
    } else {
        &[4, 8, 16, 32, 48]
    };
    let spacing = default_spacing();
    let mut table = ExpTable::new(
        "E9 — routing state vs. network size",
        &["nodes", "entries/node", "hello payload", "hello airtime"],
    );
    for &n in sizes {
        let positions = random_positions(n, spacing, opt.seed ^ (n as u64) << 16);
        let mut runner = NetworkBuilder::mesh(positions, opt.seed).build();
        runner.run_until_converged(Duration::from_secs(5), Duration::from_secs(3600));
        let entries: usize = (0..n)
            .map(|i| runner.mesh_node(i).unwrap().routing_table().len())
            .sum();
        let mean_entries = entries as f64 / n as f64;
        let hello_len =
            codec::COMMON_HEADER_LEN + 1 + mean_entries.round() as usize * codec::ROUTE_ENTRY_LEN;
        let modulation = LoRaModulation::default();
        table.push_row(vec![
            n.to_string(),
            format!("{mean_entries:.1}"),
            format!("{hello_len} B"),
            crate::report::fmt_ms(modulation.time_on_air(hello_len.min(codec::MAX_FRAME_LEN))),
        ]);
    }
    table
}

// ----------------------------------------------------------------------
// E10 — wire-format overhead
// ----------------------------------------------------------------------

/// E10 (Table IV): encoded size of each packet kind (headers only and
/// with a representative payload).
#[must_use]
pub fn e10_wire_format() -> ExpTable {
    let src = Address::new(0x0001);
    let dst = Address::new(0x0002);
    let fwd = Forwarding { via: dst, ttl: 10 };
    let mut table = ExpTable::new(
        "E10 — wire format: per-kind encoded sizes",
        &["kind", "header overhead", "example", "encoded size"],
    );
    let samples: Vec<(&str, usize, &str, Packet)> = vec![
        (
            "HELLO",
            codec::COMMON_HEADER_LEN + 1,
            "4 routes",
            Packet::Hello {
                src,
                id: 0,
                role: 0,
                entries: (0..4)
                    .map(|i| RouteEntry {
                        address: Address::new(10 + i),
                        metric: 1,
                        role: 0,
                    })
                    .collect(),
            },
        ),
        (
            "DATA",
            codec::DATA_OVERHEAD,
            "16-byte payload",
            Packet::Data {
                dst,
                src,
                id: 0,
                fwd,
                payload: vec![0; 16],
            },
        ),
        (
            "SYNC",
            codec::DATA_OVERHEAD + 7,
            "fixed",
            Packet::Sync {
                dst,
                src,
                id: 0,
                fwd,
                seq: 0,
                frag_count: 8,
                total_len: 1936,
            },
        ),
        (
            "FRAG",
            codec::FRAG_OVERHEAD,
            "242-byte fragment",
            Packet::Frag {
                dst,
                src,
                id: 0,
                fwd,
                seq: 0,
                index: 0,
                data: vec![0; codec::MAX_FRAG_PAYLOAD],
            },
        ),
        (
            "ACK",
            codec::DATA_OVERHEAD + 3,
            "fixed",
            Packet::Ack {
                dst,
                src,
                id: 0,
                fwd,
                seq: 0,
                index: SYNC_ACK_INDEX,
            },
        ),
        (
            "LOST",
            codec::DATA_OVERHEAD + 1,
            "3 missing",
            Packet::Lost {
                dst,
                src,
                id: 0,
                fwd,
                seq: 0,
                missing: vec![1, 2, 3],
            },
        ),
    ];
    for (name, overhead, example, packet) in samples {
        let encoded = codec::encode(&packet).expect("valid sample");
        table.push_row(vec![
            name.to_string(),
            format!("{overhead} B"),
            example.to_string(),
            format!("{} B", encoded.len()),
        ]);
    }
    table
}

// ----------------------------------------------------------------------
// E11 — mobility
// ----------------------------------------------------------------------

/// E11 (extension): a mobile node roaming a static mesh, reporting to a
/// fixed sink. Delivery degrades with speed as routes to the mover go
/// stale between hello rounds; the hello interval bounds how fast a
/// mesh can track a moving node.
#[must_use]
pub fn e11_mobility(opt: &ExpOptions) -> ExpTable {
    use radio_sim::mobility::Mobility;
    let speeds: &[f64] = if opt.quick {
        &[0.0, 10.0]
    } else {
        &[0.0, 1.0, 3.0, 10.0, 20.0]
    };
    let reports = if opt.quick { 10 } else { 40 };
    let spacing = default_spacing();
    let mut table = ExpTable::new(
        "E11 — mobile reporter roaming a 3×3 mesh (hello = 10 s)",
        &["speed", "sent", "delivered", "PDR", "mean latency"],
    );
    let seeds = opt.seed_set();
    let stats = crate::sweep::sweep(speeds, &seeds, opt.jobs, |&speed, seed| {
        // Static 3×3 grid plus one mobile node starting at the centre.
        let mut positions = topology::grid(3, 3, spacing);
        let centre = positions[4];
        positions.push(lora_phy::propagation::Position::new(
            centre.x + spacing * 0.3,
            centre.y + spacing * 0.3,
        ));
        let mut mobility = vec![Mobility::Static; 9];
        mobility.push(if speed == 0.0 {
            Mobility::Static
        } else {
            Mobility::RandomWaypoint {
                width_m: spacing * 2.0,
                height_m: spacing * 2.0,
                min_speed: speed,
                max_speed: speed,
                pause: Duration::from_secs(2),
            }
        });
        let mut runner = NetworkBuilder::mesh(positions, seed)
            .protocol(ProtocolChoice::Mesh {
                hello_interval: Duration::from_secs(10),
                route_timeout: Duration::from_secs(60),
            })
            .mobility(mobility)
            .build();
        runner.run_until(Duration::from_secs(120));
        let start = Duration::from_secs(125);
        runner.apply(&workload::periodic(
            9,
            Target::Node(0),
            16,
            start,
            Duration::from_secs(15),
            reports,
        ));
        runner.run_until(start + Duration::from_secs(15 * reports as u64 + 60));
        let report = runner.report();
        vec![
            ("sent", Some(report.sent as f64)),
            ("delivered", Some(report.delivered as f64)),
            ("pdr", report.pdr()),
            (
                "lat_ms",
                report.mean_latency().map(|d| d.as_secs_f64() * 1000.0),
            ),
        ]
    });
    for (&speed, cell) in speeds.iter().zip(&stats) {
        table.push_row(vec![
            format!("{speed} m/s"),
            fmt_opt(cell.get("sent"), |v| format!("{v:.0}")),
            fmt_opt(cell.get("delivered"), |v| format!("{v:.0}")),
            fmt_opt(cell.get("pdr"), fmt_pct),
            fmt_opt(cell.get("lat_ms"), |v| format!("{v:.1} ms")),
        ]);
    }
    table
}

// ----------------------------------------------------------------------
// E12 — airtime fairness
// ----------------------------------------------------------------------

/// Jain's fairness index over a set of non-negative loads: 1.0 = all
/// equal, 1/n = one node carries everything.
#[must_use]
pub fn jain_index(loads: &[f64]) -> f64 {
    let n = loads.len() as f64;
    let sum: f64 = loads.iter().sum();
    let sum_sq: f64 = loads.iter().map(|x| x * x).sum();
    if sum_sq == 0.0 {
        1.0
    } else {
        sum * sum / (n * sum_sq)
    }
}

/// E12 (extension): who pays for the relaying? Under an all-to-one
/// workload the mesh concentrates airtime on the shortest-path tree's
/// inner nodes, while flooding spreads it across everyone. Jain's
/// fairness index over per-node transmit airtime quantifies the
/// difference — relevant for battery budgeting (the busiest node dies
/// first).
#[must_use]
pub fn e12_fairness(opt: &ExpOptions) -> ExpTable {
    let sizes: &[usize] = if opt.quick { &[8] } else { &[8, 12, 16, 20] };
    let reports = if opt.quick { 3 } else { 6 };
    let spacing = default_spacing();
    let mut table = ExpTable::new(
        "E12 — airtime fairness under all-to-one load (Jain's index; 1.0 = equal)",
        &[
            "nodes",
            "protocol",
            "fairness",
            "max/mean airtime",
            "busiest node",
        ],
    );
    let protocols = [
        ("mesh", ProtocolChoice::mesh_fast()),
        ("flooding", ProtocolChoice::Flooding { ttl: 7 }),
    ];
    let cells: Vec<(usize, &str, ProtocolChoice)> = sizes
        .iter()
        .flat_map(|&n| protocols.iter().map(move |(name, p)| (n, *name, *p)))
        .collect();
    let seeds = opt.seed_set();
    let stats = crate::sweep::sweep(&cells, &seeds, opt.jobs, |(n, _, protocol), seed| {
        let n = *n;
        let positions = random_positions(n, spacing, seed ^ (n as u64) << 40);
        let mut runner = NetworkBuilder::mesh(positions, seed)
            .protocol(*protocol)
            .shards(opt.shards)
            .threads(opt.threads)
            .rng_streams(opt.rng_streams)
            .build();
        let start = Duration::from_secs(300);
        runner.run_until(start);
        // Measure only the traffic phase: snapshot airtime at start.
        let baseline: Vec<f64> = (0..n)
            .map(|i| {
                runner
                    .phy_metrics()
                    .node_counters(runner.id(i))
                    .airtime
                    .as_secs_f64()
            })
            .collect();
        runner.apply(&workload::all_to_one(
            n,
            0,
            16,
            start,
            Duration::from_secs(30),
            reports,
        ));
        runner.run_until(start + Duration::from_secs(30 * reports as u64 + 120));
        let loads: Vec<f64> = (0..n)
            .map(|i| {
                let total = runner
                    .phy_metrics()
                    .node_counters(runner.id(i))
                    .airtime
                    .as_secs_f64();
                (total - baseline[i]).max(0.0)
            })
            .collect();
        let mean = loads.iter().sum::<f64>() / n as f64;
        let (busiest, max) = loads
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, v)| (i, *v))
            .unwrap_or((0, 0.0));
        vec![
            ("fairness", Some(jain_index(&loads))),
            ("peak", Some(if mean > 0.0 { max / mean } else { 0.0 })),
            ("busiest", Some(busiest as f64)),
        ]
    });
    for ((n, name, _), cell) in cells.iter().zip(&stats) {
        // The busiest node is a discrete identity, not an average: name
        // it when the replications agree, otherwise say so.
        let busiest = match cell.get("busiest") {
            Some(s) if s.min == s.max => format!("node {:.0}", s.min),
            Some(_) => "varies".to_string(),
            None => "-".to_string(),
        };
        table.push_row(vec![
            n.to_string(),
            (*name).to_string(),
            fmt_opt(cell.get("fairness"), |v| format!("{v:.2}")),
            fmt_opt(cell.get("peak"), |v| format!("{v:.1}x")),
            busiest,
        ]);
    }
    table
}

// ----------------------------------------------------------------------
// Ablations — the design choices DESIGN.md calls out
// ----------------------------------------------------------------------

/// A1: listen-before-talk vs. pure ALOHA under *audible* contention —
/// a dense single-hop cluster where every node hears every other, so
/// CAD can actually see the channel. (Hidden-terminal contention, which
/// CAD cannot see, is what A2's capture effect addresses.)
#[must_use]
pub fn a1_csma_ablation(opt: &ExpOptions) -> ExpTable {
    let horizon = Duration::from_secs(if opt.quick { 300 } else { 1200 });
    let mut table = ExpTable::new(
        "A1 — CSMA (CAD + backoff) vs. pure ALOHA (single-hop cluster, Poisson load)",
        &["MAC", "sent", "PDR", "collisions", "rx aborted by tx"],
    );
    for (name, csma) in [("CSMA", true), ("ALOHA", false)] {
        // Hub at the centre, 6 reporters on a tight ring: all audible.
        let mut runner = NetworkBuilder::mesh(topology::star(7, 60.0), opt.seed)
            .protocol(ProtocolChoice::Mesh {
                hello_interval: Duration::from_secs(60),
                route_timeout: Duration::from_secs(360),
            })
            .csma(csma)
            .build();
        let start = Duration::from_secs(30);
        runner.run_until(start);
        // Poisson arrivals, ~10 % offered channel load in aggregate.
        let mut rng = SimRng::new(opt.seed ^ 0xA1);
        let mut events = Vec::new();
        for sender in 1..7usize {
            events.extend(workload::poisson(
                sender,
                Target::Node(0),
                32,
                start,
                Duration::from_secs(5),
                horizon,
                &mut rng,
            ));
        }
        events.sort_by_key(|e| e.at);
        runner.apply(&events);
        runner.run_until(horizon + Duration::from_secs(30));
        let report = runner.report();
        let m = runner.phy_metrics();
        table.push_row(vec![
            name.to_string(),
            report.sent.to_string(),
            report.pdr().map_or("-".into(), fmt_pct),
            report.collisions.to_string(),
            m.rx_aborted_by_tx.to_string(),
        ]);
    }
    table
}

/// A2: the capture effect on vs. off. With capture disabled every
/// overlap destroys both frames; with it, the stronger frame survives —
/// the simulator models the 6 dB same-SF capture threshold measured for
/// SX127x receivers.
#[must_use]
pub fn a2_capture_ablation(opt: &ExpOptions) -> ExpTable {
    let reports = if opt.quick { 4 } else { 12 };
    let spacing = default_spacing();
    let mut table = ExpTable::new(
        "A2 — capture effect on vs. off (3×3 grid, synchronised bursts: hidden-terminal contention)",
        &["capture", "sent", "PDR", "collisions"],
    );
    for (name, threshold) in [("6 dB (SX127x)", 6.0), ("disabled", 1.0e9)] {
        let mut sim = SimConfig::default();
        sim.rf.capture_threshold_db = threshold;
        let mut runner = NetworkBuilder::mesh(topology::grid(3, 3, spacing), opt.seed)
            .sim_config(sim)
            .protocol(ProtocolChoice::Mesh {
                hello_interval: Duration::from_secs(20),
                route_timeout: Duration::from_secs(120),
            })
            .build();
        runner.run_until(Duration::from_secs(200));
        let start = Duration::from_secs(200);
        for round in 0..reports {
            for sender in 1..9usize {
                runner.schedule(crate::workload::TrafficEvent {
                    at: start
                        + Duration::from_secs(20 * round as u64)
                        + Duration::from_millis(sender as u64 * 100),
                    from: sender,
                    to: Target::Node(0),
                    payload_len: 16,
                    reliable: false,
                });
            }
        }
        runner.run_until(start + Duration::from_secs(20 * reports as u64 + 120));
        let report = runner.report();
        table.push_row(vec![
            name.to_string(),
            report.sent.to_string(),
            report.pdr().map_or("-".into(), fmt_pct),
            report.collisions.to_string(),
        ]);
    }
    table
}

/// A3: hello jitter on vs. off. Without jitter, co-booted nodes emit
/// their routing broadcasts on the same schedule and keep colliding;
/// convergence suffers. The ±10 % jitter is cheap and load-bearing.
#[must_use]
pub fn a3_jitter_ablation(opt: &ExpOptions) -> ExpTable {
    let mut table = ExpTable::new(
        "A3 — hello jitter on vs. off (3×3 grid, co-booted)",
        &["jitter", "convergence", "collisions", "hello frames"],
    );
    let spacing = default_spacing();
    for (name, jitter) in [("±10 %", true), ("none", false)] {
        let mut runner = NetworkBuilder::mesh(topology::grid(3, 3, spacing), opt.seed)
            .protocol(ProtocolChoice::Mesh {
                hello_interval: Duration::from_secs(20),
                route_timeout: Duration::from_secs(120),
            })
            .hello_jitter(jitter)
            .build();
        let converged =
            runner.run_until_converged(Duration::from_secs(2), Duration::from_secs(1800));
        let m = runner.phy_metrics();
        table.push_row(vec![
            name.to_string(),
            converged.map_or("timeout".into(), fmt_secs),
            m.lost_collision.to_string(),
            m.frames_transmitted.to_string(),
        ]);
    }
    table
}

/// A4: SNR tie-breaking (the LoRaMesher v2 routing extension) on vs.
/// off. A diamond offers two equal-hop-count relays: one with strong
/// links, one sitting at the edge of radio range (grey-zone reception).
/// Hop-count-only routing picks whichever relay's hello arrived first;
/// the SNR tie-break reliably picks the strong one.
#[must_use]
pub fn a4_snr_tiebreak(opt: &ExpOptions) -> ExpTable {
    let seeds = opt.seed_set_or(if opt.quick { 3 } else { 10 });
    let packets = if opt.quick { 10 } else { 20 };
    let mut table = ExpTable::new(
        "A4 — SNR route tie-break on vs. off (diamond with a strong and a marginal relay)",
        &["policy", "runs via strong relay", "sent", "PDR"],
    );
    let mut sim = SimConfig::default();
    sim.rf.grey_zone = true;
    let range = topology::radio_range_m(&sim.rf);
    // Endpoints 1.2 R apart; relay A at the midpoint (0.6 R links,
    // solid), relay B equidistant at 0.95 R links (grey zone).
    let positions = vec![
        lora_phy::propagation::Position::new(0.0, 0.0), // 0: source
        lora_phy::propagation::Position::new(0.6 * range, 0.0), // 1: strong relay
        lora_phy::propagation::Position::new(0.6 * range, 0.7365 * range), // 2: weak relay
        lora_phy::propagation::Position::new(1.2 * range, 0.0), // 3: sink
    ];
    let cells = [("hop count only", false), ("SNR tie-break", true)];
    let stats = crate::sweep::sweep(&cells, &seeds, opt.jobs, |&(_, tiebreak), seed| {
        let mut runner = NetworkBuilder::mesh(positions.clone(), seed)
            .sim_config(sim.clone())
            .protocol(ProtocolChoice::Mesh {
                hello_interval: Duration::from_secs(15),
                route_timeout: Duration::from_secs(90),
            })
            .snr_tiebreak(tiebreak)
            .build();
        runner.run_until(Duration::from_secs(120));
        let start = Duration::from_secs(121);
        runner.apply(&workload::periodic(
            0,
            Target::Node(3),
            16,
            start,
            Duration::from_secs(10),
            packets,
        ));
        runner.run_until(start + Duration::from_secs(10 * packets as u64 + 60));
        let strong = runner
            .mesh_node(0)
            .and_then(|m| m.routing_table().next_hop(Runner::address_of(3)))
            == Some(Runner::address_of(1));
        let report = runner.report();
        vec![
            ("strong", Some(f64::from(u8::from(strong)))),
            ("sent", Some(report.sent as f64)),
            ("delivered", Some(report.delivered as f64)),
        ]
    });
    for ((name, _), cell) in cells.iter().zip(&stats) {
        let sent = cell.total("sent");
        table.push_row(vec![
            (*name).to_string(),
            format!("{:.0}/{}", cell.total("strong"), seeds.len()),
            format!("{sent:.0}"),
            fmt_pct(cell.total("delivered") / sent.max(1.0)),
        ]);
    }
    table
}

// ----------------------------------------------------------------------
// E13 — stack head-to-head at scale: LoRaMesher vs. managed flooding
// ----------------------------------------------------------------------

/// E13: the two first-class stacks of the protocol abstraction compared
/// on identical placements, workloads and seeds — PDR, mean latency and
/// airtime cost as the network grows from 64 to 1024 nodes, under the
/// Meshtastic *LongFast* and *LongSlow* modem presets (the SF7 default
/// the rest of the evaluation uses would be unfair to flooding, whose
/// natural habitat is the long-range presets).
///
/// The workload samples eight unicast flows between nodes spread across
/// the placement rather than all-to-one, so the *offered* load is
/// constant per size and the curves isolate how each protocol's
/// overhead scales: routing broadcasts for LoRaMesher, redundant
/// rebroadcasts for flooding. Every (preset, size, seed) cell shares
/// its placement and schedule across both protocols, so the comparison
/// is paired per replication.
#[must_use]
pub fn e13_stack_head_to_head(opt: &ExpOptions) -> ExpTable {
    let sizes: &[usize] = if opt.quick {
        &[8, 16]
    } else {
        &[64, 256, 1024]
    };
    let messages = if opt.quick { 3 } else { 5 };
    let presets = [
        ("LongFast", LoRaModulation::long_fast()),
        ("LongSlow", LoRaModulation::long_slow()),
    ];
    let protocols: Vec<(&str, ProtocolChoice)> = [
        ("loramesher", ProtocolChoice::mesh_fast()),
        ("flooding", ProtocolChoice::Flooding { ttl: 7 }),
    ]
    .into_iter()
    .filter(|(_, p)| protocol_selected(opt, p))
    .collect();
    let mut table = ExpTable::new(
        "E13 — stack head-to-head (8 sampled unicast flows on random topologies)",
        &[
            "preset",
            "nodes",
            "protocol",
            "sent",
            "PDR",
            "mean latency",
            "airtime",
            "frames",
        ],
    );
    let cells: Vec<(&str, LoRaModulation, usize, &str, ProtocolChoice)> = presets
        .iter()
        .flat_map(|&(pname, m)| {
            let protocols = &protocols;
            sizes.iter().flat_map(move |&n| {
                protocols
                    .iter()
                    .map(move |&(sname, p)| (pname, m, n, sname, p))
            })
        })
        .collect();
    let seeds = opt.seed_set();
    let stats = crate::sweep::sweep(&cells, &seeds, opt.jobs, |cell, seed| {
        let &(_, modulation, n, _, protocol) = cell;
        let mut sim = SimConfig::default();
        sim.rf.modulation = modulation;
        // Density is normalised to the preset's own radio range, so
        // every cell sees a comparable connectivity graph and the sweep
        // varies only scale and protocol.
        let spacing = topology::radio_range_m(&sim.rf) * 0.8;
        let positions = scaled_positions(n, spacing, seed ^ (n as u64) << 8);
        let mut runner = NetworkBuilder::mesh(positions, seed)
            .sim_config(sim)
            .protocol(protocol)
            .shards(opt.shards)
            .threads(opt.threads)
            .rng_streams(opt.rng_streams)
            .build();
        // Identical warm-up for both stacks: LoRaMesher distributes
        // routes, flooding is purely reactive and idles.
        let warmup = Duration::from_secs(if opt.quick { 300 } else { 600 });
        runner.run_until(warmup);
        // Eight staggered flows; the 60 s interval leaves room for
        // LongSlow's multi-second frames.
        let flows = 8.min(n / 2);
        for f in 0..flows {
            let src = f * n / flows;
            let dst = (src + n / 2) % n;
            runner.apply(&workload::periodic(
                src,
                Target::Node(dst),
                16,
                warmup + Duration::from_secs(7 * f as u64),
                Duration::from_secs(60),
                messages,
            ));
        }
        runner.run_until(warmup + Duration::from_secs(60 * messages as u64 + 240));
        let report = runner.report();
        vec![
            ("sent", Some(report.sent as f64)),
            ("pdr", report.pdr()),
            ("latency", report.mean_latency().map(|d| d.as_secs_f64())),
            ("airtime", Some(report.total_airtime.as_secs_f64())),
            ("frames", Some(report.frames_transmitted as f64)),
        ]
    });
    for ((pname, _, n, sname, _), cell) in cells.iter().zip(&stats) {
        table.push_row(vec![
            (*pname).to_string(),
            n.to_string(),
            (*sname).to_string(),
            fmt_opt(cell.get("sent"), |v| format!("{v:.0}")),
            fmt_opt(cell.get("pdr"), fmt_pct),
            fmt_opt(cell.get("latency"), fmt_secs_f),
            fmt_opt(cell.get("airtime"), fmt_secs_f),
            fmt_opt(cell.get("frames"), |v| format!("{v:.0}")),
        ]);
    }
    table
}

/// Runs every experiment, returning the tables in order.
#[must_use]
pub fn all(opt: &ExpOptions) -> Vec<ExpTable> {
    vec![
        e1_convergence(opt),
        e2_overhead(opt),
        e3_pdr_vs_hops(opt),
        e4_latency(opt),
        e5_protocol_comparison(opt),
        e6_reliable_goodput(opt),
        e7_route_repair(opt),
        e8_duty_cycle(opt),
        e9_state_size(opt),
        e10_wire_format(),
        e11_mobility(opt),
        e12_fairness(opt),
        e13_stack_head_to_head(opt),
        a1_csma_ablation(opt),
        a2_capture_ablation(opt),
        a3_jitter_ablation(opt),
        a4_snr_tiebreak(opt),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opt() -> ExpOptions {
        ExpOptions::quick()
    }

    #[test]
    fn e1_produces_rows_for_each_size_and_topology() {
        let t = e1_convergence(&opt());
        assert_eq!(t.rows.len(), 2 * 3);
        // Every quick-size network converges.
        assert!(t.rows.iter().all(|r| r[3] != "timeout"), "{t}");
    }

    #[test]
    fn e2_fewer_hellos_with_longer_interval() {
        let t = e2_overhead(&opt());
        assert_eq!(t.rows.len(), 2);
        let frames: Vec<u64> = t.rows.iter().map(|r| r[1].parse().unwrap()).collect();
        assert!(
            frames[0] > frames[1],
            "30 s interval must send more than 120 s: {t}"
        );
    }

    #[test]
    fn e3_reports_pdr() {
        let t = e3_pdr_vs_hops(&opt());
        assert_eq!(t.rows.len(), 2);
        assert!(t.rows[0][2].contains('%'), "{t}");
        assert!(
            t.rows[0][2].contains('±'),
            "replicated runs report a deviation: {t}"
        );
    }

    #[test]
    fn e4_latency_grows_with_sf() {
        let t = e4_latency(&opt());
        assert_eq!(t.rows.len(), 4);
        // SF7 1-hop mean latency < SF12 1-hop mean latency.
        let parse_ms = |s: &str| -> f64 { s.trim_end_matches(" ms").parse().unwrap() };
        let sf7 = parse_ms(&t.rows[0][3]);
        let sf12 = parse_ms(&t.rows[2][3]);
        assert!(
            sf12 > sf7 * 5.0,
            "SF12 ({sf12} ms) should dwarf SF7 ({sf7} ms)\n{t}"
        );
    }

    #[test]
    fn e5_star_loses_to_mesh_on_multihop_topologies() {
        let t = e5_protocol_comparison(&opt());
        assert_eq!(t.rows.len(), 2 * 3);
        let pct = |s: &str| -> f64 { s.trim_end_matches(" %").parse().unwrap() };
        // On the 8-node network the mesh should beat the star (some nodes
        // are beyond gateway range).
        let mesh8 = pct(&t.rows[3][3]);
        let star8 = pct(&t.rows[5][3]);
        assert!(mesh8 > star8, "mesh {mesh8}% vs star {star8}%\n{t}");
    }

    #[test]
    fn e5_protocol_restriction_runs_one_stack() {
        let mut o = opt();
        o.protocol = Some(ProtocolChoice::Star { gateway: 0 });
        let t = e5_protocol_comparison(&o);
        assert_eq!(t.rows.len(), 2);
        assert!(t.rows.iter().all(|r| r[1] == "star"), "{t}");
    }

    #[test]
    fn e13_covers_presets_sizes_and_both_stacks() {
        let t = e13_stack_head_to_head(&opt());
        assert_eq!(t.rows.len(), 2 * 2 * 2);
        let pct = |s: &str| -> f64 { s.trim_end_matches(" %").parse().unwrap() };
        // Flooding needs no routing warm-up: it delivers on every quick
        // cell, on both presets.
        for row in t.rows.iter().filter(|r| r[2] == "flooding") {
            assert!(pct(&row[4]) > 0.0, "{t}");
        }
    }

    #[test]
    fn e13_protocol_restriction_halves_the_grid() {
        let mut o = opt();
        o.protocol = Some(ProtocolChoice::Flooding { ttl: 7 });
        let t = e13_stack_head_to_head(&o);
        assert_eq!(t.rows.len(), 2 * 2);
        assert!(t.rows.iter().all(|r| r[2] == "flooding"), "{t}");
    }

    #[test]
    fn e6_reports_goodput() {
        let t = e6_reliable_goodput(&opt());
        assert_eq!(t.rows.len(), 2);
        assert!(t.rows.iter().all(|r| r[3] != "failed"), "{t}");
    }

    #[test]
    fn e7_repairs_route() {
        let t = e7_route_repair(&opt());
        assert_eq!(t.rows.len(), 1);
        assert_ne!(t.rows[0][2], "not repaired", "{t}");
    }

    #[test]
    fn e8_saturates_under_duty_cycle() {
        let t = e8_duty_cycle(&opt());
        assert_eq!(t.rows.len(), 2);
        let rate = |r: &Vec<String>| -> f64 { r[2].parse().unwrap() };
        let offered = |r: &Vec<String>| -> f64 { r[1].parse().unwrap() };
        // At 30 s the duty cycle keeps up; at 5 s it cannot.
        let slow = &t.rows[0];
        let fast = &t.rows[1];
        assert!(rate(slow) >= offered(slow) * 0.9, "{t}");
        assert!(rate(fast) < offered(fast) * 0.8, "{t}");
    }

    #[test]
    fn e9_state_grows_linearly() {
        let t = e9_state_size(&opt());
        assert_eq!(t.rows.len(), 2);
        let entries = |r: &Vec<String>| -> f64 { r[1].parse().unwrap() };
        assert!((entries(&t.rows[0]) - 3.0).abs() < 0.5, "{t}");
        assert!((entries(&t.rows[1]) - 7.0).abs() < 0.5, "{t}");
    }

    #[test]
    fn e11_mobility_static_beats_fast() {
        let t = e11_mobility(&opt());
        assert_eq!(t.rows.len(), 2);
        let pct = |s: &str| -> f64 { s.trim_end_matches(" %").parse().unwrap() };
        let static_pdr = pct(&t.rows[0][3]);
        let fast_pdr = pct(&t.rows[1][3]);
        assert!(static_pdr >= fast_pdr, "{t}");
        assert!(static_pdr > 80.0, "static node should deliver well: {t}");
    }

    #[test]
    fn a1_csma_beats_aloha_under_contention() {
        let t = a1_csma_ablation(&opt());
        assert_eq!(t.rows.len(), 2);
        let pct = |s: &str| -> f64 { s.trim_end_matches(" %").parse().unwrap() };
        let csma = pct(&t.rows[0][2]);
        let aloha = pct(&t.rows[1][2]);
        assert!(csma >= aloha, "CSMA {csma}% vs ALOHA {aloha}%\n{t}");
        let collisions = |r: &Vec<String>| -> u64 { r[3].parse().unwrap() };
        assert!(collisions(&t.rows[1]) >= collisions(&t.rows[0]), "{t}");
    }

    #[test]
    fn a2_capture_reduces_collision_losses() {
        let t = a2_capture_ablation(&opt());
        assert_eq!(t.rows.len(), 2);
        let collisions = |r: &Vec<String>| -> u64 { r[3].parse().unwrap() };
        assert!(
            collisions(&t.rows[0]) <= collisions(&t.rows[1]),
            "capture should not increase collisions\n{t}"
        );
    }

    #[test]
    fn a3_jitter_helps_co_booted_networks() {
        let t = a3_jitter_ablation(&opt());
        assert_eq!(t.rows.len(), 2);
        assert_ne!(t.rows[0][1], "timeout", "jittered grid must converge\n{t}");
    }

    #[test]
    fn jain_index_properties() {
        assert!((jain_index(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!((jain_index(&[1.0, 0.0, 0.0]) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
        let mid = jain_index(&[3.0, 1.0, 1.0]);
        assert!(mid > 1.0 / 3.0 && mid < 1.0);
    }

    #[test]
    fn e12_flooding_is_fairer_than_mesh() {
        let t = e12_fairness(&opt());
        assert_eq!(t.rows.len(), 2);
        let fairness = |r: &Vec<String>| -> f64 { r[2].parse().unwrap() };
        assert!(
            fairness(&t.rows[1]) >= fairness(&t.rows[0]) - 0.05,
            "flooding should spread load at least as evenly\n{t}"
        );
    }

    #[test]
    fn a4_snr_tiebreak_picks_strong_relay() {
        let t = a4_snr_tiebreak(&opt());
        assert_eq!(t.rows.len(), 2);
        // With the tie-break on, every run should route via the strong
        // relay.
        let picked = &t.rows[1][1];
        let (won, total) = picked.split_once('/').unwrap();
        assert_eq!(won, total, "tie-break row: {t}");
    }

    #[test]
    fn e10_matches_codec_constants() {
        let t = e10_wire_format();
        assert_eq!(t.rows.len(), 6);
        // DATA with 16-byte payload: 10 + 16 = 26 B.
        assert_eq!(t.rows[1][3], "26 B", "{t}");
        // FRAG at max size hits the PHY limit.
        assert_eq!(t.rows[3][3], "255 B", "{t}");
    }
}
