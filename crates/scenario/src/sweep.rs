//! Parallel multi-seed sweep engine.
//!
//! Every experiment is a *parameter grid* (cells: network sizes,
//! protocols, speeds, …) crossed with a *seed set* (independent
//! replications of each cell). Simulation runs are deterministic pure
//! functions of `(cell, seed)` and share nothing, so the engine shards
//! the flattened `cells × seeds` work list across a [`std::thread`]
//! worker pool and aggregates each cell's per-seed metrics into a
//! [`Summary`] (mean / stddev / min / max / 95 % CI) — turning every
//! single-sample figure of the reproduction into a distribution at
//! `wall-clock ÷ cores` cost, with **no** new dependencies.
//!
//! Determinism is preserved by construction: results are written into
//! per-item slots (never appended in completion order) and reduced in
//! seed order, so any `jobs` count — including 1 — produces *identical*
//! aggregates. `tests/sweep.rs` locks this in.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

pub use crate::summary::Summary;

/// Spreads replication seeds from a base seed. Index 0 *is* the base
/// seed, so a 1-seed sweep reproduces the corresponding single run
/// exactly; further seeds are spread by the golden-ratio increment.
#[must_use]
pub fn seed_list(base: u64, count: usize) -> Vec<u64> {
    (0..count.max(1) as u64)
        .map(|i| base.wrapping_add(i.wrapping_mul(0x9e37_79b9_7f4a_7c15)))
        .collect()
}

/// One named observation from a single simulation run. `None` marks a
/// metric the run could not produce (no packets delivered → no latency);
/// missing observations are skipped during aggregation.
pub type Observation = (&'static str, Option<f64>);

/// A cell's metrics aggregated across the seed set.
#[derive(Clone, Debug)]
pub struct CellStats {
    /// Per-metric summaries, in the order the run function emitted them.
    /// `None` when no seed produced the metric.
    pub metrics: Vec<(&'static str, Option<Summary>)>,
}

impl CellStats {
    /// The summary for `name`, when at least one seed observed it.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&Summary> {
        self.metrics
            .iter()
            .find(|(n, _)| *n == name)
            .and_then(|(_, s)| s.as_ref())
    }

    /// Sum of the metric across seeds (`mean × n`), rounded — for count
    /// metrics such as packets sent.
    #[must_use]
    pub fn total(&self, name: &str) -> f64 {
        self.get(name).map_or(0.0, |s| s.mean * s.n as f64)
    }
}

/// Runs `f` over every item of `work` on `jobs` worker threads and
/// returns the results in *work order* regardless of completion order.
///
/// This is the engine's core primitive; [`sweep`] layers the grid × seed
/// cross product and the statistical reduction on top. It is public so
/// other parallel-friendly loops (the CLI's multi-seed mode, custom
/// harnesses) can reuse the pool without inventing their own.
///
/// # Panics
///
/// Propagates a panic from any worker thread.
pub fn run_parallel<C, T, F>(work: &[C], jobs: usize, f: F) -> Vec<T>
where
    C: Sync,
    T: Send,
    F: Fn(&C) -> T + Sync,
{
    let jobs = jobs.max(1).min(work.len().max(1));
    if jobs == 1 {
        return work.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<T>>> = Mutex::new((0..work.len()).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = work.get(i) else { break };
                let result = f(item);
                slots.lock().expect("no poisoned result slots")[i] = Some(result);
            });
        }
    });
    slots
        .into_inner()
        .expect("worker threads joined")
        .into_iter()
        .map(|r| r.expect("every work item produced a result"))
        .collect()
}

/// Runs `run(cell, seed)` for every cell × seed combination, sharded
/// across `jobs` threads, and reduces each cell's observations to
/// [`CellStats`] in seed order.
///
/// Every seed of a cell must emit the same metric names in the same
/// order (they come from the same code path, so this is natural).
///
/// # Panics
///
/// Panics if `seeds` is empty or if two seeds of the same cell disagree
/// on the metric list.
pub fn sweep<C, F>(cells: &[C], seeds: &[u64], jobs: usize, run: F) -> Vec<CellStats>
where
    C: Sync,
    F: Fn(&C, u64) -> Vec<Observation> + Sync,
{
    assert!(!seeds.is_empty(), "sweep needs at least one seed");
    let work: Vec<(usize, u64)> = (0..cells.len())
        .flat_map(|c| seeds.iter().map(move |&s| (c, s)))
        .collect();
    let results = run_parallel(&work, jobs, |&(c, seed)| run(&cells[c], seed));
    results
        .chunks(seeds.len())
        .map(|replications| {
            let names: Vec<&'static str> = replications[0].iter().map(|(n, _)| *n).collect();
            let metrics = names
                .iter()
                .enumerate()
                .map(|(k, &name)| {
                    let values: Vec<f64> = replications
                        .iter()
                        .map(|obs| {
                            assert_eq!(obs[k].0, name, "metric lists must match across seeds");
                            obs[k].1
                        })
                        .filter_map(|v| v.filter(|x| x.is_finite()))
                        .collect();
                    let summary = if values.is_empty() {
                        None
                    } else {
                        Some(Summary::of(&values))
                    };
                    (name, summary)
                })
                .collect();
            CellStats { metrics }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_list_starts_at_base() {
        let s = seed_list(42, 4);
        assert_eq!(s.len(), 4);
        assert_eq!(s[0], 42);
        let unique: std::collections::BTreeSet<_> = s.iter().collect();
        assert_eq!(unique.len(), 4);
        assert_eq!(seed_list(7, 0), vec![7], "count clamps to 1");
    }

    #[test]
    fn run_parallel_preserves_work_order() {
        let work: Vec<u64> = (0..100).collect();
        let serial = run_parallel(&work, 1, |&x| x * x);
        let parallel = run_parallel(&work, 8, |&x| x * x);
        assert_eq!(serial, parallel);
        assert_eq!(serial[99], 99 * 99);
    }

    #[test]
    fn run_parallel_handles_more_jobs_than_items() {
        assert_eq!(run_parallel(&[1, 2], 16, |&x| x + 1), vec![2, 3]);
        assert_eq!(
            run_parallel::<u32, u32, _>(&[], 4, |&x| x),
            Vec::<u32>::new()
        );
    }

    #[test]
    fn sweep_aggregates_per_cell_in_seed_order() {
        let cells = [10.0f64, 20.0];
        let seeds = seed_list(1, 3);
        let stats = sweep(&cells, &seeds, 2, |&cell, seed| {
            vec![
                ("value", Some(cell + (seed % 3) as f64)),
                ("sometimes", if seed % 2 == 0 { Some(1.0) } else { None }),
            ]
        });
        assert_eq!(stats.len(), 2);
        let v = stats[0].get("value").unwrap();
        assert_eq!(v.n, 3);
        assert!(v.mean >= 10.0 && v.mean <= 12.0);
        assert!(stats[1].get("value").unwrap().mean >= 20.0);
        // Missing observations are skipped, not zero-filled.
        let s = stats[0].get("sometimes");
        if let Some(s) = s {
            assert!(s.n < 3);
            assert_eq!(s.mean, 1.0);
        }
        assert_eq!(stats[0].metrics.len(), 2);
    }

    #[test]
    fn sweep_is_jobs_invariant() {
        let cells: Vec<usize> = (0..5).collect();
        let seeds = seed_list(99, 7);
        let run = |&cell: &usize, seed: u64| {
            // A cheap deterministic pseudo-simulation.
            let mut rng = radio_sim::rng::SimRng::new(seed ^ cell as u64);
            vec![
                ("x", Some(rng.gen_f64())),
                ("y", Some(rng.gen_f64() * cell as f64)),
            ]
        };
        let a = sweep(&cells, &seeds, 1, run);
        let b = sweep(&cells, &seeds, 4, run);
        for (ca, cb) in a.iter().zip(&b) {
            for ((na, sa), (nb, sb)) in ca.metrics.iter().zip(&cb.metrics) {
                assert_eq!(na, nb);
                let (sa, sb) = (sa.unwrap(), sb.unwrap());
                assert_eq!(
                    sa.mean.to_bits(),
                    sb.mean.to_bits(),
                    "bitwise identical means"
                );
                assert_eq!(sa.std_dev.to_bits(), sb.std_dev.to_bits());
            }
        }
    }

    #[test]
    fn cell_stats_total_counts() {
        let stats = sweep(&[0u8], &seed_list(5, 4), 2, |_, _| {
            vec![("sent", Some(12.0))]
        });
        assert_eq!(stats[0].total("sent"), 48.0);
        assert_eq!(stats[0].total("missing"), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one seed")]
    fn empty_seed_set_rejected() {
        let _ = sweep(&[1], &[], 1, |_: &i32, _| Vec::new());
    }
}
