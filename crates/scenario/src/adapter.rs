//! Hosting protocol stacks inside the simulator.
//!
//! The simulator hosts [`NodeProtocol`] implementations natively (its
//! `Firmware` trait is the same trait), so no adaptation layer exists
//! any more. [`ProtocolFirmware`] wraps a protocol purely to add the
//! experiment bookkeeping:
//!
//! * it drains the protocol's application events after every callback
//!   and timestamps them into an event log the experiment runner reads;
//! * it executes workload actions (scheduled via
//!   `Simulator::schedule_app`) by calling the protocol's send methods.
//!
//! [`ProtocolNode`] is the concrete protocol enum the experiments use, so
//! one simulation type hosts LoRaMesher and both baselines.

use std::time::Duration;

use lora_phy::link::SignalQuality;

use loramesher::addr::Address;
use loramesher::driver::NodeProtocol;
use loramesher::error::SendError;
use loramesher::flood::FloodNode;
use loramesher::node::{MeshEvent, MeshNode};
use mesh_baselines::star::{StarEvent, StarNode};
use radio_sim::firmware::{Context, Firmware};

/// A protocol-agnostic application event with its delivery time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AppEvent {
    /// A datagram (unicast or broadcast) reached this node's application.
    Received {
        /// Originating node.
        src: Address,
        /// Application payload.
        payload: Vec<u8>,
        /// Whether it arrived as a broadcast.
        broadcast: bool,
    },
    /// A reliable transfer completed at the receiver.
    ReliableReceived {
        /// Originating node.
        src: Address,
        /// Reassembled payload.
        payload: Vec<u8>,
    },
    /// A reliable transfer this node sent succeeded.
    ReliableDelivered {
        /// Destination node.
        dst: Address,
    },
    /// A reliable transfer this node sent failed.
    ReliableFailed {
        /// Destination node.
        dst: Address,
    },
}

/// Decoded header summary of a frame a node heard (when frame logging is
/// enabled) — enough to reconstruct forwarding paths in tests.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FrameMeta {
    /// Packet kind.
    pub kind: loramesher::PacketKind,
    /// Originator.
    pub src: Address,
    /// Final destination.
    pub dst: Address,
    /// Designated next hop (destination itself for Hello).
    pub via: Address,
    /// Remaining TTL (0 for Hello).
    pub ttl: u8,
    /// Originator's packet id.
    pub id: u8,
}

/// An action a workload schedules on a node.
#[derive(Clone, Debug)]
pub enum AppAction {
    /// Send a datagram of `payload` to `dst`.
    SendDatagram {
        /// Destination address.
        dst: Address,
        /// The exact payload bytes.
        payload: Vec<u8>,
    },
    /// Start a reliable transfer of `payload` to `dst`.
    SendReliable {
        /// Destination address.
        dst: Address,
        /// The exact payload bytes.
        payload: Vec<u8>,
    },
}

/// The protocols the experiments can host.
///
/// One instance exists per simulated node for a run's whole lifetime,
/// so the size skew between a full mesh node and the thin baselines is
/// irrelevant — boxing would only add pointer chasing to the hot loop.
#[derive(Debug)]
#[allow(clippy::large_enum_variant)]
pub enum ProtocolNode {
    /// The LoRaMesher distance-vector mesh.
    Mesh(MeshNode),
    /// The managed-flooding stack ([`loramesher::flood`]).
    Flooding(FloodNode),
    /// The single-gateway star baseline.
    Star(StarNode),
}

impl ProtocolNode {
    /// This node's protocol address.
    #[must_use]
    pub fn address(&self) -> Address {
        match self {
            ProtocolNode::Mesh(n) => n.address(),
            ProtocolNode::Flooding(n) => n.address(),
            ProtocolNode::Star(n) => n.address(),
        }
    }

    /// The wrapped [`MeshNode`], when this is the mesh protocol.
    #[must_use]
    pub fn as_mesh(&self) -> Option<&MeshNode> {
        match self {
            ProtocolNode::Mesh(n) => Some(n),
            _ => None,
        }
    }

    /// The wrapped [`FloodNode`], when this is the flooding protocol.
    #[must_use]
    pub fn as_flood(&self) -> Option<&FloodNode> {
        match self {
            ProtocolNode::Flooding(n) => Some(n),
            _ => None,
        }
    }

    /// Submits a datagram through whichever protocol is wrapped.
    ///
    /// # Errors
    ///
    /// Propagates the protocol's [`SendError`].
    pub fn send_datagram(
        &mut self,
        dst: Address,
        payload: Vec<u8>,
        now: Duration,
    ) -> Result<u8, SendError> {
        match self {
            ProtocolNode::Mesh(n) => n.send_datagram(dst, payload, now),
            ProtocolNode::Flooding(n) => n.send_datagram(dst, payload),
            ProtocolNode::Star(n) => n.send(dst, payload),
        }
    }

    /// Starts a reliable transfer (mesh only).
    ///
    /// # Errors
    ///
    /// [`SendError::BroadcastUnsupported`] on the baselines (they have no
    /// reliable service), or the mesh's own errors.
    pub fn send_reliable(
        &mut self,
        dst: Address,
        payload: Vec<u8>,
        now: Duration,
    ) -> Result<u8, SendError> {
        match self {
            ProtocolNode::Mesh(n) => n.send_reliable(dst, payload, now),
            _ => Err(SendError::BroadcastUnsupported),
        }
    }

    /// Maps the shared [`MeshEvent`] stream (emitted by both the mesh
    /// and flooding stacks) onto the experiment-facing [`AppEvent`].
    fn map_mesh_events(events: Vec<MeshEvent>) -> Vec<AppEvent> {
        events
            .into_iter()
            .filter_map(|e| match e {
                MeshEvent::Datagram { src, payload } => Some(AppEvent::Received {
                    src,
                    payload,
                    broadcast: false,
                }),
                MeshEvent::Broadcast { src, payload } => Some(AppEvent::Received {
                    src,
                    payload,
                    broadcast: true,
                }),
                MeshEvent::ReliableReceived { src, payload } => {
                    Some(AppEvent::ReliableReceived { src, payload })
                }
                MeshEvent::ReliableDelivered { dst, .. } => {
                    Some(AppEvent::ReliableDelivered { dst })
                }
                MeshEvent::ReliableFailed { dst, .. } => Some(AppEvent::ReliableFailed { dst }),
                _ => None,
            })
            .collect()
    }

    fn drain_events(&mut self) -> Vec<AppEvent> {
        match self {
            ProtocolNode::Mesh(n) => Self::map_mesh_events(n.take_events()),
            ProtocolNode::Flooding(n) => Self::map_mesh_events(n.take_events()),
            ProtocolNode::Star(n) => n
                .take_events()
                .into_iter()
                .map(|StarEvent::Received { src, payload }| AppEvent::Received {
                    src,
                    payload,
                    broadcast: false,
                })
                .collect(),
        }
    }
}

impl NodeProtocol for ProtocolNode {
    fn on_start(&mut self, io: &mut Context) {
        match self {
            ProtocolNode::Mesh(n) => n.on_start(io),
            ProtocolNode::Flooding(n) => n.on_start(io),
            ProtocolNode::Star(n) => n.on_start(io),
        }
    }
    fn on_timer(&mut self, io: &mut Context) {
        match self {
            ProtocolNode::Mesh(n) => n.on_timer(io),
            ProtocolNode::Flooding(n) => n.on_timer(io),
            ProtocolNode::Star(n) => n.on_timer(io),
        }
    }
    fn on_frame(&mut self, frame: &[u8], q: SignalQuality, io: &mut Context) {
        match self {
            ProtocolNode::Mesh(n) => n.on_frame(frame, q, io),
            ProtocolNode::Flooding(n) => n.on_frame(frame, q, io),
            ProtocolNode::Star(n) => n.on_frame(frame, q, io),
        }
    }
    fn on_tx_done(&mut self, io: &mut Context) {
        match self {
            ProtocolNode::Mesh(n) => n.on_tx_done(io),
            ProtocolNode::Flooding(n) => n.on_tx_done(io),
            ProtocolNode::Star(n) => n.on_tx_done(io),
        }
    }
    fn on_cad_done(&mut self, busy: bool, io: &mut Context) {
        match self {
            ProtocolNode::Mesh(n) => n.on_cad_done(busy, io),
            ProtocolNode::Flooding(n) => n.on_cad_done(busy, io),
            ProtocolNode::Star(n) => n.on_cad_done(busy, io),
        }
    }
    fn next_wake(&self) -> Option<Duration> {
        match self {
            ProtocolNode::Mesh(n) => n.next_wake(),
            ProtocolNode::Flooding(n) => n.next_wake(),
            ProtocolNode::Star(n) => n.next_wake(),
        }
    }
}

/// Simulator firmware hosting a [`NodeProtocol`].
///
/// Workload actions are registered with [`ProtocolFirmware::add_action`]
/// and executed when the matching `App` event (tag = action index) fires.
#[derive(Debug)]
pub struct ProtocolFirmware<P: NodeProtocol = ProtocolNode> {
    /// The hosted protocol stack.
    pub node: P,
    /// Timestamped application events observed so far.
    pub event_log: Vec<(Duration, AppEvent)>,
    /// Timestamped headers of every frame this node received (only
    /// populated when [`ProtocolFirmware::log_frames`] is enabled).
    pub frame_log: Vec<(Duration, FrameMeta)>,
    /// Whether to populate [`ProtocolFirmware::frame_log`].
    pub log_frames: bool,
    actions: Vec<AppAction>,
    /// Send attempts refused by the protocol (no route, queue full, …).
    pub send_errors: u64,
}

/// What the firmware adapter needs beyond [`NodeProtocol`]: draining
/// application events and submitting traffic.
pub trait HostedProtocol: NodeProtocol {
    /// Drains protocol-level application events.
    fn drain(&mut self) -> Vec<AppEvent>;

    /// Submits a datagram.
    ///
    /// # Errors
    ///
    /// Propagates the protocol's [`SendError`].
    fn submit_datagram(
        &mut self,
        dst: Address,
        payload: Vec<u8>,
        now: Duration,
    ) -> Result<u8, SendError>;

    /// Starts a reliable transfer (protocols without one return an error).
    ///
    /// # Errors
    ///
    /// Propagates the protocol's [`SendError`].
    fn submit_reliable(
        &mut self,
        dst: Address,
        payload: Vec<u8>,
        now: Duration,
    ) -> Result<u8, SendError>;
}

impl HostedProtocol for ProtocolNode {
    fn drain(&mut self) -> Vec<AppEvent> {
        self.drain_events()
    }
    fn submit_datagram(
        &mut self,
        dst: Address,
        payload: Vec<u8>,
        now: Duration,
    ) -> Result<u8, SendError> {
        self.send_datagram(dst, payload, now)
    }
    fn submit_reliable(
        &mut self,
        dst: Address,
        payload: Vec<u8>,
        now: Duration,
    ) -> Result<u8, SendError> {
        self.send_reliable(dst, payload, now)
    }
}

impl<P: NodeProtocol> ProtocolFirmware<P> {
    /// Wraps a protocol stack.
    #[must_use]
    pub fn new(node: P) -> Self {
        ProtocolFirmware {
            node,
            event_log: Vec::new(),
            frame_log: Vec::new(),
            log_frames: false,
            actions: Vec::new(),
            send_errors: 0,
        }
    }

    /// Registers a workload action, returning its tag for
    /// [`radio_sim::Simulator::schedule_app`].
    pub fn add_action(&mut self, action: AppAction) -> u64 {
        self.actions.push(action);
        (self.actions.len() - 1) as u64
    }
}

impl<P: HostedProtocol> ProtocolFirmware<P> {
    /// Drains the protocol's application events into the timestamped log
    /// after a callback ran.
    fn log_events(&mut self, now: Duration) {
        for e in self.node.drain() {
            self.event_log.push((now, e));
        }
    }
}

impl<P: HostedProtocol> Firmware for ProtocolFirmware<P> {
    fn on_start(&mut self, ctx: &mut Context) {
        self.node.on_start(ctx);
        self.log_events(ctx.now());
    }

    fn on_timer(&mut self, ctx: &mut Context) {
        self.node.on_timer(ctx);
        self.log_events(ctx.now());
    }

    fn on_frame(&mut self, bytes: &[u8], quality: SignalQuality, ctx: &mut Context) {
        if self.log_frames {
            if let Ok(packet) = loramesher::codec::decode(bytes) {
                let fwd = packet
                    .forwarding()
                    .unwrap_or(loramesher::packet::Forwarding {
                        via: packet.dst(),
                        ttl: 0,
                    });
                self.frame_log.push((
                    ctx.now(),
                    FrameMeta {
                        kind: packet.kind(),
                        src: packet.src(),
                        dst: packet.dst(),
                        via: fwd.via,
                        ttl: fwd.ttl,
                        id: packet.id(),
                    },
                ));
            }
        }
        self.node.on_frame(bytes, quality, ctx);
        self.log_events(ctx.now());
    }

    fn on_tx_done(&mut self, ctx: &mut Context) {
        self.node.on_tx_done(ctx);
        self.log_events(ctx.now());
    }

    fn on_cad_done(&mut self, busy: bool, ctx: &mut Context) {
        self.node.on_cad_done(busy, ctx);
        self.log_events(ctx.now());
    }

    fn on_app(&mut self, tag: u64, ctx: &mut Context) {
        let Some(action) = self.actions.get(tag as usize).cloned() else {
            return;
        };
        let now = ctx.now();
        let result = match action {
            AppAction::SendDatagram { dst, payload } => {
                self.node.submit_datagram(dst, payload, now)
            }
            AppAction::SendReliable { dst, payload } => {
                self.node.submit_reliable(dst, payload, now)
            }
        };
        if result.is_err() {
            self.send_errors += 1;
        }
        self.log_events(now);
    }

    fn next_wake(&self) -> Option<Duration> {
        self.node.next_wake()
    }
}

impl ProtocolFirmware<ProtocolNode> {
    /// Submits a datagram through the wrapped protocol.
    ///
    /// # Errors
    ///
    /// Propagates the protocol's [`SendError`].
    pub fn send_datagram(
        &mut self,
        dst: Address,
        payload: Vec<u8>,
        now: Duration,
    ) -> Result<u8, SendError> {
        self.node.send_datagram(dst, payload, now)
    }

    /// Starts a reliable transfer through the wrapped protocol.
    ///
    /// # Errors
    ///
    /// Propagates the protocol's [`SendError`].
    pub fn send_reliable(
        &mut self,
        dst: Address,
        payload: Vec<u8>,
        now: Duration,
    ) -> Result<u8, SendError> {
        self.node.send_reliable(dst, payload, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lora_phy::propagation::Position;
    use lora_phy::region::Region;
    use loramesher::config::MeshConfig;
    use radio_sim::{SimConfig, Simulator};

    fn mesh_fw(addr: u16) -> ProtocolFirmware<ProtocolNode> {
        let cfg = MeshConfig::builder(Address::new(addr))
            .region(Region::Unlimited)
            .hello_interval(Duration::from_secs(20))
            .build();
        ProtocolFirmware::new(ProtocolNode::Mesh(MeshNode::new(cfg)))
    }

    #[test]
    fn two_mesh_nodes_form_routes_in_simulator() {
        let mut sim = Simulator::new(SimConfig::default(), 1);
        let a = sim.add_node(mesh_fw(1), Position::new(0.0, 0.0));
        let b = sim.add_node(mesh_fw(2), Position::new(80.0, 0.0));
        sim.run_for(Duration::from_secs(30));
        let mesh_a = sim.node(a).node.as_mesh().unwrap();
        let mesh_b = sim.node(b).node.as_mesh().unwrap();
        assert_eq!(
            mesh_a.routing_table().next_hop(Address::new(2)),
            Some(Address::new(2))
        );
        assert_eq!(
            mesh_b.routing_table().next_hop(Address::new(1)),
            Some(Address::new(1))
        );
    }

    #[test]
    fn datagram_flows_through_simulator_and_is_logged() {
        let mut sim = Simulator::new(SimConfig::default(), 2);
        let a = sim.add_node(mesh_fw(1), Position::new(0.0, 0.0));
        let b = sim.add_node(mesh_fw(2), Position::new(80.0, 0.0));
        sim.run_for(Duration::from_secs(30));
        sim.with_node(a, |fw, ctx| {
            fw.send_datagram(Address::new(2), b"sim".to_vec(), ctx.now())
                .expect("route exists after 30 s of hellos")
        });
        sim.run_for(Duration::from_secs(10));
        let log = &sim.node(b).event_log;
        assert!(
            log.iter().any(|(_, e)| matches!(
                e,
                AppEvent::Received { src, payload, .. } if *src == Address::new(1) && payload == b"sim"
            )),
            "log: {log:?}"
        );
        // Delivery time was recorded after the send.
        let (t, _) = &log[0];
        assert!(*t >= Duration::from_secs(30));
    }

    #[test]
    fn workload_action_fires_via_schedule_app() {
        let mut sim = Simulator::new(SimConfig::default(), 3);
        let a = sim.add_node(mesh_fw(1), Position::new(0.0, 0.0));
        let b = sim.add_node(mesh_fw(2), Position::new(80.0, 0.0));
        // Register the action up front; schedule it after route formation.
        let tag = {
            // Safe because the sim has not started running this node's
            // callbacks concurrently (single-threaded).
            sim.with_node(a, |fw, _| {
                fw.add_action(AppAction::SendDatagram {
                    dst: Address::new(2),
                    payload: b"tick".to_vec(),
                })
            })
        };
        sim.schedule_app(Duration::from_secs(30), a, tag);
        sim.run_for(Duration::from_secs(45));
        assert!(sim
            .node(b)
            .event_log
            .iter()
            .any(|(_, e)| matches!(e, AppEvent::Received { payload, .. } if payload == b"tick")));
        assert_eq!(sim.node(a).send_errors, 0);
    }

    #[test]
    fn flooding_protocol_hosted_end_to_end() {
        use loramesher::flood::FloodConfig;
        let fw = |addr: u16| {
            let mut cfg = FloodConfig::new(Address::new(addr));
            cfg.region = lora_phy::region::Region::Unlimited;
            ProtocolFirmware::new(ProtocolNode::Flooding(FloodNode::new(cfg)))
        };
        let mut sim = Simulator::new(SimConfig::default(), 9);
        let a = sim.add_node(fw(1), Position::new(0.0, 0.0));
        let b = sim.add_node(fw(2), Position::new(80.0, 0.0));
        let c = sim.add_node(fw(3), Position::new(160.0, 0.0));
        sim.start();
        sim.with_node(a, |fw, ctx| {
            fw.node
                .submit_datagram(Address::new(3), b"flood".to_vec(), ctx.now())
                .unwrap()
        });
        sim.run_for(Duration::from_secs(10));
        assert!(sim
            .node(c)
            .event_log
            .iter()
            .any(|(_, e)| matches!(e, AppEvent::Received { payload, .. } if payload == b"flood")));
        // Reliable transfers are a mesh-only service.
        let err = sim.with_node(b, |fw, ctx| {
            fw.node
                .submit_reliable(Address::new(1), vec![1; 10], ctx.now())
        });
        assert!(err.is_err());
    }

    #[test]
    fn star_protocol_hosted_end_to_end() {
        use mesh_baselines::star::StarConfig;
        let fw = |addr: u16| {
            let mut cfg = StarConfig::new(Address::new(addr), Address::new(1));
            cfg.region = lora_phy::region::Region::Unlimited;
            ProtocolFirmware::new(ProtocolNode::Star(StarNode::new(cfg)))
        };
        let mut sim = Simulator::new(SimConfig::default(), 10);
        let gw = sim.add_node(fw(1), Position::new(0.0, 0.0));
        let n = sim.add_node(fw(2), Position::new(80.0, 0.0));
        sim.start();
        sim.with_node(n, |fw, ctx| {
            fw.node
                .submit_datagram(Address::new(1), b"uplink".to_vec(), ctx.now())
                .unwrap()
        });
        sim.run_for(Duration::from_secs(5));
        assert_eq!(sim.node(gw).event_log.len(), 1);
        assert!(sim.node(n).node.as_mesh().is_none());
    }

    #[test]
    fn unknown_action_tag_is_ignored() {
        let mut sim = Simulator::new(SimConfig::default(), 4);
        let a = sim.add_node(mesh_fw(1), Position::new(0.0, 0.0));
        sim.schedule_app(Duration::from_secs(1), a, 42);
        sim.run_for(Duration::from_secs(2));
        assert_eq!(sim.node(a).send_errors, 0);
    }

    #[test]
    fn send_error_is_counted() {
        let mut sim = Simulator::new(SimConfig::default(), 5);
        let a = sim.add_node(mesh_fw(1), Position::new(0.0, 0.0));
        let tag = sim.with_node(a, |fw, _| {
            fw.add_action(AppAction::SendDatagram {
                dst: Address::new(99), // no route will ever exist
                payload: vec![1],
            })
        });
        sim.schedule_app(Duration::from_secs(1), a, tag);
        sim.run_for(Duration::from_secs(2));
        assert_eq!(sim.node(a).send_errors, 1);
    }
}
