//! Result-table formatting.
//!
//! Every experiment produces an [`ExpTable`]; the benchmark binaries
//! print it and EXPERIMENTS.md embeds it, so the numbers the repository
//! reports always come from one code path.

use core::fmt;
use std::time::Duration;

/// A titled table of experiment results.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExpTable {
    /// Experiment identifier and description (e.g. "E3 — PDR vs hops").
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Data rows (stringified by the experiment).
    pub rows: Vec<Vec<String>>,
}

impl ExpTable {
    /// Creates an empty table.
    #[must_use]
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        ExpTable {
            title: title.into(),
            columns: columns.iter().map(|s| (*s).to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.columns.len(),
            "row width {} != column count {}",
            row.len(),
            self.columns.len()
        );
        self.rows.push(row);
    }

    /// Renders as CSV (header row first) for external plotting tools.
    /// Cells containing commas or quotes are quoted per RFC 4180.
    #[must_use]
    pub fn to_csv(&self) -> String {
        fn cell(s: &str) -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let mut out = String::new();
        out.push_str(
            &self
                .columns
                .iter()
                .map(|c| cell(c))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| cell(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Renders as a GitHub-flavoured markdown table (for EXPERIMENTS.md).
    #[must_use]
    pub fn to_markdown(&self) -> String {
        let mut out = format!("### {}\n\n", self.title);
        out.push_str(&format!("| {} |\n", self.columns.join(" | ")));
        out.push_str(&format!("|{}\n", "---|".repeat(self.columns.len())));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }
}

impl fmt::Display for ExpTable {
    /// Renders as an aligned plain-text table.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        writeln!(f, "{}", self.title)?;
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let mut parts = Vec::with_capacity(cells.len());
            for (w, cell) in widths.iter().zip(cells) {
                parts.push(format!("{cell:>w$}", w = w));
            }
            writeln!(f, "  {}", parts.join("  "))
        };
        line(f, &self.columns)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        writeln!(f, "  {}", "-".repeat(total))?;
        for row in &self.rows {
            line(f, row)?;
        }
        Ok(())
    }
}

/// Formats a duration as fractional seconds, e.g. `12.345 s`.
#[must_use]
pub fn fmt_secs(d: Duration) -> String {
    format!("{:.3} s", d.as_secs_f64())
}

/// Formats a duration as milliseconds, e.g. `41.2 ms`.
#[must_use]
pub fn fmt_ms(d: Duration) -> String {
    format!("{:.1} ms", d.as_secs_f64() * 1000.0)
}

/// Formats a ratio as a percentage, e.g. `97.5 %`.
#[must_use]
pub fn fmt_pct(x: f64) -> String {
    format!("{:.1} %", x * 100.0)
}

/// Formats a byte rate, e.g. `123.4 B/s`.
#[must_use]
pub fn fmt_rate(bytes_per_sec: f64) -> String {
    format!("{bytes_per_sec:.1} B/s")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> ExpTable {
        let mut t = ExpTable::new("E0 — demo", &["n", "pdr"]);
        t.push_row(vec!["3".into(), "100.0 %".into()]);
        t.push_row(vec!["12".into(), "93.1 %".into()]);
        t
    }

    #[test]
    fn display_aligns_columns() {
        let s = table().to_string();
        assert!(s.starts_with("E0 — demo\n"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
        assert!(lines[1].contains("n"));
        assert!(lines[3].trim_start().starts_with('3'));
    }

    #[test]
    fn markdown_shape() {
        let md = table().to_markdown();
        assert!(md.contains("### E0 — demo"));
        assert!(md.contains("| n | pdr |"));
        assert!(md.contains("| 12 | 93.1 % |"));
        // 4 table lines (header, separator, 2 rows) × 3 pipes each.
        assert_eq!(md.matches('|').count(), 12);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_row_rejected() {
        let mut t = ExpTable::new("x", &["a", "b"]);
        t.push_row(vec!["only one".into()]);
    }

    #[test]
    fn csv_shape_and_quoting() {
        let mut t = ExpTable::new("x", &["a", "b"]);
        t.push_row(vec!["1,5".into(), "say \"hi\"".into()]);
        let csv = t.to_csv();
        assert_eq!(csv, "a,b\n\"1,5\",\"say \"\"hi\"\"\"\n");
        assert_eq!(table().to_csv().lines().count(), 3);
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_secs(Duration::from_millis(1500)), "1.500 s");
        assert_eq!(fmt_ms(Duration::from_micros(41200)), "41.2 ms");
        assert_eq!(fmt_pct(0.975), "97.5 %");
        assert_eq!(fmt_rate(123.45), "123.5 B/s");
    }
}
