//! Small-sample summary statistics for replicated experiments.
//!
//! Experiments that depend on random losses (grey-zone links, random
//! topologies) are replicated across seeds; this module reduces the
//! per-seed results to mean ± deviation so tables report the trend, not
//! one lucky run.

/// Summary of a set of observations.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for n < 2).
    pub std_dev: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
}

impl Summary {
    /// Summarises `values`.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    #[must_use]
    pub fn of(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "cannot summarise zero observations");
        let n = values.len();
        let mean = values.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Summary {
            n,
            mean,
            std_dev: var.sqrt(),
            min,
            max,
        }
    }

    /// Half-width of an approximate 95 % confidence interval for the
    /// mean (normal approximation, `1.96 · s / √n`; 0 for n < 2).
    #[must_use]
    pub fn ci95_half_width(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            1.96 * self.std_dev / (self.n as f64).sqrt()
        }
    }

    /// Formats as `mean ± sd` with the given formatter for both parts.
    #[must_use]
    pub fn fmt_pm(&self, f: impl Fn(f64) -> String) -> String {
        if self.n < 2 {
            f(self.mean)
        } else {
            format!("{} ± {}", f(self.mean), f(self.std_dev))
        }
    }

    /// Formats as `mean ± ci95` (the 95 % confidence half-width) with
    /// the given formatter for both parts; plain `mean` for n < 2.
    #[must_use]
    pub fn fmt_ci(&self, f: impl Fn(f64) -> String) -> String {
        if self.n < 2 {
            f(self.mean)
        } else {
            format!("{} ± {}", f(self.mean), f(self.ci95_half_width()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_values() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.n, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Sample std dev of this classic set is ~2.138.
        assert!((s.std_dev - 2.1380899).abs() < 1e-6, "{}", s.std_dev);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert!(s.ci95_half_width() > 0.0);
    }

    #[test]
    fn single_observation() {
        let s = Summary::of(&[3.5]);
        assert_eq!(s.mean, 3.5);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.ci95_half_width(), 0.0);
        assert_eq!(s.fmt_pm(|v| format!("{v:.1}")), "3.5");
    }

    #[test]
    fn fmt_pm_includes_deviation() {
        let s = Summary::of(&[1.0, 3.0]);
        assert_eq!(s.fmt_pm(|v| format!("{v:.1}")), "2.0 ± 1.4");
    }

    #[test]
    fn fmt_ci_uses_confidence_half_width() {
        let s = Summary::of(&[1.0, 3.0]);
        // sd = √2, ci95 = 1.96·√2/√2 = 1.96.
        assert_eq!(s.fmt_ci(|v| format!("{v:.2}")), "2.00 ± 1.96");
        assert_eq!(Summary::of(&[5.0]).fmt_ci(|v| format!("{v:.1}")), "5.0");
    }

    #[test]
    #[should_panic(expected = "zero observations")]
    fn empty_rejected() {
        let _ = Summary::of(&[]);
    }
}
