//! Building networks, injecting traffic and collecting results.
//!
//! [`NetworkBuilder`] assembles a simulated network running one of the
//! three protocols; [`Runner`] drives it, schedules [`TrafficEvent`]s and
//! matches every delivered payload back to its send record (a 4-byte
//! marker embedded in each payload), yielding a [`TrafficReport`] with
//! packet-delivery ratio, end-to-end latencies and airtime cost.

use std::collections::BTreeSet;
use std::time::Duration;

use lora_phy::propagation::Position;
use lora_phy::region::Region;

use loramesher::addr::Address;
use loramesher::config::MeshConfig;
use loramesher::flood::{FloodConfig, FloodNode};
use loramesher::node::MeshNode;
use mesh_baselines::star::{StarConfig, StarNode};
use radio_sim::firmware::NodeId;
use radio_sim::metrics::Metrics;
use radio_sim::mobility::Mobility;
use radio_sim::sim::{SimConfig, Simulator};

use crate::adapter::{AppAction, AppEvent, ProtocolFirmware, ProtocolNode};
use crate::workload::{Target, TrafficEvent};

/// Which protocol a network runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProtocolChoice {
    /// LoRaMesher with the given routing timers.
    Mesh {
        /// Interval between routing broadcasts.
        hello_interval: Duration,
        /// Route expiry timeout.
        route_timeout: Duration,
    },
    /// Managed flooding with the given TTL.
    Flooding {
        /// Flood radius.
        ttl: u8,
    },
    /// Single-gateway star; the gateway is the node at this index.
    Star {
        /// Index of the gateway node.
        gateway: usize,
    },
}

impl ProtocolChoice {
    /// LoRaMesher with experiment-friendly timers (20 s hellos, 120 s
    /// route timeout — scaled-down versions of the firmware's 120 s /
    /// 600 s so experiments converge in simulated minutes, preserving the
    /// 1:6 ratio).
    #[must_use]
    pub fn mesh_fast() -> Self {
        ProtocolChoice::Mesh {
            hello_interval: Duration::from_secs(20),
            route_timeout: Duration::from_secs(120),
        }
    }
}

/// Declarative description of a simulated network.
#[derive(Clone, Debug)]
pub struct NetworkBuilder {
    /// Node positions; one node is created per entry.
    pub positions: Vec<Position>,
    /// The protocol to run.
    pub protocol: ProtocolChoice,
    /// Simulator configuration (RF parameters, CAD length, tracing).
    pub sim: SimConfig,
    /// Regulatory region applied to every node's MAC.
    pub region: Region,
    /// Master seed.
    pub seed: u64,
    /// Listen-before-talk on mesh nodes (ablation A1 disables it).
    pub csma: bool,
    /// Hello timing jitter on mesh nodes (ablation A3 disables it).
    pub hello_jitter: bool,
    /// Per-node mobility models; empty = every node static. When
    /// non-empty it must have one entry per position.
    pub mobility: Vec<Mobility>,
    /// SNR tie-breaking in the mesh routing policy (extension A4).
    pub snr_tiebreak: bool,
    /// Per-node role bytes advertised in hellos; empty = all plain nodes.
    /// When non-empty it must have one entry per position.
    pub roles: Vec<u8>,
    /// Record every received frame's header per node (path tracing).
    pub log_frames: bool,
}

impl NetworkBuilder {
    /// A network of LoRaMesher nodes at the given positions, with the
    /// default urban RF profile and no regulatory duty limit (so protocol
    /// behaviour, not regulation, dominates unless an experiment opts in).
    #[must_use]
    pub fn mesh(positions: Vec<Position>, seed: u64) -> Self {
        NetworkBuilder {
            positions,
            protocol: ProtocolChoice::mesh_fast(),
            sim: SimConfig::default(),
            region: Region::Unlimited,
            seed,
            csma: true,
            hello_jitter: true,
            mobility: Vec::new(),
            snr_tiebreak: false,
            roles: Vec::new(),
            log_frames: false,
        }
    }

    /// Switches the protocol.
    #[must_use]
    pub fn protocol(mut self, p: ProtocolChoice) -> Self {
        self.protocol = p;
        self
    }

    /// Sets the regulatory region for every node's MAC.
    #[must_use]
    pub fn region(mut self, r: Region) -> Self {
        self.region = r;
        self
    }

    /// Replaces the simulator configuration.
    #[must_use]
    pub fn sim_config(mut self, sim: SimConfig) -> Self {
        self.sim = sim;
        self
    }

    /// Enables or disables the simulator's link-budget cache
    /// (behaviourally transparent; off only for differential testing).
    #[must_use]
    pub fn link_cache(mut self, on: bool) -> Self {
        self.sim.link_cache = on;
        self
    }

    /// Number of spatial shards for the event engine (behaviourally
    /// transparent; `1` — the default — is the sequential reference,
    /// larger values batch-process range-isolated regions).
    #[must_use]
    pub fn shards(mut self, shards: usize) -> Self {
        self.sim.shards = shards;
        self
    }

    /// Number of worker threads for the simulator's parallel evaluate
    /// regions (behaviourally transparent; `1` — the default — never
    /// touches thread machinery).
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.sim.threads = threads;
        self
    }

    /// Selects the per-node RNG stream family (PR 9). Required whenever
    /// `threads > 1`: band workers mint node streams independently, so
    /// the fork-chain derivation of the default family cannot serve
    /// them. Changing the family changes individual run trajectories
    /// (every stochastic draw comes from a different stream) but not
    /// the statistics — and it is deterministic for a given seed, so
    /// sweeps stay reproducible and engine-invariant as long as every
    /// leg of a comparison uses the same setting.
    #[must_use]
    pub fn rng_streams(mut self, on: bool) -> Self {
        self.sim.rng_streams = on;
        self
    }

    /// Enables or disables listen-before-talk on mesh nodes (ablation).
    #[must_use]
    pub fn csma(mut self, on: bool) -> Self {
        self.csma = on;
        self
    }

    /// Enables or disables hello jitter on mesh nodes (ablation).
    #[must_use]
    pub fn hello_jitter(mut self, on: bool) -> Self {
        self.hello_jitter = on;
        self
    }

    /// Enables SNR tie-breaking in the mesh routing policy.
    #[must_use]
    pub fn snr_tiebreak(mut self, on: bool) -> Self {
        self.snr_tiebreak = on;
        self
    }

    /// Enables per-node frame logging (path tracing in tests).
    #[must_use]
    pub fn log_frames(mut self, on: bool) -> Self {
        self.log_frames = on;
        self
    }

    /// Sets per-node role bytes (one per position).
    ///
    /// # Panics
    ///
    /// `build` panics if the length does not match the positions.
    #[must_use]
    pub fn roles(mut self, roles: Vec<u8>) -> Self {
        self.roles = roles;
        self
    }

    /// Sets per-node mobility models (one per position).
    ///
    /// # Panics
    ///
    /// `build` panics if the length does not match the positions.
    #[must_use]
    pub fn mobility(mut self, models: Vec<Mobility>) -> Self {
        self.mobility = models;
        self
    }

    /// Builds the runner.
    ///
    /// # Panics
    ///
    /// Panics if a mobility list was supplied with the wrong length.
    #[must_use]
    pub fn build(self) -> Runner {
        assert!(
            self.mobility.is_empty() || self.mobility.len() == self.positions.len(),
            "mobility list must match positions ({} vs {})",
            self.mobility.len(),
            self.positions.len()
        );
        assert!(
            self.roles.is_empty() || self.roles.len() == self.positions.len(),
            "role list must match positions ({} vs {})",
            self.roles.len(),
            self.positions.len()
        );
        let modulation = self.sim.rf.modulation;
        let mut sim = Simulator::new(self.sim, self.seed);
        let mut ids = Vec::with_capacity(self.positions.len());
        for (i, pos) in self.positions.iter().enumerate() {
            let address = Runner::address_of(i);
            let node = match &self.protocol {
                ProtocolChoice::Mesh {
                    hello_interval,
                    route_timeout,
                } => {
                    let cfg = MeshConfig::builder(address)
                        .modulation(modulation)
                        .role(self.roles.get(i).copied().unwrap_or(0))
                        .region(self.region)
                        .hello_interval(*hello_interval)
                        .route_timeout(*route_timeout)
                        .csma(self.csma)
                        .hello_jitter(self.hello_jitter)
                        .routing_policy(loramesher::routing::RoutingPolicy {
                            snr_tiebreak: self.snr_tiebreak,
                            ..loramesher::routing::RoutingPolicy::default()
                        })
                        .seed(self.seed ^ (i as u64 + 1).wrapping_mul(0x9e37_79b9))
                        .build();
                    ProtocolNode::Mesh(MeshNode::new(cfg))
                }
                ProtocolChoice::Flooding { ttl } => {
                    let mut cfg = FloodConfig::new(address);
                    cfg.modulation = modulation;
                    cfg.region = self.region;
                    cfg.hop_limit = *ttl;
                    cfg.csma = self.csma;
                    cfg.seed = self.seed ^ (i as u64 + 1).wrapping_mul(0x9e37_79b9);
                    ProtocolNode::Flooding(FloodNode::new(cfg))
                }
                ProtocolChoice::Star { gateway } => {
                    let mut cfg = StarConfig::new(address, Runner::address_of(*gateway));
                    cfg.modulation = modulation;
                    cfg.region = self.region;
                    cfg.seed = self.seed ^ (i as u64 + 1).wrapping_mul(0x9e37_79b9);
                    ProtocolNode::Star(StarNode::new(cfg))
                }
            };
            let mobility = self.mobility.get(i).cloned().unwrap_or(Mobility::Static);
            let mut firmware = ProtocolFirmware::new(node);
            firmware.log_frames = self.log_frames;
            ids.push(sim.add_mobile_node(firmware, *pos, mobility));
        }
        Runner {
            sim,
            ids,
            sent: Vec::new(),
            reliable: Vec::new(),
            next_marker: 0,
        }
    }
}

/// A datagram send record awaiting its deliveries.
#[derive(Clone, Copy, Debug)]
struct SentRecord {
    marker: u32,
    from: usize,
    to: Target,
    at: Duration,
}

/// A reliable-transfer send record.
#[derive(Clone, Copy, Debug)]
struct ReliableRecord {
    from: usize,
    to: usize,
    len: usize,
    at: Duration,
}

/// A running simulated network with traffic accounting.
pub struct Runner {
    sim: Simulator<ProtocolFirmware<ProtocolNode>>,
    ids: Vec<NodeId>,
    sent: Vec<SentRecord>,
    reliable: Vec<ReliableRecord>,
    next_marker: u32,
}

impl Runner {
    /// The protocol address of node index `i`.
    #[must_use]
    pub fn address_of(i: usize) -> Address {
        Address::new(u16::try_from(i + 1).expect("too many nodes"))
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the network has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The underlying simulator.
    #[must_use]
    pub fn sim(&self) -> &Simulator<ProtocolFirmware<ProtocolNode>> {
        &self.sim
    }

    /// Mutable access to the simulator (fault injection, custom events).
    pub fn sim_mut(&mut self) -> &mut Simulator<ProtocolFirmware<ProtocolNode>> {
        &mut self.sim
    }

    /// The simulator node id of index `i`.
    #[must_use]
    pub fn id(&self, i: usize) -> NodeId {
        self.ids[i]
    }

    /// The mesh state of node `i` (None when running a baseline).
    #[must_use]
    pub fn mesh_node(&self, i: usize) -> Option<&MeshNode> {
        self.sim.node(self.ids[i]).node.as_mesh()
    }

    /// The flooding state of node `i` (None under any other protocol).
    #[must_use]
    pub fn flood_node(&self, i: usize) -> Option<&FloodNode> {
        self.sim.node(self.ids[i]).node.as_flood()
    }

    /// Current simulated time.
    #[must_use]
    pub fn now(&self) -> Duration {
        self.sim.now()
    }

    /// Advances the simulation to `t`.
    pub fn run_until(&mut self, t: Duration) {
        self.sim.run_until(t);
    }

    /// Advances the simulation by `d`.
    pub fn run_for(&mut self, d: Duration) {
        self.sim.run_for(d);
    }

    fn marker_payload(&mut self, len: usize) -> (u32, Vec<u8>) {
        let marker = self.next_marker;
        self.next_marker += 1;
        let len = len.max(4);
        let mut payload = vec![0xA5; len];
        payload[..4].copy_from_slice(&marker.to_le_bytes());
        (marker, payload)
    }

    fn resolve(&self, to: Target) -> Address {
        match to {
            Target::Node(i) => Self::address_of(i),
            Target::Broadcast => Address::BROADCAST,
        }
    }

    /// Schedules a whole workload.
    pub fn apply(&mut self, events: &[TrafficEvent]) {
        for e in events {
            self.schedule(*e);
        }
    }

    /// Schedules one traffic event.
    pub fn schedule(&mut self, e: TrafficEvent) {
        let dst = self.resolve(e.to);
        if e.reliable {
            let Target::Node(to) = e.to else {
                panic!("reliable transfers cannot be broadcast");
            };
            let (_, payload) = self.marker_payload(e.payload_len);
            self.reliable.push(ReliableRecord {
                from: e.from,
                to,
                len: payload.len(),
                at: e.at,
            });
            let id = self.ids[e.from];
            let tag = self.sim.with_node(id, |fw, _| {
                fw.add_action(AppAction::SendReliable { dst, payload })
            });
            self.sim.schedule_app(e.at, id, tag);
        } else {
            let (marker, payload) = self.marker_payload(e.payload_len);
            self.sent.push(SentRecord {
                marker,
                from: e.from,
                to: e.to,
                at: e.at,
            });
            let id = self.ids[e.from];
            let tag = self.sim.with_node(id, |fw, _| {
                fw.add_action(AppAction::SendDatagram { dst, payload })
            });
            self.sim.schedule_app(e.at, id, tag);
        }
    }

    /// Whether every mesh node has a usable route to every other node.
    /// Always `false` for baseline protocols (they have no tables).
    #[must_use]
    pub fn mesh_converged(&self) -> bool {
        let n = self.len();
        (0..n).all(|i| {
            let Some(mesh) = self.mesh_node(i) else {
                return false;
            };
            (0..n)
                .filter(|&j| j != i)
                .all(|j| mesh.routing_table().next_hop(Self::address_of(j)).is_some())
        })
    }

    /// Runs until the mesh is fully converged, checking every `step`.
    /// Returns the convergence time, or `None` if `deadline` passes first.
    pub fn run_until_converged(&mut self, step: Duration, deadline: Duration) -> Option<Duration> {
        loop {
            if self.mesh_converged() {
                return Some(self.now());
            }
            if self.now() >= deadline {
                return None;
            }
            let next = (self.now() + step).min(deadline);
            self.run_until(next);
        }
    }

    /// PHY-level metrics from the simulator.
    #[must_use]
    pub fn phy_metrics(&self) -> &Metrics {
        self.sim.metrics()
    }

    /// Builds the traffic report for everything scheduled so far.
    #[must_use]
    pub fn report(&self) -> TrafficReport {
        let now = self.now();
        let mut latencies = Vec::new();
        // BTreeSet (meshlint rule D1): membership-only today, but a
        // deterministic order keeps any future iteration replay-safe.
        let mut delivered_keys: BTreeSet<(u32, usize)> = BTreeSet::new();
        let mut duplicates = 0u64;
        let mut send_errors = 0u64;
        let mut reliable_completed = 0usize;
        let mut reliable_failed = 0usize;
        let mut reliable_latencies = Vec::new();

        for (j, &id) in self.ids.iter().enumerate() {
            let fw = self.sim.node(id);
            send_errors += fw.send_errors;
            for (t, event) in &fw.event_log {
                match event {
                    AppEvent::Received { src, payload, .. } => {
                        if payload.len() < 4 {
                            continue;
                        }
                        let marker =
                            u32::from_le_bytes([payload[0], payload[1], payload[2], payload[3]]);
                        let Some(rec) = self.sent.get(marker as usize) else {
                            continue;
                        };
                        if rec.marker != marker || Self::address_of(rec.from) != *src {
                            continue;
                        }
                        let counted = match rec.to {
                            Target::Node(k) => k == j,
                            Target::Broadcast => true,
                        };
                        if !counted {
                            continue;
                        }
                        if delivered_keys.insert((marker, j)) {
                            latencies.push(t.saturating_sub(rec.at));
                        } else {
                            duplicates += 1;
                        }
                    }
                    AppEvent::ReliableReceived { src, payload } => {
                        if let Some(rec) = self.reliable.iter().find(|r| {
                            Self::address_of(r.from) == *src && r.to == j && r.len == payload.len()
                        }) {
                            reliable_completed += 1;
                            reliable_latencies.push(t.saturating_sub(rec.at));
                        }
                    }
                    AppEvent::ReliableFailed { .. } => reliable_failed += 1,
                    AppEvent::ReliableDelivered { .. } => {}
                }
            }
        }

        // Only sends whose time has passed count as attempted.
        let attempted = self.sent.iter().filter(|r| r.at <= now).count();
        let metrics = self.sim.metrics();
        TrafficReport {
            sent: attempted,
            delivered: delivered_keys.len(),
            duplicates,
            send_errors,
            latencies,
            reliable_attempted: self.reliable.iter().filter(|r| r.at <= now).count(),
            reliable_completed,
            reliable_failed,
            reliable_latencies,
            total_airtime: metrics.total_airtime,
            frames_transmitted: metrics.frames_transmitted,
            collisions: metrics.lost_collision,
            elapsed: now,
        }
    }
}

/// End-to-end results of a traffic run.
#[derive(Clone, Debug)]
pub struct TrafficReport {
    /// Datagram sends attempted (scheduled and due).
    pub sent: usize,
    /// Unique datagram deliveries.
    pub delivered: usize,
    /// Duplicate deliveries (same datagram, same receiver).
    pub duplicates: u64,
    /// Application submissions the protocol refused.
    pub send_errors: u64,
    /// End-to-end datagram latencies.
    pub latencies: Vec<Duration>,
    /// Reliable transfers attempted.
    pub reliable_attempted: usize,
    /// Reliable transfers completed at the receiver.
    pub reliable_completed: usize,
    /// Reliable transfers reported failed by the sender.
    pub reliable_failed: usize,
    /// Reliable transfer completion latencies.
    pub reliable_latencies: Vec<Duration>,
    /// Total airtime across the network.
    pub total_airtime: Duration,
    /// Total frames put on the air.
    pub frames_transmitted: u64,
    /// PHY reception attempts destroyed by collisions.
    pub collisions: u64,
    /// Simulated time covered by this report.
    pub elapsed: Duration,
}

impl TrafficReport {
    /// Packet delivery ratio (unicast: delivered/sent). `None` when no
    /// datagrams were attempted.
    #[must_use]
    pub fn pdr(&self) -> Option<f64> {
        if self.sent == 0 {
            None
        } else {
            Some(self.delivered as f64 / self.sent as f64)
        }
    }

    /// Mean end-to-end latency.
    #[must_use]
    pub fn mean_latency(&self) -> Option<Duration> {
        if self.latencies.is_empty() {
            return None;
        }
        let total: Duration = self.latencies.iter().sum();
        Some(total / self.latencies.len() as u32)
    }

    /// A latency percentile (0.0–1.0).
    #[must_use]
    pub fn latency_percentile(&self, p: f64) -> Option<Duration> {
        if self.latencies.is_empty() {
            return None;
        }
        let mut v = self.latencies.clone();
        v.sort_unstable();
        let idx = ((v.len() - 1) as f64 * p.clamp(0.0, 1.0)).round() as usize;
        Some(v[idx])
    }

    /// Fraction of simulated time the channel carried transmissions.
    #[must_use]
    pub fn channel_utilisation(&self) -> f64 {
        if self.elapsed.is_zero() {
            0.0
        } else {
            self.total_airtime.as_secs_f64() / self.elapsed.as_secs_f64()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload;
    use radio_sim::topology;

    fn line_mesh(n: usize, spacing: f64, seed: u64) -> Runner {
        NetworkBuilder::mesh(topology::line(n, spacing), seed).build()
    }

    /// The sweep engine builds and runs one Runner per worker thread;
    /// this fails to compile if the whole stack stops being Send.
    #[test]
    fn runner_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Runner>();
        assert_send::<TrafficReport>();
    }

    #[test]
    fn two_node_mesh_converges() {
        let mut r = line_mesh(2, 80.0, 1);
        let t = r
            .run_until_converged(Duration::from_secs(5), Duration::from_secs(120))
            .expect("should converge");
        assert!(t <= Duration::from_secs(120));
        assert!(r.mesh_converged());
    }

    #[test]
    fn line_of_four_converges_multi_hop() {
        let mut r = line_mesh(4, 100.0, 2);
        r.run_until_converged(Duration::from_secs(5), Duration::from_secs(600))
            .expect("should converge");
        // End-to-end route goes through the chain.
        let mesh = r.mesh_node(0).unwrap();
        let route = mesh.routing_table().route(Runner::address_of(3)).unwrap();
        assert_eq!(route.metric, 3);
        assert_eq!(route.via, Runner::address_of(1));
    }

    #[test]
    fn traffic_is_delivered_and_reported() {
        let mut r = line_mesh(3, 100.0, 3);
        r.run_until_converged(Duration::from_secs(5), Duration::from_secs(600))
            .expect("converged");
        let start = r.now() + Duration::from_secs(5);
        let events = workload::periodic(0, Target::Node(2), 16, start, Duration::from_secs(15), 4);
        r.apply(&events);
        r.run_until(start + Duration::from_secs(120));
        let report = r.report();
        assert_eq!(report.sent, 4);
        assert_eq!(report.delivered, 4);
        assert_eq!(report.pdr(), Some(1.0));
        assert_eq!(report.duplicates, 0);
        assert!(report.mean_latency().unwrap() > Duration::ZERO);
        assert!(report.latency_percentile(1.0) >= report.latency_percentile(0.0));
        assert!(report.total_airtime > Duration::ZERO);
        assert!(report.channel_utilisation() > 0.0);
    }

    #[test]
    fn flooding_network_delivers() {
        let mut r = NetworkBuilder::mesh(topology::line(3, 100.0), 4)
            .protocol(ProtocolChoice::Flooding { ttl: 5 })
            .build();
        let events = workload::periodic(
            0,
            Target::Node(2),
            16,
            Duration::from_secs(1),
            Duration::from_secs(10),
            3,
        );
        r.apply(&events);
        r.run_until(Duration::from_secs(60));
        let report = r.report();
        assert_eq!(report.delivered, 3, "flooding should reach across 2 hops");
    }

    #[test]
    fn star_cannot_reach_beyond_gateway_range() {
        // Gateway at node 0; node 2 is two "hops" away -> unreachable.
        let mut r = NetworkBuilder::mesh(topology::line(3, 100.0), 5)
            .protocol(ProtocolChoice::Star { gateway: 0 })
            .build();
        let events = [
            workload::periodic(
                1,
                Target::Node(0),
                16,
                Duration::from_secs(1),
                Duration::from_secs(5),
                2,
            ),
            workload::periodic(
                2,
                Target::Node(0),
                16,
                Duration::from_secs(2),
                Duration::from_secs(5),
                2,
            ),
        ]
        .concat();
        r.apply(&events);
        r.run_until(Duration::from_secs(60));
        let report = r.report();
        // Only node 1's packets arrive.
        assert_eq!(report.sent, 4);
        assert_eq!(report.delivered, 2);
    }

    #[test]
    fn reliable_transfer_reported() {
        let mut r = line_mesh(2, 80.0, 6);
        r.run_until_converged(Duration::from_secs(5), Duration::from_secs(300))
            .expect("converged");
        let at = r.now() + Duration::from_secs(1);
        r.schedule(workload::bulk(0, 1, 1000, at));
        r.run_until(at + Duration::from_secs(120));
        let report = r.report();
        assert_eq!(report.reliable_attempted, 1);
        assert_eq!(report.reliable_completed, 1);
        assert_eq!(report.reliable_failed, 0);
        assert_eq!(report.reliable_latencies.len(), 1);
    }

    #[test]
    fn report_before_traffic_is_empty() {
        let r = line_mesh(2, 80.0, 7);
        let report = r.report();
        assert_eq!(report.sent, 0);
        assert_eq!(report.pdr(), None);
        assert_eq!(report.mean_latency(), None);
        assert_eq!(report.latency_percentile(0.5), None);
    }

    #[test]
    #[should_panic(expected = "mobility list must match")]
    fn mismatched_mobility_list_rejected() {
        use radio_sim::mobility::Mobility;
        let _ = NetworkBuilder::mesh(topology::line(3, 80.0), 1)
            .mobility(vec![Mobility::Static])
            .build();
    }

    #[test]
    #[should_panic(expected = "role list must match")]
    fn mismatched_role_list_rejected() {
        let _ = NetworkBuilder::mesh(topology::line(3, 80.0), 1)
            .roles(vec![1])
            .build();
    }

    #[test]
    fn broadcast_counts_all_receivers() {
        let mut r = line_mesh(2, 80.0, 8);
        r.run_until_converged(Duration::from_secs(5), Duration::from_secs(300))
            .expect("converged");
        let at = r.now() + Duration::from_secs(1);
        r.schedule(TrafficEvent {
            at,
            from: 0,
            to: Target::Broadcast,
            payload_len: 8,
            reliable: false,
        });
        r.run_until(at + Duration::from_secs(30));
        let report = r.report();
        assert_eq!(report.sent, 1);
        assert_eq!(report.delivered, 1); // one other node heard it
    }
}
