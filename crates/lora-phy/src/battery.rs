//! Battery-lifetime estimation.
//!
//! Turns the radio's per-state time accounting
//! ([`crate::power::StateDurations`]) into deployment-planning numbers:
//! average current draw and expected lifetime on a given battery. This
//! quantifies the cost the LoRaMesher paper flags for future work — a
//! mesh router keeps its receiver on, which dominates consumption.

use core::time::Duration;

use crate::power::{EnergyModel, StateDurations};

/// A battery, described by its usable capacity.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Battery {
    /// Usable capacity in milliamp-hours.
    pub capacity_mah: f64,
    /// Usable fraction of nominal capacity (self-discharge, cutoff
    /// voltage, temperature derating). 0.8 is a common planning figure.
    pub usable_fraction: f64,
}

impl Battery {
    /// A battery with the given nominal capacity and 80 % derating.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_mah` is not positive.
    #[must_use]
    pub fn new(capacity_mah: f64) -> Self {
        assert!(capacity_mah > 0.0, "capacity must be positive");
        Battery {
            capacity_mah,
            usable_fraction: 0.8,
        }
    }

    /// A single 18650 lithium cell (~3400 mAh).
    #[must_use]
    pub fn cell_18650() -> Self {
        Battery::new(3400.0)
    }

    /// Two AA alkaline cells (~2500 mAh at low drain).
    #[must_use]
    pub fn aa_pair() -> Self {
        Battery::new(2500.0)
    }

    /// Usable charge in milliamp-hours.
    #[must_use]
    pub fn usable_mah(&self) -> f64 {
        self.capacity_mah * self.usable_fraction
    }
}

/// Consumption profile derived from a measured (or simulated) interval.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ConsumptionProfile {
    /// Average current in milliamps over the interval.
    pub average_milliamps: f64,
    /// Share of consumption spent transmitting (0–1).
    pub tx_share: f64,
    /// Share of consumption spent with the receiver on (listening or
    /// receiving).
    pub rx_share: f64,
}

impl ConsumptionProfile {
    /// Derives the profile from per-state durations under `model`.
    ///
    /// Returns `None` when `durations` covers no time at all.
    #[must_use]
    pub fn from_durations(model: &EnergyModel, durations: &StateDurations) -> Option<Self> {
        let total = durations.tx + durations.rx + durations.idle + durations.sleep;
        if total.is_zero() {
            return None;
        }
        let mj = model.energy_millijoules(durations);
        let avg_ma = mj / model.supply_volts / total.as_secs_f64();
        let share = |ma: f64, d: Duration| ma * model.supply_volts * d.as_secs_f64() / mj;
        Some(ConsumptionProfile {
            average_milliamps: avg_ma,
            tx_share: share(model.tx_milliamps, durations.tx),
            rx_share: share(model.rx_milliamps, durations.rx),
        })
    }

    /// Expected lifetime on `battery` at this average draw.
    #[must_use]
    pub fn lifetime_on(&self, battery: &Battery) -> Duration {
        let hours = battery.usable_mah() / self.average_milliamps;
        Duration::from_secs_f64(hours * 3600.0)
    }
}

#[cfg(test)]
// Exact float equality is the point of these tests: both sides run the
// identical deterministic computation.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    fn model() -> EnergyModel {
        EnergyModel::default()
    }

    #[test]
    fn always_listening_node_draws_rx_current() {
        // 1 hour, receiver on the whole time.
        let d = StateDurations {
            rx: Duration::from_secs(3600),
            ..StateDurations::default()
        };
        let p = ConsumptionProfile::from_durations(&model(), &d).unwrap();
        assert!((p.average_milliamps - 12.0).abs() < 0.01, "{p:?}");
        assert!((p.rx_share - 1.0).abs() < 1e-9);
        assert_eq!(p.tx_share, 0.0);
        // 3400 mAh * 0.8 / 12 mA ≈ 226 h ≈ 9.4 days.
        let life = p.lifetime_on(&Battery::cell_18650());
        let days = life.as_secs_f64() / 86_400.0;
        assert!((9.0..10.0).contains(&days), "{days} days");
    }

    #[test]
    fn sleeping_node_lives_for_years() {
        let d = StateDurations {
            sleep: Duration::from_secs(3600),
            ..StateDurations::default()
        };
        let p = ConsumptionProfile::from_durations(&model(), &d).unwrap();
        let years = p.lifetime_on(&Battery::aa_pair()).as_secs_f64() / (365.25 * 86_400.0);
        assert!(years > 100.0, "sleep current only: {years} years");
    }

    #[test]
    fn tx_share_reflects_duty() {
        // 36 s of TX per hour (the EU868 1 % budget), receiver on otherwise.
        let d = StateDurations {
            tx: Duration::from_secs(36),
            rx: Duration::from_secs(3564),
            ..StateDurations::default()
        };
        let p = ConsumptionProfile::from_durations(&model(), &d).unwrap();
        // TX energy: 36*44 = 1584 mAs; RX: 3564*12 = 42768 mAs.
        assert!((p.tx_share - 1584.0 / (1584.0 + 42768.0)).abs() < 1e-9);
        assert!(p.average_milliamps > 12.0);
    }

    #[test]
    fn empty_interval_is_none() {
        assert!(ConsumptionProfile::from_durations(&model(), &StateDurations::default()).is_none());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _ = Battery::new(0.0);
    }
}
