//! LoRa time-on-air computation.
//!
//! Implements the frame-duration formula from the Semtech SX1276 datasheet
//! (§4.1.1.6) and the LoRa modem calculator:
//!
//! ```text
//! T_sym      = 2^SF / BW
//! T_preamble = (n_preamble + 4.25) * T_sym
//! n_payload  = 8 + max(ceil((8*PL - 4*SF + 28 + 16*CRC - 20*IH)
//!                           / (4*(SF - 2*DE))) * (CR + 4), 0)
//! T_payload  = n_payload * T_sym
//! T_frame    = T_preamble + T_payload
//! ```
//!
//! where `PL` is payload bytes, `IH=1` for implicit header, `CRC=1` when
//! the CRC is on, `DE=1` with low-data-rate optimization and `CR` is the
//! coding-rate offset (1–4).

use core::time::Duration;

use crate::modulation::LoRaModulation;

impl LoRaModulation {
    /// Number of symbols in the payload part of a frame carrying
    /// `payload_len` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `payload_len` exceeds [`LoRaModulation::MAX_PHY_PAYLOAD`].
    #[must_use]
    pub fn payload_symbols(&self, payload_len: usize) -> u32 {
        assert!(
            payload_len <= Self::MAX_PHY_PAYLOAD,
            "payload of {payload_len} bytes exceeds the {}-byte LoRa PHY limit",
            Self::MAX_PHY_PAYLOAD
        );
        let pl = payload_len as i64;
        let sf = i64::from(self.spreading_factor.value());
        let crc = i64::from(self.crc_on);
        let ih = i64::from(!self.explicit_header);
        let de = i64::from(self.low_data_rate_optimize);
        let cr = i64::from(self.coding_rate.denominator_offset());

        let numerator = 8 * pl - 4 * sf + 28 + 16 * crc - 20 * ih;
        let denominator = 4 * (sf - 2 * de);
        debug_assert!(denominator > 0);
        let blocks = if numerator > 0 {
            // ceiling division
            (numerator + denominator - 1) / denominator
        } else {
            0
        };
        (8 + blocks * (cr + 4)).max(8) as u32
    }

    /// Duration of the preamble, `(n_preamble + 4.25)` symbols.
    #[must_use]
    pub fn preamble_time(&self) -> Duration {
        let sym = self.symbol_time().as_secs_f64();
        Duration::from_secs_f64((f64::from(self.preamble_symbols) + 4.25) * sym)
    }

    /// Total on-air duration of a frame carrying `payload_len` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `payload_len` exceeds [`LoRaModulation::MAX_PHY_PAYLOAD`].
    #[must_use]
    pub fn time_on_air(&self, payload_len: usize) -> Duration {
        let sym = self.symbol_time().as_secs_f64();
        let payload = f64::from(self.payload_symbols(payload_len)) * sym;
        self.preamble_time() + Duration::from_secs_f64(payload)
    }

    /// Effective goodput in bytes per second for frames of `payload_len`
    /// bytes sent back to back (ignoring regulatory duty cycles).
    ///
    /// # Panics
    ///
    /// Panics if `payload_len` exceeds [`LoRaModulation::MAX_PHY_PAYLOAD`].
    #[must_use]
    pub fn goodput_bytes_per_sec(&self, payload_len: usize) -> f64 {
        payload_len as f64 / self.time_on_air(payload_len).as_secs_f64()
    }

    /// The largest payload whose frame fits within `budget` of airtime, or
    /// `None` if not even an empty frame fits.
    #[must_use]
    pub fn max_payload_within(&self, budget: Duration) -> Option<usize> {
        if self.time_on_air(0) > budget {
            return None;
        }
        // time_on_air is monotone in payload_len; binary search the largest fit.
        let (mut lo, mut hi) = (0usize, Self::MAX_PHY_PAYLOAD);
        while lo < hi {
            let mid = (lo + hi).div_ceil(2);
            if self.time_on_air(mid) <= budget {
                lo = mid;
            } else {
                hi = mid - 1;
            }
        }
        Some(lo)
    }
}

#[cfg(test)]
mod tests {
    use crate::modulation::{Bandwidth, CodingRate, LoRaModulation, SpreadingFactor};
    use std::time::Duration;

    fn toa_ms(sf: SpreadingFactor, bw: Bandwidth, cr: CodingRate, pl: usize) -> f64 {
        LoRaModulation::new(sf, bw, cr)
            .time_on_air(pl)
            .as_secs_f64()
            * 1000.0
    }

    #[test]
    fn matches_semtech_calculator_sf7() {
        // Semtech LoRa calculator: SF7, 125 kHz, CR4/5, 8 preamble symbols,
        // explicit header, CRC on, 10-byte payload -> 41.216 ms
        // (preamble 12.25 sym + 28 payload sym, T_sym = 1.024 ms).
        let ms = toa_ms(
            SpreadingFactor::Sf7,
            Bandwidth::Khz125,
            CodingRate::Cr4_5,
            10,
        );
        assert!((ms - 41.216).abs() < 0.01, "got {ms} ms");
    }

    #[test]
    fn matches_semtech_calculator_sf12() {
        // SF12, 125 kHz, CR4/5, 10-byte payload, LDRO on -> 991.23 ms.
        let ms = toa_ms(
            SpreadingFactor::Sf12,
            Bandwidth::Khz125,
            CodingRate::Cr4_5,
            10,
        );
        assert!((ms - 991.232).abs() < 0.5, "got {ms} ms");
    }

    #[test]
    fn matches_semtech_calculator_sf9_51_bytes() {
        // SF9, 125 kHz, CR4/5, 51-byte payload -> 328.704 ms
        // (preamble 12.25 sym + 68 payload sym, T_sym = 4.096 ms).
        let ms = toa_ms(
            SpreadingFactor::Sf9,
            Bandwidth::Khz125,
            CodingRate::Cr4_5,
            51,
        );
        assert!((ms - 328.704).abs() < 0.1, "got {ms} ms");
    }

    #[test]
    fn payload_symbols_has_floor_of_8() {
        // Tiny payloads still cost 8 payload symbols.
        let m = LoRaModulation::new(SpreadingFactor::Sf12, Bandwidth::Khz125, CodingRate::Cr4_5);
        assert!(m.payload_symbols(0) >= 8);
    }

    #[test]
    fn time_on_air_monotone_in_payload() {
        for sf in SpreadingFactor::ALL {
            let m = LoRaModulation::new(sf, Bandwidth::Khz125, CodingRate::Cr4_7);
            let mut last = Duration::ZERO;
            for pl in 0..=LoRaModulation::MAX_PHY_PAYLOAD {
                let t = m.time_on_air(pl);
                assert!(t >= last, "{sf:?} payload {pl}");
                last = t;
            }
        }
    }

    #[test]
    fn time_on_air_monotone_in_sf() {
        let mut last = Duration::ZERO;
        for sf in SpreadingFactor::ALL {
            let t = LoRaModulation::new(sf, Bandwidth::Khz125, CodingRate::Cr4_5).time_on_air(32);
            assert!(t > last, "{sf:?}");
            last = t;
        }
    }

    #[test]
    fn wider_bandwidth_is_faster() {
        let t125 = LoRaModulation::new(SpreadingFactor::Sf9, Bandwidth::Khz125, CodingRate::Cr4_5)
            .time_on_air(32);
        let t500 = LoRaModulation::new(SpreadingFactor::Sf9, Bandwidth::Khz500, CodingRate::Cr4_5)
            .time_on_air(32);
        assert_eq!(t125.as_micros(), 4 * t500.as_micros());
    }

    #[test]
    fn higher_coding_rate_is_slower() {
        let fast = LoRaModulation::new(SpreadingFactor::Sf8, Bandwidth::Khz125, CodingRate::Cr4_5)
            .time_on_air(64);
        let slow = LoRaModulation::new(SpreadingFactor::Sf8, Bandwidth::Khz125, CodingRate::Cr4_8)
            .time_on_air(64);
        assert!(slow > fast);
    }

    #[test]
    fn max_payload_within_is_tight() {
        let m = LoRaModulation::default();
        let budget = Duration::from_millis(100);
        let pl = m.max_payload_within(budget).unwrap();
        assert!(m.time_on_air(pl) <= budget);
        if pl < LoRaModulation::MAX_PHY_PAYLOAD {
            assert!(m.time_on_air(pl + 1) > budget);
        }
    }

    #[test]
    fn max_payload_within_none_when_budget_tiny() {
        let m = LoRaModulation::new(SpreadingFactor::Sf12, Bandwidth::Khz125, CodingRate::Cr4_8);
        assert_eq!(m.max_payload_within(Duration::from_millis(1)), None);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_payload_panics() {
        let _ = LoRaModulation::default().time_on_air(256);
    }

    #[test]
    fn goodput_increases_with_payload() {
        let m = LoRaModulation::default();
        assert!(m.goodput_bytes_per_sec(200) > m.goodput_bytes_per_sec(10));
    }
}
