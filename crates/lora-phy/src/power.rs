//! Power units and a radio energy model.

use core::fmt;
use core::ops::{Add, Sub};
use core::time::Duration;

/// A power level in dBm (decibel-milliwatts).
///
/// A newtype so that transmit powers, RSSI values and sensitivities cannot
/// be mixed up with plain `f64` gains or losses (which are in dB).
#[derive(Clone, Copy, Debug, PartialEq, PartialOrd, Default)]
pub struct Dbm(f64);

impl Dbm {
    /// Wraps a dBm value.
    #[must_use]
    pub const fn new(dbm: f64) -> Self {
        Dbm(dbm)
    }

    /// The raw dBm value.
    #[inline]
    #[must_use]
    pub fn value(self) -> f64 {
        self.0
    }

    /// Converts to linear milliwatts.
    ///
    /// This is a `powf` — cheap enough to call once per link, expensive
    /// enough that per-frame hot paths should cache the result (see
    /// `radio_sim::link_cache`).
    #[inline]
    #[must_use]
    pub fn to_milliwatts(self) -> Milliwatts {
        Milliwatts(crate::math::powf(10.0, self.0 / 10.0))
    }
}

impl fmt::Display for Dbm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} dBm", self.0)
    }
}

impl Add<f64> for Dbm {
    type Output = Dbm;
    /// Adds a gain in dB.
    fn add(self, gain_db: f64) -> Dbm {
        Dbm(self.0 + gain_db)
    }
}

impl Sub<f64> for Dbm {
    type Output = Dbm;
    /// Subtracts a loss in dB.
    fn sub(self, loss_db: f64) -> Dbm {
        Dbm(self.0 - loss_db)
    }
}

impl Sub for Dbm {
    type Output = f64;
    /// The difference of two absolute levels is a ratio in dB.
    fn sub(self, other: Dbm) -> f64 {
        self.0 - other.0
    }
}

/// Linear power in milliwatts.
#[derive(Clone, Copy, Debug, PartialEq, PartialOrd, Default)]
pub struct Milliwatts(f64);

impl Milliwatts {
    /// Wraps a milliwatt value.
    ///
    /// # Panics
    ///
    /// Panics if `mw` is negative or not finite.
    #[must_use]
    pub fn new(mw: f64) -> Self {
        assert!(
            mw.is_finite() && mw >= 0.0,
            "power must be non-negative, got {mw}"
        );
        Milliwatts(mw)
    }

    /// The raw milliwatt value.
    #[inline]
    #[must_use]
    pub fn value(self) -> f64 {
        self.0
    }

    /// Converts to dBm. Zero power maps to negative infinity dBm.
    #[inline]
    #[must_use]
    pub fn to_dbm(self) -> Dbm {
        Dbm(10.0 * crate::math::log10(self.0))
    }
}

impl Add for Milliwatts {
    type Output = Milliwatts;
    /// Linear powers add (e.g. summing interference).
    fn add(self, other: Milliwatts) -> Milliwatts {
        Milliwatts(self.0 + other.0)
    }
}

impl core::iter::Sum for Milliwatts {
    fn sum<I: Iterator<Item = Milliwatts>>(iter: I) -> Milliwatts {
        iter.fold(Milliwatts(0.0), Add::add)
    }
}

impl fmt::Display for Milliwatts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} mW", self.0)
    }
}

/// Supply currents of an SX1276-class radio in each operating state,
/// used to estimate node energy consumption.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EnergyModel {
    /// Supply voltage in volts.
    pub supply_volts: f64,
    /// Transmit current in milliamps (at +14 dBm, PA_BOOST off: ~44 mA).
    pub tx_milliamps: f64,
    /// Receive current in milliamps (~12 mA).
    pub rx_milliamps: f64,
    /// Idle/standby current in milliamps (~1.6 mA).
    pub idle_milliamps: f64,
    /// Sleep current in milliamps (~0.0002 mA).
    pub sleep_milliamps: f64,
}

impl Default for EnergyModel {
    /// SX1276 datasheet typical values at 3.3 V.
    fn default() -> Self {
        EnergyModel {
            supply_volts: 3.3,
            tx_milliamps: 44.0,
            rx_milliamps: 12.0,
            idle_milliamps: 1.6,
            sleep_milliamps: 0.0002,
        }
    }
}

/// Time spent in each radio state, accumulated by a node.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StateDurations {
    /// Total time transmitting.
    pub tx: Duration,
    /// Total time in receive mode.
    pub rx: Duration,
    /// Total time idle/standby.
    pub idle: Duration,
    /// Total time asleep.
    pub sleep: Duration,
}

impl EnergyModel {
    /// Energy in millijoules consumed over the given state durations.
    #[must_use]
    pub fn energy_millijoules(&self, t: &StateDurations) -> f64 {
        let mj = |ma: f64, d: Duration| ma * self.supply_volts * d.as_secs_f64();
        mj(self.tx_milliamps, t.tx)
            + mj(self.rx_milliamps, t.rx)
            + mj(self.idle_milliamps, t.idle)
            + mj(self.sleep_milliamps, t.sleep)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dbm_milliwatt_round_trip() {
        for dbm in [-120.0, -30.0, 0.0, 14.0, 20.0] {
            let back = Dbm::new(dbm).to_milliwatts().to_dbm().value();
            assert!((back - dbm).abs() < 1e-9, "{dbm}");
        }
    }

    #[test]
    fn zero_dbm_is_one_milliwatt() {
        assert!((Dbm::new(0.0).to_milliwatts().value() - 1.0).abs() < 1e-12);
        assert!((Dbm::new(14.0).to_milliwatts().value() - 25.1189).abs() < 1e-3);
    }

    #[test]
    fn dbm_arithmetic() {
        let p = Dbm::new(14.0) + 2.0 - 120.0;
        assert!((p.value() - (-104.0)).abs() < 1e-12);
        assert!((Dbm::new(-100.0) - Dbm::new(-106.0) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn milliwatts_sum_linearly() {
        let total: Milliwatts = [1.0, 2.0, 3.0].into_iter().map(Milliwatts::new).sum();
        assert!((total.value() - 6.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_milliwatts_rejected() {
        let _ = Milliwatts::new(-1.0);
    }

    #[test]
    fn energy_model_integrates_states() {
        let m = EnergyModel::default();
        let t = StateDurations {
            tx: Duration::from_secs(1),
            rx: Duration::from_secs(10),
            idle: Duration::from_secs(100),
            sleep: Duration::from_secs(1000),
        };
        let e = m.energy_millijoules(&t);
        // tx: 44*3.3*1 = 145.2, rx: 12*3.3*10 = 396, idle: 1.6*3.3*100 = 528,
        // sleep: 0.0002*3.3*1000 = 0.66 -> 1069.86 mJ
        assert!((e - 1069.86).abs() < 0.01, "got {e}");
    }

    #[test]
    fn display_formats() {
        assert_eq!(Dbm::new(14.0).to_string(), "14.0 dBm");
        assert_eq!(Milliwatts::new(25.0).to_string(), "25.000 mW");
    }
}
