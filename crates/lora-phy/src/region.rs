//! Regional regulatory parameters and duty-cycle accounting.
//!
//! The LoRaMesher demo operates in the European 868 MHz ISM band, where
//! ETSI EN 300 220 limits each device to a *duty cycle* per sub-band —
//! 1 % in the g1 sub-band the library uses by default. The simulator
//! enforces this with a sliding-window [`DutyCycleTracker`], which is the
//! same mechanism a compliant firmware implements.

use alloc::collections::VecDeque;
use core::time::Duration;

use crate::power::Dbm;

/// An ISM sub-band with its regulatory limits.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SubBand {
    /// Lower edge in hertz.
    pub low_hz: u64,
    /// Upper edge in hertz.
    pub high_hz: u64,
    /// Maximum duty cycle as a fraction (0.01 = 1 %).
    pub duty_cycle: f64,
    /// Maximum radiated power.
    pub max_eirp: Dbm,
    /// Maximum duration of a single transmission (FCC dwell time in
    /// US915: 400 ms), or `None` where no dwell limit applies.
    pub max_dwell: Option<Duration>,
}

impl SubBand {
    /// Whether `freq_hz` lies inside this sub-band.
    #[must_use]
    pub fn contains(&self, freq_hz: u64) -> bool {
        (self.low_hz..=self.high_hz).contains(&freq_hz)
    }
}

/// A regulatory region.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Region {
    /// European 863–870 MHz band (ETSI EN 300 220).
    Eu868,
    /// US 902–928 MHz band (FCC part 15: no duty cycle, 400 ms dwell).
    Us915,
    /// Unregulated — used by tests and stress experiments.
    Unlimited,
}

impl Region {
    /// The sub-bands of this region, with their duty-cycle limits.
    #[must_use]
    pub fn sub_bands(&self) -> &'static [SubBand] {
        const EU868: &[SubBand] = &[
            // g (863.0–868.0): 1 %
            SubBand {
                low_hz: 863_000_000,
                high_hz: 868_000_000,
                duty_cycle: 0.01,
                max_eirp: Dbm::new(14.0),
                max_dwell: None,
            },
            // g1 (868.0–868.6): 1 %
            SubBand {
                low_hz: 868_000_000,
                high_hz: 868_600_000,
                duty_cycle: 0.01,
                max_eirp: Dbm::new(14.0),
                max_dwell: None,
            },
            // g2 (868.7–869.2): 0.1 %
            SubBand {
                low_hz: 868_700_000,
                high_hz: 869_200_000,
                duty_cycle: 0.001,
                max_eirp: Dbm::new(14.0),
                max_dwell: None,
            },
            // g3 (869.4–869.65): 10 %
            SubBand {
                low_hz: 869_400_000,
                high_hz: 869_650_000,
                duty_cycle: 0.10,
                max_eirp: Dbm::new(27.0),
                max_dwell: None,
            },
        ];
        const US915: &[SubBand] = &[SubBand {
            low_hz: 902_000_000,
            high_hz: 928_000_000,
            duty_cycle: 1.0,
            max_eirp: Dbm::new(30.0),
            max_dwell: Some(Duration::from_millis(400)),
        }];
        const UNLIMITED: &[SubBand] = &[SubBand {
            low_hz: 0,
            high_hz: u64::MAX,
            duty_cycle: 1.0,
            max_eirp: Dbm::new(30.0),
            max_dwell: None,
        }];
        match self {
            Region::Eu868 => EU868,
            Region::Us915 => US915,
            Region::Unlimited => UNLIMITED,
        }
    }

    /// The sub-band containing `freq_hz`, if any.
    #[must_use]
    pub fn sub_band_for(&self, freq_hz: u64) -> Option<&'static SubBand> {
        self.sub_bands().iter().find(|b| b.contains(freq_hz))
    }

    /// The default LoRaMesher channel for this region.
    #[must_use]
    pub fn default_frequency_hz(&self) -> u64 {
        match self {
            Region::Eu868 => 868_100_000,
            Region::Us915 => 915_000_000,
            Region::Unlimited => 868_100_000,
        }
    }
}

/// Sliding-window duty-cycle accounting for one transmitter on one sub-band.
///
/// The tracker records each transmission and answers two questions a MAC
/// needs: *may I transmit a frame of this length now?* and *if not, when?*
/// Time is supplied by the caller as an offset from an arbitrary epoch,
/// which keeps the tracker usable both under the simulator's virtual clock
/// and a real one.
///
/// ```
/// use std::time::Duration;
/// use lora_phy::region::DutyCycleTracker;
///
/// // 1 % duty cycle over a 1-hour window -> 36 s of airtime per hour.
/// let mut t = DutyCycleTracker::new(0.01, Duration::from_secs(3600));
/// let now = Duration::ZERO;
/// assert!(t.try_transmit(now, Duration::from_secs(10)));
/// assert!(t.try_transmit(now, Duration::from_secs(26)));
/// assert!(!t.try_transmit(now, Duration::from_secs(1)));
/// ```
#[derive(Clone, Debug)]
pub struct DutyCycleTracker {
    duty_cycle: f64,
    window: Duration,
    /// Past transmissions as (start, airtime), oldest first.
    history: VecDeque<(Duration, Duration)>,
    /// Airtime spent inside the current window.
    spent: Duration,
    /// Total airtime ever spent (for statistics).
    total_spent: Duration,
}

impl DutyCycleTracker {
    /// Creates a tracker allowing `duty_cycle` (fraction) of each sliding
    /// `window`.
    ///
    /// # Panics
    ///
    /// Panics if `duty_cycle` is not in `(0, 1]` or the window is zero.
    #[must_use]
    pub fn new(duty_cycle: f64, window: Duration) -> Self {
        assert!(
            duty_cycle > 0.0 && duty_cycle <= 1.0,
            "duty cycle must be in (0, 1], got {duty_cycle}"
        );
        assert!(!window.is_zero(), "window must be non-zero");
        DutyCycleTracker {
            duty_cycle,
            window,
            history: VecDeque::new(),
            spent: Duration::ZERO,
            total_spent: Duration::ZERO,
        }
    }

    /// A tracker for the ETSI 1 % limit over the canonical 1-hour window.
    #[must_use]
    pub fn eu868_one_percent() -> Self {
        DutyCycleTracker::new(0.01, Duration::from_secs(3600))
    }

    /// A tracker that never refuses (100 % duty cycle).
    #[must_use]
    pub fn unlimited() -> Self {
        DutyCycleTracker::new(1.0, Duration::from_secs(3600))
    }

    /// The airtime budget per window.
    #[must_use]
    pub fn budget(&self) -> Duration {
        self.window.mul_f64(self.duty_cycle)
    }

    fn evict(&mut self, now: Duration) {
        let horizon = now.saturating_sub(self.window);
        while let Some(&(start, airtime)) = self.history.front() {
            if start < horizon {
                self.history.pop_front();
                self.spent = self.spent.saturating_sub(airtime);
            } else {
                break;
            }
        }
    }

    /// Whether a transmission of `airtime` starting at `now` is allowed.
    #[must_use]
    pub fn would_allow(&mut self, now: Duration, airtime: Duration) -> bool {
        if self.duty_cycle >= 1.0 {
            return true;
        }
        self.evict(now);
        self.spent + airtime <= self.budget()
    }

    /// Records and permits a transmission if the budget allows it.
    ///
    /// Returns `false` (recording nothing) when the transmission would
    /// exceed the duty cycle.
    #[must_use]
    pub fn try_transmit(&mut self, now: Duration, airtime: Duration) -> bool {
        if !self.would_allow(now, airtime) {
            return false;
        }
        self.record(now, airtime);
        true
    }

    /// Unconditionally records a transmission (used when enforcement is the
    /// caller's responsibility).
    pub fn record(&mut self, now: Duration, airtime: Duration) {
        self.history.push_back((now, airtime));
        self.spent += airtime;
        self.total_spent += airtime;
    }

    /// Earliest time at or after `now` when a frame of `airtime` may be
    /// sent, or `None` when the frame can never fit the budget.
    #[must_use]
    pub fn next_allowed(&mut self, now: Duration, airtime: Duration) -> Option<Duration> {
        if airtime > self.budget() && self.duty_cycle < 1.0 {
            return None;
        }
        if self.would_allow(now, airtime) {
            return Some(now);
        }
        // Walk the history: after each oldest entry falls out of the
        // window, re-check. The set of candidate times is exactly
        // {entry.start + window + ε}.
        let mut probe = self.clone();
        for &(start, _) in &self.history {
            let t = start + self.window + Duration::from_micros(1);
            if t >= now && probe.would_allow(t, airtime) {
                return Some(t);
            }
        }
        None
    }

    /// Airtime used within the window ending at `now`.
    #[must_use]
    pub fn used(&mut self, now: Duration) -> Duration {
        self.evict(now);
        self.spent
    }

    /// Total airtime ever recorded (not windowed).
    #[must_use]
    pub fn total_airtime(&self) -> Duration {
        self.total_spent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const HOUR: Duration = Duration::from_secs(3600);

    #[test]
    fn eu868_sub_bands_cover_default_channel() {
        let r = Region::Eu868;
        let b = r.sub_band_for(r.default_frequency_hz()).expect("sub-band");
        assert!((b.duty_cycle - 0.01).abs() < 1e-12);
    }

    #[test]
    fn frequency_outside_bands_is_none() {
        assert!(Region::Eu868.sub_band_for(870_500_000).is_none());
        assert!(Region::Eu868.sub_band_for(868_650_000).is_none()); // between g1 and g2
    }

    #[test]
    fn us915_has_no_duty_cycle_but_a_dwell_limit() {
        let b = Region::Us915.sub_band_for(915_000_000).unwrap();
        assert!((b.duty_cycle - 1.0).abs() < 1e-12);
        assert_eq!(b.max_dwell, Some(Duration::from_millis(400)));
        // EU868 regulates by duty cycle instead.
        let eu = Region::Eu868.sub_band_for(868_100_000).unwrap();
        assert_eq!(eu.max_dwell, None);
    }

    #[test]
    fn budget_is_duty_times_window() {
        let t = DutyCycleTracker::eu868_one_percent();
        assert_eq!(t.budget(), Duration::from_secs(36));
    }

    #[test]
    fn refuses_beyond_budget() {
        let mut t = DutyCycleTracker::eu868_one_percent();
        assert!(t.try_transmit(Duration::ZERO, Duration::from_secs(36)));
        assert!(!t.try_transmit(Duration::from_secs(1), Duration::from_millis(1)));
    }

    #[test]
    fn budget_frees_after_window_slides() {
        let mut t = DutyCycleTracker::eu868_one_percent();
        assert!(t.try_transmit(Duration::ZERO, Duration::from_secs(36)));
        assert!(!t.try_transmit(HOUR - Duration::from_secs(1), Duration::from_secs(1)));
        assert!(t.try_transmit(HOUR + Duration::from_secs(1), Duration::from_secs(1)));
    }

    #[test]
    fn next_allowed_is_exact() {
        let mut t = DutyCycleTracker::eu868_one_percent();
        let start = Duration::from_secs(100);
        assert!(t.try_transmit(start, Duration::from_secs(36)));
        let when = t
            .next_allowed(Duration::from_secs(200), Duration::from_secs(1))
            .expect("should eventually be allowed");
        assert!(when > start + HOUR);
        assert!(when < start + HOUR + Duration::from_secs(1));
        assert!(t.would_allow(when, Duration::from_secs(1)));
    }

    #[test]
    fn next_allowed_now_when_idle() {
        let mut t = DutyCycleTracker::eu868_one_percent();
        let now = Duration::from_secs(5);
        assert_eq!(t.next_allowed(now, Duration::from_secs(1)), Some(now));
    }

    #[test]
    fn next_allowed_none_for_impossible_frame() {
        let mut t = DutyCycleTracker::eu868_one_percent();
        assert_eq!(
            t.next_allowed(Duration::ZERO, Duration::from_secs(37)),
            None
        );
    }

    #[test]
    fn unlimited_never_refuses() {
        let mut t = DutyCycleTracker::unlimited();
        for i in 0..100 {
            assert!(t.try_transmit(Duration::from_secs(i), Duration::from_secs(10)));
        }
    }

    #[test]
    fn used_and_total_track_separately() {
        let mut t = DutyCycleTracker::eu868_one_percent();
        assert!(t.try_transmit(Duration::ZERO, Duration::from_secs(10)));
        assert!(t.try_transmit(Duration::from_secs(10), Duration::from_secs(10)));
        assert_eq!(t.used(Duration::from_secs(20)), Duration::from_secs(20));
        // After the window slides past, `used` drops but `total` does not.
        assert_eq!(t.used(Duration::from_secs(8000)), Duration::ZERO);
        assert_eq!(t.total_airtime(), Duration::from_secs(20));
    }

    #[test]
    #[should_panic(expected = "duty cycle")]
    fn zero_duty_cycle_rejected() {
        let _ = DutyCycleTracker::new(0.0, HOUR);
    }
}
