//! Receiver sensitivity, SNR demodulation limits and link-budget math.
//!
//! The values are the SX1276 datasheet figures that the LoRaMesher demo
//! hardware (TTGO LoRa32 boards) uses. Reception in the simulator is
//! decided by two thresholds: the received power must exceed the
//! SF/BW-dependent *sensitivity*, and the signal-to-noise ratio must exceed
//! the SF-dependent *demodulation floor*.

use crate::modulation::{Bandwidth, LoRaModulation, SpreadingFactor};
use crate::power::Dbm;

/// Thermal noise floor for a given bandwidth at room temperature with the
/// SX1276's ~6 dB noise figure: `-174 + 10*log10(BW) + NF` dBm.
#[must_use]
pub fn noise_floor(bandwidth: Bandwidth) -> Dbm {
    let nf = 6.0;
    Dbm::new(-174.0 + 10.0 * crate::math::log10(f64::from(bandwidth.hz())) + nf)
}

/// Minimum SNR (dB) at which each spreading factor still demodulates
/// (SX1276 datasheet, table 13).
#[must_use]
pub fn snr_demodulation_floor(sf: SpreadingFactor) -> f64 {
    match sf {
        SpreadingFactor::Sf7 => -7.5,
        SpreadingFactor::Sf8 => -10.0,
        SpreadingFactor::Sf9 => -12.5,
        SpreadingFactor::Sf10 => -15.0,
        SpreadingFactor::Sf11 => -17.5,
        SpreadingFactor::Sf12 => -20.0,
    }
}

/// Receiver sensitivity: the weakest signal that is still received,
/// `noise_floor + snr_floor`.
///
/// At SF7/125 kHz this is about -124.5 dBm and at SF12/125 kHz about
/// -137 dBm, within a dB of the datasheet figures.
#[must_use]
pub fn sensitivity(sf: SpreadingFactor, bw: Bandwidth) -> Dbm {
    Dbm::new(noise_floor(bw).value() + snr_demodulation_floor(sf))
}

/// Co-channel rejection: how many dB stronger a frame must be than an
/// interfering LoRa frame with the *same* SF to be captured correctly.
///
/// The widely used capture threshold for same-SF LoRa collisions is 6 dB
/// (Bor et al., "Do LoRa Low-Power Wide-Area Networks Scale?").
pub const CAPTURE_THRESHOLD_DB: f64 = 6.0;

/// Measured quality of a received frame.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SignalQuality {
    /// Received signal strength.
    pub rssi: Dbm,
    /// Signal-to-noise ratio in dB.
    pub snr: f64,
}

impl SignalQuality {
    /// A perfect-quality placeholder used by loopback/test transports.
    #[must_use]
    pub fn ideal() -> Self {
        SignalQuality {
            rssi: Dbm::new(-30.0),
            snr: 20.0,
        }
    }
}

/// One directed link budget computation.
///
/// ```
/// use lora_phy::{Dbm, LinkBudget, LoRaModulation};
///
/// let budget = LinkBudget {
///     tx_power: Dbm::new(14.0),
///     tx_antenna_gain_db: 2.0,
///     rx_antenna_gain_db: 2.0,
///     path_loss_db: 120.0,
/// };
/// let m = LoRaModulation::default();
/// let q = budget.signal_quality(m.bandwidth);
/// assert!(budget.closes(&m));
/// assert!(q.snr > 0.0);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkBudget {
    /// Transmit power at the antenna connector.
    pub tx_power: Dbm,
    /// Transmit antenna gain in dBi.
    pub tx_antenna_gain_db: f64,
    /// Receive antenna gain in dBi.
    pub rx_antenna_gain_db: f64,
    /// Propagation loss between the antennas in dB.
    pub path_loss_db: f64,
}

impl LinkBudget {
    /// Received signal strength: EIRP minus path loss plus receive gain.
    #[must_use]
    pub fn received_power(&self) -> Dbm {
        Dbm::new(
            self.tx_power.value() + self.tx_antenna_gain_db - self.path_loss_db
                + self.rx_antenna_gain_db,
        )
    }

    /// The RSSI/SNR pair the receiver would measure in the absence of
    /// interference.
    #[must_use]
    pub fn signal_quality(&self, bw: Bandwidth) -> SignalQuality {
        let rssi = self.received_power();
        SignalQuality {
            rssi,
            snr: rssi.value() - noise_floor(bw).value(),
        }
    }

    /// Whether this link closes for the given modulation: the received
    /// power exceeds the sensitivity *and* the SNR exceeds the
    /// demodulation floor.
    #[must_use]
    pub fn closes(&self, modulation: &LoRaModulation) -> bool {
        let q = self.signal_quality(modulation.bandwidth);
        q.rssi >= sensitivity(modulation.spreading_factor, modulation.bandwidth)
            && q.snr >= snr_demodulation_floor(modulation.spreading_factor)
    }

    /// Margin above the demodulation floor in dB (negative when the link
    /// does not close).
    #[must_use]
    pub fn snr_margin(&self, modulation: &LoRaModulation) -> f64 {
        self.signal_quality(modulation.bandwidth).snr
            - snr_demodulation_floor(modulation.spreading_factor)
    }
}

/// Packet-error probability as a function of SNR margin.
///
/// Rather than a hard cliff at the demodulation floor, real LoRa links show
/// a narrow "grey zone" of a few dB where reception is probabilistic. This
/// logistic model is 50 % at the floor and >99 % once the margin exceeds
/// ~3 dB, matching the waterfall curves measured for SX127x receivers.
#[must_use]
pub fn packet_success_probability(snr_margin_db: f64) -> f64 {
    let k = 1.5; // steepness: ~3 dB from 10% to 90%
    1.0 / (1.0 + crate::math::exp(-k * snr_margin_db))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modulation::CodingRate;

    #[test]
    fn noise_floor_125khz() {
        // -174 + 10log10(125e3) + 6 = -117.03 dBm
        let nf = noise_floor(Bandwidth::Khz125).value();
        assert!((nf - (-117.03)).abs() < 0.01, "got {nf}");
    }

    #[test]
    fn sensitivity_matches_datasheet_within_a_db() {
        // SX1276 datasheet: SF7/125k = -123 dBm, SF12/125k = -136 dBm.
        let s7 = sensitivity(SpreadingFactor::Sf7, Bandwidth::Khz125).value();
        let s12 = sensitivity(SpreadingFactor::Sf12, Bandwidth::Khz125).value();
        assert!((s7 - (-123.0)).abs() < 2.0, "SF7 sensitivity {s7}");
        assert!((s12 - (-136.0)).abs() < 2.0, "SF12 sensitivity {s12}");
    }

    #[test]
    fn sensitivity_improves_with_sf_and_narrower_bw() {
        for w in SpreadingFactor::ALL.windows(2) {
            assert!(sensitivity(w[1], Bandwidth::Khz125) < sensitivity(w[0], Bandwidth::Khz125));
        }
        assert!(
            sensitivity(SpreadingFactor::Sf7, Bandwidth::Khz125)
                < sensitivity(SpreadingFactor::Sf7, Bandwidth::Khz500)
        );
    }

    #[test]
    fn link_closes_iff_both_thresholds_met() {
        let m = LoRaModulation::new(SpreadingFactor::Sf7, Bandwidth::Khz125, CodingRate::Cr4_5);
        let mk = |loss| LinkBudget {
            tx_power: Dbm::new(14.0),
            tx_antenna_gain_db: 0.0,
            rx_antenna_gain_db: 0.0,
            path_loss_db: loss,
        };
        assert!(mk(130.0).closes(&m)); // rx = -116 dBm, above -124.5
        assert!(!mk(140.0).closes(&m)); // rx = -126 dBm, below sensitivity
    }

    #[test]
    fn longer_sf_closes_longer_links() {
        let budget = LinkBudget {
            tx_power: Dbm::new(14.0),
            tx_antenna_gain_db: 0.0,
            rx_antenna_gain_db: 0.0,
            path_loss_db: 145.0,
        };
        let sf7 = LoRaModulation::new(SpreadingFactor::Sf7, Bandwidth::Khz125, CodingRate::Cr4_5);
        let sf12 = LoRaModulation::new(SpreadingFactor::Sf12, Bandwidth::Khz125, CodingRate::Cr4_5);
        assert!(!budget.closes(&sf7));
        assert!(budget.closes(&sf12));
    }

    #[test]
    fn snr_margin_sign_agrees_with_closes() {
        let m = LoRaModulation::default();
        for loss in [100.0, 120.0, 131.0, 135.0, 150.0] {
            let b = LinkBudget {
                tx_power: Dbm::new(14.0),
                tx_antenna_gain_db: 0.0,
                rx_antenna_gain_db: 0.0,
                path_loss_db: loss,
            };
            // When the margin is comfortably positive the link must close;
            // when negative it must not (RSSI and SNR thresholds coincide
            // because sensitivity = noise floor + snr floor).
            if b.snr_margin(&m) > 0.0 {
                assert!(b.closes(&m), "loss {loss}");
            } else {
                assert!(!b.closes(&m), "loss {loss}");
            }
        }
    }

    #[test]
    fn success_probability_is_sigmoid() {
        assert!((packet_success_probability(0.0) - 0.5).abs() < 1e-12);
        assert!(packet_success_probability(5.0) > 0.99);
        assert!(packet_success_probability(-5.0) < 0.01);
        // monotone
        let mut last = 0.0;
        for m in -10..=10 {
            let p = packet_success_probability(f64::from(m));
            assert!(p >= last);
            last = p;
        }
    }

    #[test]
    fn ideal_quality_is_strong() {
        let q = SignalQuality::ideal();
        assert!(q.snr > snr_demodulation_floor(SpreadingFactor::Sf7));
    }
}
