//! LoRa modulation parameters.
//!
//! LoRa transmissions are parameterised by a *spreading factor* (SF7–SF12),
//! a *bandwidth* (125/250/500 kHz in the sub-GHz bands) and a *coding rate*
//! (4/5–4/8). Together with the preamble length and header mode these fully
//! determine the on-air duration and robustness of a frame.

use core::fmt;
use core::time::Duration;

/// LoRa spreading factor (chips per symbol = `2^sf`).
///
/// Higher spreading factors trade data rate for range: each step roughly
/// doubles time-on-air and buys ~2.5 dB of link budget.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum SpreadingFactor {
    /// SF7 — fastest, shortest range.
    Sf7 = 7,
    /// SF8.
    Sf8 = 8,
    /// SF9.
    Sf9 = 9,
    /// SF10.
    Sf10 = 10,
    /// SF11.
    Sf11 = 11,
    /// SF12 — slowest, longest range.
    Sf12 = 12,
}

impl SpreadingFactor {
    /// All spreading factors in increasing order.
    pub const ALL: [SpreadingFactor; 6] = [
        SpreadingFactor::Sf7,
        SpreadingFactor::Sf8,
        SpreadingFactor::Sf9,
        SpreadingFactor::Sf10,
        SpreadingFactor::Sf11,
        SpreadingFactor::Sf12,
    ];

    /// Numeric spreading factor (7–12).
    #[must_use]
    pub fn value(self) -> u8 {
        self as u8
    }

    /// Chips per symbol, `2^sf`.
    #[must_use]
    pub fn chips_per_symbol(self) -> u32 {
        1 << self.value()
    }

    /// Parses a numeric spreading factor.
    ///
    /// Returns `None` when `sf` is outside `7..=12`.
    #[must_use]
    pub fn from_value(sf: u8) -> Option<Self> {
        match sf {
            7 => Some(Self::Sf7),
            8 => Some(Self::Sf8),
            9 => Some(Self::Sf9),
            10 => Some(Self::Sf10),
            11 => Some(Self::Sf11),
            12 => Some(Self::Sf12),
            _ => None,
        }
    }
}

impl fmt::Display for SpreadingFactor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SF{}", self.value())
    }
}

/// LoRa channel bandwidth.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Bandwidth {
    /// 125 kHz — the default in the EU868 band.
    Khz125,
    /// 250 kHz.
    Khz250,
    /// 500 kHz.
    Khz500,
}

impl Bandwidth {
    /// All bandwidths in increasing order.
    pub const ALL: [Bandwidth; 3] = [Bandwidth::Khz125, Bandwidth::Khz250, Bandwidth::Khz500];

    /// Bandwidth in hertz.
    #[must_use]
    pub fn hz(self) -> u32 {
        match self {
            Bandwidth::Khz125 => 125_000,
            Bandwidth::Khz250 => 250_000,
            Bandwidth::Khz500 => 500_000,
        }
    }

    /// Parses a bandwidth given in hertz.
    ///
    /// Returns `None` for unsupported values.
    #[must_use]
    pub fn from_hz(hz: u32) -> Option<Self> {
        match hz {
            125_000 => Some(Bandwidth::Khz125),
            250_000 => Some(Bandwidth::Khz250),
            500_000 => Some(Bandwidth::Khz500),
            _ => None,
        }
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}kHz", self.hz() / 1000)
    }
}

/// LoRa forward-error-correction coding rate, `4 / (4 + n)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CodingRate {
    /// 4/5 — least redundancy.
    Cr4_5,
    /// 4/6.
    Cr4_6,
    /// 4/7.
    Cr4_7,
    /// 4/8 — most redundancy.
    Cr4_8,
}

impl CodingRate {
    /// All coding rates in increasing redundancy order.
    pub const ALL: [CodingRate; 4] = [
        CodingRate::Cr4_5,
        CodingRate::Cr4_6,
        CodingRate::Cr4_7,
        CodingRate::Cr4_8,
    ];

    /// The denominator offset used by the time-on-air formula
    /// (1 for 4/5 … 4 for 4/8).
    #[must_use]
    pub fn denominator_offset(self) -> u32 {
        match self {
            CodingRate::Cr4_5 => 1,
            CodingRate::Cr4_6 => 2,
            CodingRate::Cr4_7 => 3,
            CodingRate::Cr4_8 => 4,
        }
    }

    /// The code rate as a fraction (e.g. 0.8 for 4/5).
    #[must_use]
    pub fn rate(self) -> f64 {
        4.0 / (4.0 + f64::from(self.denominator_offset()))
    }
}

impl fmt::Display for CodingRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "4/{}", 4 + self.denominator_offset())
    }
}

/// A complete set of LoRa modulation parameters for one transmission.
///
/// Construct with [`LoRaModulation::new`] for datasheet defaults (8-symbol
/// preamble, explicit header, CRC on, automatic low-data-rate optimization)
/// or with [`LoRaModulation::builder`] to override individual fields.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct LoRaModulation {
    /// Spreading factor.
    pub spreading_factor: SpreadingFactor,
    /// Channel bandwidth.
    pub bandwidth: Bandwidth,
    /// Forward-error-correction coding rate.
    pub coding_rate: CodingRate,
    /// Number of programmed preamble symbols (the radio adds 4.25).
    pub preamble_symbols: u16,
    /// Whether the explicit (variable-length) header is transmitted.
    pub explicit_header: bool,
    /// Whether the payload CRC is transmitted.
    pub crc_on: bool,
    /// Low-data-rate optimization: mandated when the symbol time
    /// exceeds 16 ms (SF11/SF12 at 125 kHz).
    pub low_data_rate_optimize: bool,
}

impl LoRaModulation {
    /// Maximum payload accepted by the SX127x FIFO in a single frame.
    pub const MAX_PHY_PAYLOAD: usize = 255;

    /// Creates a modulation with datasheet defaults: 8 preamble symbols,
    /// explicit header, CRC enabled, and low-data-rate optimization applied
    /// automatically when mandated (symbol time > 16 ms).
    #[must_use]
    pub fn new(sf: SpreadingFactor, bw: Bandwidth, cr: CodingRate) -> Self {
        let mut m = LoRaModulation {
            spreading_factor: sf,
            bandwidth: bw,
            coding_rate: cr,
            preamble_symbols: 8,
            explicit_header: true,
            crc_on: true,
            low_data_rate_optimize: false,
        };
        m.low_data_rate_optimize = m.ldro_mandated();
        m
    }

    /// The Meshtastic *LongFast* modem preset: SF11 over 250 kHz with
    /// CR 4/5 — the default of public Meshtastic meshes, trading link
    /// budget for roughly 1 kbit/s of physical bit rate.
    #[must_use]
    pub fn long_fast() -> Self {
        LoRaModulation::new(SpreadingFactor::Sf11, Bandwidth::Khz250, CodingRate::Cr4_5)
    }

    /// The Meshtastic *LongSlow* modem preset: SF12 over 125 kHz with
    /// CR 4/8 — maximum range at roughly 150 bit/s, with low-data-rate
    /// optimization mandated by the long symbol time.
    #[must_use]
    pub fn long_slow() -> Self {
        LoRaModulation::new(SpreadingFactor::Sf12, Bandwidth::Khz125, CodingRate::Cr4_8)
    }

    /// Starts building a modulation with custom parameters.
    #[must_use]
    pub fn builder(sf: SpreadingFactor, bw: Bandwidth, cr: CodingRate) -> LoRaModulationBuilder {
        LoRaModulationBuilder {
            inner: Self::new(sf, bw, cr),
            ldro_overridden: false,
        }
    }

    /// Duration of a single LoRa symbol: `2^sf / bw`.
    #[must_use]
    pub fn symbol_time(&self) -> Duration {
        let secs =
            f64::from(self.spreading_factor.chips_per_symbol()) / f64::from(self.bandwidth.hz());
        Duration::from_secs_f64(secs)
    }

    /// Whether the datasheet mandates low-data-rate optimization for this
    /// SF/BW combination (symbol time strictly greater than 16 ms).
    #[must_use]
    pub fn ldro_mandated(&self) -> bool {
        self.symbol_time() > Duration::from_millis(16)
    }

    /// Raw physical bit rate in bits per second:
    /// `sf * (bw / 2^sf) * cr`.
    #[must_use]
    pub fn bit_rate(&self) -> f64 {
        let sf = f64::from(self.spreading_factor.value());
        let bw = f64::from(self.bandwidth.hz());
        let chips = f64::from(self.spreading_factor.chips_per_symbol());
        sf * (bw / chips) * self.coding_rate.rate()
    }
}

impl fmt::Display for LoRaModulation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{}/CR{}",
            self.spreading_factor, self.bandwidth, self.coding_rate
        )
    }
}

impl Default for LoRaModulation {
    /// The LoRaMesher firmware default: SF7, 125 kHz, CR 4/7.
    fn default() -> Self {
        LoRaModulation::new(SpreadingFactor::Sf7, Bandwidth::Khz125, CodingRate::Cr4_7)
    }
}

/// Builder for [`LoRaModulation`] with non-default framing options.
///
/// ```
/// use lora_phy::modulation::{Bandwidth, CodingRate, LoRaModulation, SpreadingFactor};
///
/// let m = LoRaModulation::builder(SpreadingFactor::Sf9, Bandwidth::Khz125, CodingRate::Cr4_5)
///     .preamble_symbols(12)
///     .crc_on(false)
///     .build();
/// assert_eq!(m.preamble_symbols, 12);
/// assert!(!m.crc_on);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct LoRaModulationBuilder {
    inner: LoRaModulation,
    ldro_overridden: bool,
}

impl LoRaModulationBuilder {
    /// Sets the number of programmed preamble symbols (minimum 6).
    #[must_use]
    pub fn preamble_symbols(mut self, n: u16) -> Self {
        self.inner.preamble_symbols = n.max(6);
        self
    }

    /// Selects explicit (true) or implicit (false) header mode.
    #[must_use]
    pub fn explicit_header(mut self, on: bool) -> Self {
        self.inner.explicit_header = on;
        self
    }

    /// Enables or disables the payload CRC.
    #[must_use]
    pub fn crc_on(mut self, on: bool) -> Self {
        self.inner.crc_on = on;
        self
    }

    /// Forces low-data-rate optimization on or off.
    ///
    /// Without this call, LDRO follows the datasheet mandate for the chosen
    /// SF/BW combination.
    #[must_use]
    pub fn low_data_rate_optimize(mut self, on: bool) -> Self {
        self.inner.low_data_rate_optimize = on;
        self.ldro_overridden = true;
        self
    }

    /// Finishes the builder.
    #[must_use]
    pub fn build(mut self) -> LoRaModulation {
        if !self.ldro_overridden {
            self.inner.low_data_rate_optimize = self.inner.ldro_mandated();
        }
        self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spreading_factor_values_round_trip() {
        for sf in SpreadingFactor::ALL {
            assert_eq!(SpreadingFactor::from_value(sf.value()), Some(sf));
        }
        assert_eq!(SpreadingFactor::from_value(6), None);
        assert_eq!(SpreadingFactor::from_value(13), None);
    }

    #[test]
    fn chips_per_symbol_doubles_per_step() {
        assert_eq!(SpreadingFactor::Sf7.chips_per_symbol(), 128);
        assert_eq!(SpreadingFactor::Sf12.chips_per_symbol(), 4096);
        for w in SpreadingFactor::ALL.windows(2) {
            assert_eq!(w[1].chips_per_symbol(), 2 * w[0].chips_per_symbol());
        }
    }

    #[test]
    fn bandwidth_hz_round_trip() {
        for bw in Bandwidth::ALL {
            assert_eq!(Bandwidth::from_hz(bw.hz()), Some(bw));
        }
        assert_eq!(Bandwidth::from_hz(62_500), None);
    }

    #[test]
    fn coding_rate_fraction() {
        assert!((CodingRate::Cr4_5.rate() - 0.8).abs() < 1e-12);
        assert!((CodingRate::Cr4_8.rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn symbol_time_sf7_125khz_is_1024us() {
        let m = LoRaModulation::new(SpreadingFactor::Sf7, Bandwidth::Khz125, CodingRate::Cr4_5);
        assert_eq!(m.symbol_time(), Duration::from_micros(1024));
    }

    #[test]
    fn ldro_mandated_only_for_slow_symbols() {
        // SF11 and SF12 at 125 kHz have 16.4 ms / 32.8 ms symbols.
        let cases = [
            (SpreadingFactor::Sf10, Bandwidth::Khz125, false),
            (SpreadingFactor::Sf11, Bandwidth::Khz125, true),
            (SpreadingFactor::Sf12, Bandwidth::Khz125, true),
            (SpreadingFactor::Sf12, Bandwidth::Khz250, true),
            (SpreadingFactor::Sf12, Bandwidth::Khz500, false),
        ];
        for (sf, bw, expect) in cases {
            let m = LoRaModulation::new(sf, bw, CodingRate::Cr4_5);
            assert_eq!(m.ldro_mandated(), expect, "{m}");
            assert_eq!(m.low_data_rate_optimize, expect, "{m}");
        }
    }

    #[test]
    fn builder_respects_overrides() {
        let m =
            LoRaModulation::builder(SpreadingFactor::Sf12, Bandwidth::Khz125, CodingRate::Cr4_8)
                .low_data_rate_optimize(false)
                .preamble_symbols(4) // clamped up to 6
                .build();
        assert!(!m.low_data_rate_optimize);
        assert_eq!(m.preamble_symbols, 6);
    }

    #[test]
    fn bit_rate_sf7_matches_datasheet() {
        // SX1276 datasheet: SF7/125kHz/CR4_5 nominal bit rate = 5469 bps.
        let m = LoRaModulation::new(SpreadingFactor::Sf7, Bandwidth::Khz125, CodingRate::Cr4_5);
        assert!((m.bit_rate() - 5468.75).abs() < 0.01);
    }

    #[test]
    fn display_formats() {
        let m = LoRaModulation::default();
        assert_eq!(m.to_string(), "SF7/125kHz/CR4/7");
    }

    #[test]
    fn meshtastic_presets_match_their_spec() {
        let fast = LoRaModulation::long_fast();
        assert_eq!(fast.to_string(), "SF11/250kHz/CR4/5");
        let slow = LoRaModulation::long_slow();
        assert_eq!(slow.to_string(), "SF12/125kHz/CR4/8");
        // LongSlow's 32.8 ms symbols mandate LDRO; both are far slower
        // than the SF7 default the rest of the evaluation runs on.
        assert!(slow.low_data_rate_optimize);
        assert!(fast.bit_rate() > slow.bit_rate());
        assert!(LoRaModulation::default().bit_rate() > fast.bit_rate());
    }
}
