//! Analytic model of the LoRa physical layer.
//!
//! This crate provides the radio-physics substrate for the
//! `loramesher` reproduction: everything the mesh protocol and the
//! discrete-event simulator need to know about LoRa itself, without any
//! hardware access.
//!
//! The models implemented here are the standard analytic ones published in
//! the Semtech SX127x datasheet and the LoRa modem calculator:
//!
//! * [`modulation`] — spreading factor, bandwidth and coding-rate
//!   parameters with validity checking ([`LoRaModulation`]).
//! * [`airtime`] — the exact time-on-air formula, including the
//!   low-data-rate-optimization rules.
//! * [`link`] — receiver sensitivity and SNR demodulation limits per
//!   spreading factor, and link-budget arithmetic ([`LinkBudget`]).
//! * [`propagation`] — free-space and log-distance path-loss models with
//!   optional log-normal shadowing.
//! * [`region`] — regional regulatory parameters (EU868 duty-cycle
//!   sub-bands) and a [`region::DutyCycleTracker`] enforcing them.
//! * [`power`] — dBm/milliwatt conversions and a simple radio energy model.
//! * [`battery`] — battery-lifetime estimation from the energy model.
//!
//! # Example
//!
//! ```
//! use lora_phy::modulation::{Bandwidth, CodingRate, LoRaModulation, SpreadingFactor};
//!
//! let m = LoRaModulation::new(SpreadingFactor::Sf7, Bandwidth::Khz125, CodingRate::Cr4_5);
//! // Time on air of a 20-byte payload at SF7/125kHz is about 57 ms.
//! let toa = m.time_on_air(20);
//! assert!(toa.as_millis() > 50 && toa.as_millis() < 62);
//! ```

#![cfg_attr(not(feature = "std"), no_std)]
#![forbid(unsafe_code)]
#![warn(missing_docs)]
// PHY math is all floating point; `==` on two computed dB/Hz values is
// almost always a latent bug — compare against a tolerance instead.
#![deny(clippy::float_cmp)]

extern crate alloc;

pub mod airtime;
pub mod battery;
pub mod link;
pub mod math;
pub mod modulation;
pub mod power;
pub mod propagation;
pub mod region;

pub use link::{LinkBudget, SignalQuality};
pub use modulation::{Bandwidth, CodingRate, LoRaModulation, SpreadingFactor};
pub use power::{Dbm, Milliwatts};
pub use propagation::PathLossModel;
pub use region::{Region, SubBand};
