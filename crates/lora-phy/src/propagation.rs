//! Radio propagation (path-loss) models.
//!
//! The simulator places nodes on a 2-D plane (metres) and asks a
//! [`PathLossModel`] for the attenuation between two positions. Two
//! standard models are provided:
//!
//! * **Free space** — line-of-sight Friis loss, appropriate for open-field
//!   deployments like the rooftop links in the LoRaMesher demo.
//! * **Log-distance** — `PL(d) = PL(d0) + 10·n·log10(d/d0)`, the standard
//!   empirical model for urban/indoor LoRa, with a configurable exponent
//!   `n` (2 = free space, 2.7–3.5 urban, 4+ indoor obstructed).
//!
//! Deterministic per-link log-normal *shadowing* can be layered on top: a
//! zero-mean Gaussian offset with configurable σ that is fixed per link
//! (hashed from the endpoint pair and a seed), so that the same pair of
//! nodes always sees the same wall between them.

use core::fmt;

/// A position on the simulation plane, in metres.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct Position {
    /// East-west coordinate in metres.
    pub x: f64,
    /// North-south coordinate in metres.
    pub y: f64,
}

impl Position {
    /// Creates a position.
    #[must_use]
    pub fn new(x: f64, y: f64) -> Self {
        Position { x, y }
    }

    /// Euclidean distance to another position in metres.
    #[must_use]
    pub fn distance(&self, other: &Position) -> f64 {
        crate::math::hypot(self.x - other.x, self.y - other.y)
    }
}

impl fmt::Display for Position {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.1}, {:.1})", self.x, self.y)
    }
}

/// Deterministic path-loss model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum PathLossModel {
    /// Friis free-space loss at the given carrier frequency.
    FreeSpace {
        /// Carrier frequency in hertz (e.g. `868_100_000`).
        frequency_hz: f64,
    },
    /// Log-distance model relative to a reference distance.
    LogDistance {
        /// Path loss at the reference distance, in dB.
        reference_loss_db: f64,
        /// Reference distance in metres (commonly 1 m or 40 m).
        reference_distance_m: f64,
        /// Path-loss exponent `n`.
        exponent: f64,
    },
}

impl PathLossModel {
    /// Free-space loss at the centre of the EU868 band.
    #[must_use]
    pub fn free_space_868() -> Self {
        PathLossModel::FreeSpace {
            frequency_hz: 868.1e6,
        }
    }

    /// The log-distance parameters Petajajarvi et al. fitted for LoRa in an
    /// urban environment: `PL(40 m) = 127.41 dB`, `n = 2.32` — a common
    /// default for campus-scale LoRa studies.
    #[must_use]
    pub fn urban_868() -> Self {
        PathLossModel::LogDistance {
            reference_loss_db: 127.41,
            reference_distance_m: 40.0,
            exponent: 2.32,
        }
    }

    /// A harsher indoor/obstructed profile (`n = 3.5`, `PL(1 m) = 40 dB`).
    #[must_use]
    pub fn indoor() -> Self {
        PathLossModel::LogDistance {
            reference_loss_db: 40.0,
            reference_distance_m: 1.0,
            exponent: 3.5,
        }
    }

    /// Path loss in dB over `distance_m` metres.
    ///
    /// Distances below 1 m (or the reference distance) are clamped so the
    /// model never returns a gain.
    #[must_use]
    pub fn loss_db(&self, distance_m: f64) -> f64 {
        match *self {
            PathLossModel::FreeSpace { frequency_hz } => {
                let d = distance_m.max(1.0);
                // FSPL(dB) = 20 log10(d) + 20 log10(f) - 147.55
                20.0 * crate::math::log10(d) + 20.0 * crate::math::log10(frequency_hz) - 147.55
            }
            PathLossModel::LogDistance {
                reference_loss_db,
                reference_distance_m,
                exponent,
            } => {
                let d = distance_m.max(reference_distance_m);
                reference_loss_db + 10.0 * exponent * crate::math::log10(d / reference_distance_m)
            }
        }
    }
}

/// Log-normal shadowing that is *deterministic per link*.
///
/// Each unordered node pair gets a fixed Gaussian offset with standard
/// deviation `sigma_db`, derived by hashing the pair with `seed`. This
/// models stable obstructions (a building between two fixed nodes) while
/// keeping simulations exactly reproducible.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Shadowing {
    /// Standard deviation of the shadowing term in dB (0 disables it).
    pub sigma_db: f64,
    /// Seed mixed into the per-link hash.
    pub seed: u64,
}

impl Shadowing {
    /// The truncation point of the shadowing distribution, in standard
    /// deviations: [`offset_db`](Self::offset_db) never exceeds
    /// `MAX_OFFSET_SIGMA * sigma_db` in magnitude.
    ///
    /// Truncating at ±8σ keeps the distribution indistinguishable from a
    /// true Gaussian (P(|z| > 8) ≈ 1.2·10⁻¹⁵ per link) while making the
    /// maximum audible distance of any link *finite*, which the spatial
    /// shard partitioner relies on to bound a transmission's reach.
    pub const MAX_OFFSET_SIGMA: f64 = 8.0;

    /// No shadowing.
    #[must_use]
    pub fn none() -> Self {
        Shadowing {
            sigma_db: 0.0,
            seed: 0,
        }
    }

    /// Shadowing with the given σ and seed.
    #[must_use]
    pub fn new(sigma_db: f64, seed: u64) -> Self {
        Shadowing { sigma_db, seed }
    }

    /// The fixed shadowing offset in dB for the link between nodes `a` and
    /// `b` (order-independent).
    #[must_use]
    pub fn offset_db(&self, a: u16, b: u16) -> f64 {
        if self.sigma_db == 0.0 {
            return 0.0;
        }
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let mut h = self.seed ^ 0x9e37_79b9_7f4a_7c15;
        for v in [u64::from(lo), u64::from(hi)] {
            h ^= v.wrapping_mul(0xff51_afd7_ed55_8ccd);
            h = h.rotate_left(31).wrapping_mul(0xc4ce_b9fe_1a85_ec53);
        }
        // Two uniform samples from the hash -> Box-Muller standard normal.
        let u1 = ((h >> 11) as f64 + 1.0) / (((1u64 << 53) as f64) + 2.0);
        let h2 = h.wrapping_mul(0x2545_f491_4f6c_dd1d).rotate_left(17);
        let u2 = ((h2 >> 11) as f64) / ((1u64 << 53) as f64);
        let z = crate::math::sqrt(-2.0 * crate::math::ln(u1))
            * crate::math::cos(core::f64::consts::TAU * u2);
        z.clamp(-Self::MAX_OFFSET_SIGMA, Self::MAX_OFFSET_SIGMA) * self.sigma_db
    }
}

#[cfg(test)]
// Exact float equality is the point of these tests: both sides run the
// identical deterministic computation.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_euclidean() {
        let a = Position::new(0.0, 0.0);
        let b = Position::new(3.0, 4.0);
        assert!((a.distance(&b) - 5.0).abs() < 1e-12);
        assert!((b.distance(&a) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn free_space_matches_friis_at_1km() {
        // FSPL at 868 MHz over 1 km ≈ 91.2 dB.
        let loss = PathLossModel::free_space_868().loss_db(1000.0);
        assert!((loss - 91.2).abs() < 0.3, "got {loss}");
    }

    #[test]
    fn free_space_adds_6db_per_doubling() {
        let m = PathLossModel::free_space_868();
        let d1 = m.loss_db(500.0);
        let d2 = m.loss_db(1000.0);
        assert!((d2 - d1 - 6.02).abs() < 0.01);
    }

    #[test]
    fn log_distance_matches_reference_point() {
        let m = PathLossModel::urban_868();
        assert!((m.loss_db(40.0) - 127.41).abs() < 1e-9);
        // +23.2 dB per decade with n = 2.32
        assert!((m.loss_db(400.0) - 127.41 - 23.2).abs() < 1e-9);
    }

    #[test]
    fn loss_is_monotone_in_distance() {
        for model in [
            PathLossModel::free_space_868(),
            PathLossModel::urban_868(),
            PathLossModel::indoor(),
        ] {
            let mut last = f64::NEG_INFINITY;
            for d in [1.0, 10.0, 50.0, 100.0, 500.0, 1000.0, 5000.0] {
                let l = model.loss_db(d);
                assert!(l >= last, "{model:?} at {d}");
                last = l;
            }
        }
    }

    #[test]
    fn short_distances_are_clamped() {
        let m = PathLossModel::urban_868();
        assert_eq!(m.loss_db(0.0), m.loss_db(40.0));
        let fs = PathLossModel::free_space_868();
        assert_eq!(fs.loss_db(0.0), fs.loss_db(1.0));
    }

    #[test]
    fn shadowing_is_symmetric_and_deterministic() {
        let s = Shadowing::new(6.0, 42);
        assert_eq!(s.offset_db(3, 9), s.offset_db(9, 3));
        assert_eq!(s.offset_db(3, 9), s.offset_db(3, 9));
        assert_ne!(s.offset_db(3, 9), s.offset_db(3, 10));
    }

    #[test]
    fn shadowing_zero_sigma_is_zero() {
        assert_eq!(Shadowing::none().offset_db(1, 2), 0.0);
    }

    #[test]
    fn shadowing_distribution_roughly_normal() {
        let s = Shadowing::new(6.0, 7);
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        let n = 2000;
        for i in 0..n {
            let v = s.offset_db(i, i + 1);
            sum += v;
            sum_sq += v * v;
        }
        let mean = sum / f64::from(n);
        let std = (sum_sq / f64::from(n) - mean * mean).sqrt();
        assert!(mean.abs() < 0.5, "mean {mean}");
        assert!((std - 6.0).abs() < 0.5, "std {std}");
    }

    #[test]
    fn shadowing_offsets_are_bounded() {
        let s = Shadowing::new(6.0, 99);
        let bound = Shadowing::MAX_OFFSET_SIGMA * 6.0;
        for i in 0..5000 {
            let v = s.offset_db(i, i.wrapping_add(1));
            assert!(v.abs() <= bound, "offset {v} exceeds ±{bound}");
        }
    }

    #[test]
    fn different_seeds_decorrelate() {
        let a = Shadowing::new(6.0, 1);
        let b = Shadowing::new(6.0, 2);
        assert_ne!(a.offset_db(1, 2), b.offset_db(1, 2));
    }
}
