//! Float math that also works without `std`.
//!
//! `core` deliberately has no float transcendentals — `f64::ln`,
//! `powf`, `sqrt` and friends live in `std` because they lower to
//! platform intrinsics. The PHY models need a handful of them, so this
//! module provides the complete set the crate uses:
//!
//! * with the `std` feature (the default) every function delegates to
//!   the `std` intrinsic, so results are bit-identical to what the
//!   simulator's golden fingerprints were captured with;
//! * without it, portable software implementations (argument reduction
//!   plus truncated series, no `libm` dependency) take over. They are
//!   accurate to well under a millionth of a dB over the ranges the
//!   link-budget and propagation models exercise — sufficient for
//!   firmware targets, where the analytic PHY model is advisory anyway.
//!
//! The portable implementations are compiled (and differential-tested
//! against `std`) in every build, so the no_std path cannot rot behind
//! the feature gate.

/// Base-10 logarithm.
#[must_use]
pub fn log10(x: f64) -> f64 {
    #[cfg(feature = "std")]
    {
        x.log10()
    }
    #[cfg(not(feature = "std"))]
    {
        portable::log10(x)
    }
}

/// Natural logarithm.
#[must_use]
pub fn ln(x: f64) -> f64 {
    #[cfg(feature = "std")]
    {
        x.ln()
    }
    #[cfg(not(feature = "std"))]
    {
        portable::ln(x)
    }
}

/// Natural exponential.
#[must_use]
pub fn exp(x: f64) -> f64 {
    #[cfg(feature = "std")]
    {
        x.exp()
    }
    #[cfg(not(feature = "std"))]
    {
        portable::exp(x)
    }
}

/// `base` raised to the (real) power `exponent`; `base` must be
/// positive, which is all the dB ↔ linear conversions ever need.
#[must_use]
pub fn powf(base: f64, exponent: f64) -> f64 {
    #[cfg(feature = "std")]
    {
        base.powf(exponent)
    }
    #[cfg(not(feature = "std"))]
    {
        portable::powf(base, exponent)
    }
}

/// Square root.
#[must_use]
pub fn sqrt(x: f64) -> f64 {
    #[cfg(feature = "std")]
    {
        x.sqrt()
    }
    #[cfg(not(feature = "std"))]
    {
        portable::sqrt(x)
    }
}

/// Cosine.
#[must_use]
pub fn cos(x: f64) -> f64 {
    #[cfg(feature = "std")]
    {
        x.cos()
    }
    #[cfg(not(feature = "std"))]
    {
        portable::cos(x)
    }
}

/// Euclidean distance `sqrt(x² + y²)` without undue overflow.
#[must_use]
pub fn hypot(x: f64, y: f64) -> f64 {
    #[cfg(feature = "std")]
    {
        x.hypot(y)
    }
    #[cfg(not(feature = "std"))]
    {
        portable::hypot(x, y)
    }
}

/// The software implementations behind the no_std build. Public only to
/// keep them differential-testable from the `std` test build; call the
/// top-level functions instead.
pub mod portable {
    /// `|x|` via sign-bit masking (`f64::abs` is a `std` method).
    #[must_use]
    pub fn abs(x: f64) -> f64 {
        f64::from_bits(x.to_bits() & !(1u64 << 63))
    }

    /// Largest integer ≤ `x`, for arguments within `i64` range (all the
    /// range reductions here are).
    fn floor(x: f64) -> f64 {
        #[allow(clippy::cast_possible_truncation)]
        let truncated = x as i64 as f64;
        if truncated > x {
            truncated - 1.0
        } else {
            truncated
        }
    }

    /// Natural exponential: reduce `x = k·ln2 + r` with `|r| ≤ ln2/2`,
    /// run the Taylor series on `r` and scale by `2^k` through the
    /// exponent bits.
    #[must_use]
    pub fn exp(x: f64) -> f64 {
        if x.is_nan() {
            return x; // NaN
        }
        // exp underflows/overflows outside roughly ±709.
        if x > 709.78 {
            return f64::INFINITY;
        }
        if x < -745.0 {
            return 0.0;
        }
        let k = floor(x / core::f64::consts::LN_2 + 0.5);
        let r = x - k * core::f64::consts::LN_2;
        // 14 terms: with |r| ≤ 0.347 the truncation error is ~1e-19.
        let mut term = 1.0;
        let mut sum = 1.0;
        let mut n = 1.0;
        while n < 15.0 {
            term *= r / n;
            sum += term;
            n += 1.0;
        }
        #[allow(clippy::cast_possible_truncation)]
        let k = k as i64;
        let scale = f64::from_bits((u64::wrapping_add(1023, k as u64)) << 52);
        sum * scale
    }

    /// Natural logarithm: split `x = 2^k · m` with `m ∈ [1, 2)` and use
    /// the `atanh` series `ln m = 2·Σ t^(2i+1)/(2i+1)`, `t = (m−1)/(m+1)`.
    #[must_use]
    pub fn ln(x: f64) -> f64 {
        if x.is_nan() || x < 0.0 {
            return f64::NAN;
        }
        if x == 0.0 {
            return f64::NEG_INFINITY;
        }
        if x == f64::INFINITY {
            return x;
        }
        let bits = x.to_bits();
        let mut exponent = ((bits >> 52) & 0x7FF) as i64 - 1023;
        let mut mantissa = if exponent == -1023 {
            // Subnormal: renormalise.
            let m = f64::from_bits(bits | (1023u64 << 52)) - 1.0;
            exponent += 1;
            m.max(f64::MIN_POSITIVE)
        } else {
            f64::from_bits((bits & ((1u64 << 52) - 1)) | (1023u64 << 52))
        };
        // Fold [√2, 2) down to [1/√2, √2) so |t| stays ≤ 0.1716.
        if mantissa > core::f64::consts::SQRT_2 {
            mantissa /= 2.0;
            exponent += 1;
        }
        let t = (mantissa - 1.0) / (mantissa + 1.0);
        let t2 = t * t;
        let mut sum = 0.0;
        let mut power = t;
        let mut n = 1.0;
        while n < 28.0 {
            sum += power / n;
            power *= t2;
            n += 2.0;
        }
        #[allow(clippy::cast_precision_loss)]
        let k = exponent as f64;
        2.0 * sum + k * core::f64::consts::LN_2
    }

    /// Base-10 logarithm.
    #[must_use]
    pub fn log10(x: f64) -> f64 {
        ln(x) / core::f64::consts::LN_10
    }

    /// `base^exponent` for positive `base`.
    #[must_use]
    pub fn powf(base: f64, exponent: f64) -> f64 {
        if exponent == 0.0 {
            return 1.0;
        }
        if base == 0.0 {
            return if exponent > 0.0 { 0.0 } else { f64::INFINITY };
        }
        exp(exponent * ln(base))
    }

    /// Square root by Newton iteration from a bit-level initial guess.
    #[must_use]
    pub fn sqrt(x: f64) -> f64 {
        if x.is_nan() || x < 0.0 {
            return f64::NAN;
        }
        if x == 0.0 || x == f64::INFINITY {
            return x;
        }
        // Halve the exponent for a guess good to a few percent.
        let mut guess = f64::from_bits((x.to_bits() >> 1) + (1022u64 << 51));
        for _ in 0..5 {
            guess = 0.5 * (guess + x / guess);
        }
        guess
    }

    /// Cosine: reduce to `[-π, π]` and sum the Taylor series (15 terms
    /// keep the truncation error below 1e-17 on that interval).
    #[must_use]
    pub fn cos(x: f64) -> f64 {
        if x.is_nan() || x == f64::INFINITY || x == f64::NEG_INFINITY {
            return f64::NAN;
        }
        let tau = core::f64::consts::TAU;
        let mut r = x - tau * floor(x / tau);
        if r > core::f64::consts::PI {
            r -= tau;
        }
        let r2 = r * r;
        let mut term = 1.0;
        let mut sum = 1.0;
        let mut n = 1.0;
        while n < 30.0 {
            term *= -r2 / (n * (n + 1.0));
            sum += term;
            n += 2.0;
        }
        sum
    }

    /// Overflow-safe `sqrt(x² + y²)`.
    #[must_use]
    pub fn hypot(x: f64, y: f64) -> f64 {
        let (a, b) = (abs(x), abs(y));
        let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
        if hi == 0.0 {
            return 0.0;
        }
        let ratio = lo / hi;
        hi * sqrt(1.0 + ratio * ratio)
    }
}

#[cfg(all(test, feature = "std"))]
// Exact comparisons against sentinel values (0.0, 1.0, infinities) are
// the point of these differential tests.
#[allow(clippy::float_cmp)]
mod tests {
    use super::portable;

    /// Relative error of the portable function against the intrinsic.
    fn rel(err: f64, reference: f64) -> f64 {
        if reference == 0.0 {
            err.abs()
        } else {
            (err / reference).abs()
        }
    }

    #[test]
    fn portable_exp_matches_std() {
        let mut x = -30.0;
        while x <= 30.0 {
            let (p, s) = (portable::exp(x), x.exp());
            assert!(rel(p - s, s) < 1e-12, "exp({x}): {p} vs {s}");
            x += 0.137;
        }
        assert_eq!(portable::exp(f64::NEG_INFINITY), 0.0);
        assert_eq!(portable::exp(1000.0), f64::INFINITY);
    }

    #[test]
    fn portable_ln_and_log10_match_std() {
        for x in [1e-9, 1e-3, 0.5, 1.0, 2.0, 868e6, 1.7e12] {
            let (p, s) = (portable::ln(x), x.ln());
            assert!(rel(p - s, s.abs().max(1.0)) < 1e-13, "ln({x}): {p} vs {s}");
            let (p, s) = (portable::log10(x), x.log10());
            assert!(rel(p - s, s.abs().max(1.0)) < 1e-13, "log10({x})");
        }
        assert!(portable::ln(-1.0).is_nan());
        assert_eq!(portable::ln(0.0), f64::NEG_INFINITY);
    }

    #[test]
    fn portable_powf_matches_std() {
        for (b, e) in [
            (10.0, -17.4),
            (10.0, 1.4),
            (2.0, 0.5),
            (300.0, 2.75),
            (0.97, 31.0),
        ] {
            let (p, s) = (portable::powf(b, e), f64::powf(b, e));
            assert!(rel(p - s, s) < 1e-12, "powf({b}, {e}): {p} vs {s}");
        }
        assert_eq!(portable::powf(7.5, 0.0), 1.0);
        assert_eq!(portable::powf(0.0, 3.0), 0.0);
    }

    #[test]
    fn portable_sqrt_cos_hypot_match_std() {
        let mut x = 0.001;
        while x < 1e7 {
            let (p, s) = (portable::sqrt(x), x.sqrt());
            assert!(rel(p - s, s) < 1e-14, "sqrt({x})");
            x *= 3.7;
        }
        let mut x = -10.0;
        while x <= 10.0 {
            let (p, s) = (portable::cos(x), x.cos());
            assert!((p - s).abs() < 1e-13, "cos({x}): {p} vs {s}");
            x += 0.173;
        }
        for (a, b) in [(3.0, 4.0), (-300.0, 0.0), (1e-8, 2e-8), (7e150, 7e150)] {
            let (p, s) = (portable::hypot(a, b), a.hypot(b));
            assert!(rel(p - s, s) < 1e-13, "hypot({a}, {b})");
        }
    }
}
