//! Project-specific static analysis for the loramesher-repro workspace.
//!
//! The whole evaluation methodology of this reproduction rests on the
//! simulator being strictly deterministic (byte-identical traces for
//! equal seeds, jobs-invariant sweep aggregates) and on the protocol
//! core never panicking on over-the-air input. Nothing in the language
//! enforces either property, so this crate does: a small, dependency-
//! free analyzer that walks the workspace's `.rs` sources with a
//! hand-rolled comment/string-aware lexer and reports violations of
//! five project rules:
//!
//! | rule | invariant |
//! |------|-----------|
//! | `d1` | no `HashMap`/`HashSet` in determinism-critical crates — iteration order feeds traces and RNG draws |
//! | `d2` | no `Instant::now`/`SystemTime`/`thread_rng` outside `bench`/`testkit` — simulated time only |
//! | `r1` | no `unwrap`/`expect`/`panic!`/`[]`-indexing in `core`'s packet/codec/routing/stack hot paths — frame decode returns `Err`, never panics |
//! | `c1` | no bare `as` narrowing casts to `u8`/`u16`/`i8`/`i16` in determinism-critical crates — addresses, lengths and sequence numbers use `try_from` or checked helpers |
//! | `n1` | no `std::` paths in the `no_std`-capable crates (`core`, `lora-phy`) outside `#[cfg(feature = "std")]` items and test code — `--no-default-features` must keep building |
//!
//! Individual sites can be exempted with a written justification:
//!
//! ```text
//! // meshlint::allow(d1): keyed lookups only; never iterated.
//! use std::collections::HashMap;
//! ```
//!
//! The directive suppresses findings of that rule on the same line and
//! on the next line, and **must** carry a non-empty reason after the
//! colon — a reasonless allow is itself reported.
//!
//! Test code is out of scope: `tests/`, `benches/`, `examples/` and
//! `fixtures/` directories are skipped wholesale, and `#[cfg(test)]`
//! modules inside source files are excised before matching.
//!
//! [`Baseline`] supports ratcheting: grandfathered findings recorded in
//! a baseline file are tolerated (and tracked for burn-down) while any
//! *new* finding fails the run.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub mod callgraph;
pub mod parser;

/// The project rules.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// No `HashMap`/`HashSet` in determinism-critical crates.
    D1,
    /// No wall-clock or OS entropy outside `bench`/`testkit`.
    D2,
    /// No panic paths in (or reachable from) the protocol hot files.
    R1,
    /// No bare narrowing `as` casts in determinism-critical crates.
    C1,
    /// No ungated `std::` paths in `no_std`-capable crates.
    N1,
    /// No shared-state machinery reachable from worker-evaluated
    /// regions (parallel purity).
    P1,
    /// Event insertion in shard-aware sim code must use a
    /// coordinator-issued seq.
    S1,
    /// No order-sensitive accumulation into captured state inside
    /// worker-evaluated regions.
    F1,
    /// A `meshlint::allow` directive that suppresses nothing.
    E1,
}

impl Rule {
    /// Every rule, in report order.
    pub const ALL: [Rule; 9] = [
        Rule::D1,
        Rule::D2,
        Rule::R1,
        Rule::C1,
        Rule::N1,
        Rule::P1,
        Rule::S1,
        Rule::F1,
        Rule::E1,
    ];

    /// The identifier used in `meshlint::allow(<id>)` directives and
    /// baseline entries.
    #[must_use]
    pub fn id(self) -> &'static str {
        match self {
            Rule::D1 => "d1",
            Rule::D2 => "d2",
            Rule::R1 => "r1",
            Rule::C1 => "c1",
            Rule::N1 => "n1",
            Rule::P1 => "p1",
            Rule::S1 => "s1",
            Rule::F1 => "f1",
            Rule::E1 => "e1",
        }
    }

    /// Parses a rule identifier.
    #[must_use]
    pub fn from_id(id: &str) -> Option<Rule> {
        match id.trim() {
            "d1" => Some(Rule::D1),
            "d2" => Some(Rule::D2),
            "r1" => Some(Rule::R1),
            "c1" => Some(Rule::C1),
            "n1" => Some(Rule::N1),
            "p1" => Some(Rule::P1),
            "s1" => Some(Rule::S1),
            "f1" => Some(Rule::F1),
            "e1" => Some(Rule::E1),
            _ => None,
        }
    }

    /// One-line description of the invariant the rule protects.
    #[must_use]
    pub fn summary(self) -> &'static str {
        match self {
            Rule::D1 => "hashed collection in a determinism-critical crate",
            Rule::D2 => "wall clock or OS entropy outside bench/testkit",
            Rule::R1 => "panic path in (or reachable from) a protocol hot file",
            Rule::C1 => "bare narrowing `as` cast in a determinism-critical crate",
            Rule::N1 => "ungated `std::` path in a no_std-capable crate",
            Rule::P1 => "shared-state machinery reachable from a worker-evaluated region",
            Rule::S1 => "locally fabricated seq passed to a shard event-insertion method",
            Rule::F1 => "order-sensitive accumulation into captured state in a worker region",
            Rule::E1 => "stale escape: allow directive suppresses nothing",
        }
    }

    /// The suggested fix appended to every finding.
    #[must_use]
    pub fn hint(self) -> &'static str {
        match self {
            Rule::D1 => {
                "use BTreeMap/BTreeSet (deterministic iteration), or justify with \
                 // meshlint::allow(d1): <why iteration order cannot leak>"
            }
            Rule::D2 => {
                "thread simulated time (Duration/SimTime) and the seeded SimRng through \
                 instead; wall clock and OS entropy break replayability"
            }
            Rule::R1 => {
                "decode of untrusted input must return Err, never panic: use get()/try_from \
                 and propagate a CodecError"
            }
            Rule::C1 => {
                "use u16::try_from(..) / u8::try_from(..) or the checked helpers in \
                 loramesher::cast; a silent wrap corrupts addresses, lengths and seqs"
            }
            Rule::N1 => {
                "use core::/alloc:: equivalents, or gate the item behind \
                 #[cfg(feature = \"std\")] so --no-default-features keeps building"
            }
            Rule::P1 => {
                "workers must be pure evaluators: move the shared state behind the \
                 coordinator's commit step (evaluate in parallel, commit sequentially)"
            }
            Rule::S1 => {
                "take the seq from the coordinator counter (alloc_seq / schedule_at_seq / \
                 schedule_timer_seq); a fabricated seq breaks the (time, seq) shard merge"
            }
            Rule::F1 => {
                "return per-item results and reduce on the coordinator in roster order; \
                 worker-side accumulation depends on chunk boundaries (thread count)"
            }
            Rule::E1 => {
                "the code this directive excused is gone: delete the \
                 // meshlint::allow(..) comment to keep escapes honest"
            }
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One rule violation at one site.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// The violated rule.
    pub rule: Rule,
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based byte column.
    pub col: usize,
    /// The offending source line, trimmed.
    pub snippet: String,
    /// Extra context for call-graph findings (the witness path, the
    /// fabricated expression, …). Empty for plain token findings.
    /// Deliberately excluded from [`Finding::baseline_key`]: the
    /// witness path may shift while the violation stays the same.
    pub detail: String,
}

impl Finding {
    /// The key under which this finding is tracked in a [`Baseline`].
    /// Line numbers are deliberately excluded so unrelated edits above a
    /// grandfathered site do not turn it into a "new" finding.
    #[must_use]
    pub fn baseline_key(&self) -> String {
        format!("{}|{}|{}", self.rule.id(), self.file, self.snippet)
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {}\n    {}",
            self.file,
            self.line,
            self.col,
            self.rule.id(),
            self.rule.summary(),
            self.snippet,
        )?;
        if !self.detail.is_empty() {
            write!(f, "\n    note: {}", self.detail)?;
        }
        write!(f, "\n    fix: {}", self.rule.hint())
    }
}

/// A malformed `meshlint::allow` directive (unknown rule or missing
/// reason). These always fail the run: a broken escape hatch must not
/// silently stop suppressing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DirectiveError {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line of the directive.
    pub line: usize,
    /// What is wrong with it.
    pub message: String,
}

impl fmt::Display for DirectiveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: bad directive: {}",
            self.file, self.line, self.message
        )
    }
}

/// What to scan and which rules apply where.
#[derive(Clone, Debug)]
pub struct Config {
    /// Workspace root; all reported paths are relative to it.
    pub root: PathBuf,
    /// Directories under the root to walk (default: `crates`, `src`).
    pub scan_roots: Vec<String>,
    /// Path prefixes (relative, forward slashes) excluded entirely.
    pub skip_prefixes: Vec<String>,
    /// Crate names (the directory under `crates/`) whose sources are
    /// determinism-critical: rules `d1` and `c1` apply.
    pub deterministic_crates: Vec<String>,
    /// Crate names exempt from rule `d2` (they legitimately measure
    /// wall time or host entropy).
    pub wallclock_crates: Vec<String>,
    /// Files (relative paths) forming the protocol hot path: rule `r1`.
    pub hot_path_files: Vec<String>,
    /// Crate names that must keep building with `--no-default-features`
    /// (`no_std` + `alloc`): rule `n1`.
    pub no_std_crates: Vec<String>,
    /// Names of the fork-join entry points whose final argument is a
    /// worker-evaluated region: rules `p1` and `f1` (applied in
    /// determinism-critical crates).
    pub par_entries: Vec<String>,
    /// Files (relative paths) where shard-aware event insertion lives:
    /// rule `s1` checks the seq argument of `schedule_at_seq` /
    /// `schedule_timer_seq` calls there.
    pub seq_files: Vec<String>,
}

impl Config {
    /// The configuration for this workspace.
    #[must_use]
    pub fn workspace(root: impl Into<PathBuf>) -> Self {
        Config {
            root: root.into(),
            scan_roots: vec!["crates".into(), "src".into()],
            skip_prefixes: Vec::new(),
            // meshlint self-lints: the analyzer is held to d1/d2/c1
            // like the code it polices. Its rule tables spell the
            // forbidden tokens inside string literals, which the lexer
            // masks, so self-scanning is exact rather than noisy.
            deterministic_crates: vec![
                "radio-sim".into(),
                "core".into(),
                "scenario".into(),
                "mesh-baselines".into(),
                "meshlint".into(),
            ],
            wallclock_crates: vec!["bench".into(), "testkit".into()],
            hot_path_files: vec![
                "crates/core/src/codec.rs".into(),
                "crates/core/src/packet.rs".into(),
                "crates/core/src/routing.rs".into(),
                // The layered stack sits on the frame receive/dispatch
                // path: over-the-air input flows through all of it.
                "crates/core/src/stack/mod.rs".into(),
                "crates/core/src/stack/app.rs".into(),
                "crates/core/src/stack/bus.rs".into(),
                "crates/core/src/stack/mac.rs".into(),
                "crates/core/src/stack/routing.rs".into(),
                "crates/core/src/stack/transport.rs".into(),
                // The flooding stack (protocol refactor PR) receives
                // over-the-air frames just like the mesh stack: its
                // dispatch, dedup cache, app codec and AES-CTR sealer
                // are all reachable from hostile input.
                "crates/core/src/flood/mod.rs".into(),
                "crates/core/src/flood/dedup.rs".into(),
                "crates/core/src/flood/message.rs".into(),
                "crates/core/src/flood/crypto.rs".into(),
                "crates/radio-sim/src/event.rs".into(),
                "crates/radio-sim/src/metrics.rs".into(),
                // Shard partitioning runs on every event-engine batch
                // decision and every transmission's roster registration.
                "crates/radio-sim/src/shard.rs".into(),
                // The spatial grid sits under every link-cache row fill;
                // the fork-join helper hosts every worker-thread region.
                "crates/radio-sim/src/grid.rs".into(),
                "crates/radio-sim/src/par.rs".into(),
            ],
            no_std_crates: vec!["core".into(), "lora-phy".into()],
            par_entries: vec![
                "run_chunks".into(),
                "map_chunks".into(),
                // The parallel batch commit (PR 9): whole per-band
                // event batches run inside the closure, so everything
                // it reaches is held to the worker-purity contract.
                "commit_bands".into(),
            ],
            seq_files: vec![
                "crates/radio-sim/src/sim.rs".into(),
                "crates/radio-sim/src/event.rs".into(),
                "crates/radio-sim/src/shard.rs".into(),
                // Protocol stacks never mint engine seqs themselves —
                // the substrate contract (`loramesher::protocol`) says
                // timers and transmissions go through the bus/MAC. If a
                // protocol module ever grows a direct event-insertion
                // call, its seq must still be coordinator-issued.
                "crates/core/src/flood/mod.rs".into(),
                "crates/core/src/protocol.rs".into(),
            ],
        }
    }

    /// The crate name a relative path belongs to (`crates/<name>/...`),
    /// or `None` for the root package.
    fn crate_of(rel: &str) -> Option<&str> {
        rel.strip_prefix("crates/")?.split('/').next()
    }

    fn rules_for(&self, rel: &str) -> Vec<Rule> {
        let mut rules = Vec::new();
        let krate = Self::crate_of(rel);
        let deterministic = krate.is_some_and(|c| self.deterministic_crates.iter().any(|d| d == c));
        if deterministic {
            rules.push(Rule::D1);
            rules.push(Rule::C1);
        }
        let wallclock_ok = krate.is_some_and(|c| self.wallclock_crates.iter().any(|w| w == c));
        if !wallclock_ok {
            rules.push(Rule::D2);
        }
        if self.hot_path_files.iter().any(|f| f == rel) {
            rules.push(Rule::R1);
        }
        if krate.is_some_and(|c| self.no_std_crates.iter().any(|n| n == c)) {
            rules.push(Rule::N1);
        }
        rules.sort_unstable();
        rules
    }
}

/// Result of analysing one source tree.
#[derive(Clone, Debug, Default)]
pub struct Analysis {
    /// Violations, in path → line order.
    pub findings: Vec<Finding>,
    /// Sites suppressed by a well-formed allow directive.
    pub allowed: usize,
    /// Malformed directives (always fatal).
    pub directive_errors: Vec<DirectiveError>,
    /// Files scanned.
    pub files_scanned: usize,
}

/// One scanned file: everything the line rules and graph rules need.
struct FileScan {
    rel: String,
    krate: String,
    stem: String,
    source_lines: Vec<String>,
    masked: Masked,
    masked_lines: Vec<String>,
    lines_index: parser::Lines,
    test_lines: std::collections::BTreeSet<usize>,
    std_gated: std::collections::BTreeSet<usize>,
    rules: Vec<Rule>,
    parsed: parser::ParsedFile,
    /// Parallel to `masked.allows`: whether each directive suppressed
    /// anything. Stale ones become `e1` findings.
    allow_used: Vec<bool>,
    hot: bool,
}

impl FileScan {
    fn new(cfg: &Config, rel: &str, source: &str) -> FileScan {
        let rules = cfg.rules_for(rel);
        let masked = mask(source);
        let test_lines = test_region_lines(&masked.text);
        // Gated regions are found on the raw source: masking blanks
        // the `"std"` literal inside the attribute.
        let std_gated = if rules.contains(&Rule::N1) {
            cfg_std_region_lines(source)
        } else {
            std::collections::BTreeSet::new()
        };
        let parsed = parser::parse(&masked.text, &cfg.par_entries);
        let allow_used = vec![false; masked.allows.len()];
        let stem = file_stem(rel);
        FileScan {
            rel: rel.to_string(),
            krate: Config::crate_of(rel).unwrap_or("").to_string(),
            stem,
            source_lines: source.lines().map(str::to_string).collect(),
            masked_lines: masked.text.lines().map(str::to_string).collect(),
            lines_index: parser::Lines::new(&masked.text),
            masked,
            test_lines,
            std_gated,
            rules,
            parsed,
            allow_used,
            hot: cfg.hot_path_files.iter().any(|f| f == rel),
        }
    }

    fn source_line(&self, line_no: usize) -> &str {
        self.source_lines
            .get(line_no.wrapping_sub(1))
            .map_or("", String::as_str)
    }

    fn masked_line(&self, line_no: usize) -> &str {
        self.masked_lines
            .get(line_no.wrapping_sub(1))
            .map_or("", String::as_str)
    }

    /// Indices into `masked.allows` covering `rule` at `line`.
    fn allow_indices(&self, rule: Rule, line: usize) -> Vec<usize> {
        self.masked
            .allows
            .iter()
            .enumerate()
            .filter(|&(_, &(l, r))| r == rule && (l == line || l + 1 == line))
            .map(|(i, _)| i)
            .collect()
    }

    /// If an allow covers `rule` at `line`, marks it used.
    fn use_allow(&mut self, rule: Rule, line: usize) -> bool {
        let idxs = self.allow_indices(rule, line);
        for &i in &idxs {
            self.allow_used[i] = true;
        }
        !idxs.is_empty()
    }
}

/// The file stem used for `path::fn()` resolution: `mod.rs` files take
/// their parent directory's name.
fn file_stem(rel: &str) -> String {
    let base = rel.rsplit('/').next().unwrap_or(rel);
    let stem = base.strip_suffix(".rs").unwrap_or(base);
    if stem == "mod" {
        let mut parts: Vec<&str> = rel.split('/').collect();
        parts.pop();
        parts.pop().unwrap_or(stem).to_string()
    } else {
        stem.to_string()
    }
}

/// Walks the configured tree and applies every rule: the per-line
/// token rules first, then the call-graph rules (`r1`-transitive,
/// `p1`, `s1`, `f1`), then stale-escape detection (`e1`).
///
/// # Errors
///
/// Propagates filesystem errors (unreadable directory or file).
pub fn analyze(cfg: &Config) -> io::Result<Analysis> {
    let mut files = Vec::new();
    for scan_root in &cfg.scan_roots {
        let dir = cfg.root.join(scan_root);
        if dir.is_dir() {
            collect_rs_files(&dir, &mut files)?;
        }
    }
    files.sort();
    let mut analysis = Analysis::default();
    let mut scans = Vec::new();
    for path in files {
        let rel = relative_slash_path(&cfg.root, &path);
        if cfg
            .skip_prefixes
            .iter()
            .any(|p| rel.starts_with(p.as_str()))
        {
            continue;
        }
        let source = fs::read_to_string(&path)?;
        let scan = FileScan::new(cfg, &rel, &source);
        for err in &scan.masked.directive_errors {
            analysis.directive_errors.push(DirectiveError {
                file: rel.clone(),
                line: err.0,
                message: err.1.clone(),
            });
        }
        scans.push(scan);
        analysis.files_scanned += 1;
    }
    for scan in &mut scans {
        line_rules(scan, &mut analysis);
    }
    graph_rules(cfg, &mut scans, &mut analysis);
    stale_escapes(&scans, &mut analysis);
    analysis
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));
    Ok(analysis)
}

/// Analyses a single file's source text with the per-line token rules
/// (the pure core, used directly by the fixture tests). Call-graph
/// rules need the whole workspace and only run under [`analyze`].
/// Appends to `out`.
pub fn analyze_source(cfg: &Config, rel: &str, source: &str, out: &mut Analysis) {
    let mut scan = FileScan::new(cfg, rel, source);
    for err in &scan.masked.directive_errors {
        out.directive_errors.push(DirectiveError {
            file: rel.to_string(),
            line: err.0,
            message: err.1.clone(),
        });
    }
    line_rules(&mut scan, out);
}

/// Applies the per-line token rules to one file.
fn line_rules(scan: &mut FileScan, out: &mut Analysis) {
    if scan.rules.is_empty() {
        return;
    }
    for idx in 0..scan.masked_lines.len() {
        let line_no = idx + 1;
        if scan.test_lines.contains(&line_no) {
            continue;
        }
        for rule in scan.rules.clone() {
            if rule == Rule::N1 && scan.std_gated.contains(&line_no) {
                continue;
            }
            for col in match_rule(rule, &scan.masked_lines[idx]) {
                if scan.use_allow(rule, line_no) {
                    out.allowed += 1;
                    continue;
                }
                out.findings.push(Finding {
                    rule,
                    file: scan.rel.clone(),
                    line: line_no,
                    col,
                    snippet: snippet_of(&scan.source_lines[idx]),
                    detail: String::new(),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------
// Call-graph rules: r1-transitive, p1, s1, f1, and stale escapes (e1)
// ---------------------------------------------------------------------

/// Builds the workspace call graph and applies the semantic rules.
fn graph_rules(cfg: &Config, scans: &mut [FileScan], out: &mut Analysis) {
    let deps = callgraph::CrateDeps::load(&cfg.root);
    let entries: Vec<callgraph::Entry> = scans
        .iter()
        .map(|s| callgraph::Entry {
            rel: s.rel.clone(),
            krate: s.krate.clone(),
            stem: s.stem.clone(),
            parsed: s.parsed.clone(),
            test_fn: s
                .parsed
                .fns
                .iter()
                .map(|f| s.test_lines.contains(&f.sig_line))
                .collect(),
        })
        .collect();
    let graph = callgraph::Graph::build(entries, &deps);
    rule_r1_transitive(scans, &graph, out);
    rule_p1(cfg, scans, &graph, &deps, out);
    rule_s1(cfg, scans, out);
    rule_f1(cfg, scans, out);
}

/// Matcher hits inside one fn's body, split into live sites and the
/// allow-directive indices that suppressed the rest. The allows are
/// *conditional*: they only count as used if the fn turns out to be
/// reachable from code the rule applies to.
fn body_sites(
    scan: &FileScan,
    f: &parser::FnDef,
    rule: Rule,
    matcher: &dyn Fn(&str) -> Vec<usize>,
) -> (Vec<(usize, usize)>, Vec<usize>) {
    let Some(body) = f.body else {
        return (Vec::new(), Vec::new());
    };
    let (lo, hi) = scan.lines_index.line_range(body);
    let mut sites = Vec::new();
    let mut allows = Vec::new();
    for line_no in lo..=hi {
        if scan.test_lines.contains(&line_no) {
            continue;
        }
        for col in matcher(scan.masked_line(line_no)) {
            let idxs = scan.allow_indices(rule, line_no);
            if idxs.is_empty() {
                sites.push((line_no, col));
            } else {
                allows.extend(idxs);
            }
        }
    }
    (sites, allows)
}

/// `r1`-transitive: a hot-file fn must not reach a panicking helper,
/// however many crates away. Panic sites *in* hot files are reported
/// directly by the line rules; this pass only chases calls that leave
/// the hot set, anchoring each finding at the call site where they do.
fn rule_r1_transitive(scans: &mut [FileScan], graph: &callgraph::Graph, out: &mut Analysis) {
    let mut panicky: BTreeMap<callgraph::FnId, (usize, usize)> = BTreeMap::new();
    let mut cond_allows: BTreeMap<callgraph::FnId, Vec<usize>> = BTreeMap::new();
    let mut roots = Vec::new();
    for (fi, scan) in scans.iter().enumerate() {
        for (ni, f) in scan.parsed.fns.iter().enumerate() {
            if scan.test_lines.contains(&f.sig_line) {
                continue;
            }
            if scan.hot {
                roots.push((fi, ni));
                continue;
            }
            let (sites, allows) = body_sites(scan, f, Rule::R1, &|l| match_rule(Rule::R1, l));
            if let Some(&site) = sites.first() {
                panicky.insert((fi, ni), site);
            }
            if !allows.is_empty() {
                cond_allows.insert((fi, ni), allows);
            }
        }
    }
    if roots.is_empty() {
        return;
    }
    let parents = graph.reach(&roots);
    for (id, idxs) in &cond_allows {
        if parents.contains_key(id) {
            for &ai in idxs {
                scans[id.0].allow_used[ai] = true;
            }
        }
    }
    let mut seen = BTreeSet::new();
    for &id in parents.keys() {
        let Some(&(pline, _)) = panicky.get(&id) else {
            continue;
        };
        let path = graph.path_to(&parents, id);
        // The anchor: the first edge that leaves the hot set.
        let mut anchor = None;
        for (k, &((afi, ani), ci)) in path.iter().enumerate() {
            let callee_file = if k + 1 < path.len() {
                path[k + 1].0 .0
            } else {
                id.0
            };
            if scans[afi].hot && !scans[callee_file].hot {
                anchor = Some((k, (afi, ani), ci));
                break;
            }
        }
        let Some((k, (afi, ani), ci)) = anchor else {
            continue;
        };
        let call = scans[afi].parsed.fns[ani].calls[ci].clone();
        if !seen.insert((afi, call.line, call.col, id)) {
            continue;
        }
        if scans[afi].use_allow(Rule::R1, call.line) {
            out.allowed += 1;
            continue;
        }
        let chain: Vec<String> = path[k..]
            .iter()
            .map(|&((cfi, cni), cci)| scans[cfi].parsed.fns[cni].calls[cci].name.clone())
            .collect();
        let detail = format!(
            "reaches {}; panic site {}:{}: {}",
            chain.join(" -> "),
            scans[id.0].rel,
            pline,
            snippet_of(scans[id.0].source_line(pline)),
        );
        let snippet = snippet_of(scans[afi].source_line(call.line));
        out.findings.push(Finding {
            rule: Rule::R1,
            file: scans[afi].rel.clone(),
            line: call.line,
            col: call.col,
            snippet,
            detail,
        });
    }
}

/// `p1`: code reachable from a worker-evaluated region must not touch
/// shared-state machinery — workers evaluate, the coordinator commits.
fn rule_p1(
    cfg: &Config,
    scans: &mut [FileScan],
    graph: &callgraph::Graph,
    deps: &callgraph::CrateDeps,
    out: &mut Analysis,
) {
    let mut impure: BTreeMap<callgraph::FnId, usize> = BTreeMap::new();
    let mut cond_allows: BTreeMap<callgraph::FnId, Vec<usize>> = BTreeMap::new();
    for (fi, scan) in scans.iter().enumerate() {
        for (ni, f) in scan.parsed.fns.iter().enumerate() {
            if scan.test_lines.contains(&f.sig_line) {
                continue;
            }
            let (sites, allows) = body_sites(scan, f, Rule::P1, &impurity_cols);
            if let Some(&(line, _)) = sites.first() {
                impure.insert((fi, ni), line);
            }
            if !allows.is_empty() {
                cond_allows.insert((fi, ni), allows);
            }
        }
    }
    for fi in 0..scans.len() {
        let krate = scans[fi].krate.clone();
        if !cfg.deterministic_crates.contains(&krate) {
            continue;
        }
        let regions = scans[fi].parsed.regions.clone();
        for region in regions {
            // Direct hits on the region's own lines.
            let (lo, hi) = scans[fi].lines_index.line_range(region.body);
            for line_no in lo..=hi {
                if scans[fi].test_lines.contains(&line_no) {
                    continue;
                }
                let ml = scans[fi].masked_line(line_no).to_string();
                for col in impurity_cols(&ml) {
                    if scans[fi].use_allow(Rule::P1, line_no) {
                        out.allowed += 1;
                        continue;
                    }
                    let snippet = snippet_of(scans[fi].source_line(line_no));
                    out.findings.push(Finding {
                        rule: Rule::P1,
                        file: scans[fi].rel.clone(),
                        line: line_no,
                        col,
                        snippet,
                        detail: format!("inside worker region entered at line {}", region.line),
                    });
                }
            }
            // Transitive hits through the calls the region makes.
            let mut roots = Vec::new();
            let mut origin: BTreeMap<callgraph::FnId, (usize, usize)> = BTreeMap::new();
            for ((_, ni), ci) in graph.calls_in_span(fi, region.body) {
                let call = scans[fi].parsed.fns[ni].calls[ci].clone();
                for &t in graph.targets(fi, ni, ci) {
                    origin.entry(t).or_insert((call.line, call.col));
                    roots.push(t);
                }
            }
            if roots.is_empty() {
                // Function-path form: `par::map_chunks(t, items, helper)`.
                if let Some((name, qual)) = region_path_target(&scans[fi].masked.text, region.body)
                {
                    for id in graph.resolve(fi, &name, qual.as_deref(), false, None, deps) {
                        origin.entry(id).or_insert((region.line, 1));
                        roots.push(id);
                    }
                }
            }
            if roots.is_empty() {
                continue;
            }
            let parents = graph.reach(&roots);
            for (id, idxs) in &cond_allows {
                if parents.contains_key(id) {
                    for &ai in idxs {
                        scans[id.0].allow_used[ai] = true;
                    }
                }
            }
            let mut seen = BTreeSet::new();
            for &id in parents.keys() {
                let Some(&iline) = impure.get(&id) else {
                    continue;
                };
                let path = graph.path_to(&parents, id);
                let root = path.first().map_or(id, |&(caller, _)| caller);
                let &(oline, ocol) = origin.get(&root).unwrap_or(&(region.line, 1));
                if !seen.insert((oline, ocol, id)) {
                    continue;
                }
                if scans[fi].use_allow(Rule::P1, oline) {
                    out.allowed += 1;
                    continue;
                }
                let mut chain = vec![scans[root.0].parsed.fns[root.1].name.clone()];
                for &((cfi, cni), cci) in &path {
                    chain.push(scans[cfi].parsed.fns[cni].calls[cci].name.clone());
                }
                let detail = format!(
                    "worker region (line {}) reaches {}; shared-state token at {}:{}: {}",
                    region.line,
                    chain.join(" -> "),
                    scans[id.0].rel,
                    iline,
                    snippet_of(scans[id.0].source_line(iline)),
                );
                let snippet = snippet_of(scans[fi].source_line(oline));
                out.findings.push(Finding {
                    rule: Rule::P1,
                    file: scans[fi].rel.clone(),
                    line: oline,
                    col: ocol,
                    snippet,
                    detail,
                });
            }
        }
    }
}

/// The `name`/`qual` of a region whose body is a bare function path
/// rather than a closure.
fn region_path_target(masked: &str, span: parser::Span) -> Option<(String, Option<String>)> {
    let text = masked.get(span.start..span.end)?.trim();
    if text.is_empty()
        || !text
            .bytes()
            .all(|b| is_ident_byte(b) || b == b':' || b.is_ascii_whitespace())
    {
        return None;
    }
    let segs: Vec<&str> = text.split("::").map(str::trim).collect();
    let name = (*segs.last()?).to_string();
    if name.is_empty() || name.bytes().next().is_some_and(|b| b.is_ascii_digit()) {
        return None;
    }
    let qual = if segs.len() >= 2 {
        Some(segs[segs.len() - 2].to_string())
    } else {
        None
    };
    Some((name, qual))
}

/// `s1`: in shard-aware sim files, the seq handed to
/// `schedule_at_seq`/`schedule_timer_seq` must be a plain binding or a
/// direct `alloc_seq()` draw — never a literal, arithmetic, or a field
/// read (a locally fabricated counter).
fn rule_s1(cfg: &Config, scans: &mut [FileScan], out: &mut Analysis) {
    for scan in scans.iter_mut() {
        if !cfg.seq_files.contains(&scan.rel) {
            continue;
        }
        let masked_text = scan.masked.text.clone();
        let fns = scan.parsed.fns.clone();
        for f in &fns {
            if scan.test_lines.contains(&f.sig_line) {
                continue;
            }
            for call in &f.calls {
                if call.name != "schedule_at_seq" && call.name != "schedule_timer_seq" {
                    continue;
                }
                if scan.test_lines.contains(&call.line) {
                    continue;
                }
                let args = parser::call_args(&masked_text, call.open);
                let Some(seq) = args.get(1) else {
                    continue;
                };
                let text = normalize_ws(masked_text.get(seq.start..seq.end).unwrap_or(""));
                if seq_arg_ok(&text) {
                    continue;
                }
                if scan.use_allow(Rule::S1, call.line) {
                    out.allowed += 1;
                    continue;
                }
                let snippet = snippet_of(scan.source_line(call.line));
                out.findings.push(Finding {
                    rule: Rule::S1,
                    file: scan.rel.clone(),
                    line: call.line,
                    col: call.col,
                    snippet,
                    detail: format!("seq argument `{text}` is not a coordinator-issued seq"),
                });
            }
        }
    }
}

fn normalize_ws(text: &str) -> String {
    text.split_whitespace().collect::<Vec<_>>().join(" ")
}

/// Whether a seq argument is acceptable: a plain identifier (a binding
/// whose provenance the differential tests cover) or an expression
/// ending in a direct `alloc_seq()` draw from the coordinator counter.
fn seq_arg_ok(text: &str) -> bool {
    let t = text.trim();
    let bytes = t.as_bytes();
    let ident = !t.is_empty()
        && (bytes[0].is_ascii_alphabetic() || bytes[0] == b'_')
        && bytes.iter().all(|&b| is_ident_byte(b));
    ident || t.ends_with("alloc_seq()")
}

/// `f1`: compound accumulation (`+=`/`-=`/`*=`) inside a worker region
/// whose left-hand side is captured from outside the region. Per-item
/// math on region-local bindings is fine; captured accumulators make
/// the result depend on chunk boundaries, i.e. on the thread count.
fn rule_f1(cfg: &Config, scans: &mut [FileScan], out: &mut Analysis) {
    for scan in scans.iter_mut() {
        if !cfg.deterministic_crates.contains(&scan.krate) {
            continue;
        }
        let regions = scan.parsed.regions.clone();
        for region in regions {
            let (lo, hi) = scan.lines_index.line_range(region.body);
            let region_lines: Vec<String> =
                (lo..=hi).map(|l| scan.masked_line(l).to_string()).collect();
            let bound = region_bound_idents(&region_lines);
            for (off, ml) in region_lines.iter().enumerate() {
                let line_no = lo + off;
                if scan.test_lines.contains(&line_no) {
                    continue;
                }
                for (col, base) in captured_accum_sites(ml, &bound) {
                    if scan.use_allow(Rule::F1, line_no) {
                        out.allowed += 1;
                        continue;
                    }
                    let snippet = snippet_of(scan.source_line(line_no));
                    out.findings.push(Finding {
                        rule: Rule::F1,
                        file: scan.rel.clone(),
                        line: line_no,
                        col,
                        snippet,
                        detail: format!(
                            "`{base}` is captured from outside the worker region entered at \
                             line {}",
                            region.line
                        ),
                    });
                }
            }
        }
    }
}

/// Identifiers bound *inside* a region: closure parameters on the
/// first line, `let` bindings (pattern idents up to `=`) and `for`
/// loop bindings (idents up to `in`). Over-collecting here only makes
/// `f1` more conservative.
fn region_bound_idents(lines: &[String]) -> BTreeSet<String> {
    let mut bound = BTreeSet::new();
    let collect_idents = |text: &str, bound: &mut BTreeSet<String>| {
        let bytes = text.as_bytes();
        let mut i = 0usize;
        while i < bytes.len() {
            if is_ident_byte(bytes[i]) && !bytes[i].is_ascii_digit() {
                let s = i;
                while i < bytes.len() && is_ident_byte(bytes[i]) {
                    i += 1;
                }
                let word = &text[s..i];
                if word != "mut" && word != "ref" {
                    bound.insert(word.to_string());
                }
            } else {
                i += 1;
            }
        }
    };
    for (idx, line) in lines.iter().enumerate() {
        if idx == 0 {
            // Closure parameters: `|a, &mut b| { ..` on the entry line.
            if let Some(a) = line.find('|') {
                if let Some(b_rel) = line[a + 1..].find('|') {
                    collect_idents(&line[a + 1..a + 1 + b_rel], &mut bound);
                }
            }
        }
        for col in word_matches(line, "let") {
            let after = &line[col - 1 + 3..];
            let upto = after.find('=').map_or(after, |e| &after[..e]);
            collect_idents(upto, &mut bound);
        }
        for col in word_matches(line, "for") {
            let after = &line[col - 1 + 3..];
            let upto = after.find(" in ").map_or(after, |e| &after[..e]);
            collect_idents(upto, &mut bound);
        }
    }
    bound
}

/// `(column, base identifier)` of compound assignments on the line
/// whose receiver chain starts at an identifier not in `bound`.
fn captured_accum_sites(line: &str, bound: &BTreeSet<String>) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for op in ["+=", "-=", "*="] {
        let mut from = 0usize;
        while let Some(pos) = find_from(line, op, from) {
            from = pos + op.len();
            let Some(base) = lvalue_base(line, pos) else {
                continue;
            };
            if base != "_" && !bound.contains(&base) {
                out.push((pos + 1, base));
            }
        }
    }
    out.sort_unstable();
    out
}

/// The leftmost identifier of the lvalue ending just before `op_pos`
/// (`self.stats[i].total` → `self`). `None` when the expression spans
/// lines or is not an identifier chain.
fn lvalue_base(line: &str, op_pos: usize) -> Option<String> {
    let bytes = line.as_bytes();
    let mut p = op_pos;
    while p > 0 && bytes[p - 1].is_ascii_whitespace() {
        p -= 1;
    }
    let mut base = None;
    loop {
        loop {
            match bytes.get(p.wrapping_sub(1)) {
                Some(&b')') => p = match_back_line(bytes, p - 1, b'(', b')')?,
                Some(&b']') => p = match_back_line(bytes, p - 1, b'[', b']')?,
                _ => break,
            }
        }
        if p == 0 || !is_ident_byte(bytes[p - 1]) {
            break;
        }
        let mut s = p;
        while s > 0 && is_ident_byte(bytes[s - 1]) {
            s -= 1;
        }
        base = Some(line[s..p].to_string());
        let mut q = s;
        while q > 0 && bytes[q - 1].is_ascii_whitespace() {
            q -= 1;
        }
        if q >= 1 && bytes[q - 1] == b'.' {
            p = q - 1;
        } else if q >= 2 && &bytes[q - 2..q] == b"::" {
            p = q - 2;
        } else {
            break;
        }
    }
    base
}

/// Like the parser's group matcher but line-local: `None` when the
/// group opens on an earlier line.
fn match_back_line(bytes: &[u8], close_at: usize, open: u8, close: u8) -> Option<usize> {
    let mut depth = 0usize;
    let mut j = close_at;
    loop {
        if bytes[j] == close {
            depth += 1;
        } else if bytes[j] == open {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
        if j == 0 {
            return None;
        }
        j -= 1;
    }
}

/// Shared-state tokens forbidden in worker-reachable code.
fn impurity_cols(line: &str) -> Vec<usize> {
    let mut cols = Vec::new();
    for needle in [
        "Mutex",
        "RwLock",
        "RefCell",
        "UnsafeCell",
        "OnceLock",
        "OnceCell",
        "LazyLock",
        "thread_local",
        "transmute",
        "static mut",
        "unsafe",
        "Cell",
        // Coordinator-only simulator state (PR 9): workers inside a
        // `commit_bands` region must never mint global sequence numbers
        // or write the live trace — both are merged by the coordinator
        // in `(time, seq)` order after the batch.
        "alloc_seq",
        "Trace",
    ] {
        cols.extend(word_matches(line, needle));
    }
    // `Atomic*` is an identifier prefix (AtomicUsize, AtomicBool, ..).
    let mut from = 0usize;
    while let Some(pos) = find_from(line, "Atomic", from) {
        if pos == 0 || !is_ident_byte(line.as_bytes()[pos - 1]) {
            cols.push(pos + 1);
        }
        from = pos + "Atomic".len();
    }
    cols.sort_unstable();
    cols.dedup();
    cols
}

/// `e1`: every allow directive that suppressed nothing is itself a
/// finding, so escapes cannot outlive the code they excused.
fn stale_escapes(scans: &[FileScan], out: &mut Analysis) {
    for scan in scans {
        for (ai, &(line, rule)) in scan.masked.allows.iter().enumerate() {
            if scan.allow_used[ai] {
                continue;
            }
            out.findings.push(Finding {
                rule: Rule::E1,
                file: scan.rel.clone(),
                line,
                col: 1,
                snippet: snippet_of(scan.source_line(line)),
                detail: format!("allow({}) no longer suppresses any finding here", rule.id()),
            });
        }
    }
}

fn snippet_of(line: &str) -> String {
    let trimmed = line.trim();
    if trimmed.len() > 120 {
        let mut cut = 120;
        while !trimmed.is_char_boundary(cut) {
            cut -= 1;
        }
        format!("{}…", &trimmed[..cut])
    } else {
        trimmed.to_string()
    }
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    const SKIP_DIRS: [&str; 5] = ["target", "tests", "benches", "examples", "fixtures"];
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(std::fs::DirEntry::path);
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn relative_slash_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

// ---------------------------------------------------------------------
// Lexing: masking comments and literals, extracting allow directives
// ---------------------------------------------------------------------

/// A source file with comments, string literals and char literals
/// blanked out (newlines preserved), plus the allow directives and
/// directive errors found in the comments.
struct Masked {
    text: String,
    /// `(line, rule)` pairs: rule findings on `line` or `line + 1` are
    /// suppressed.
    allows: Vec<(usize, Rule)>,
    /// `(line, message)` for malformed directives.
    directive_errors: Vec<(usize, String)>,
}

impl Masked {
    /// Rule-level suppression check (analysis paths track usage via
    /// [`FileScan::use_allow`] instead; this stays for the lexer tests).
    #[cfg(test)]
    fn is_allowed(&self, rule: Rule, line: usize) -> bool {
        self.allows
            .iter()
            .any(|&(l, r)| r == rule && (l == line || l + 1 == line))
    }
}

/// Blanks every byte of comments and string/char literals (except
/// newlines) so the rule matchers can scan raw text without false hits,
/// while collecting `meshlint::allow` directives from the comments.
fn mask(source: &str) -> Masked {
    let bytes = source.as_bytes();
    let mut out = bytes.to_vec();
    let mut allows = Vec::new();
    let mut errors = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;

    let blank = |out: &mut [u8], from: usize, to: usize| {
        for b in out.iter_mut().take(to).skip(from) {
            if *b != b'\n' {
                *b = b' ';
            }
        }
    };

    while i < bytes.len() {
        match bytes[i] {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let end = memchr_newline(bytes, i);
                // Doc comments (`///`, `//!`) are prose — a directive
                // quoted in documentation must not take effect (or be
                // reported stale).
                let doc = matches!(bytes.get(i + 2), Some(&b'/') | Some(&b'!'));
                if !doc {
                    parse_directive(source, i, end, line, &mut allows, &mut errors);
                }
                blank(&mut out, i, end);
                i = end;
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let start = i;
                let mut depth = 1u32;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        if bytes[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                blank(&mut out, start, i);
            }
            b'"' => {
                let start = i;
                i += 1;
                while i < bytes.len() {
                    match bytes[i] {
                        b'\\' => i += 2,
                        b'"' => {
                            i += 1;
                            break;
                        }
                        b'\n' => {
                            line += 1;
                            i += 1;
                        }
                        _ => i += 1,
                    }
                }
                // Keep the delimiters so `""` stays lexically a string.
                blank(&mut out, start + 1, i.saturating_sub(1));
            }
            b'r' | b'b' if is_raw_string_start(bytes, i) => {
                // r"...", r#"..."#, br"...", rb#"..."# etc.
                let start = i;
                while i < bytes.len() && (bytes[i] == b'r' || bytes[i] == b'b') {
                    i += 1;
                }
                let mut hashes = 0usize;
                while bytes.get(i) == Some(&b'#') {
                    hashes += 1;
                    i += 1;
                }
                i += 1; // opening quote
                loop {
                    match bytes.get(i) {
                        None => break,
                        Some(b'\n') => {
                            line += 1;
                            i += 1;
                        }
                        Some(b'"') if closing_hashes(bytes, i + 1) >= hashes => {
                            i += 1 + hashes;
                            break;
                        }
                        Some(_) => i += 1,
                    }
                }
                blank(&mut out, start, i);
            }
            b'\'' => {
                // Char literal vs lifetime: a lifetime is `'` followed by
                // an identifier NOT terminated by a closing `'`.
                let next = bytes.get(i + 1).copied();
                let is_lifetime = next.is_some_and(|c| c.is_ascii_alphabetic() || c == b'_')
                    && bytes.get(i + 2) != Some(&b'\'');
                if is_lifetime {
                    i += 2;
                } else {
                    let start = i;
                    i += 1;
                    if bytes.get(i) == Some(&b'\\') {
                        i += 2; // escaped char
                                // \x41, \u{...}
                        while i < bytes.len() && bytes[i] != b'\'' {
                            i += 1;
                        }
                    } else {
                        // Possibly multibyte; advance to the closing quote.
                        while i < bytes.len() && bytes[i] != b'\'' && bytes[i] != b'\n' {
                            i += 1;
                        }
                    }
                    if bytes.get(i) == Some(&b'\'') {
                        i += 1;
                    }
                    blank(&mut out, start, i);
                }
            }
            _ => i += 1,
        }
    }

    Masked {
        text: String::from_utf8(out).unwrap_or_default(),
        allows,
        directive_errors: errors,
    }
}

fn memchr_newline(bytes: &[u8], from: usize) -> usize {
    bytes
        .iter()
        .skip(from)
        .position(|&b| b == b'\n')
        .map_or(bytes.len(), |p| from + p)
}

fn is_raw_string_start(bytes: &[u8], i: usize) -> bool {
    // Only treat r/b prefixes as raw strings when not part of a longer
    // identifier (e.g. `for` ends in 'r').
    if i > 0 && is_ident_byte(bytes[i - 1]) {
        return false;
    }
    let mut j = i;
    while j < bytes.len() && (bytes[j] == b'r' || bytes[j] == b'b') && j - i < 2 {
        j += 1;
    }
    if j == i {
        return false;
    }
    while bytes.get(j) == Some(&b'#') {
        j += 1;
    }
    bytes.get(j) == Some(&b'"') && bytes.get(i).is_some_and(|&c| c == b'r' || c == b'b') && {
        // Require an actual `r` in the prefix unless it is `b"..."`.
        let prefix = &bytes[i..j];
        prefix.contains(&b'r') || prefix == b"b"
    }
}

fn closing_hashes(bytes: &[u8], from: usize) -> usize {
    bytes.iter().skip(from).take_while(|&&b| b == b'#').count()
}

/// Parses a `meshlint::allow(<rule>): <reason>` directive out of a line
/// comment spanning `bytes[start..end)`.
fn parse_directive(
    source: &str,
    start: usize,
    end: usize,
    line: usize,
    allows: &mut Vec<(usize, Rule)>,
    errors: &mut Vec<(usize, String)>,
) {
    let comment = source.get(start..end).unwrap_or("");
    let Some(pos) = comment.find("meshlint::allow") else {
        return;
    };
    let rest = comment.get(pos + "meshlint::allow".len()..).unwrap_or("");
    let Some(open) = rest.find('(') else {
        errors.push((line, "expected `(<rule>)` after meshlint::allow".into()));
        return;
    };
    let Some(close) = rest.find(')') else {
        errors.push((line, "unclosed `(` in meshlint::allow".into()));
        return;
    };
    let ids = rest.get(open + 1..close).unwrap_or("");
    let after = rest.get(close + 1..).unwrap_or("").trim_start();
    let reason = after.strip_prefix(':').map(str::trim).unwrap_or("");
    if reason.is_empty() {
        errors.push((
            line,
            "meshlint::allow requires a written reason: `// meshlint::allow(<rule>): <why>`".into(),
        ));
        return;
    }
    for id in ids.split(',') {
        match Rule::from_id(id) {
            Some(Rule::E1) => errors.push((
                line,
                "e1 (stale escape) cannot be allowed: delete the stale directive instead".into(),
            )),
            Some(rule) => allows.push((line, rule)),
            None => errors.push((line, format!("unknown rule '{}'", id.trim()))),
        }
    }
}

/// Lines (1-based) covered by `#[cfg(test)] mod … { … }` regions in the
/// masked text.
fn test_region_lines(masked: &str) -> std::collections::BTreeSet<usize> {
    let bytes = masked.as_bytes();
    let mut lines = std::collections::BTreeSet::new();
    let mut search_from = 0usize;
    while let Some(found) = find_from(masked, "#[cfg(test)]", search_from) {
        let attr_end = found + "#[cfg(test)]".len();
        search_from = attr_end;
        // Skip whitespace and further attributes, then require `mod`.
        let mut j = attr_end;
        loop {
            while j < bytes.len() && bytes[j].is_ascii_whitespace() {
                j += 1;
            }
            if bytes.get(j) == Some(&b'#') {
                // Skip a bracketed attribute.
                while j < bytes.len() && bytes[j] != b']' {
                    j += 1;
                }
                j += 1;
            } else {
                break;
            }
        }
        if !masked.get(j..).is_some_and(|r| r.starts_with("mod")) {
            continue; // cfg(test) on something other than a module
        }
        let Some(open_rel) = masked.get(j..).and_then(|r| r.find('{')) else {
            continue;
        };
        let open = j + open_rel;
        let mut depth = 0i64;
        let mut k = open;
        while k < bytes.len() {
            match bytes[k] {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        let first_line = line_of(bytes, found);
        let last_line = line_of(bytes, k.min(bytes.len().saturating_sub(1)));
        for l in first_line..=last_line {
            lines.insert(l);
        }
        search_from = k;
    }
    lines
}

/// Lines (1-based) covered by items gated behind `#[cfg(feature =
/// "std")]` in the *raw* source (masking would blank the `"std"`
/// literal). Covers the attribute through the end of the item: the
/// matching `}` of its first brace block, or the terminating `;` for
/// brace-less items (`use`, type aliases, gated re-exports).
fn cfg_std_region_lines(source: &str) -> std::collections::BTreeSet<usize> {
    const ATTR: &str = "#[cfg(feature = \"std\")]";
    let bytes = source.as_bytes();
    let mut lines = std::collections::BTreeSet::new();
    let mut search_from = 0usize;
    while let Some(found) = find_from(source, ATTR, search_from) {
        search_from = found + ATTR.len();
        // Skip whitespace and further attributes to the item itself.
        let mut j = search_from;
        loop {
            while j < bytes.len() && bytes[j].is_ascii_whitespace() {
                j += 1;
            }
            if bytes.get(j) == Some(&b'#') {
                while j < bytes.len() && bytes[j] != b']' {
                    j += 1;
                }
                j += 1;
            } else {
                break;
            }
        }
        // Find the end of the item: a `;` before any `{`, or the
        // matching close of the first brace block.
        let mut k = j;
        let mut depth = 0i64;
        let mut entered = false;
        while k < bytes.len() {
            match bytes[k] {
                b';' if !entered => break,
                b'{' => {
                    depth += 1;
                    entered = true;
                }
                b'}' => {
                    depth -= 1;
                    if entered && depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        let first_line = line_of(bytes, found);
        let last_line = line_of(bytes, k.min(bytes.len().saturating_sub(1)));
        for l in first_line..=last_line {
            lines.insert(l);
        }
        search_from = k.max(search_from);
    }
    lines
}

fn find_from(haystack: &str, needle: &str, from: usize) -> Option<usize> {
    haystack.get(from..)?.find(needle).map(|p| from + p)
}

fn line_of(bytes: &[u8], pos: usize) -> usize {
    1 + bytes.iter().take(pos).filter(|&&b| b == b'\n').count()
}

// ---------------------------------------------------------------------
// Rule matchers
// ---------------------------------------------------------------------

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Whether `text[pos..pos+len]` sits on identifier boundaries.
fn on_boundary(text: &str, pos: usize, len: usize) -> bool {
    let bytes = text.as_bytes();
    let before_ok = pos == 0 || !is_ident_byte(bytes[pos - 1]);
    let after_ok = pos + len >= bytes.len() || !is_ident_byte(bytes[pos + len]);
    before_ok && after_ok
}

/// All boundary-respecting occurrences of `needle` in `line`, as
/// 1-based columns.
fn word_matches(line: &str, needle: &str) -> Vec<usize> {
    let mut cols = Vec::new();
    let mut from = 0usize;
    while let Some(pos) = find_from(line, needle, from) {
        if on_boundary(line, pos, needle.len()) {
            cols.push(pos + 1);
        }
        from = pos + needle.len();
    }
    cols
}

/// Columns (1-based) where `rule` fires on one masked line.
fn match_rule(rule: Rule, line: &str) -> Vec<usize> {
    let mut cols = Vec::new();
    match rule {
        Rule::D1 => {
            cols.extend(word_matches(line, "HashMap"));
            cols.extend(word_matches(line, "HashSet"));
        }
        Rule::D2 => {
            cols.extend(word_matches(line, "Instant"));
            cols.extend(word_matches(line, "SystemTime"));
            cols.extend(word_matches(line, "thread_rng"));
        }
        Rule::R1 => {
            // Method-call forms: the char before `.` is part of the
            // receiver, so plain substring search is exact.
            for needle in [".unwrap()", ".expect("] {
                let mut from = 0usize;
                while let Some(pos) = find_from(line, needle, from) {
                    cols.push(pos + 1);
                    from = pos + needle.len();
                }
            }
            // Macro forms need identifier boundaries so `debug_assert!`
            // (compiled out in release, permitted) does not match
            // `assert!`.
            for needle in [
                "panic!",
                "unreachable!",
                "todo!",
                "unimplemented!",
                "assert!",
                "assert_eq!",
                "assert_ne!",
            ] {
                cols.extend(word_matches(line, needle));
            }
            cols.extend(index_expr_cols(line));
        }
        Rule::C1 => {
            for needle in ["as u8", "as u16", "as i8", "as i16"] {
                for col in word_matches(line, needle) {
                    // Require the keyword form ` as u16`, not an
                    // identifier that happens to end with "as".
                    let before = line.as_bytes().get(col.wrapping_sub(2)).copied();
                    if before.is_none() || before == Some(b' ') || before == Some(b'(') {
                        cols.push(col);
                    }
                }
            }
        }
        Rule::N1 => {
            // `std::` as a path segment: `use std::…`, `std::vec::Vec`,
            // `::std::…` — but not `my_std::`.
            let mut from = 0usize;
            while let Some(pos) = find_from(line, "std::", from) {
                if pos == 0 || !is_ident_byte(line.as_bytes()[pos - 1]) {
                    cols.push(pos + 1);
                }
                from = pos + "std::".len();
            }
        }
        // These rules are semantic, not per-line: `p1`/`s1`/`f1` run on
        // the call graph and the parse tree, `e1` on directive usage.
        Rule::P1 | Rule::S1 | Rule::F1 | Rule::E1 => {}
    }
    cols.sort_unstable();
    cols
}

/// Columns of `[` tokens that open an *index expression*: the previous
/// non-space character is an identifier character, `)`, or `]` — i.e.
/// `frame[0]`, `f()[1]`, `m[a][b]` — as opposed to array literals,
/// types, attributes (`#[...]`) and macro brackets (`vec![...]`).
fn index_expr_cols(line: &str) -> Vec<usize> {
    let bytes = line.as_bytes();
    let mut cols = Vec::new();
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'[' {
            continue;
        }
        let Some(j) = bytes.iter().take(i).rposition(|&c| c != b' ') else {
            continue;
        };
        let p = bytes[j];
        if !(is_ident_byte(p) || p == b')' || p == b']') {
            continue;
        }
        // `&'a [u8]`: an identifier that is really a lifetime name — walk
        // to its start and check for a leading tick. Keywords (`&mut
        // [T]`, `dyn [..]`) are slice-type syntax too: a keyword can
        // never be the receiver of an index expression.
        if is_ident_byte(p) {
            let mut s = j;
            while s > 0 && is_ident_byte(bytes[s - 1]) {
                s -= 1;
            }
            if s > 0 && bytes[s - 1] == b'\'' {
                continue;
            }
            if matches!(&bytes[s..=j], b"mut" | b"dyn" | b"in") {
                continue;
            }
        }
        cols.push(i + 1);
    }
    cols
}

// ---------------------------------------------------------------------
// Baseline ratcheting
// ---------------------------------------------------------------------

/// Grandfathered findings: a multiset of [`Finding::baseline_key`]s.
///
/// New findings (beyond the baselined count per key) fail the run;
/// baselined ones are tracked so the debt is visible and can only burn
/// down (stale entries are reported for removal).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Baseline {
    counts: BTreeMap<String, usize>,
}

/// How an analysis compares against a baseline.
#[derive(Clone, Debug, Default)]
pub struct Ratchet {
    /// Findings not covered by the baseline — these fail the run.
    pub new: Vec<Finding>,
    /// Findings tolerated because the baseline grandfathers them.
    pub grandfathered: Vec<Finding>,
    /// Baseline entries no longer observed: `(key, count)` pairs that
    /// should be deleted to lock in the progress.
    pub stale: Vec<(String, usize)>,
}

impl Baseline {
    /// An empty baseline: every finding is new.
    #[must_use]
    pub fn empty() -> Self {
        Baseline::default()
    }

    /// Builds a baseline grandfathering exactly the given findings.
    #[must_use]
    pub fn from_findings(findings: &[Finding]) -> Self {
        let mut counts = BTreeMap::new();
        for f in findings {
            *counts.entry(f.baseline_key()).or_insert(0) += 1;
        }
        Baseline { counts }
    }

    /// Parses the baseline file format: one `rule|file|snippet` key per
    /// line (repeated keys grandfather multiple identical sites); `#`
    /// lines and blank lines are ignored.
    #[must_use]
    pub fn parse(text: &str) -> Self {
        let mut counts = BTreeMap::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            *counts.entry(line.to_string()).or_insert(0) += 1;
        }
        Baseline { counts }
    }

    /// Loads a baseline file; a missing file is an empty baseline.
    ///
    /// # Errors
    ///
    /// Propagates read errors other than `NotFound`.
    pub fn load(path: &Path) -> io::Result<Self> {
        match fs::read_to_string(path) {
            Ok(text) => Ok(Self::parse(&text)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(Self::empty()),
            Err(e) => Err(e),
        }
    }

    /// Serialises to the line-per-key format, sorted.
    #[must_use]
    pub fn serialize(&self) -> String {
        let mut out = String::from(
            "# meshlint baseline: grandfathered findings (burn these down; never add).\n\
             # One `rule|file|snippet` key per line; regenerate with `meshlint --write-baseline`.\n",
        );
        for (key, count) in &self.counts {
            for _ in 0..*count {
                out.push_str(key);
                out.push('\n');
            }
        }
        out
    }

    /// Number of grandfathered keys.
    #[must_use]
    pub fn len(&self) -> usize {
        self.counts.values().sum()
    }

    /// Whether nothing is grandfathered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Splits findings into new vs grandfathered and reports stale
    /// baseline entries.
    #[must_use]
    pub fn ratchet(&self, findings: &[Finding]) -> Ratchet {
        let mut remaining = self.counts.clone();
        let mut result = Ratchet::default();
        for f in findings {
            let key = f.baseline_key();
            match remaining.get_mut(&key) {
                Some(n) if *n > 0 => {
                    *n -= 1;
                    result.grandfathered.push(f.clone());
                }
                _ => result.new.push(f.clone()),
            }
        }
        result.stale = remaining.into_iter().filter(|&(_, n)| n > 0).collect();
        result
    }
}

// ---------------------------------------------------------------------
// JSON output (hand-rolled: the crate must stay dependency-free)
// ---------------------------------------------------------------------

/// Escapes a string for inclusion in JSON output.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders machine-readable results: every finding plus the ratchet
/// summary.
#[must_use]
pub fn to_json(ratchet: &Ratchet, analysis: &Analysis) -> String {
    let mut out = String::from("{\n  \"findings\": [\n");
    let render = |f: &Finding, is_new: bool| {
        format!(
            "    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"col\": {}, \
             \"snippet\": \"{}\", \"detail\": \"{}\", \"hint\": \"{}\", \"new\": {}}}",
            f.rule.id(),
            json_escape(&f.file),
            f.line,
            f.col,
            json_escape(&f.snippet),
            json_escape(&f.detail),
            json_escape(f.rule.hint()),
            is_new
        )
    };
    let rows: Vec<String> = ratchet
        .new
        .iter()
        .map(|f| render(f, true))
        .chain(ratchet.grandfathered.iter().map(|f| render(f, false)))
        .collect();
    out.push_str(&rows.join(",\n"));
    out.push_str(&format!(
        "\n  ],\n  \"new\": {},\n  \"grandfathered\": {},\n  \"stale_baseline_entries\": {},\n  \
         \"allowed\": {},\n  \"directive_errors\": {},\n  \"files_scanned\": {}\n}}\n",
        ratchet.new.len(),
        ratchet.grandfathered.len(),
        ratchet.stale.len(),
        analysis.allowed,
        analysis.directive_errors.len(),
        analysis.files_scanned
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masking_blanks_comments_and_strings() {
        let src = "let a = \"HashMap\"; // HashMap here\nlet b = 'x';\n/* HashMap\nHashMap */ let c = 1;\n";
        let m = mask(src);
        assert!(!m.text.contains("HashMap"));
        assert!(m.text.contains("let a ="));
        assert!(m.text.contains("let c = 1;"));
        assert_eq!(m.text.lines().count(), src.lines().count());
    }

    #[test]
    fn masking_handles_raw_strings_and_lifetimes() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }\nlet r = r#\"Instant::now\"#;\n";
        let m = mask(src);
        assert!(!m.text.contains("Instant"));
        assert!(m.text.contains("fn f<'a>"));
    }

    #[test]
    fn directive_parsing() {
        let src = "// meshlint::allow(d1): keyed lookups only\nuse std::collections::HashMap;\n";
        let m = mask(src);
        assert_eq!(m.allows, vec![(1, Rule::D1)]);
        assert!(m.is_allowed(Rule::D1, 1));
        assert!(m.is_allowed(Rule::D1, 2));
        assert!(!m.is_allowed(Rule::D1, 3));
        assert!(!m.is_allowed(Rule::D2, 2));
    }

    #[test]
    fn directive_without_reason_is_an_error() {
        let m = mask("// meshlint::allow(d1)\nuse std::collections::HashMap;\n");
        assert!(m.allows.is_empty());
        assert_eq!(m.directive_errors.len(), 1);
        let m2 = mask("// meshlint::allow(bogus): because\n");
        assert_eq!(m2.directive_errors.len(), 1);
    }

    #[test]
    fn cfg_test_regions_are_excised() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn f() { x.unwrap() }\n}\nfn after() {}\n";
        let lines = test_region_lines(src);
        assert!(lines.contains(&2) && lines.contains(&5));
        assert!(!lines.contains(&1) && !lines.contains(&6));
    }

    #[test]
    fn index_expression_detection() {
        assert_eq!(index_expr_cols("let x = frame[0];"), vec![14]);
        assert!(index_expr_cols("#[derive(Debug)]").is_empty());
        assert!(index_expr_cols("let v = vec![1, 2];").is_empty());
        assert!(index_expr_cols("let t: [u8; 4] = [0; 4];").is_empty());
        assert_eq!(index_expr_cols("f()[1]"), vec![4]);
        assert!(index_expr_cols("fn take(&mut self) -> Result<&'a [u8], E> {").is_empty());
        assert!(index_expr_cols("frame: &'static [u8],").is_empty());
        assert!(index_expr_cols("pub fn run_chunks<T>(items: &mut [T]) {").is_empty());
        assert!(index_expr_cols("F: Fn(usize, &mut [T]) + Sync,").is_empty());
        assert!(index_expr_cols("for x in [1, 2, 3] {").is_empty());
        // A real index after `mut` binding still fires on the receiver.
        assert_eq!(index_expr_cols("let mut y = frame[0];"), vec![18]);
    }

    #[test]
    fn c1_requires_keyword_position() {
        assert!(match_rule(Rule::C1, "let atlas u8 = 1;").is_empty());
        assert_eq!(match_rule(Rule::C1, "let x = n as u16;").len(), 1);
        assert!(match_rule(Rule::C1, "let x = n as u64;").is_empty());
        assert!(match_rule(Rule::C1, "let x = alias u8;").is_empty());
    }

    #[test]
    fn n1_matches_std_path_segments_only() {
        assert_eq!(match_rule(Rule::N1, "use std::time::Duration;"), vec![5]);
        assert_eq!(match_rule(Rule::N1, "let e: ::std::fmt::Error;"), vec![10]);
        assert!(match_rule(Rule::N1, "use my_std::helpers;").is_empty());
        assert!(match_rule(Rule::N1, "use alloc::vec::Vec;").is_empty());
        assert!(match_rule(Rule::N1, "use core::time::Duration;").is_empty());
    }

    #[test]
    fn n1_respects_std_feature_gates_and_test_code() {
        let cfg = Config::workspace("/nonexistent");
        let src = "\
use alloc::vec::Vec;\n\
#[cfg(feature = \"std\")]\n\
impl std::error::Error for E {}\n\
#[cfg(feature = \"std\")]\n\
pub use std::time::Duration;\n\
fn ungated() { let _ = std::mem::take(&mut 0); }\n\
#[cfg(test)]\n\
mod tests {\n\
    use std::time::Duration;\n\
}\n";
        let mut out = Analysis::default();
        analyze_source(&cfg, "crates/core/src/error.rs", src, &mut out);
        let n1: Vec<&Finding> = out.findings.iter().filter(|f| f.rule == Rule::N1).collect();
        assert_eq!(n1.len(), 1, "findings: {n1:?}");
        assert_eq!(n1[0].line, 6);
        // The same source in a std-only crate raises no n1 findings.
        let mut std_ok = Analysis::default();
        analyze_source(&cfg, "crates/radio-sim/src/lib.rs", src, &mut std_ok);
        assert!(std_ok.findings.iter().all(|f| f.rule != Rule::N1));
    }

    #[test]
    fn cfg_std_region_covers_braced_and_braceless_items() {
        let src = "\
#[cfg(feature = \"std\")]\n\
#[derive(Debug)]\n\
impl Thing {\n\
    fn f(&self) {}\n\
}\n\
fn open() {}\n\
#[cfg(feature = \"std\")]\n\
use std::io;\n\
fn also_open() {}\n";
        let lines = cfg_std_region_lines(src);
        for l in 1..=5 {
            assert!(lines.contains(&l), "line {l} should be gated");
        }
        assert!(!lines.contains(&6));
        assert!(lines.contains(&7) && lines.contains(&8));
        assert!(!lines.contains(&9));
    }

    #[test]
    fn baseline_ratchet_counts_multiset() {
        let f = |line: usize| Finding {
            rule: Rule::D1,
            file: "a.rs".into(),
            line,
            col: 1,
            snippet: "use std::collections::HashMap;".into(),
            detail: String::new(),
        };
        let base = Baseline::from_findings(&[f(1)]);
        // Same key at a different line: still grandfathered (keys are
        // line-independent); a second occurrence is new.
        let r = base.ratchet(&[f(9), f(12)]);
        assert_eq!(r.grandfathered.len(), 1);
        assert_eq!(r.new.len(), 1);
        assert!(r.stale.is_empty());
        // Burned-down finding leaves a stale entry.
        let r2 = base.ratchet(&[]);
        assert_eq!(r2.stale.len(), 1);
        // Round-trip through the file format.
        assert_eq!(Baseline::parse(&base.serialize()), base);
    }
}
