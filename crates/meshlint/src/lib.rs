//! Project-specific static analysis for the loramesher-repro workspace.
//!
//! The whole evaluation methodology of this reproduction rests on the
//! simulator being strictly deterministic (byte-identical traces for
//! equal seeds, jobs-invariant sweep aggregates) and on the protocol
//! core never panicking on over-the-air input. Nothing in the language
//! enforces either property, so this crate does: a small, dependency-
//! free analyzer that walks the workspace's `.rs` sources with a
//! hand-rolled comment/string-aware lexer and reports violations of
//! five project rules:
//!
//! | rule | invariant |
//! |------|-----------|
//! | `d1` | no `HashMap`/`HashSet` in determinism-critical crates — iteration order feeds traces and RNG draws |
//! | `d2` | no `Instant::now`/`SystemTime`/`thread_rng` outside `bench`/`testkit` — simulated time only |
//! | `r1` | no `unwrap`/`expect`/`panic!`/`[]`-indexing in `core`'s packet/codec/routing/stack hot paths — frame decode returns `Err`, never panics |
//! | `c1` | no bare `as` narrowing casts to `u8`/`u16`/`i8`/`i16` in determinism-critical crates — addresses, lengths and sequence numbers use `try_from` or checked helpers |
//! | `n1` | no `std::` paths in the `no_std`-capable crates (`core`, `lora-phy`) outside `#[cfg(feature = "std")]` items and test code — `--no-default-features` must keep building |
//!
//! Individual sites can be exempted with a written justification:
//!
//! ```text
//! // meshlint::allow(d1): keyed lookups only; never iterated.
//! use std::collections::HashMap;
//! ```
//!
//! The directive suppresses findings of that rule on the same line and
//! on the next line, and **must** carry a non-empty reason after the
//! colon — a reasonless allow is itself reported.
//!
//! Test code is out of scope: `tests/`, `benches/`, `examples/` and
//! `fixtures/` directories are skipped wholesale, and `#[cfg(test)]`
//! modules inside source files are excised before matching.
//!
//! [`Baseline`] supports ratcheting: grandfathered findings recorded in
//! a baseline file are tolerated (and tracked for burn-down) while any
//! *new* finding fails the run.

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The five project rules.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// No `HashMap`/`HashSet` in determinism-critical crates.
    D1,
    /// No wall-clock or OS entropy outside `bench`/`testkit`.
    D2,
    /// No panic paths in the protocol core's hot files.
    R1,
    /// No bare narrowing `as` casts in determinism-critical crates.
    C1,
    /// No ungated `std::` paths in `no_std`-capable crates.
    N1,
}

impl Rule {
    /// Every rule, in report order.
    pub const ALL: [Rule; 5] = [Rule::D1, Rule::D2, Rule::R1, Rule::C1, Rule::N1];

    /// The identifier used in `meshlint::allow(<id>)` directives and
    /// baseline entries.
    #[must_use]
    pub fn id(self) -> &'static str {
        match self {
            Rule::D1 => "d1",
            Rule::D2 => "d2",
            Rule::R1 => "r1",
            Rule::C1 => "c1",
            Rule::N1 => "n1",
        }
    }

    /// Parses a rule identifier.
    #[must_use]
    pub fn from_id(id: &str) -> Option<Rule> {
        match id.trim() {
            "d1" => Some(Rule::D1),
            "d2" => Some(Rule::D2),
            "r1" => Some(Rule::R1),
            "c1" => Some(Rule::C1),
            "n1" => Some(Rule::N1),
            _ => None,
        }
    }

    /// One-line description of the invariant the rule protects.
    #[must_use]
    pub fn summary(self) -> &'static str {
        match self {
            Rule::D1 => "hashed collection in a determinism-critical crate",
            Rule::D2 => "wall clock or OS entropy outside bench/testkit",
            Rule::R1 => "panic path in a protocol hot file",
            Rule::C1 => "bare narrowing `as` cast in a determinism-critical crate",
            Rule::N1 => "ungated `std::` path in a no_std-capable crate",
        }
    }

    /// The suggested fix appended to every finding.
    #[must_use]
    pub fn hint(self) -> &'static str {
        match self {
            Rule::D1 => {
                "use BTreeMap/BTreeSet (deterministic iteration), or justify with \
                 // meshlint::allow(d1): <why iteration order cannot leak>"
            }
            Rule::D2 => {
                "thread simulated time (Duration/SimTime) and the seeded SimRng through \
                 instead; wall clock and OS entropy break replayability"
            }
            Rule::R1 => {
                "decode of untrusted input must return Err, never panic: use get()/try_from \
                 and propagate a CodecError"
            }
            Rule::C1 => {
                "use u16::try_from(..) / u8::try_from(..) or the checked helpers in \
                 loramesher::cast; a silent wrap corrupts addresses, lengths and seqs"
            }
            Rule::N1 => {
                "use core::/alloc:: equivalents, or gate the item behind \
                 #[cfg(feature = \"std\")] so --no-default-features keeps building"
            }
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One rule violation at one site.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// The violated rule.
    pub rule: Rule,
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based byte column.
    pub col: usize,
    /// The offending source line, trimmed.
    pub snippet: String,
}

impl Finding {
    /// The key under which this finding is tracked in a [`Baseline`].
    /// Line numbers are deliberately excluded so unrelated edits above a
    /// grandfathered site do not turn it into a "new" finding.
    #[must_use]
    pub fn baseline_key(&self) -> String {
        format!("{}|{}|{}", self.rule.id(), self.file, self.snippet)
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {}\n    {}\n    fix: {}",
            self.file,
            self.line,
            self.col,
            self.rule.id(),
            self.rule.summary(),
            self.snippet,
            self.rule.hint()
        )
    }
}

/// A malformed `meshlint::allow` directive (unknown rule or missing
/// reason). These always fail the run: a broken escape hatch must not
/// silently stop suppressing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DirectiveError {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line of the directive.
    pub line: usize,
    /// What is wrong with it.
    pub message: String,
}

impl fmt::Display for DirectiveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: bad directive: {}",
            self.file, self.line, self.message
        )
    }
}

/// What to scan and which rules apply where.
#[derive(Clone, Debug)]
pub struct Config {
    /// Workspace root; all reported paths are relative to it.
    pub root: PathBuf,
    /// Directories under the root to walk (default: `crates`, `src`).
    pub scan_roots: Vec<String>,
    /// Path prefixes (relative, forward slashes) excluded entirely.
    pub skip_prefixes: Vec<String>,
    /// Crate names (the directory under `crates/`) whose sources are
    /// determinism-critical: rules `d1` and `c1` apply.
    pub deterministic_crates: Vec<String>,
    /// Crate names exempt from rule `d2` (they legitimately measure
    /// wall time or host entropy).
    pub wallclock_crates: Vec<String>,
    /// Files (relative paths) forming the protocol hot path: rule `r1`.
    pub hot_path_files: Vec<String>,
    /// Crate names that must keep building with `--no-default-features`
    /// (`no_std` + `alloc`): rule `n1`.
    pub no_std_crates: Vec<String>,
}

impl Config {
    /// The configuration for this workspace.
    #[must_use]
    pub fn workspace(root: impl Into<PathBuf>) -> Self {
        Config {
            root: root.into(),
            scan_roots: vec!["crates".into(), "src".into()],
            // meshlint's own sources mention the forbidden tokens by
            // name (rule tables, fixtures); scanning them would be
            // self-referential noise.
            skip_prefixes: vec!["crates/meshlint".into()],
            deterministic_crates: vec![
                "radio-sim".into(),
                "core".into(),
                "scenario".into(),
                "mesh-baselines".into(),
            ],
            wallclock_crates: vec!["bench".into(), "testkit".into()],
            hot_path_files: vec![
                "crates/core/src/codec.rs".into(),
                "crates/core/src/packet.rs".into(),
                "crates/core/src/routing.rs".into(),
                // The layered stack sits on the frame receive/dispatch
                // path: over-the-air input flows through all of it.
                "crates/core/src/stack/mod.rs".into(),
                "crates/core/src/stack/app.rs".into(),
                "crates/core/src/stack/bus.rs".into(),
                "crates/core/src/stack/mac.rs".into(),
                "crates/core/src/stack/routing.rs".into(),
                "crates/core/src/stack/transport.rs".into(),
                "crates/radio-sim/src/event.rs".into(),
                "crates/radio-sim/src/metrics.rs".into(),
                // Shard partitioning runs on every event-engine batch
                // decision and every transmission's roster registration.
                "crates/radio-sim/src/shard.rs".into(),
                // The spatial grid sits under every link-cache row fill;
                // the fork-join helper hosts every worker-thread region.
                "crates/radio-sim/src/grid.rs".into(),
                "crates/radio-sim/src/par.rs".into(),
            ],
            no_std_crates: vec!["core".into(), "lora-phy".into()],
        }
    }

    /// The crate name a relative path belongs to (`crates/<name>/...`),
    /// or `None` for the root package.
    fn crate_of(rel: &str) -> Option<&str> {
        rel.strip_prefix("crates/")?.split('/').next()
    }

    fn rules_for(&self, rel: &str) -> Vec<Rule> {
        let mut rules = Vec::new();
        let krate = Self::crate_of(rel);
        let deterministic = krate.is_some_and(|c| self.deterministic_crates.iter().any(|d| d == c));
        if deterministic {
            rules.push(Rule::D1);
            rules.push(Rule::C1);
        }
        let wallclock_ok = krate.is_some_and(|c| self.wallclock_crates.iter().any(|w| w == c));
        if !wallclock_ok {
            rules.push(Rule::D2);
        }
        if self.hot_path_files.iter().any(|f| f == rel) {
            rules.push(Rule::R1);
        }
        if krate.is_some_and(|c| self.no_std_crates.iter().any(|n| n == c)) {
            rules.push(Rule::N1);
        }
        rules.sort_unstable();
        rules
    }
}

/// Result of analysing one source tree.
#[derive(Clone, Debug, Default)]
pub struct Analysis {
    /// Violations, in path → line order.
    pub findings: Vec<Finding>,
    /// Sites suppressed by a well-formed allow directive.
    pub allowed: usize,
    /// Malformed directives (always fatal).
    pub directive_errors: Vec<DirectiveError>,
    /// Files scanned.
    pub files_scanned: usize,
}

/// Walks the configured tree and applies every rule.
///
/// # Errors
///
/// Propagates filesystem errors (unreadable directory or file).
pub fn analyze(cfg: &Config) -> io::Result<Analysis> {
    let mut files = Vec::new();
    for scan_root in &cfg.scan_roots {
        let dir = cfg.root.join(scan_root);
        if dir.is_dir() {
            collect_rs_files(&dir, &mut files)?;
        }
    }
    files.sort();
    let mut analysis = Analysis::default();
    for path in files {
        let rel = relative_slash_path(&cfg.root, &path);
        if cfg
            .skip_prefixes
            .iter()
            .any(|p| rel.starts_with(p.as_str()))
        {
            continue;
        }
        let source = fs::read_to_string(&path)?;
        analyze_source(cfg, &rel, &source, &mut analysis);
        analysis.files_scanned += 1;
    }
    Ok(analysis)
}

/// Analyses a single file's source text (the pure core, used directly
/// by the fixture tests). Appends to `out`.
pub fn analyze_source(cfg: &Config, rel: &str, source: &str, out: &mut Analysis) {
    let rules = cfg.rules_for(rel);
    let masked = mask(source);
    for err in &masked.directive_errors {
        out.directive_errors.push(DirectiveError {
            file: rel.to_string(),
            line: err.0,
            message: err.1.clone(),
        });
    }
    if rules.is_empty() {
        return;
    }
    let test_lines = test_region_lines(&masked.text);
    // Gated regions are found on the raw source: masking blanks the
    // `"std"` literal inside the attribute.
    let std_gated_lines = if rules.contains(&Rule::N1) {
        cfg_std_region_lines(source)
    } else {
        std::collections::BTreeSet::new()
    };
    let source_lines: Vec<&str> = source.lines().collect();
    for (idx, masked_line) in masked.text.lines().enumerate() {
        let line_no = idx + 1;
        if test_lines.contains(&line_no) {
            continue;
        }
        for &rule in &rules {
            if rule == Rule::N1 && std_gated_lines.contains(&line_no) {
                continue;
            }
            for col in match_rule(rule, masked_line) {
                if masked.is_allowed(rule, line_no) {
                    out.allowed += 1;
                    continue;
                }
                out.findings.push(Finding {
                    rule,
                    file: rel.to_string(),
                    line: line_no,
                    col,
                    snippet: snippet_of(source_lines.get(idx).copied().unwrap_or("")),
                });
            }
        }
    }
}

fn snippet_of(line: &str) -> String {
    let trimmed = line.trim();
    if trimmed.len() > 120 {
        let mut cut = 120;
        while !trimmed.is_char_boundary(cut) {
            cut -= 1;
        }
        format!("{}…", &trimmed[..cut])
    } else {
        trimmed.to_string()
    }
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    const SKIP_DIRS: [&str; 5] = ["target", "tests", "benches", "examples", "fixtures"];
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(std::fs::DirEntry::path);
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn relative_slash_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

// ---------------------------------------------------------------------
// Lexing: masking comments and literals, extracting allow directives
// ---------------------------------------------------------------------

/// A source file with comments, string literals and char literals
/// blanked out (newlines preserved), plus the allow directives and
/// directive errors found in the comments.
struct Masked {
    text: String,
    /// `(line, rule)` pairs: rule findings on `line` or `line + 1` are
    /// suppressed.
    allows: Vec<(usize, Rule)>,
    /// `(line, message)` for malformed directives.
    directive_errors: Vec<(usize, String)>,
}

impl Masked {
    fn is_allowed(&self, rule: Rule, line: usize) -> bool {
        self.allows
            .iter()
            .any(|&(l, r)| r == rule && (l == line || l + 1 == line))
    }
}

/// Blanks every byte of comments and string/char literals (except
/// newlines) so the rule matchers can scan raw text without false hits,
/// while collecting `meshlint::allow` directives from the comments.
fn mask(source: &str) -> Masked {
    let bytes = source.as_bytes();
    let mut out = bytes.to_vec();
    let mut allows = Vec::new();
    let mut errors = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;

    let blank = |out: &mut [u8], from: usize, to: usize| {
        for b in out.iter_mut().take(to).skip(from) {
            if *b != b'\n' {
                *b = b' ';
            }
        }
    };

    while i < bytes.len() {
        match bytes[i] {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let end = memchr_newline(bytes, i);
                parse_directive(source, i, end, line, &mut allows, &mut errors);
                blank(&mut out, i, end);
                i = end;
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let start = i;
                let mut depth = 1u32;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        if bytes[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                blank(&mut out, start, i);
            }
            b'"' => {
                let start = i;
                i += 1;
                while i < bytes.len() {
                    match bytes[i] {
                        b'\\' => i += 2,
                        b'"' => {
                            i += 1;
                            break;
                        }
                        b'\n' => {
                            line += 1;
                            i += 1;
                        }
                        _ => i += 1,
                    }
                }
                // Keep the delimiters so `""` stays lexically a string.
                blank(&mut out, start + 1, i.saturating_sub(1));
            }
            b'r' | b'b' if is_raw_string_start(bytes, i) => {
                // r"...", r#"..."#, br"...", rb#"..."# etc.
                let start = i;
                while i < bytes.len() && (bytes[i] == b'r' || bytes[i] == b'b') {
                    i += 1;
                }
                let mut hashes = 0usize;
                while bytes.get(i) == Some(&b'#') {
                    hashes += 1;
                    i += 1;
                }
                i += 1; // opening quote
                loop {
                    match bytes.get(i) {
                        None => break,
                        Some(b'\n') => {
                            line += 1;
                            i += 1;
                        }
                        Some(b'"') if closing_hashes(bytes, i + 1) >= hashes => {
                            i += 1 + hashes;
                            break;
                        }
                        Some(_) => i += 1,
                    }
                }
                blank(&mut out, start, i);
            }
            b'\'' => {
                // Char literal vs lifetime: a lifetime is `'` followed by
                // an identifier NOT terminated by a closing `'`.
                let next = bytes.get(i + 1).copied();
                let is_lifetime = next.is_some_and(|c| c.is_ascii_alphabetic() || c == b'_')
                    && bytes.get(i + 2) != Some(&b'\'');
                if is_lifetime {
                    i += 2;
                } else {
                    let start = i;
                    i += 1;
                    if bytes.get(i) == Some(&b'\\') {
                        i += 2; // escaped char
                                // \x41, \u{...}
                        while i < bytes.len() && bytes[i] != b'\'' {
                            i += 1;
                        }
                    } else {
                        // Possibly multibyte; advance to the closing quote.
                        while i < bytes.len() && bytes[i] != b'\'' && bytes[i] != b'\n' {
                            i += 1;
                        }
                    }
                    if bytes.get(i) == Some(&b'\'') {
                        i += 1;
                    }
                    blank(&mut out, start, i);
                }
            }
            _ => i += 1,
        }
    }

    Masked {
        text: String::from_utf8(out).unwrap_or_default(),
        allows,
        directive_errors: errors,
    }
}

fn memchr_newline(bytes: &[u8], from: usize) -> usize {
    bytes
        .iter()
        .skip(from)
        .position(|&b| b == b'\n')
        .map_or(bytes.len(), |p| from + p)
}

fn is_raw_string_start(bytes: &[u8], i: usize) -> bool {
    // Only treat r/b prefixes as raw strings when not part of a longer
    // identifier (e.g. `for` ends in 'r').
    if i > 0 && is_ident_byte(bytes[i - 1]) {
        return false;
    }
    let mut j = i;
    while j < bytes.len() && (bytes[j] == b'r' || bytes[j] == b'b') && j - i < 2 {
        j += 1;
    }
    if j == i {
        return false;
    }
    while bytes.get(j) == Some(&b'#') {
        j += 1;
    }
    bytes.get(j) == Some(&b'"') && bytes.get(i).is_some_and(|&c| c == b'r' || c == b'b') && {
        // Require an actual `r` in the prefix unless it is `b"..."`.
        let prefix = &bytes[i..j];
        prefix.contains(&b'r') || prefix == b"b"
    }
}

fn closing_hashes(bytes: &[u8], from: usize) -> usize {
    bytes.iter().skip(from).take_while(|&&b| b == b'#').count()
}

/// Parses a `meshlint::allow(<rule>): <reason>` directive out of a line
/// comment spanning `bytes[start..end)`.
fn parse_directive(
    source: &str,
    start: usize,
    end: usize,
    line: usize,
    allows: &mut Vec<(usize, Rule)>,
    errors: &mut Vec<(usize, String)>,
) {
    let comment = source.get(start..end).unwrap_or("");
    let Some(pos) = comment.find("meshlint::allow") else {
        return;
    };
    let rest = comment.get(pos + "meshlint::allow".len()..).unwrap_or("");
    let Some(open) = rest.find('(') else {
        errors.push((line, "expected `(<rule>)` after meshlint::allow".into()));
        return;
    };
    let Some(close) = rest.find(')') else {
        errors.push((line, "unclosed `(` in meshlint::allow".into()));
        return;
    };
    let ids = rest.get(open + 1..close).unwrap_or("");
    let after = rest.get(close + 1..).unwrap_or("").trim_start();
    let reason = after.strip_prefix(':').map(str::trim).unwrap_or("");
    if reason.is_empty() {
        errors.push((
            line,
            "meshlint::allow requires a written reason: `// meshlint::allow(<rule>): <why>`".into(),
        ));
        return;
    }
    for id in ids.split(',') {
        match Rule::from_id(id) {
            Some(rule) => allows.push((line, rule)),
            None => errors.push((line, format!("unknown rule '{}'", id.trim()))),
        }
    }
}

/// Lines (1-based) covered by `#[cfg(test)] mod … { … }` regions in the
/// masked text.
fn test_region_lines(masked: &str) -> std::collections::BTreeSet<usize> {
    let bytes = masked.as_bytes();
    let mut lines = std::collections::BTreeSet::new();
    let mut search_from = 0usize;
    while let Some(found) = find_from(masked, "#[cfg(test)]", search_from) {
        let attr_end = found + "#[cfg(test)]".len();
        search_from = attr_end;
        // Skip whitespace and further attributes, then require `mod`.
        let mut j = attr_end;
        loop {
            while j < bytes.len() && bytes[j].is_ascii_whitespace() {
                j += 1;
            }
            if bytes.get(j) == Some(&b'#') {
                // Skip a bracketed attribute.
                while j < bytes.len() && bytes[j] != b']' {
                    j += 1;
                }
                j += 1;
            } else {
                break;
            }
        }
        if !masked.get(j..).is_some_and(|r| r.starts_with("mod")) {
            continue; // cfg(test) on something other than a module
        }
        let Some(open_rel) = masked.get(j..).and_then(|r| r.find('{')) else {
            continue;
        };
        let open = j + open_rel;
        let mut depth = 0i64;
        let mut k = open;
        while k < bytes.len() {
            match bytes[k] {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        let first_line = line_of(bytes, found);
        let last_line = line_of(bytes, k.min(bytes.len().saturating_sub(1)));
        for l in first_line..=last_line {
            lines.insert(l);
        }
        search_from = k;
    }
    lines
}

/// Lines (1-based) covered by items gated behind `#[cfg(feature =
/// "std")]` in the *raw* source (masking would blank the `"std"`
/// literal). Covers the attribute through the end of the item: the
/// matching `}` of its first brace block, or the terminating `;` for
/// brace-less items (`use`, type aliases, gated re-exports).
fn cfg_std_region_lines(source: &str) -> std::collections::BTreeSet<usize> {
    const ATTR: &str = "#[cfg(feature = \"std\")]";
    let bytes = source.as_bytes();
    let mut lines = std::collections::BTreeSet::new();
    let mut search_from = 0usize;
    while let Some(found) = find_from(source, ATTR, search_from) {
        search_from = found + ATTR.len();
        // Skip whitespace and further attributes to the item itself.
        let mut j = search_from;
        loop {
            while j < bytes.len() && bytes[j].is_ascii_whitespace() {
                j += 1;
            }
            if bytes.get(j) == Some(&b'#') {
                while j < bytes.len() && bytes[j] != b']' {
                    j += 1;
                }
                j += 1;
            } else {
                break;
            }
        }
        // Find the end of the item: a `;` before any `{`, or the
        // matching close of the first brace block.
        let mut k = j;
        let mut depth = 0i64;
        let mut entered = false;
        while k < bytes.len() {
            match bytes[k] {
                b';' if !entered => break,
                b'{' => {
                    depth += 1;
                    entered = true;
                }
                b'}' => {
                    depth -= 1;
                    if entered && depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        let first_line = line_of(bytes, found);
        let last_line = line_of(bytes, k.min(bytes.len().saturating_sub(1)));
        for l in first_line..=last_line {
            lines.insert(l);
        }
        search_from = k.max(search_from);
    }
    lines
}

fn find_from(haystack: &str, needle: &str, from: usize) -> Option<usize> {
    haystack.get(from..)?.find(needle).map(|p| from + p)
}

fn line_of(bytes: &[u8], pos: usize) -> usize {
    1 + bytes.iter().take(pos).filter(|&&b| b == b'\n').count()
}

// ---------------------------------------------------------------------
// Rule matchers
// ---------------------------------------------------------------------

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Whether `text[pos..pos+len]` sits on identifier boundaries.
fn on_boundary(text: &str, pos: usize, len: usize) -> bool {
    let bytes = text.as_bytes();
    let before_ok = pos == 0 || !is_ident_byte(bytes[pos - 1]);
    let after_ok = pos + len >= bytes.len() || !is_ident_byte(bytes[pos + len]);
    before_ok && after_ok
}

/// All boundary-respecting occurrences of `needle` in `line`, as
/// 1-based columns.
fn word_matches(line: &str, needle: &str) -> Vec<usize> {
    let mut cols = Vec::new();
    let mut from = 0usize;
    while let Some(pos) = find_from(line, needle, from) {
        if on_boundary(line, pos, needle.len()) {
            cols.push(pos + 1);
        }
        from = pos + needle.len();
    }
    cols
}

/// Columns (1-based) where `rule` fires on one masked line.
fn match_rule(rule: Rule, line: &str) -> Vec<usize> {
    let mut cols = Vec::new();
    match rule {
        Rule::D1 => {
            cols.extend(word_matches(line, "HashMap"));
            cols.extend(word_matches(line, "HashSet"));
        }
        Rule::D2 => {
            cols.extend(word_matches(line, "Instant"));
            cols.extend(word_matches(line, "SystemTime"));
            cols.extend(word_matches(line, "thread_rng"));
        }
        Rule::R1 => {
            // Method-call forms: the char before `.` is part of the
            // receiver, so plain substring search is exact.
            for needle in [".unwrap()", ".expect("] {
                let mut from = 0usize;
                while let Some(pos) = find_from(line, needle, from) {
                    cols.push(pos + 1);
                    from = pos + needle.len();
                }
            }
            // Macro forms need identifier boundaries so `debug_assert!`
            // (compiled out in release, permitted) does not match
            // `assert!`.
            for needle in [
                "panic!",
                "unreachable!",
                "todo!",
                "unimplemented!",
                "assert!",
                "assert_eq!",
                "assert_ne!",
            ] {
                cols.extend(word_matches(line, needle));
            }
            cols.extend(index_expr_cols(line));
        }
        Rule::C1 => {
            for needle in ["as u8", "as u16", "as i8", "as i16"] {
                for col in word_matches(line, needle) {
                    // Require the keyword form ` as u16`, not an
                    // identifier that happens to end with "as".
                    let before = line.as_bytes().get(col.wrapping_sub(2)).copied();
                    if before.is_none() || before == Some(b' ') || before == Some(b'(') {
                        cols.push(col);
                    }
                }
            }
        }
        Rule::N1 => {
            // `std::` as a path segment: `use std::…`, `std::vec::Vec`,
            // `::std::…` — but not `my_std::`.
            let mut from = 0usize;
            while let Some(pos) = find_from(line, "std::", from) {
                if pos == 0 || !is_ident_byte(line.as_bytes()[pos - 1]) {
                    cols.push(pos + 1);
                }
                from = pos + "std::".len();
            }
        }
    }
    cols.sort_unstable();
    cols
}

/// Columns of `[` tokens that open an *index expression*: the previous
/// non-space character is an identifier character, `)`, or `]` — i.e.
/// `frame[0]`, `f()[1]`, `m[a][b]` — as opposed to array literals,
/// types, attributes (`#[...]`) and macro brackets (`vec![...]`).
fn index_expr_cols(line: &str) -> Vec<usize> {
    let bytes = line.as_bytes();
    let mut cols = Vec::new();
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'[' {
            continue;
        }
        let Some(j) = bytes.iter().take(i).rposition(|&c| c != b' ') else {
            continue;
        };
        let p = bytes[j];
        if !(is_ident_byte(p) || p == b')' || p == b']') {
            continue;
        }
        // `&'a [u8]`: an identifier that is really a lifetime name — walk
        // to its start and check for a leading tick. Keywords (`&mut
        // [T]`, `dyn [..]`) are slice-type syntax too: a keyword can
        // never be the receiver of an index expression.
        if is_ident_byte(p) {
            let mut s = j;
            while s > 0 && is_ident_byte(bytes[s - 1]) {
                s -= 1;
            }
            if s > 0 && bytes[s - 1] == b'\'' {
                continue;
            }
            if matches!(&bytes[s..=j], b"mut" | b"dyn" | b"in") {
                continue;
            }
        }
        cols.push(i + 1);
    }
    cols
}

// ---------------------------------------------------------------------
// Baseline ratcheting
// ---------------------------------------------------------------------

/// Grandfathered findings: a multiset of [`Finding::baseline_key`]s.
///
/// New findings (beyond the baselined count per key) fail the run;
/// baselined ones are tracked so the debt is visible and can only burn
/// down (stale entries are reported for removal).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Baseline {
    counts: BTreeMap<String, usize>,
}

/// How an analysis compares against a baseline.
#[derive(Clone, Debug, Default)]
pub struct Ratchet {
    /// Findings not covered by the baseline — these fail the run.
    pub new: Vec<Finding>,
    /// Findings tolerated because the baseline grandfathers them.
    pub grandfathered: Vec<Finding>,
    /// Baseline entries no longer observed: `(key, count)` pairs that
    /// should be deleted to lock in the progress.
    pub stale: Vec<(String, usize)>,
}

impl Baseline {
    /// An empty baseline: every finding is new.
    #[must_use]
    pub fn empty() -> Self {
        Baseline::default()
    }

    /// Builds a baseline grandfathering exactly the given findings.
    #[must_use]
    pub fn from_findings(findings: &[Finding]) -> Self {
        let mut counts = BTreeMap::new();
        for f in findings {
            *counts.entry(f.baseline_key()).or_insert(0) += 1;
        }
        Baseline { counts }
    }

    /// Parses the baseline file format: one `rule|file|snippet` key per
    /// line (repeated keys grandfather multiple identical sites); `#`
    /// lines and blank lines are ignored.
    #[must_use]
    pub fn parse(text: &str) -> Self {
        let mut counts = BTreeMap::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            *counts.entry(line.to_string()).or_insert(0) += 1;
        }
        Baseline { counts }
    }

    /// Loads a baseline file; a missing file is an empty baseline.
    ///
    /// # Errors
    ///
    /// Propagates read errors other than `NotFound`.
    pub fn load(path: &Path) -> io::Result<Self> {
        match fs::read_to_string(path) {
            Ok(text) => Ok(Self::parse(&text)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(Self::empty()),
            Err(e) => Err(e),
        }
    }

    /// Serialises to the line-per-key format, sorted.
    #[must_use]
    pub fn serialize(&self) -> String {
        let mut out = String::from(
            "# meshlint baseline: grandfathered findings (burn these down; never add).\n\
             # One `rule|file|snippet` key per line; regenerate with `meshlint --write-baseline`.\n",
        );
        for (key, count) in &self.counts {
            for _ in 0..*count {
                out.push_str(key);
                out.push('\n');
            }
        }
        out
    }

    /// Number of grandfathered keys.
    #[must_use]
    pub fn len(&self) -> usize {
        self.counts.values().sum()
    }

    /// Whether nothing is grandfathered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Splits findings into new vs grandfathered and reports stale
    /// baseline entries.
    #[must_use]
    pub fn ratchet(&self, findings: &[Finding]) -> Ratchet {
        let mut remaining = self.counts.clone();
        let mut result = Ratchet::default();
        for f in findings {
            let key = f.baseline_key();
            match remaining.get_mut(&key) {
                Some(n) if *n > 0 => {
                    *n -= 1;
                    result.grandfathered.push(f.clone());
                }
                _ => result.new.push(f.clone()),
            }
        }
        result.stale = remaining.into_iter().filter(|&(_, n)| n > 0).collect();
        result
    }
}

// ---------------------------------------------------------------------
// JSON output (hand-rolled: the crate must stay dependency-free)
// ---------------------------------------------------------------------

/// Escapes a string for inclusion in JSON output.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders machine-readable results: every finding plus the ratchet
/// summary.
#[must_use]
pub fn to_json(ratchet: &Ratchet, analysis: &Analysis) -> String {
    let mut out = String::from("{\n  \"findings\": [\n");
    let render = |f: &Finding, is_new: bool| {
        format!(
            "    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"col\": {}, \
             \"snippet\": \"{}\", \"hint\": \"{}\", \"new\": {}}}",
            f.rule.id(),
            json_escape(&f.file),
            f.line,
            f.col,
            json_escape(&f.snippet),
            json_escape(f.rule.hint()),
            is_new
        )
    };
    let rows: Vec<String> = ratchet
        .new
        .iter()
        .map(|f| render(f, true))
        .chain(ratchet.grandfathered.iter().map(|f| render(f, false)))
        .collect();
    out.push_str(&rows.join(",\n"));
    out.push_str(&format!(
        "\n  ],\n  \"new\": {},\n  \"grandfathered\": {},\n  \"stale_baseline_entries\": {},\n  \
         \"allowed\": {},\n  \"directive_errors\": {},\n  \"files_scanned\": {}\n}}\n",
        ratchet.new.len(),
        ratchet.grandfathered.len(),
        ratchet.stale.len(),
        analysis.allowed,
        analysis.directive_errors.len(),
        analysis.files_scanned
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masking_blanks_comments_and_strings() {
        let src = "let a = \"HashMap\"; // HashMap here\nlet b = 'x';\n/* HashMap\nHashMap */ let c = 1;\n";
        let m = mask(src);
        assert!(!m.text.contains("HashMap"));
        assert!(m.text.contains("let a ="));
        assert!(m.text.contains("let c = 1;"));
        assert_eq!(m.text.lines().count(), src.lines().count());
    }

    #[test]
    fn masking_handles_raw_strings_and_lifetimes() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }\nlet r = r#\"Instant::now\"#;\n";
        let m = mask(src);
        assert!(!m.text.contains("Instant"));
        assert!(m.text.contains("fn f<'a>"));
    }

    #[test]
    fn directive_parsing() {
        let src = "// meshlint::allow(d1): keyed lookups only\nuse std::collections::HashMap;\n";
        let m = mask(src);
        assert_eq!(m.allows, vec![(1, Rule::D1)]);
        assert!(m.is_allowed(Rule::D1, 1));
        assert!(m.is_allowed(Rule::D1, 2));
        assert!(!m.is_allowed(Rule::D1, 3));
        assert!(!m.is_allowed(Rule::D2, 2));
    }

    #[test]
    fn directive_without_reason_is_an_error() {
        let m = mask("// meshlint::allow(d1)\nuse std::collections::HashMap;\n");
        assert!(m.allows.is_empty());
        assert_eq!(m.directive_errors.len(), 1);
        let m2 = mask("// meshlint::allow(bogus): because\n");
        assert_eq!(m2.directive_errors.len(), 1);
    }

    #[test]
    fn cfg_test_regions_are_excised() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn f() { x.unwrap() }\n}\nfn after() {}\n";
        let lines = test_region_lines(src);
        assert!(lines.contains(&2) && lines.contains(&5));
        assert!(!lines.contains(&1) && !lines.contains(&6));
    }

    #[test]
    fn index_expression_detection() {
        assert_eq!(index_expr_cols("let x = frame[0];"), vec![14]);
        assert!(index_expr_cols("#[derive(Debug)]").is_empty());
        assert!(index_expr_cols("let v = vec![1, 2];").is_empty());
        assert!(index_expr_cols("let t: [u8; 4] = [0; 4];").is_empty());
        assert_eq!(index_expr_cols("f()[1]"), vec![4]);
        assert!(index_expr_cols("fn take(&mut self) -> Result<&'a [u8], E> {").is_empty());
        assert!(index_expr_cols("frame: &'static [u8],").is_empty());
        assert!(index_expr_cols("pub fn run_chunks<T>(items: &mut [T]) {").is_empty());
        assert!(index_expr_cols("F: Fn(usize, &mut [T]) + Sync,").is_empty());
        assert!(index_expr_cols("for x in [1, 2, 3] {").is_empty());
        // A real index after `mut` binding still fires on the receiver.
        assert_eq!(index_expr_cols("let mut y = frame[0];"), vec![18]);
    }

    #[test]
    fn c1_requires_keyword_position() {
        assert!(match_rule(Rule::C1, "let atlas u8 = 1;").is_empty());
        assert_eq!(match_rule(Rule::C1, "let x = n as u16;").len(), 1);
        assert!(match_rule(Rule::C1, "let x = n as u64;").is_empty());
        assert!(match_rule(Rule::C1, "let x = alias u8;").is_empty());
    }

    #[test]
    fn n1_matches_std_path_segments_only() {
        assert_eq!(match_rule(Rule::N1, "use std::time::Duration;"), vec![5]);
        assert_eq!(match_rule(Rule::N1, "let e: ::std::fmt::Error;"), vec![10]);
        assert!(match_rule(Rule::N1, "use my_std::helpers;").is_empty());
        assert!(match_rule(Rule::N1, "use alloc::vec::Vec;").is_empty());
        assert!(match_rule(Rule::N1, "use core::time::Duration;").is_empty());
    }

    #[test]
    fn n1_respects_std_feature_gates_and_test_code() {
        let cfg = Config::workspace("/nonexistent");
        let src = "\
use alloc::vec::Vec;\n\
#[cfg(feature = \"std\")]\n\
impl std::error::Error for E {}\n\
#[cfg(feature = \"std\")]\n\
pub use std::time::Duration;\n\
fn ungated() { let _ = std::mem::take(&mut 0); }\n\
#[cfg(test)]\n\
mod tests {\n\
    use std::time::Duration;\n\
}\n";
        let mut out = Analysis::default();
        analyze_source(&cfg, "crates/core/src/error.rs", src, &mut out);
        let n1: Vec<&Finding> = out.findings.iter().filter(|f| f.rule == Rule::N1).collect();
        assert_eq!(n1.len(), 1, "findings: {n1:?}");
        assert_eq!(n1[0].line, 6);
        // The same source in a std-only crate raises no n1 findings.
        let mut std_ok = Analysis::default();
        analyze_source(&cfg, "crates/radio-sim/src/lib.rs", src, &mut std_ok);
        assert!(std_ok.findings.iter().all(|f| f.rule != Rule::N1));
    }

    #[test]
    fn cfg_std_region_covers_braced_and_braceless_items() {
        let src = "\
#[cfg(feature = \"std\")]\n\
#[derive(Debug)]\n\
impl Thing {\n\
    fn f(&self) {}\n\
}\n\
fn open() {}\n\
#[cfg(feature = \"std\")]\n\
use std::io;\n\
fn also_open() {}\n";
        let lines = cfg_std_region_lines(src);
        for l in 1..=5 {
            assert!(lines.contains(&l), "line {l} should be gated");
        }
        assert!(!lines.contains(&6));
        assert!(lines.contains(&7) && lines.contains(&8));
        assert!(!lines.contains(&9));
    }

    #[test]
    fn baseline_ratchet_counts_multiset() {
        let f = |line: usize| Finding {
            rule: Rule::D1,
            file: "a.rs".into(),
            line,
            col: 1,
            snippet: "use std::collections::HashMap;".into(),
        };
        let base = Baseline::from_findings(&[f(1)]);
        // Same key at a different line: still grandfathered (keys are
        // line-independent); a second occurrence is new.
        let r = base.ratchet(&[f(9), f(12)]);
        assert_eq!(r.grandfathered.len(), 1);
        assert_eq!(r.new.len(), 1);
        assert!(r.stale.is_empty());
        // Burned-down finding leaves a stale entry.
        let r2 = base.ratchet(&[]);
        assert_eq!(r2.stale.len(), 1);
        // Round-trip through the file format.
        assert_eq!(Baseline::parse(&base.serialize()), base);
    }
}
