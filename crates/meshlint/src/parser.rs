//! Item-level parsing on top of the masked lexer: a brace-tree walk
//! that extracts `fn` definitions (with their enclosing `impl`/`trait`/
//! `mod` qualifier and body span), every call site inside them, and the
//! closure regions handed to the parallel fork-join entry points.
//!
//! The input is the *masked* source (comments and literals blanked by
//! the lexer in `lib.rs`), so text inside strings and comments can
//! never fabricate items or calls. `macro_rules!` definitions are
//! skipped wholesale: their bodies are token soup that expands
//! elsewhere, not calls made by this file. Macro *invocations*
//! (`format!(..)`) are not calls either, but the expressions inside
//! their delimiters are scanned normally. `#[cfg(test)]` filtering
//! happens later, at the line level, against the spans reported here.

/// Byte range (`start..end`) in the masked text.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Span {
    /// Inclusive start offset.
    pub start: usize,
    /// Exclusive end offset.
    pub end: usize,
}

impl Span {
    /// Whether `pos` falls inside the span.
    #[must_use]
    pub fn contains(self, pos: usize) -> bool {
        self.start <= pos && pos < self.end
    }
}

/// Byte-offset → line/column translation for one file.
#[derive(Clone, Debug)]
pub struct Lines {
    /// Byte offset of each line start (line 1 starts at offset 0).
    starts: Vec<usize>,
}

impl Lines {
    /// Indexes the line starts of `text`.
    #[must_use]
    pub fn new(text: &str) -> Self {
        let mut starts = vec![0usize];
        for (i, b) in text.bytes().enumerate() {
            if b == b'\n' {
                starts.push(i + 1);
            }
        }
        Lines { starts }
    }

    /// 1-based line containing byte `pos`.
    #[must_use]
    pub fn line_of(&self, pos: usize) -> usize {
        self.starts.partition_point(|&s| s <= pos)
    }

    /// 1-based byte column of `pos` within its line.
    #[must_use]
    pub fn col_of(&self, pos: usize) -> usize {
        let line = self.line_of(pos);
        pos - self.starts.get(line - 1).copied().unwrap_or(0) + 1
    }

    /// `(first, last)` 1-based lines covered by `span`.
    #[must_use]
    pub fn line_range(&self, span: Span) -> (usize, usize) {
        (
            self.line_of(span.start),
            self.line_of(span.end.saturating_sub(1).max(span.start)),
        )
    }
}

/// One function definition.
#[derive(Clone, Debug)]
pub struct FnDef {
    /// The bare function name.
    pub name: String,
    /// The enclosing `impl`/`trait` type name, or `""` for free fns.
    pub qual: String,
    /// Innermost enclosing `mod` name, or `""` at file scope.
    pub module: String,
    /// Span from the `fn` keyword to the body's `{` (exclusive).
    pub sig: Span,
    /// 1-based line of the `fn` keyword.
    pub sig_line: usize,
    /// Body block including both braces; `None` for bodyless
    /// declarations (trait methods without defaults).
    pub body: Option<Span>,
    /// Call sites lexically inside this fn. Nested fns collect their
    /// own calls (the innermost enclosing fn wins).
    pub calls: Vec<CallSite>,
}

/// One call site: `name(..)`, `path::name(..)` or `recv.name(..)`.
#[derive(Clone, Debug)]
pub struct CallSite {
    /// The called name.
    pub name: String,
    /// The path segment right before `::name(`, with `Self` already
    /// resolved to the enclosing impl/trait type. `None` for bare and
    /// method calls.
    pub qual: Option<String>,
    /// Whether this is a method call (`recv.name(..)`).
    pub method: bool,
    /// Identifiers along the receiver chain, left to right
    /// (`sh.queues[b].x(..)` → `["sh", "queues"]`). Empty for
    /// non-method calls.
    pub recv: Vec<String>,
    /// Byte position of the name in the masked text.
    pub pos: usize,
    /// Byte position of the call's opening parenthesis.
    pub open: usize,
    /// 1-based line of the name.
    pub line: usize,
    /// 1-based byte column of the name.
    pub col: usize,
}

/// A worker-evaluated region: the closure (or function path) handed to
/// a parallel fork-join entry point. Code inside it runs off the
/// coordinator thread.
#[derive(Clone, Debug)]
pub struct ParRegion {
    /// Which entry point the region was handed to.
    pub entry: String,
    /// 1-based line of the entry call (the report anchor).
    pub line: usize,
    /// Span of the worker-executed code: the closure body, or the whole
    /// final argument when a function path is passed instead.
    pub body: Span,
}

/// Parse result for one file.
#[derive(Clone, Debug, Default)]
pub struct ParsedFile {
    /// Every `fn` item, in source order.
    pub fns: Vec<FnDef>,
    /// Worker-evaluated regions, in source order.
    pub regions: Vec<ParRegion>,
}

/// Words that can never be a call-site name.
const KEYWORDS: [&str; 37] = [
    "as", "async", "await", "break", "const", "continue", "crate", "dyn", "else", "enum", "extern",
    "false", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub",
    "ref", "return", "self", "Self", "static", "struct", "super", "trait", "true", "type",
    "unsafe", "use", "where",
];

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

fn skip_ws(bytes: &[u8], mut i: usize) -> usize {
    while i < bytes.len() && bytes[i].is_ascii_whitespace() {
        i += 1;
    }
    i
}

/// Index just past the last non-whitespace byte before `i` (exclusive).
fn skip_ws_back(bytes: &[u8], mut i: usize) -> usize {
    while i > 0 && bytes[i - 1].is_ascii_whitespace() {
        i -= 1;
    }
    i
}

fn ident_end(bytes: &[u8], mut i: usize) -> usize {
    while i < bytes.len() && is_ident_byte(bytes[i]) {
        i += 1;
    }
    i
}

fn ident_start(bytes: &[u8], mut i: usize) -> usize {
    while i > 0 && is_ident_byte(bytes[i - 1]) {
        i -= 1;
    }
    i
}

/// What a pending item header will attach to at its opening `{`.
enum Pending {
    Impl(String),
    Trait(String),
    Mod(String),
    Fn(usize),
}

/// What an open brace belongs to.
enum Ctx {
    Impl(String),
    Trait(String),
    Mod(String),
    Fn(usize),
    Block,
}

/// Parses one masked file. `par_entries` names the fork-join entry
/// points whose final argument is a worker-evaluated region.
#[must_use]
pub fn parse(masked: &str, par_entries: &[String]) -> ParsedFile {
    let bytes = masked.as_bytes();
    let lines = Lines::new(masked);
    let mut out = ParsedFile::default();
    let mut stack: Vec<Ctx> = Vec::new();
    let mut pending: Option<Pending> = None;
    let mut i = 0usize;

    while i < bytes.len() {
        let b = bytes[i];
        if b == b'{' {
            let ctx = match pending.take() {
                Some(Pending::Impl(n)) => Ctx::Impl(n),
                Some(Pending::Trait(n)) => Ctx::Trait(n),
                Some(Pending::Mod(n)) => Ctx::Mod(n),
                Some(Pending::Fn(fi)) => {
                    if let Some(f) = out.fns.get_mut(fi) {
                        f.body = Some(Span { start: i, end: i });
                    }
                    Ctx::Fn(fi)
                }
                None => Ctx::Block,
            };
            stack.push(ctx);
            i += 1;
        } else if b == b'}' {
            if let Some(Ctx::Fn(fi)) = stack.last() {
                let fi = *fi;
                if let Some(body) = out.fns.get_mut(fi).and_then(|f| f.body.as_mut()) {
                    body.end = i + 1;
                }
            }
            stack.pop();
            i += 1;
        } else if b == b';' {
            // A `;` terminates whatever item header was pending
            // (bodyless trait fn, `mod name;`, `impl T for U;`).
            pending = None;
            i += 1;
        } else if is_ident_start(b) && (i == 0 || !is_ident_byte(bytes[i - 1])) {
            let e = ident_end(bytes, i);
            let word = &masked[i..e];
            match word {
                "impl" => {
                    let (name, ni) = scan_impl_header(masked, e);
                    pending = Some(Pending::Impl(name));
                    i = ni;
                }
                "trait" => {
                    let (name, ni) = scan_named_header(masked, e);
                    pending = Some(Pending::Trait(name));
                    i = ni;
                }
                "mod" => {
                    let (name, ni) = scan_named_header(masked, e);
                    pending = Some(Pending::Mod(name));
                    i = ni;
                }
                "fn" => {
                    let ns = skip_ws(bytes, e);
                    if bytes.get(ns).copied().is_some_and(is_ident_start) {
                        let ne = ident_end(bytes, ns);
                        let sig_end = scan_fn_sig(masked, ne);
                        out.fns.push(FnDef {
                            name: masked[ns..ne].to_string(),
                            qual: type_qual(&stack),
                            module: mod_qual(&stack),
                            sig: Span {
                                start: i,
                                end: sig_end,
                            },
                            sig_line: lines.line_of(i),
                            body: None,
                            calls: Vec::new(),
                        });
                        pending = Some(Pending::Fn(out.fns.len() - 1));
                        i = sig_end;
                    } else {
                        // `fn(` — a function-pointer type, not an item.
                        i = e;
                    }
                }
                "macro_rules" => {
                    i = skip_macro_rules(masked, e);
                }
                w if KEYWORDS.contains(&w) => {
                    i = e;
                }
                _ => {
                    i = scan_possible_call(masked, &lines, i, e, &stack, par_entries, &mut out);
                }
            }
        } else {
            i += 1;
        }
    }
    out
}

/// The innermost enclosing impl/trait type name.
fn type_qual(stack: &[Ctx]) -> String {
    for ctx in stack.iter().rev() {
        match ctx {
            Ctx::Impl(n) | Ctx::Trait(n) => return n.clone(),
            _ => {}
        }
    }
    String::new()
}

/// The innermost enclosing module name.
fn mod_qual(stack: &[Ctx]) -> String {
    for ctx in stack.iter().rev() {
        if let Ctx::Mod(n) = ctx {
            return n.clone();
        }
    }
    String::new()
}

/// Index of the innermost enclosing fn, if any.
fn enclosing_fn(stack: &[Ctx]) -> Option<usize> {
    stack.iter().rev().find_map(|c| match c {
        Ctx::Fn(fi) => Some(*fi),
        _ => None,
    })
}

/// Scans an `impl` header from just after the keyword, returning the
/// implemented type's last path segment and the position of the body
/// `{` (or the terminating `;`/EOF). `impl Trait for Type` names
/// `Type`; generics, lifetimes and `where` clauses are skipped.
fn scan_impl_header(masked: &str, from: usize) -> (String, usize) {
    let bytes = masked.as_bytes();
    let mut angle = 0usize;
    let mut paren = 0usize;
    let mut capture = true;
    let mut name = String::new();
    let mut j = from;
    while j < bytes.len() {
        let b = bytes[j];
        match b {
            b'{' if angle == 0 && paren == 0 => break,
            b';' if angle == 0 && paren == 0 => break,
            b'-' if bytes.get(j + 1) == Some(&b'>') => j += 2,
            b'<' => {
                angle += 1;
                j += 1;
            }
            b'>' => {
                angle = angle.saturating_sub(1);
                j += 1;
            }
            b'(' => {
                paren += 1;
                j += 1;
            }
            b')' => {
                paren = paren.saturating_sub(1);
                j += 1;
            }
            _ if is_ident_start(b) && !is_ident_byte(bytes[j.saturating_sub(1)]) || j == 0 => {
                let e = ident_end(bytes, j);
                let word = &masked[j..e];
                if angle == 0 && paren == 0 {
                    if word == "for" {
                        name.clear();
                    } else if word == "where" {
                        capture = false;
                    } else if capture && word != "dyn" && word != "mut" {
                        name = word.to_string();
                    }
                }
                j = e;
            }
            _ => j += 1,
        }
    }
    (name, j)
}

/// Scans a `trait`/`mod` header: the name is the first identifier after
/// the keyword; returns it plus the position of the `{`/`;`/EOF.
fn scan_named_header(masked: &str, from: usize) -> (String, usize) {
    let bytes = masked.as_bytes();
    let ns = skip_ws(bytes, from);
    if !bytes.get(ns).copied().is_some_and(is_ident_start) {
        return (String::new(), from);
    }
    let ne = ident_end(bytes, ns);
    let name = masked[ns..ne].to_string();
    let mut angle = 0usize;
    let mut j = ne;
    while j < bytes.len() {
        match bytes[j] {
            b'{' | b';' if angle == 0 => break,
            b'<' => angle += 1,
            b'>' => angle = angle.saturating_sub(1),
            _ => {}
        }
        j += 1;
    }
    (name, j)
}

/// Scans a fn signature from just after the name to the body `{` or the
/// terminating `;`, tracking paren/angle nesting (and skipping `->`).
fn scan_fn_sig(masked: &str, from: usize) -> usize {
    let bytes = masked.as_bytes();
    let mut angle = 0usize;
    let mut paren = 0usize;
    let mut j = from;
    while j < bytes.len() {
        match bytes[j] {
            b'{' | b';' if angle == 0 && paren == 0 => break,
            b'-' if bytes.get(j + 1) == Some(&b'>') => j += 1,
            b'<' => angle += 1,
            b'>' => angle = angle.saturating_sub(1),
            b'(' => paren += 1,
            b')' => paren = paren.saturating_sub(1),
            _ => {}
        }
        j += 1;
    }
    j
}

/// Skips a whole `macro_rules! name { .. }` definition, returning the
/// position just past its closing delimiter.
fn skip_macro_rules(masked: &str, from: usize) -> usize {
    let bytes = masked.as_bytes();
    let mut j = skip_ws(bytes, from);
    if bytes.get(j) == Some(&b'!') {
        j = skip_ws(bytes, j + 1);
    }
    j = ident_end(bytes, j); // the macro's name
    j = skip_ws(bytes, j);
    let open = match bytes.get(j) {
        Some(&b'{') => b'{',
        Some(&b'(') => b'(',
        Some(&b'[') => b'[',
        _ => return j,
    };
    let close = match open {
        b'{' => b'}',
        b'(' => b')',
        _ => b']',
    };
    let mut depth = 0usize;
    while j < bytes.len() {
        if bytes[j] == open {
            depth += 1;
        } else if bytes[j] == close {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    j
}

/// Handles a non-keyword identifier at `[s, e)`: records a call site if
/// it is one, plus the worker region when the call is a par entry
/// point. Returns the position to resume the main scan from.
#[allow(clippy::too_many_arguments)]
fn scan_possible_call(
    masked: &str,
    lines: &Lines,
    s: usize,
    e: usize,
    stack: &[Ctx],
    par_entries: &[String],
    out: &mut ParsedFile,
) -> usize {
    let bytes = masked.as_bytes();
    let mut j = skip_ws(bytes, e);
    // `name!` — a macro invocation, not a call. The delimiter group is
    // scanned normally so calls inside macro arguments still register.
    if bytes.get(j) == Some(&b'!') {
        return j + 1;
    }
    // `name::<T>(..)` — skip the turbofish.
    if bytes.get(j) == Some(&b':') && bytes.get(j + 1) == Some(&b':') {
        let k = skip_ws(bytes, j + 2);
        if bytes.get(k) == Some(&b'<') {
            j = skip_ws(bytes, skip_angles(bytes, k));
        } else {
            return e; // plain path continuation; later segments re-scan
        }
    }
    if bytes.get(j) != Some(&b'(') {
        return e;
    }
    let open = j;
    let Some(fi) = enclosing_fn(stack) else {
        return e; // top-level const expression — out of scope
    };

    let name = masked[s..e].to_string();
    let mut qual = None;
    let mut method = false;
    let mut recv = Vec::new();
    if s >= 2 && &bytes[s - 2..s] == b"::" {
        let qe = skip_ws_back(bytes, s - 2);
        if qe > 0 && is_ident_byte(bytes[qe - 1]) {
            let qs = ident_start(bytes, qe);
            let q = &masked[qs..qe];
            qual = Some(if q == "Self" {
                type_qual(stack)
            } else {
                q.to_string()
            });
        }
    } else {
        let p = skip_ws_back(bytes, s);
        if p > 0 && bytes[p - 1] == b'.' {
            method = true;
            recv = receiver_chain(masked, p - 1);
        }
    }

    let call = CallSite {
        name: name.clone(),
        qual,
        method,
        recv,
        pos: s,
        open,
        line: lines.line_of(s),
        col: lines.col_of(s),
    };
    let line = call.line;
    if let Some(f) = out.fns.get_mut(fi) {
        f.calls.push(call);
    }

    if par_entries.iter().any(|p| p == &name) {
        if let Some(last) = call_args(masked, open).last() {
            let body = closure_body(masked, *last).unwrap_or(*last);
            out.regions.push(ParRegion {
                entry: name,
                line,
                body,
            });
        }
    }
    open + 1
}

/// Skips a balanced `<..>` group starting at `bytes[at] == b'<'`.
fn skip_angles(bytes: &[u8], at: usize) -> usize {
    let mut depth = 0usize;
    let mut j = at;
    while j < bytes.len() {
        match bytes[j] {
            b'<' => depth += 1,
            b'>' => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            b';' | b'{' => return j, // bail: not a type-argument list
            _ => {}
        }
        j += 1;
    }
    j
}

/// Collects the identifiers of a method call's receiver chain, walking
/// back from the final `.` over idents, `::`, and `(..)`/`[..]` groups.
fn receiver_chain(masked: &str, dot: usize) -> Vec<String> {
    let bytes = masked.as_bytes();
    let mut out = Vec::new();
    let mut sep = dot; // index of the separator byte ('.' or the first ':')
    loop {
        let mut p = skip_ws_back(bytes, sep);
        // Trailing index/call groups: `queues[b]`, `f()`.
        loop {
            match bytes.get(p.wrapping_sub(1)) {
                Some(&b')') => p = match_back(bytes, p - 1, b'(', b')'),
                Some(&b']') => p = match_back(bytes, p - 1, b'[', b']'),
                _ => break,
            }
        }
        if p == 0 || !is_ident_byte(bytes[p - 1]) {
            break;
        }
        let s = ident_start(bytes, p);
        out.push(masked[s..p].to_string());
        let q = skip_ws_back(bytes, s);
        if q >= 1 && bytes[q - 1] == b'.' {
            sep = q - 1;
        } else if q >= 2 && &bytes[q - 2..q] == b"::" {
            sep = q - 2;
        } else {
            break;
        }
    }
    out.reverse();
    out
}

/// Given the index of a closing delimiter, returns the index of its
/// matching opener (or 0 when unbalanced).
fn match_back(bytes: &[u8], close_at: usize, open: u8, close: u8) -> usize {
    let mut depth = 0usize;
    let mut j = close_at;
    loop {
        if bytes[j] == close {
            depth += 1;
        } else if bytes[j] == open {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
        if j == 0 {
            return 0;
        }
        j -= 1;
    }
}

/// Splits the arguments of a call whose `(` sits at `open` into
/// top-level comma-separated spans (whitespace-trimmed).
#[must_use]
pub fn call_args(masked: &str, open: usize) -> Vec<Span> {
    let bytes = masked.as_bytes();
    let mut args = Vec::new();
    let mut depth_paren = 1usize;
    let mut depth_sq = 0usize;
    let mut depth_brace = 0usize;
    // Inside a closure's `|..|` parameter list commas must not split.
    let mut in_params = false;
    let mut start = open + 1;
    let mut j = open + 1;
    let push = |args: &mut Vec<Span>, s: usize, e: usize| {
        let s = skip_ws(bytes, s);
        let e = skip_ws_back(bytes, e.min(bytes.len()));
        if s < e {
            args.push(Span { start: s, end: e });
        }
    };
    while j < bytes.len() {
        match bytes[j] {
            b'(' => depth_paren += 1,
            b')' => {
                depth_paren -= 1;
                if depth_paren == 0 {
                    push(&mut args, start, j);
                    return args;
                }
            }
            b'[' => depth_sq += 1,
            b']' => depth_sq = depth_sq.saturating_sub(1),
            b'{' => depth_brace += 1,
            b'}' => depth_brace = depth_brace.saturating_sub(1),
            b'|' if in_params => in_params = false,
            b'|' => {
                // A `|` right after `(`, `,` or `=` opens a closure's
                // parameter list (`||` is an empty one, over at once);
                // anything else is bitwise-or.
                let p = skip_ws_back(bytes, j);
                let after_move = p >= 4 && &bytes[p - 4..p] == b"move";
                let prefix = p == open + 1
                    || after_move
                    || matches!(bytes.get(p.wrapping_sub(1)), Some(&b'(' | &b',' | &b'='));
                if prefix && bytes.get(j + 1) == Some(&b'|') {
                    j += 1;
                } else if prefix {
                    in_params = true;
                }
            }
            b',' if depth_paren == 1 && depth_sq == 0 && depth_brace == 0 && !in_params => {
                push(&mut args, start, j);
                start = j + 1;
            }
            _ => {}
        }
        j += 1;
    }
    push(&mut args, start, j);
    args
}

/// The worker-executed span of a closure argument: the body after the
/// parameter list. `None` when the argument is not a closure (a
/// function path was passed instead).
fn closure_body(masked: &str, arg: Span) -> Option<Span> {
    let bytes = masked.as_bytes();
    let mut depth = 0usize;
    let mut j = arg.start;
    let mut params_open = None;
    while j < arg.end {
        match bytes[j] {
            b'(' | b'[' | b'{' => depth += 1,
            b')' | b']' | b'}' => depth = depth.saturating_sub(1),
            b'|' if depth == 0 => {
                params_open = Some(j);
                break;
            }
            _ => {}
        }
        j += 1;
    }
    let p = params_open?;
    let body_from = if bytes.get(p + 1) == Some(&b'|') {
        p + 2 // `||` — empty parameter list
    } else {
        let mut k = p + 1;
        let mut d = 0usize;
        while k < arg.end {
            match bytes[k] {
                b'(' | b'[' => d += 1,
                b')' | b']' => d = d.saturating_sub(1),
                b'|' if d == 0 => break,
                _ => {}
            }
            k += 1;
        }
        k + 1
    };
    let s = skip_ws(bytes, body_from);
    if bytes.get(s) == Some(&b'{') {
        let mut d = 0usize;
        let mut k = s;
        while k < bytes.len() {
            match bytes[k] {
                b'{' => d += 1,
                b'}' => {
                    d -= 1;
                    if d == 0 {
                        return Some(Span {
                            start: s,
                            end: k + 1,
                        });
                    }
                }
                _ => {}
            }
            k += 1;
        }
    }
    Some(Span {
        start: s,
        end: arg.end,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entries() -> Vec<String> {
        vec!["run_chunks".into(), "map_chunks".into()]
    }

    #[test]
    fn fn_items_get_quals_and_bodies() {
        let src = "\
impl<'a> Reader<'a> {
    pub fn take(&mut self, n: usize) -> &'a [u8] { helper(n) }
}
impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result { todo(f) }
}
trait Metric {
    fn rank(&self) -> u32;
    fn better(&self, other: &Self) -> bool { self.rank() < other.rank() }
}
mod cast {
    pub fn clamp(n: usize) -> u32 { narrow(n) }
}
fn free() {}
";
        let p = parse(src, &entries());
        let names: Vec<(String, String, String, bool)> = p
            .fns
            .iter()
            .map(|f| {
                (
                    f.qual.clone(),
                    f.module.clone(),
                    f.name.clone(),
                    f.body.is_some(),
                )
            })
            .collect();
        assert_eq!(
            names,
            vec![
                ("Reader".into(), String::new(), "take".into(), true),
                ("Rule".into(), String::new(), "fmt".into(), true),
                ("Metric".into(), String::new(), "rank".into(), false),
                ("Metric".into(), String::new(), "better".into(), true),
                (String::new(), "cast".into(), "clamp".into(), true),
                (String::new(), String::new(), "free".into(), true),
            ]
        );
    }

    #[test]
    fn call_sites_record_path_method_and_receiver() {
        let src = "\
fn f(&mut self) {
    let seq = self.queue.alloc_seq();
    sh.queues[sh.home[node]].schedule_at_seq(at, seq, event);
    codec::decode(frame);
    Self::helper(x);
    items.iter().collect::<Vec<_>>();
}
";
        let p = parse(src, &entries());
        let calls = &p.fns[0].calls;
        let find = |n: &str| calls.iter().find(|c| c.name == n).expect(n);
        let alloc = find("alloc_seq");
        assert!(alloc.method);
        assert_eq!(alloc.recv, vec!["self".to_string(), "queue".into()]);
        let sched = find("schedule_at_seq");
        assert!(sched.recv.contains(&"queues".to_string()));
        let dec = find("decode");
        assert_eq!(dec.qual.as_deref(), Some("codec"));
        assert!(!dec.method);
        let helper = find("helper");
        assert_eq!(helper.qual.as_deref(), Some(""));
        let collect = find("collect");
        assert!(collect.method, "turbofish method call");
    }

    #[test]
    fn macro_invocations_and_definitions_are_not_calls() {
        let src = "\
macro_rules! boom {
    () => { hidden_call() };
}
fn f() {
    println!(\"x\");
    assert_eq!(real_call(1), 2);
}
";
        let p = parse(src, &entries());
        let calls: Vec<&str> = p.fns[0].calls.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(calls, vec!["real_call"], "macro args scan, bodies do not");
    }

    #[test]
    fn par_regions_cover_closure_bodies() {
        let src = "\
fn f(rows: &[usize]) {
    let out = par::map_chunks(threads, rows, |_, &i| {
        let row = cache.compute_row(i);
        row
    });
    par::run_chunks(threads, &mut state, |start, chunk| step(start, chunk));
    par::map_chunks(threads, rows, helper);
}
";
        let p = parse(src, &entries());
        assert_eq!(p.regions.len(), 3);
        let body0 = &src[p.regions[0].body.start..p.regions[0].body.end];
        assert!(body0.contains("compute_row"), "{body0}");
        let body1 = &src[p.regions[1].body.start..p.regions[1].body.end];
        assert_eq!(body1, "step(start, chunk)");
        let body2 = &src[p.regions[2].body.start..p.regions[2].body.end];
        assert_eq!(body2, "helper", "fn-path argument is the region");
        // Calls inside the closures attach to the enclosing fn.
        let names: Vec<&str> = p.fns[0].calls.iter().map(|c| c.name.as_str()).collect();
        assert!(names.contains(&"compute_row"));
        assert!(names.contains(&"step"));
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let src = "fn f(cb: fn(u8) -> u8) -> u8 { cb(1) }\n";
        let p = parse(src, &entries());
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.fns[0].name, "f");
        assert_eq!(p.fns[0].calls.len(), 1);
    }

    #[test]
    fn nested_fns_own_their_calls() {
        let src = "\
fn outer() {
    fn inner() { deep_call(); }
    inner();
}
";
        let p = parse(src, &entries());
        let outer = p.fns.iter().find(|f| f.name == "outer").unwrap();
        let inner = p.fns.iter().find(|f| f.name == "inner").unwrap();
        let outer_calls: Vec<&str> = outer.calls.iter().map(|c| c.name.as_str()).collect();
        let inner_calls: Vec<&str> = inner.calls.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(outer_calls, vec!["inner"]);
        assert_eq!(inner_calls, vec!["deep_call"]);
    }

    #[test]
    fn call_args_split_at_top_level_commas() {
        let src = "f(a, g(b, c), [d, e], |x| h(x, 1))";
        let args = call_args(src, 1);
        let texts: Vec<&str> = args.iter().map(|a| &src[a.start..a.end]).collect();
        assert_eq!(texts, vec!["a", "g(b, c)", "[d, e]", "|x| h(x, 1)"]);
        let src2 = "f(n, move |a, b| a | b, |_, c| c)";
        let args2 = call_args(src2, 1);
        let texts2: Vec<&str> = args2.iter().map(|a| &src2[a.start..a.end]).collect();
        assert_eq!(texts2, vec!["n", "move |a, b| a | b", "|_, c| c"]);
    }
}
