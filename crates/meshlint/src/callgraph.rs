//! Workspace symbol table and call graph over the parser's output.
//!
//! Resolution is deliberately name-based — meshlint has no type
//! information — and *scoped*: an edge from crate A to a function in
//! crate B exists only when A's `Cargo.toml` (transitively) depends on
//! B. Within that scope:
//!
//! * `path::name(..)` resolves `name` against functions whose
//!   impl/trait qualifier, enclosing module, file stem, or crate name
//!   matches `path`'s last segment (`Self::` already substituted by the
//!   parser);
//! * `recv.name(..)` resolves against impl/trait methods named `name`,
//!   except for a curated list of ubiquitous `std` method names
//!   (`len`, `push`, `get`, …) that would otherwise spray false edges;
//!   a `self.name(..)` call additionally prefers methods of the
//!   caller's own impl block when any exist — `self` cannot be a
//!   foreign type, so the same-qual candidates are the true targets;
//! * bare `name(..)` resolves against free functions named `name`.
//!
//! This over-approximates (a same-named method on an unrelated type in
//! a dependency still makes an edge) and under-approximates (trait
//! dispatch through a `dyn` object held by a caller in another crate,
//! shadowed `std` names). Both are the right trade for a linter: the
//! first costs an escape comment, the second a missed finding that the
//! differential tests still catch.
//!
//! Crates without a `Cargo.toml` (plain-directory fixtures) are
//! *permissive*: they see every crate in the scan set.

use crate::parser::{ParsedFile, Span};
use std::collections::btree_map::Entry as MapEntry;
use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::path::Path;

/// `(file index, fn index)` into [`Graph::entries`].
pub type FnId = (usize, usize);

/// Ubiquitous `std`/`core` method names excluded from method-call
/// resolution: a `.len()` call should never create an edge to some
/// workspace type's unrelated `fn len`.
const STD_METHODS: [&str; 96] = [
    "abs",
    "all",
    "and_then",
    "any",
    "as_bytes",
    "as_mut",
    "as_ref",
    "as_slice",
    "binary_search",
    "binary_search_by",
    "bytes",
    "ceil",
    "chars",
    "checked_add",
    "checked_mul",
    "checked_sub",
    "clear",
    "clone",
    "cloned",
    "cmp",
    "collect",
    "contains",
    "contains_key",
    "copied",
    "copy_from_slice",
    "count",
    "dedup",
    "drain",
    "entry",
    "enumerate",
    "eq",
    "extend",
    "extend_from_slice",
    "fill",
    "filter",
    "filter_map",
    "find",
    "first",
    "flat_map",
    "flatten",
    "floor",
    "flush",
    "fold",
    "get",
    "get_mut",
    "hash",
    "insert",
    "into_iter",
    "is_char_boundary",
    "is_empty",
    "iter",
    "iter_mut",
    "join",
    "keys",
    "last",
    "len",
    "lines",
    "ln",
    "map",
    "max",
    "max_by",
    "max_by_key",
    "min",
    "min_by",
    "min_by_key",
    "next",
    "partition_point",
    "pop",
    "position",
    "powf",
    "powi",
    "product",
    "push",
    "push_str",
    "read",
    "rem_euclid",
    "remove",
    "resize",
    "retain",
    "rev",
    "round",
    "skip",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "split",
    "sqrt",
    "starts_with",
    "sum",
    "swap",
    "take",
    "to_string",
    "to_vec",
    "trim",
    "truncate",
];

/// Bare free-function names excluded from resolution (`drop(x)` must
/// not resolve to a workspace `fn drop`).
const STD_FREE_FNS: [&str; 6] = ["default", "drop", "from", "into", "max", "min"];

/// Path-dependency closure between workspace crates, parsed from each
/// `crates/<dir>/Cargo.toml`.
#[derive(Clone, Debug, Default)]
pub struct CrateDeps {
    /// crate dir → transitively reachable crate dirs (including self).
    closure: BTreeMap<String, BTreeSet<String>>,
    /// Crate dirs that have a manifest; others are permissive.
    known: BTreeSet<String>,
}

impl CrateDeps {
    /// Scans `<root>/crates/*/Cargo.toml` for `path = ".."` dependencies
    /// and builds the transitive closure. Missing manifests simply leave
    /// the crate permissive.
    #[must_use]
    pub fn load(root: &Path) -> CrateDeps {
        let mut direct: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        let mut known = BTreeSet::new();
        let crates_dir = root.join("crates");
        let Ok(entries) = fs::read_dir(&crates_dir) else {
            return CrateDeps::default();
        };
        for entry in entries.flatten() {
            let dir = entry.file_name().to_string_lossy().into_owned();
            let Ok(manifest) = fs::read_to_string(entry.path().join("Cargo.toml")) else {
                continue;
            };
            known.insert(dir.clone());
            direct.insert(dir, manifest_path_deps(&manifest));
        }
        let mut closure = BTreeMap::new();
        for dir in &known {
            let mut seen = BTreeSet::new();
            let mut queue = vec![dir.clone()];
            while let Some(d) = queue.pop() {
                if seen.insert(d.clone()) {
                    if let Some(deps) = direct.get(&d) {
                        queue.extend(deps.iter().cloned());
                    }
                }
            }
            closure.insert(dir.clone(), seen);
        }
        CrateDeps { closure, known }
    }

    /// Whether code in crate `from` can call code in crate `to`.
    /// `""` is the root package (sees everything); crates without a
    /// manifest are permissive in both directions.
    #[must_use]
    pub fn visible(&self, from: &str, to: &str) -> bool {
        if from == to || from.is_empty() || !self.known.contains(from) {
            return true;
        }
        if to.is_empty() {
            return false; // crates never depend on the root package
        }
        if !self.known.contains(to) {
            return true;
        }
        self.closure.get(from).is_some_and(|c| c.contains(to))
    }
}

/// Extracts the dir names of `path = "../<dir>"` dependencies from the
/// `[dependencies]` section of a manifest (dev-dependencies are
/// test-only and deliberately ignored).
fn manifest_path_deps(manifest: &str) -> BTreeSet<String> {
    let mut deps = BTreeSet::new();
    let mut in_deps = false;
    for line in manifest.lines() {
        let line = line.trim();
        if let Some(section) = line.strip_prefix('[') {
            let section = section.trim_end_matches(']');
            in_deps = section == "dependencies"
                || (section.starts_with("target.") && section.ends_with(".dependencies"));
            continue;
        }
        if !in_deps {
            continue;
        }
        let Some(pos) = line.find("path") else {
            continue;
        };
        let rest = line[pos + "path".len()..].trim_start();
        let Some(rest) = rest.strip_prefix('=') else {
            continue;
        };
        let rest = rest.trim_start();
        let quote = rest.chars().next();
        if quote != Some('"') && quote != Some('\'') {
            continue;
        }
        let inner = &rest[1..];
        let Some(end) = inner.find(quote.unwrap_or('"')) else {
            continue;
        };
        let path = &inner[..end];
        if let Some(base) = path.rsplit('/').next() {
            if !base.is_empty() {
                deps.insert(base.to_string());
            }
        }
    }
    deps
}

/// One scanned file presented to the graph.
#[derive(Clone, Debug)]
pub struct Entry {
    /// Workspace-relative path with forward slashes.
    pub rel: String,
    /// Crate dir name (`crates/<dir>/..`), `""` for the root package.
    pub krate: String,
    /// File stem used for module-path matching (`mod.rs` files use
    /// their parent directory's name).
    pub stem: String,
    /// The parse result.
    pub parsed: ParsedFile,
    /// Per-fn: whether the fn lives in excised `#[cfg(test)]` code.
    /// Test fns neither make nor receive edges.
    pub test_fn: Vec<bool>,
}

/// The resolved call graph.
#[derive(Debug, Default)]
pub struct Graph {
    /// The scanned files, in the order given to [`Graph::build`].
    pub entries: Vec<Entry>,
    /// `(file, fn, call)` → resolved targets.
    resolved: BTreeMap<(usize, usize, usize), Vec<FnId>>,
    /// All non-test fns by bare name.
    by_name: BTreeMap<String, Vec<FnId>>,
}

impl Graph {
    /// Builds the symbol table and resolves every call site.
    #[must_use]
    pub fn build(entries: Vec<Entry>, deps: &CrateDeps) -> Graph {
        let mut by_name: BTreeMap<String, Vec<FnId>> = BTreeMap::new();
        for (fi, e) in entries.iter().enumerate() {
            for (ni, f) in e.parsed.fns.iter().enumerate() {
                if e.test_fn.get(ni).copied().unwrap_or(false) {
                    continue;
                }
                by_name.entry(f.name.clone()).or_default().push((fi, ni));
            }
        }
        let mut graph = Graph {
            entries,
            resolved: BTreeMap::new(),
            by_name,
        };
        for fi in 0..graph.entries.len() {
            for ni in 0..graph.entries[fi].parsed.fns.len() {
                if graph.entries[fi].test_fn.get(ni).copied().unwrap_or(false) {
                    continue;
                }
                for ci in 0..graph.entries[fi].parsed.fns[ni].calls.len() {
                    let call = graph.entries[fi].parsed.fns[ni].calls[ci].clone();
                    let caller = &graph.entries[fi].parsed.fns[ni];
                    let self_qual = (call.method
                        && call.recv.len() == 1
                        && call.recv[0] == "self"
                        && !caller.qual.is_empty())
                    .then(|| caller.qual.clone());
                    let targets = graph.resolve(
                        fi,
                        &call.name,
                        call.qual.as_deref(),
                        call.method,
                        self_qual.as_deref(),
                        deps,
                    );
                    if !targets.is_empty() {
                        graph.resolved.insert((fi, ni, ci), targets);
                    }
                }
            }
        }
        graph
    }

    /// Resolves a name as seen from `from_file` (see module docs for
    /// the matching rules).
    #[must_use]
    pub fn resolve(
        &self,
        from_file: usize,
        name: &str,
        qual: Option<&str>,
        method: bool,
        self_qual: Option<&str>,
        deps: &CrateDeps,
    ) -> Vec<FnId> {
        let from_crate = &self.entries[from_file].krate;
        let Some(candidates) = self.by_name.get(name) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for &(fi, ni) in candidates {
            let e = &self.entries[fi];
            let f = &e.parsed.fns[ni];
            let ok = match qual {
                Some(q) if !q.is_empty() => {
                    f.qual == q
                        || f.module == q
                        || e.stem == q
                        || e.krate == q
                        || e.krate.replace('-', "_") == q
                }
                _ if method => !f.qual.is_empty() && !STD_METHODS.contains(&name),
                _ => f.qual.is_empty() && !STD_FREE_FNS.contains(&name),
            };
            if ok && deps.visible(from_crate, &e.krate) {
                out.push((fi, ni));
            }
        }
        // `self.name(..)`: the receiver is the caller's own type, so
        // when that type defines a matching method, unrelated same-name
        // methods elsewhere cannot be the target.
        if let Some(sq) = self_qual {
            let own = |&(fi, ni): &FnId| self.entries[fi].parsed.fns[ni].qual == sq;
            if out.iter().any(own) {
                out.retain(own);
            }
        }
        out
    }

    /// Resolved targets of one call site.
    #[must_use]
    pub fn targets(&self, file: usize, f: usize, call: usize) -> &[FnId] {
        self.resolved
            .get(&(file, f, call))
            .map_or(&[], Vec::as_slice)
    }

    /// All `(owner fn, call index)` call sites in `file` whose name
    /// token falls inside `span`.
    #[must_use]
    pub fn calls_in_span(&self, file: usize, span: Span) -> Vec<(FnId, usize)> {
        let mut out = Vec::new();
        let e = &self.entries[file];
        for (ni, f) in e.parsed.fns.iter().enumerate() {
            if e.test_fn.get(ni).copied().unwrap_or(false) {
                continue;
            }
            for (ci, c) in f.calls.iter().enumerate() {
                if span.contains(c.pos) {
                    out.push(((file, ni), ci));
                }
            }
        }
        out
    }

    /// Breadth-first reachability from `roots` (which are included).
    /// Returns each reached fn mapped to the edge that discovered it:
    /// `(caller, call index)` — `None` for the roots themselves — so
    /// callers can reconstruct a witness path.
    #[must_use]
    pub fn reach(&self, roots: &[FnId]) -> BTreeMap<FnId, Option<(FnId, usize)>> {
        let mut seen: BTreeMap<FnId, Option<(FnId, usize)>> = BTreeMap::new();
        let mut queue: Vec<FnId> = Vec::new();
        for &r in roots {
            if let MapEntry::Vacant(slot) = seen.entry(r) {
                slot.insert(None);
                queue.push(r);
            }
        }
        let mut qi = 0;
        while qi < queue.len() {
            let (fi, ni) = queue[qi];
            qi += 1;
            for ci in 0..self.entries[fi].parsed.fns[ni].calls.len() {
                for &tgt in self.targets(fi, ni, ci) {
                    if let MapEntry::Vacant(slot) = seen.entry(tgt) {
                        slot.insert(Some(((fi, ni), ci)));
                        queue.push(tgt);
                    }
                }
            }
        }
        seen
    }

    /// Reconstructs the witness path root → … → `to` as a list of
    /// `(caller, call index)` edges, using the parent map from
    /// [`Graph::reach`].
    #[must_use]
    pub fn path_to(
        &self,
        parents: &BTreeMap<FnId, Option<(FnId, usize)>>,
        to: FnId,
    ) -> Vec<(FnId, usize)> {
        let mut edges = Vec::new();
        let mut cur = to;
        while let Some(Some((parent, ci))) = parents.get(&cur) {
            edges.push((*parent, *ci));
            cur = *parent;
        }
        edges.reverse();
        edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn entry(rel: &str, krate: &str, stem: &str, src: &str) -> Entry {
        let parsed = parse(src, &[]);
        let n = parsed.fns.len();
        Entry {
            rel: rel.into(),
            krate: krate.into(),
            stem: stem.into(),
            parsed,
            test_fn: vec![false; n],
        }
    }

    #[test]
    fn manifest_deps_are_extracted_and_closed() {
        let a = "[package]\nname = \"a\"\n[dependencies]\nb = { path = \"../b\" }\n";
        assert_eq!(
            manifest_path_deps(a).into_iter().collect::<Vec<_>>(),
            vec!["b".to_string()]
        );
        let dev = "[dev-dependencies]\nb = { path = \"../b\" }\n";
        assert!(manifest_path_deps(dev).is_empty());
    }

    #[test]
    fn qualified_calls_resolve_by_stem_module_impl_and_crate() {
        let lib = entry(
            "crates/a/src/lib.rs",
            "a",
            "lib",
            "pub fn top() { helpers::calc(); Codec::decode(); }\n",
        );
        let helpers = entry(
            "crates/a/src/helpers.rs",
            "a",
            "helpers",
            "pub fn calc() {}\n",
        );
        let codec = entry(
            "crates/b/src/codec.rs",
            "b",
            "codec",
            "impl Codec { pub fn decode() {} }\n",
        );
        let g = Graph::build(vec![lib, helpers, codec], &CrateDeps::default());
        assert_eq!(g.targets(0, 0, 0), &[(1, 0)]);
        assert_eq!(g.targets(0, 0, 1), &[(2, 0)]);
    }

    #[test]
    fn std_method_names_make_no_edges() {
        let a = entry(
            "crates/a/src/lib.rs",
            "a",
            "lib",
            "pub fn top(v: &V) { v.push(1); v.commit(); }\n",
        );
        let b = entry(
            "crates/b/src/lib.rs",
            "b",
            "lib",
            "impl V { pub fn push(&mut self, x: u8) {} pub fn commit(&self) {} }\n",
        );
        let g = Graph::build(vec![a, b], &CrateDeps::default());
        assert!(g.targets(0, 0, 0).is_empty(), "push is a std method name");
        assert_eq!(g.targets(0, 0, 1), &[(1, 1)]);
    }

    #[test]
    fn self_calls_prefer_the_callers_own_impl() {
        let metrics = "impl Metrics { pub fn record(&mut self) { self.node(); } pub fn node(&mut self) {} }\n";
        let sim = "impl Harness { pub fn node(&self) {} }\n";
        let report = "pub fn run(m: &Metrics) { m.node(); }\n";
        let g = Graph::build(
            vec![
                entry("crates/a/src/metrics.rs", "a", "metrics", metrics),
                entry("crates/a/src/sim.rs", "a", "sim", sim),
                entry("crates/a/src/report.rs", "a", "report", report),
            ],
            &CrateDeps::default(),
        );
        // `self.node()` inside `impl Metrics` cannot reach Harness.
        assert_eq!(g.targets(0, 0, 0), &[(0, 1)]);
        // A non-self receiver still fans out to every candidate.
        assert_eq!(g.targets(2, 0, 0).len(), 2);
    }

    #[test]
    fn test_fns_are_invisible() {
        let mut a = entry(
            "crates/a/src/lib.rs",
            "a",
            "lib",
            "pub fn top() { helper(); }\nfn helper() {}\n",
        );
        a.test_fn[1] = true; // pretend helper is in #[cfg(test)]
        let g = Graph::build(vec![a], &CrateDeps::default());
        assert!(g.targets(0, 0, 0).is_empty());
    }

    #[test]
    fn reachability_returns_witness_paths() {
        let a = entry(
            "crates/a/src/lib.rs",
            "a",
            "lib",
            "pub fn top() { mid(); }\nfn mid() { deep(); }\nfn deep() {}\n",
        );
        let g = Graph::build(vec![a], &CrateDeps::default());
        let parents = g.reach(&[(0, 0)]);
        assert!(parents.contains_key(&(0, 2)));
        let path = g.path_to(&parents, (0, 2));
        assert_eq!(path.len(), 2);
        assert_eq!(path[0].0, (0, 0));
        assert_eq!(path[1].0, (0, 1));
    }
}
