//! `meshlint` — determinism & robustness lints for this workspace.
//!
//! ```text
//! meshlint [--root DIR] [--json] [--baseline FILE] [--write-baseline FILE]
//! ```
//!
//! Exit codes: `0` clean, `1` new findings (or malformed directives),
//! `2` usage / IO error.

use std::path::PathBuf;
use std::process::ExitCode;

use meshlint::{analyze, to_json, Analysis, Baseline, Config, Ratchet};

struct Args {
    root: PathBuf,
    json: bool,
    baseline: Option<PathBuf>,
    write_baseline: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        json: false,
        baseline: None,
        write_baseline: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                args.root = PathBuf::from(it.next().ok_or("--root needs a directory")?);
            }
            "--json" => args.json = true,
            "--baseline" => {
                args.baseline = Some(PathBuf::from(it.next().ok_or("--baseline needs a file")?));
            }
            "--write-baseline" => {
                args.write_baseline = Some(PathBuf::from(
                    it.next().ok_or("--write-baseline needs a file")?,
                ));
            }
            "--help" | "-h" => {
                println!(
                    "meshlint [--root DIR] [--json] [--baseline FILE] [--write-baseline FILE]\n\
                     \n\
                     Line rules: d1 hashed collections, d2 wall clock/OS entropy,\n\
                     r1 panic paths in protocol hot files (transitively, through\n\
                     the call graph), c1 bare narrowing casts, n1 ungated std::\n\
                     paths in no_std-capable crates.\n\
                     Graph rules: p1 shared-state machinery reachable from a\n\
                     worker-evaluated `par::` region, s1 locally fabricated seq\n\
                     passed to a shard event-insertion method, f1 order-sensitive\n\
                     accumulation into captured state inside a worker region,\n\
                     e1 stale escape (an allow directive that suppresses nothing).\n\
                     Suppress a site with `// meshlint::allow(<rule>): <reason>`\n\
                     (e1 itself cannot be allowed; delete the stale directive)."
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    Ok(args)
}

fn report_text(ratchet: &Ratchet, analysis: &Analysis) {
    for f in &ratchet.new {
        println!("{f}");
    }
    if !ratchet.grandfathered.is_empty() {
        println!(
            "note: {} baselined finding(s) tolerated (burn them down):",
            ratchet.grandfathered.len()
        );
        for f in &ratchet.grandfathered {
            println!("  {}:{}: [{}] {}", f.file, f.line, f.rule, f.snippet);
        }
    }
    for (key, count) in &ratchet.stale {
        println!("stale baseline entry (fixed — remove it): {key} (x{count})");
    }
    for e in &analysis.directive_errors {
        println!("{e}");
    }
    println!(
        "meshlint: {} file(s), {} new, {} baselined, {} allowed, {} directive error(s)",
        analysis.files_scanned,
        ratchet.new.len(),
        ratchet.grandfathered.len(),
        analysis.allowed,
        analysis.directive_errors.len()
    );
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("meshlint: {e}");
            return ExitCode::from(2);
        }
    };
    let cfg = Config::workspace(&args.root);
    let analysis = match analyze(&cfg) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("meshlint: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(path) = &args.write_baseline {
        let baseline = Baseline::from_findings(&analysis.findings);
        if let Err(e) = std::fs::write(path, baseline.serialize()) {
            eprintln!("meshlint: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!(
            "meshlint: wrote baseline with {} finding(s) to {}",
            baseline.len(),
            path.display()
        );
        return ExitCode::SUCCESS;
    }

    let baseline = match &args.baseline {
        Some(path) => match Baseline::load(path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("meshlint: reading {}: {e}", path.display());
                return ExitCode::from(2);
            }
        },
        None => Baseline::empty(),
    };
    let ratchet = baseline.ratchet(&analysis.findings);

    if args.json {
        print!("{}", to_json(&ratchet, &analysis));
    } else {
        report_text(&ratchet, &analysis);
    }

    if ratchet.new.is_empty() && analysis.directive_errors.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
