//! End-to-end tests over the fixture workspaces in `tests/fixtures/`.
//!
//! `fixtures/ws` is a miniature workspace seeded with at least one
//! violation of every rule, one allowed site per escape hatch, and
//! string/comment/test-module decoys that must NOT fire. `fixtures/bad`
//! holds malformed directives. The fixture sources are plain text to
//! meshlint — they are never compiled.

use std::path::{Path, PathBuf};
use std::process::Command;

use meshlint::{analyze, Analysis, Baseline, Config, Finding, Rule};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn analyze_fixture(name: &str) -> Analysis {
    analyze(&Config::workspace(fixture(name))).expect("fixture tree readable")
}

fn count(findings: &[Finding], rule: Rule, file: &str) -> usize {
    findings
        .iter()
        .filter(|f| f.rule == rule && f.file == file)
        .count()
}

#[test]
fn every_rule_fires_on_its_seeded_violation() {
    let a = analyze_fixture("ws");
    let codec = "crates/core/src/codec.rs";
    assert_eq!(count(&a.findings, Rule::D1, codec), 1, "HashMap import");
    assert_eq!(count(&a.findings, Rule::C1, codec), 1, "bare `as u8`");
    assert_eq!(
        count(&a.findings, Rule::R1, codec),
        5,
        "indexing, unwrap, expect, panic!, unreachable!"
    );
    assert_eq!(
        count(&a.findings, Rule::N1, codec),
        1,
        "ungated std:: import (the feature-gated ones are decoys)"
    );
    let runner = "crates/scenario/src/runner.rs";
    assert_eq!(
        count(&a.findings, Rule::D2, runner),
        4,
        "Instant, SystemTime x2, thread_rng"
    );
    assert_eq!(
        a.findings.len(),
        12,
        "no unexpected findings: {:#?}",
        a.findings
    );
    assert!(a.directive_errors.is_empty());
}

#[test]
fn exempt_crates_and_test_modules_do_not_fire() {
    let a = analyze_fixture("ws");
    // bench measures wall time for a living: d2 does not apply.
    assert!(!a
        .findings
        .iter()
        .any(|f| f.file.starts_with("crates/bench/")));
    // cli is not determinism-critical: its HashMap is fine.
    assert!(!a.findings.iter().any(|f| f.file.starts_with("crates/cli/")));
    // The #[cfg(test)] module in codec.rs repeats every violation; none
    // may leak out (all 5 r1 findings sit above line 17).
    assert!(a.findings.iter().all(|f| f.line < 17), "{:#?}", a.findings);
}

#[test]
fn strings_and_comments_never_match() {
    let a = analyze_fixture("ws");
    // cli/main.rs packs every forbidden token into comments, a plain
    // string and a raw string — zero findings there (checked above) and
    // zero phantom allows from tokens inside them.
    let codec_and_runner_and_allowed: usize = a
        .findings
        .iter()
        .filter(|f| f.file.starts_with("crates/core/") || f.file.starts_with("crates/scenario/"))
        .count();
    assert_eq!(codec_and_runner_and_allowed, a.findings.len());
}

#[test]
fn allow_directives_suppress_with_reason() {
    let a = analyze_fixture("ws");
    assert_eq!(a.allowed, 3, "d1 + n1 + c1 sites in allowed.rs");
    assert!(!a.findings.iter().any(|f| f.file.ends_with("allowed.rs")));
}

#[test]
fn malformed_directives_are_errors_and_do_not_suppress() {
    let a = analyze_fixture("bad");
    assert_eq!(
        a.directive_errors.len(),
        3,
        "missing reason + unknown rule + allow(e1): {:#?}",
        a.directive_errors
    );
    // The reasonless allow must NOT suppress the HashMap underneath it.
    assert_eq!(count(&a.findings, Rule::D1, "crates/core/src/bad.rs"), 1);
}

#[test]
fn graph_rules_fire_on_their_seeded_violations() {
    let a = analyze_fixture("graph");
    let transport = "crates/core/src/stack/transport.rs";
    assert_eq!(
        count(&a.findings, Rule::R1, transport),
        2,
        "same-crate + cross-crate panicking helpers: {:#?}",
        a.findings
    );
    let engine = "crates/radio-sim/src/engine.rs";
    assert_eq!(
        count(&a.findings, Rule::P1, engine),
        2,
        "direct Mutex + transitive AtomicBool"
    );
    assert_eq!(count(&a.findings, Rule::F1, engine), 1, "captured `total`");
    let commit = "crates/radio-sim/src/commit.rs";
    assert_eq!(
        count(&a.findings, Rule::P1, commit),
        2,
        "direct alloc_seq mint + transitive Trace write in a \
         commit_bands region: {:#?}",
        a.findings
    );
    let sim = "crates/radio-sim/src/sim.rs";
    assert_eq!(
        count(&a.findings, Rule::S1, sim),
        2,
        "arithmetic seq + literal seq"
    );
    let flood = "crates/core/src/flood/mod.rs";
    assert_eq!(
        count(&a.findings, Rule::S1, flood),
        1,
        "a protocol impl minting its own relay seq: {:#?}",
        a.findings
    );
    let state = "crates/radio-sim/src/state.rs";
    assert_eq!(count(&a.findings, Rule::E1, state), 2, "stale allows");
    assert_eq!(a.findings.len(), 12, "{:#?}", a.findings);
    assert_eq!(a.allowed, 3, "p1 + f1 + s1 escapes");
    assert!(a.directive_errors.is_empty());
}

#[test]
fn graph_findings_carry_witness_details() {
    let a = analyze_fixture("graph");
    let cross = a
        .findings
        .iter()
        .find(|f| f.rule == Rule::R1 && f.snippet.contains("util::widen"))
        .expect("cross-crate r1 finding");
    assert!(
        cross.detail.contains("crates/util/src/lib.rs"),
        "witness names the panic site: {}",
        cross.detail
    );
    let p1t = a
        .findings
        .iter()
        .find(|f| f.rule == Rule::P1 && f.snippet.contains("bump_shared"))
        .expect("transitive p1 finding");
    assert!(p1t.detail.contains("bump_shared"), "{}", p1t.detail);
    let s1 = a
        .findings
        .iter()
        .find(|f| f.rule == Rule::S1)
        .expect("s1 finding");
    assert!(
        s1.detail.contains("not a coordinator-issued seq"),
        "{}",
        s1.detail
    );
}

#[test]
fn graph_decoys_do_not_fire() {
    let a = analyze_fixture("graph");
    // Dep scoping: the `isolated` crate's same-named panicking fn is
    // outside core's dependency closure — no finding references it.
    assert!(
        a.findings
            .iter()
            .all(|f| !f.file.contains("isolated") && !f.detail.contains("isolated")),
        "{:#?}",
        a.findings
    );
    // Helpers are reported at their hot anchors, never in their own files.
    assert!(!a.findings.iter().any(|f| f.file.ends_with("frag.rs")));
    assert!(!a
        .findings
        .iter()
        .any(|f| f.file.starts_with("crates/util/")));
    // The allow(r1) escape and the string decoy leave only the two
    // seeded anchors in the hot file.
    let anchors: Vec<&str> = a
        .findings
        .iter()
        .filter(|f| f.file.ends_with("transport.rs"))
        .map(|f| f.snippet.as_str())
        .collect();
    assert!(anchors
        .iter()
        .all(|s| s.contains("decode_frame") || s.contains("util::widen")));
    // `#[cfg(test)]` regions and macro bodies in engine.rs are excised:
    // every engine finding sits above the macro definition (line 36).
    assert!(a
        .findings
        .iter()
        .filter(|f| f.file.ends_with("engine.rs"))
        .all(|f| f.line < 36));
}

#[test]
fn graph_findings_ratchet_like_line_findings() {
    let a = analyze_fixture("graph");
    let baseline = Baseline::from_findings(&a.findings);
    let r = baseline.ratchet(&a.findings);
    assert!(r.new.is_empty());
    assert_eq!(r.grandfathered.len(), 12);
    // Deleting the stale directives fixes the e1 findings and leaves
    // stale baseline entries to burn down, like any other rule.
    let keep: Vec<Finding> = a
        .findings
        .iter()
        .filter(|f| f.rule != Rule::E1)
        .cloned()
        .collect();
    let r = baseline.ratchet(&keep);
    assert!(r.new.is_empty());
    assert_eq!(r.stale.len(), 2);
}

#[test]
fn cli_json_over_graph_fixture() {
    let bin = env!("CARGO_BIN_EXE_meshlint");
    let out = Command::new(bin)
        .args(["--root"])
        .arg(fixture("graph"))
        .arg("--json")
        .output()
        .expect("meshlint runs");
    assert_eq!(out.status.code(), Some(1));
    let json = String::from_utf8_lossy(&out.stdout);
    assert!(json.contains("\"new\": 12"), "{json}");
    for rule in ["p1", "s1", "f1", "e1"] {
        assert!(json.contains(&format!("\"rule\": \"{rule}\"")), "{json}");
    }
    assert!(json.contains("\"detail\": \""), "{json}");
}

#[test]
fn baseline_ratchets() {
    let a = analyze_fixture("ws");
    let baseline = Baseline::from_findings(&a.findings);

    // Everything grandfathered: nothing new, nothing stale.
    let r = baseline.ratchet(&a.findings);
    assert!(r.new.is_empty());
    assert_eq!(r.grandfathered.len(), a.findings.len());
    assert!(r.stale.is_empty());

    // Fixing a finding leaves a stale entry (progress to lock in)...
    let mut fewer = a.findings.clone();
    let fixed = fewer.pop().expect("fixture has findings");
    let r = baseline.ratchet(&fewer);
    assert!(r.new.is_empty());
    assert!(r.stale.iter().any(|(key, _)| *key == fixed.baseline_key()));

    // ...while a regression shows up as new and fails the run.
    let mut more = a.findings.clone();
    more.push(Finding {
        rule: Rule::D1,
        file: "crates/core/src/fresh.rs".into(),
        line: 1,
        col: 1,
        snippet: "use std::collections::HashSet;".into(),
        detail: String::new(),
    });
    let r = baseline.ratchet(&more);
    assert_eq!(r.new.len(), 1);
    assert_eq!(
        r.new.first().map(|f| f.file.as_str()),
        Some("crates/core/src/fresh.rs")
    );

    // The file format round-trips.
    assert_eq!(Baseline::parse(&baseline.serialize()), baseline);
}

#[test]
fn cli_exit_codes_json_and_baseline_flow() {
    let bin = env!("CARGO_BIN_EXE_meshlint");
    let ws = fixture("ws");

    // Dirty tree, no baseline: findings → exit 1.
    let out = Command::new(bin)
        .args(["--root"])
        .arg(&ws)
        .output()
        .expect("meshlint runs");
    assert_eq!(out.status.code(), Some(1));

    // --json emits the counters.
    let out = Command::new(bin)
        .args(["--root"])
        .arg(&ws)
        .arg("--json")
        .output()
        .expect("meshlint runs");
    let json = String::from_utf8_lossy(&out.stdout);
    assert!(json.contains("\"new\": 12"), "{json}");
    assert!(json.contains("\"allowed\": 3"), "{json}");

    // Write a baseline, then the same tree is green against it.
    let baseline_path = Path::new(env!("CARGO_TARGET_TMPDIR")).join("fixture.baseline");
    let out = Command::new(bin)
        .args(["--root"])
        .arg(&ws)
        .arg("--write-baseline")
        .arg(&baseline_path)
        .output()
        .expect("meshlint runs");
    assert_eq!(out.status.code(), Some(0));
    let out = Command::new(bin)
        .args(["--root"])
        .arg(&ws)
        .arg("--baseline")
        .arg(&baseline_path)
        .output()
        .expect("meshlint runs");
    assert_eq!(out.status.code(), Some(0), "baselined tree must pass");

    // Malformed directives fail even with a fully-covering baseline.
    let out = Command::new(bin)
        .args(["--root"])
        .arg(fixture("bad"))
        .output()
        .expect("meshlint runs");
    assert_eq!(out.status.code(), Some(1));

    // Unknown flag → usage error.
    let out = Command::new(bin)
        .arg("--frobnicate")
        .output()
        .expect("meshlint runs");
    assert_eq!(out.status.code(), Some(2));
}
