//! A protocol impl that bypasses the bus and inserts engine events
//! itself: `s1` must catch its fabricated seq. Plain text to meshlint —
//! never compiled.

impl FloodNode {
    pub fn schedule_relay(&mut self, t: u64, ev: Event) {
        // ok-form: a coordinator-issued seq travels as a plain binding.
        let seq = self.coord.alloc_seq();
        self.engine.schedule_at_seq(t, seq, ev);
    }

    pub fn schedule_relay_fabricated(&mut self, t: u64, ev: Event) {
        // The protocol minting its own counter breaks the (time, seq)
        // shard merge the moment two shards interleave relays.
        self.engine.schedule_at_seq(t, self.relay_seq + 1, ev);
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn fabricated_seqs_in_tests_are_fine() {
        node.engine.schedule_at_seq(3, 8 + 1, Event::Noop);
    }
}
