//! Hot-path fixture: `r1`-transitive positives, decoys and escapes.
//! Plain text to meshlint — never compiled.

pub fn dispatch(frame: &[u8]) {
    // Positive: a same-crate helper that panics (indexing).
    decode_frame(frame);
    // Positive: a cross-crate helper that panics (unwrap), one
    // dependency hop away.
    util::widen(frame);
    // Escape: the helper carries a justified allow(r1) on its panic
    // site, consumed lazily because this hot fn reaches it.
    checked_helper(frame);
    // Decoy: same-named panicking fn in a crate outside this crate's
    // dependency closure — no edge, no finding.
    isolated_panic(frame);
    // Decoy: call syntax inside a string literal never makes an edge.
    let _ = "decode_frame(frame).unwrap() plus frame[0]";
}
