//! Helpers behind the hot path (this file itself is not hot).

pub fn decode_frame(frame: &[u8]) -> u8 {
    frame[0]
}

pub fn checked_helper(frame: &[u8]) -> u8 {
    // meshlint::allow(r1): dispatch pre-checks the frame length
    frame.first().copied().unwrap()
}

pub fn only_from_tests(frame: &[u8]) -> u8 {
    frame[1]
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_callers_make_no_edges() {
        let _ = only_from_tests(&[1, 2]);
    }
}
