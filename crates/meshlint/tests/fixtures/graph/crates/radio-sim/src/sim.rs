//! Shard-aware event insertion: `s1` positives, ok-forms and escape.
//! Plain text to meshlint — never compiled.

impl Shard {
    pub fn enqueue(&mut self, t: u64, ev: Event) {
        let seq = self.coord.alloc_seq();
        self.queue.schedule_at_seq(t, seq, ev);
        self.queue
            .schedule_timer_seq(t, self.coord.alloc_seq(), TimerKind::Hello);
    }

    pub fn enqueue_fabricated(&mut self, t: u64, ev: Event) {
        self.queue.schedule_at_seq(t, self.local_seq + 1, ev);
        self.queue.schedule_timer_seq(t, 7, TimerKind::Hello);
    }

    pub fn enqueue_excused(&mut self, t: u64, ev: Event) {
        // meshlint::allow(s1): replaying a recorded seq from the trace header
        self.queue.schedule_at_seq(t, self.recorded_seq, ev);
        let _ = "schedule_at_seq(t, self.local_seq + 1, ev)";
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn fabricated_seqs_in_tests_are_fine() {
        shard.queue.schedule_at_seq(9, 41 + 1, Event::Noop);
    }
}
