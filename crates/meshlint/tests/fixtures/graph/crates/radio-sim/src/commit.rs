//! Parallel batch commit regions: `p1` positives through the
//! `commit_bands` entry (direct `alloc_seq` mint + transitive `Trace`
//! write), with the same tokens as coordinator-side decoys. Plain text
//! to meshlint — never compiled.

pub fn commit_batch(workers: &mut [Worker]) {
    commit_bands(workers, |w| {
        let seq = alloc_seq();
        stamp_trace(w, seq);
    });
}

fn stamp_trace(w: &mut Worker, seq: u64) {
    let sink: &Trace = global_trace();
    sink.record(w.band, seq);
}

pub fn coordinator_commit(seq: u64) {
    // Same tokens OUTSIDE any worker region: minting seqs and writing
    // the live trace is exactly the coordinator's job.
    let t: &Trace = global_trace();
    t.record(0, alloc_seq());
}

pub fn decoys() {
    let _ = "commit_bands(w, |b| { alloc_seq(); Trace::record() })";
}
