//! Worker-evaluated regions: `p1`/`f1` positives, decoys and escapes.
//! Plain text to meshlint — never compiled.

pub fn evaluate(items: &mut [u64], total: &mut f64) {
    run_chunks(2, items, |_, chunk| {
        let lock = Mutex::new(0u8);
        bump_shared();
        let mut local = 0.0;
        for v in chunk.iter() {
            local += f64::from(*v);
        }
        *total += local;
        drop(lock);
    });
}

fn bump_shared() {
    let gate: &AtomicBool = commit_gate();
    gate.store(true, Ordering::Release);
}

pub fn allowed_sites(items: &mut [u64], weight: &mut f64) {
    run_chunks(2, items, |_, chunk| {
        // meshlint::allow(p1): coordinator-owned scratch; workers see disjoint rows
        let scratch = Mutex::new(0u8);
        // meshlint::allow(f1): re-summed on the coordinator in roster order
        *weight += chunk.len() as f64;
        drop(scratch);
    });
}

pub fn decoys() {
    let _ = "run_chunks(2, x, |_, c| { Mutex::new(c); total += 1.0 })";
}

macro_rules! decoy_region {
    ($items:expr) => {
        run_chunks(2, $items, |_, chunk| {
            let _ = Mutex::new(chunk);
        })
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_regions_are_exempt() {
        run_chunks(2, &mut [1u64], |_, chunk| {
            let _ = RwLock::new(chunk);
            captured_total += 1.0;
        });
    }
}
