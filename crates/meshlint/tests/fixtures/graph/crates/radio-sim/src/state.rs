//! Stale escapes: `e1` positives and the doc-comment decoy.
//! Plain text to meshlint — never compiled.

/// Documentation may quote directives — `// meshlint::allow(d1): quoted`
/// — without creating a live escape.
pub struct LinkState {
    pub rows: u32,
}

pub fn rebuild(rows: u32) -> LinkState {
    // meshlint::allow(d1): this import was dropped in the rewrite
    let state = LinkState { rows };
    // meshlint::allow(r1): the indexing below was replaced by get()
    let rows = state.rows;
    LinkState { rows }
}
