//! A panicking fn that nothing in the hot crate's dependency closure
//! can reach: calls to it from `core` must not resolve here.

pub fn isolated_panic(frame: &[u8]) -> u8 {
    frame[1]
}
