//! Cross-crate helper reachable from the hot path.

pub fn widen(frame: &[u8]) -> u16 {
    u16::from(frame.iter().copied().next().unwrap())
}
