//! Fixture: malformed directives must fail the run, not silently
//! stop suppressing.

// meshlint::allow(d1)
use std::collections::HashMap;

// meshlint::allow(bogus): the rule name does not exist
pub fn nothing() {}

// meshlint::allow(e1): stale escapes cannot be excused away
pub fn also_nothing() {}
