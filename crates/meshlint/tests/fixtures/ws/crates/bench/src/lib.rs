//! Fixture: bench is exempt from d2 — measuring wall time is its job.

pub fn measure() -> std::time::Duration {
    let start = std::time::Instant::now();
    start.elapsed()
}
