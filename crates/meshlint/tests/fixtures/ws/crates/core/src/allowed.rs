//! Fixture: violations suppressed by well-formed allow directives.

// meshlint::allow(d1, n1): keyed lookups only; never iterated; std-only fixture.
use std::collections::HashMap;

pub fn cast(n: usize) -> u16 {
    // meshlint::allow(c1): length bounded by the 255-byte PHY frame limit.
    n as u16
}
