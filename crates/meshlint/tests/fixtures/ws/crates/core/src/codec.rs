//! Fixture: a hot-path file seeded with one violation of every class
//! meshlint must catch (this file is never compiled).

use std::collections::HashMap; // d1: hashed collection + n1: ungated std:: in core

pub fn decode(frame: &[u8]) -> u8 {
    let first = frame[0]; // r1: unchecked indexing
    let len = frame.len() as u8; // c1: bare narrowing cast
    let v: Option<u8> = None;
    v.unwrap(); // r1: unwrap
    v.expect("boom"); // r1: expect
    if first == 0 {
        panic!("zero"); // r1: panic
    }
    unreachable!() // r1: unreachable
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        let v: Option<u8> = Some(1);
        v.unwrap();
        let frame = [0u8; 4];
        let _ = frame[0];
        let _ = frame.len() as u8;
    }
}

#[cfg(feature = "std")]
impl std::fmt::Display for Wrapper {
    // n1 decoy: std:: behind the std feature gate is fine.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wrapped")
    }
}

#[cfg(feature = "std")]
pub use std::time::Duration; // n1 decoy: gated brace-less item
