//! Fixture: forbidden tokens inside strings and comments never fire,
//! and `HashMap` is fine outside determinism-critical crates.

// HashMap HashSet Instant SystemTime thread_rng panic! frame[0] x.unwrap()
pub const DOC: &str = "Instant::now() HashMap frame[0] x.unwrap() as u16";
pub const RAW: &str = r#"SystemTime thread_rng() panic!("no")"#;

use std::collections::HashMap;

pub fn main() {
    let _counts: HashMap<&str, usize> = HashMap::new();
    let _lit = [1u8, 2, 3]; // array literal: not an index expression
}
