//! Fixture: wall-clock and OS-entropy use in a simulation crate.

pub fn now_ms() -> u128 {
    std::time::Instant::now().elapsed().as_millis() // d2
}

pub fn stamp() -> std::time::SystemTime {
    std::time::SystemTime::now() // d2 (matches once: declaration line too)
}

pub fn roll() -> u64 {
    rand::thread_rng().gen() // d2
}
