//! A small, fully offline property-test harness.
//!
//! The workspace used to rely on `proptest` for randomised testing, but
//! the build must resolve with zero registry access, so this crate
//! provides the subset the test-suite actually needs, driven by the same
//! deterministic PRNG ([`radio_sim::rng::SimRng`]) the simulator uses:
//!
//! * [`forall`] — run a property against `cases` generated inputs. Every
//!   case derives its own 64-bit seed from the master seed; on failure
//!   the case seed is printed so the exact input can be replayed with
//!   `TESTKIT_SEED=<seed> cargo test <name>`.
//! * [`Gen`] — a seeded generator handle with helpers for integers,
//!   floats, booleans, byte vectors and weighted choices. Generators are
//!   plain `Fn(&mut Gen) -> T` closures, composed with ordinary Rust.
//! * Greedy size shrinking: when a case fails, the harness re-generates
//!   the input from the same case seed at smaller size budgets and
//!   reports the smallest input that still fails, so counterexamples
//!   stay readable without generator-aware shrinkers.
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`] —
//!   assertion macros that fail the *case* (returning `Err` with a
//!   message) instead of panicking, so the harness can shrink.
//!
//! Environment knobs: `TESTKIT_CASES` overrides the case count,
//! `TESTKIT_SEED` replays one specific case seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Debug;

use radio_sim::rng::SimRng;

/// Default number of generated cases per property.
pub const DEFAULT_CASES: u32 = 96;

/// Size budgets tried (largest first) when shrinking a failing case.
const SHRINK_SIZES: &[f64] = &[0.05, 0.15, 0.35, 0.65];

/// A seeded input generator handed to generator closures.
///
/// Wraps the deterministic simulator PRNG and adds a *size budget* in
/// `(0, 1]`: collection generators scale their maximum length by it, so
/// the harness can re-generate smaller variants of a failing input from
/// the same seed.
pub struct Gen {
    rng: SimRng,
    size: f64,
}

impl Gen {
    /// A generator with the full size budget.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Gen {
            rng: SimRng::new(seed),
            size: 1.0,
        }
    }

    /// Direct access to the underlying PRNG.
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.rng
    }

    /// The current size budget in `(0, 1]`.
    #[must_use]
    pub fn size(&self) -> f64 {
        self.size
    }

    /// Uniform `u64`.
    pub fn u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// Uniform `u32`.
    pub fn u32(&mut self) -> u32 {
        self.rng.next_u64() as u32
    }

    /// Uniform `u16`.
    pub fn u16(&mut self) -> u16 {
        self.rng.next_u64() as u16
    }

    /// Uniform `u8`.
    pub fn u8(&mut self) -> u8 {
        self.rng.next_u64() as u8
    }

    /// Uniform integer in `[lo, hi]` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn int_in(&mut self, lo: u64, hi: u64) -> u64 {
        self.rng.gen_range_inclusive(lo, hi)
    }

    /// Uniform `usize` in `[lo, hi]` (inclusive).
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        self.int_in(lo as u64, hi as u64) as usize
    }

    /// A collection length in `[lo, hi]`, with `hi` scaled down by the
    /// size budget during shrinking (never below `lo`).
    pub fn len_in(&mut self, lo: usize, hi: usize) -> usize {
        let scaled = lo + (((hi - lo) as f64) * self.size).round() as usize;
        self.usize_in(lo, scaled.max(lo))
    }

    /// Uniform float in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        self.rng.gen_f64()
    }

    /// `true` with probability `p`.
    pub fn bool(&mut self, p: f64) -> bool {
        self.rng.gen_bool(p)
    }

    /// A uniformly chosen element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    pub fn choose<T: Clone>(&mut self, options: &[T]) -> T {
        assert!(!options.is_empty(), "choose from empty slice");
        options[self.usize_in(0, options.len() - 1)].clone()
    }

    /// A vector of `len_in(lo, hi)` elements drawn from `f`.
    pub fn vec_of<T>(&mut self, lo: usize, hi: usize, mut f: impl FnMut(&mut Gen) -> T) -> Vec<T> {
        let n = self.len_in(lo, hi);
        (0..n).map(|_| f(self)).collect()
    }

    /// A byte vector of `len_in(lo, hi)` uniform bytes.
    pub fn bytes(&mut self, lo: usize, hi: usize) -> Vec<u8> {
        self.vec_of(lo, hi, Gen::u8)
    }
}

/// Number of cases to run: `TESTKIT_CASES` or [`DEFAULT_CASES`].
#[must_use]
pub fn case_count() -> u32 {
    std::env::var("TESTKIT_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_CASES)
}

/// Runs `prop` against `case_count()` inputs drawn from `gen`.
///
/// Each case gets an independent 64-bit seed derived from the master
/// seed (a stable hash of `name`, so adding a property never perturbs
/// another's inputs). On failure the input is shrunk by re-generating at
/// smaller size budgets, then the harness panics with the case seed and
/// the smallest failing input.
///
/// # Panics
///
/// Panics if any generated case fails, after shrinking.
pub fn forall<T: Debug>(
    name: &str,
    mut gen: impl FnMut(&mut Gen) -> T,
    mut prop: impl FnMut(&T) -> Result<(), String>,
) {
    // Replay mode: a single, explicitly seeded case.
    if let Ok(v) = std::env::var("TESTKIT_SEED") {
        let seed: u64 = v
            .parse()
            .unwrap_or_else(|_| panic!("bad TESTKIT_SEED '{v}'"));
        run_case(name, seed, &mut gen, &mut prop);
        return;
    }
    let mut master = SimRng::new(stable_hash(name));
    for _ in 0..case_count() {
        let case_seed = master.next_u64();
        run_case(name, case_seed, &mut gen, &mut prop);
    }
}

/// Runs exactly one case from `case_seed` (the harness's replay path,
/// also handy for pinning a historical counterexample as a unit test).
///
/// # Panics
///
/// Panics if the case fails.
pub fn run_case<T: Debug>(
    name: &str,
    case_seed: u64,
    gen: &mut impl FnMut(&mut Gen) -> T,
    prop: &mut impl FnMut(&T) -> Result<(), String>,
) {
    let mut check = |size: f64| -> Option<(T, String)> {
        let mut g = Gen {
            rng: SimRng::new(case_seed),
            size,
        };
        let value = gen(&mut g);
        match prop(&value) {
            Ok(()) => None,
            Err(msg) => Some((value, msg)),
        }
    };
    let Some((full_value, full_msg)) = check(1.0) else {
        return;
    };
    // Greedy shrink: smallest size budget whose regenerated input still
    // fails wins; otherwise keep the original counterexample.
    let shrunk = SHRINK_SIZES.iter().find_map(|&s| check(s).map(|f| (s, f)));
    let (size, (value, msg)) = shrunk.unwrap_or((1.0, (full_value, full_msg)));
    panic!(
        "property '{name}' failed: {msg}\n\
         counterexample (size budget {size}): {value:#?}\n\
         replay with: TESTKIT_SEED={case_seed} TESTKIT_CASES=1 cargo test {name}"
    );
}

/// FNV-1a of the property name: a stable, dependency-free master seed.
fn stable_hash(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Fails the enclosing property case when the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// Fails the enclosing property case when the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "{} != {}: {:?} vs {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            ));
        }
    }};
}

/// Fails the enclosing property case when the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return Err(format!(
                "{} == {}: both {:?}",
                stringify!($left),
                stringify!($right),
                l
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut count = 0u32;
        forall(
            "tautology",
            |g| g.int_in(0, 100),
            |_| {
                count += 1;
                Ok(())
            },
        );
        assert_eq!(count, case_count());
    }

    #[test]
    #[should_panic(expected = "replay with: TESTKIT_SEED=")]
    fn failing_property_reports_seed() {
        forall("always_fails", Gen::u8, |_| Err("nope".into()));
    }

    #[test]
    #[should_panic(expected = "size budget 0.05")]
    fn failing_vec_property_shrinks() {
        // Any non-empty vec fails, so shrinking should find the smallest
        // size budget (collections stay non-empty at lo = 1).
        forall(
            "shrinks_to_min_budget",
            |g| g.bytes(1, 400),
            |v: &Vec<u8>| {
                if v.is_empty() {
                    Ok(())
                } else {
                    Err(format!("len {}", v.len()))
                }
            },
        );
    }

    #[test]
    fn generation_is_deterministic_per_name() {
        let collect = |name: &str| {
            let mut vals = Vec::new();
            forall(
                name,
                |g| g.u64(),
                |v| {
                    vals.push(*v);
                    Ok(())
                },
            );
            vals
        };
        assert_eq!(collect("stream_a"), collect("stream_a"));
        assert_ne!(collect("stream_a"), collect("stream_b"));
    }

    #[test]
    fn run_case_is_reproducible() {
        let value_of = |seed: u64| {
            let mut got = None;
            run_case(
                "pin",
                seed,
                &mut |g: &mut Gen| g.bytes(0, 64),
                &mut |v: &Vec<u8>| {
                    got = Some(v.clone());
                    Ok(())
                },
            );
            got.unwrap()
        };
        assert_eq!(value_of(7), value_of(7));
    }

    #[test]
    fn len_in_respects_bounds_at_all_sizes() {
        for &size in &[0.05, 0.5, 1.0] {
            let mut g = Gen::new(3);
            g.size = size;
            for _ in 0..200 {
                let n = g.len_in(2, 40);
                assert!((2..=40).contains(&n), "{n} at size {size}");
            }
        }
    }

    #[test]
    fn choose_and_bounds() {
        let mut g = Gen::new(9);
        for _ in 0..100 {
            assert!([1, 2, 3].contains(&g.choose(&[1, 2, 3])));
            let v = g.int_in(5, 9);
            assert!((5..=9).contains(&v));
        }
    }
}
