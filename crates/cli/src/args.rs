//! Argument parsing for `meshsim`.
//!
//! Hand-rolled (the workspace stays dependency-light); every flag is
//! `--name value`. [`Cli::parse`] is pure and unit-tested; errors carry
//! the offending token so the shell can print something actionable.

use core::fmt;
use std::time::Duration;

use lora_phy::modulation::SpreadingFactor;

/// Network shape.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Topology {
    /// Evenly spaced straight line.
    Line,
    /// Square-ish grid.
    Grid,
    /// Circle.
    Ring,
    /// Hub and spokes.
    Star,
    /// Connected uniform-random placement.
    Random,
}

/// Protocol selection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Protocol {
    /// LoRaMesher distance-vector mesh (`loramesher`, alias `mesh`).
    Mesh,
    /// Managed flooding — the Meshtastic-style first-class stack.
    Flooding,
    /// Single-gateway star baseline (gateway = node 0).
    Star,
}

/// Traffic pattern.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Traffic {
    /// No application traffic (routing only).
    None,
    /// `pair:FROM:TO:INTERVAL_SECS` — a periodic unicast stream.
    Pair {
        /// Sender index.
        from: usize,
        /// Receiver index.
        to: usize,
        /// Seconds between datagrams.
        interval_secs: u64,
    },
    /// `all-to-one:INTERVAL_SECS` — every node reports to node 0.
    AllToOne {
        /// Seconds between each node's reports.
        interval_secs: u64,
    },
    /// `bulk:FROM:TO:BYTES` — one reliable transfer.
    Bulk {
        /// Sender index.
        from: usize,
        /// Receiver index.
        to: usize,
        /// Payload size.
        bytes: usize,
    },
}

/// Parsed command line.
#[derive(Clone, Debug, PartialEq)]
pub struct Cli {
    /// Network shape.
    pub topology: Topology,
    /// Number of nodes.
    pub nodes: usize,
    /// Node spacing as a fraction of the radio range.
    pub spacing_frac: f64,
    /// Protocol to run.
    pub protocol: Protocol,
    /// Traffic pattern.
    pub traffic: Traffic,
    /// Simulated duration.
    pub duration: Duration,
    /// Master seed.
    pub seed: u64,
    /// Number of replication seeds (1 = a single narrated run).
    pub seeds: usize,
    /// Worker threads for multi-seed runs.
    pub jobs: usize,
    /// Spatial shards for the event engine (1 = sequential reference;
    /// behaviourally transparent either way).
    pub shards: usize,
    /// Worker threads inside the simulator's parallel evaluate regions
    /// (1 = coordinator only; behaviourally transparent either way).
    pub threads: usize,
    /// Per-node RNG stream family (required for `--threads` > 1; picks
    /// a different but equally valid stochastic trajectory).
    pub rng_streams: bool,
    /// Spreading factor.
    pub sf: SpreadingFactor,
    /// Probabilistic reception near the SNR floor.
    pub grey_zone: bool,
    /// Per-topology-epoch link-budget caching in the simulator (on by
    /// default; `--no-link-cache` forces the reference path).
    pub link_cache: bool,
    /// Enforce the EU868 1 % duty cycle.
    pub eu868: bool,
    /// Scheduled failures: `(node, at)`.
    pub kills: Vec<(usize, Duration)>,
    /// Scheduled recoveries: `(node, at)`.
    pub revives: Vec<(usize, Duration)>,
    /// Print per-node statistics.
    pub per_node: bool,
    /// SNR tie-breaking in the routing policy.
    pub snr_tiebreak: bool,
    /// Nodes advertising the gateway role.
    pub gateways: Vec<usize>,
}

impl Default for Cli {
    fn default() -> Self {
        Cli {
            topology: Topology::Line,
            nodes: 3,
            spacing_frac: 0.8,
            protocol: Protocol::Mesh,
            traffic: Traffic::None,
            duration: Duration::from_secs(600),
            seed: 42,
            seeds: 1,
            jobs: 1,
            shards: 1,
            threads: 1,
            rng_streams: false,
            sf: SpreadingFactor::Sf7,
            grey_zone: false,
            link_cache: true,
            eu868: false,
            kills: Vec::new(),
            revives: Vec::new(),
            per_node: false,
            snr_tiebreak: false,
            gateways: Vec::new(),
        }
    }
}

/// A parse failure with the offending input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParseError {}

/// Usage text printed for `--help` and parse errors.
pub const USAGE: &str = "\
meshsim — simulate a LoRa mesh network

USAGE: meshsim [OPTIONS]

OPTIONS:
  --topology line|grid|ring|star|random   network shape        [line]
  --nodes N                               node count           [3]
  --spacing-frac F                        spacing / radio range [0.8]
  --protocol loramesher|flooding|star     protocol  [loramesher]
                                          (mesh = alias of loramesher)
  --traffic none|pair:F:T:SECS|all-to-one:SECS|bulk:F:T:BYTES  [none]
  --duration SECS                         simulated time       [600]
  --seed N                                master seed          [42]
  --seeds N                               replication seeds    [1]
  --jobs N                                worker threads for --seeds [1]
  --shards N                              spatial event-engine shards [1]
  --threads N                             simulator worker threads [1]
  --rng-streams                           per-node RNG streams (needed
                                          for --threads > 1)
  --sf 7..12                              spreading factor     [7]
  --grey-zone                             probabilistic reception
  --no-link-cache                         disable link-budget caching
  --eu868                                 enforce the 1 % duty cycle
  --kill NODE@SECS                        fail a node (repeatable)
  --revive NODE@SECS                      recover a node (repeatable)
  --snr-tiebreak                          SNR-aware route selection
  --gateway NODE                          give a node the gateway role (repeatable)
  --per-node                              print per-node statistics
  --help                                  this text
";

fn parse_at(value: &str) -> Result<(usize, Duration), ParseError> {
    let (node, at) = value
        .split_once('@')
        .ok_or_else(|| ParseError(format!("expected NODE@SECS, got '{value}'")))?;
    let node = node
        .parse()
        .map_err(|_| ParseError(format!("bad node index '{node}'")))?;
    let secs: u64 = at
        .parse()
        .map_err(|_| ParseError(format!("bad time '{at}'")))?;
    Ok((node, Duration::from_secs(secs)))
}

impl Cli {
    /// Parses an argument list (without the program name).
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] describing the first bad token. A lone
    /// `--help` yields the error `"help"` by convention.
    pub fn parse<I, S>(args: I) -> Result<Cli, ParseError>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut cli = Cli::default();
        let mut it = args.into_iter();
        let value_of = |flag: &str, it: &mut dyn Iterator<Item = S>| {
            it.next()
                .map(|v| v.as_ref().to_string())
                .ok_or_else(|| ParseError(format!("{flag} requires a value")))
        };
        while let Some(arg) = it.next() {
            match arg.as_ref() {
                "--help" | "-h" => return Err(ParseError("help".into())),
                "--topology" => {
                    cli.topology = match value_of("--topology", &mut it)?.as_str() {
                        "line" => Topology::Line,
                        "grid" => Topology::Grid,
                        "ring" => Topology::Ring,
                        "star" => Topology::Star,
                        "random" => Topology::Random,
                        other => return Err(ParseError(format!("unknown topology '{other}'"))),
                    };
                }
                "--nodes" => {
                    let v = value_of("--nodes", &mut it)?;
                    cli.nodes = v
                        .parse()
                        .map_err(|_| ParseError(format!("bad node count '{v}'")))?;
                    if cli.nodes == 0 {
                        return Err(ParseError("--nodes must be at least 1".into()));
                    }
                }
                "--spacing-frac" => {
                    let v = value_of("--spacing-frac", &mut it)?;
                    cli.spacing_frac = v
                        .parse()
                        .map_err(|_| ParseError(format!("bad fraction '{v}'")))?;
                    if !(0.01..=2.0).contains(&cli.spacing_frac) {
                        return Err(ParseError("--spacing-frac must be in 0.01..=2.0".into()));
                    }
                }
                "--protocol" => {
                    cli.protocol = match value_of("--protocol", &mut it)?.as_str() {
                        "mesh" | "loramesher" => Protocol::Mesh,
                        "flooding" => Protocol::Flooding,
                        "star" => Protocol::Star,
                        other => {
                            return Err(ParseError(format!(
                                "unknown protocol '{other}' (try loramesher, flooding or star)"
                            )))
                        }
                    };
                }
                "--traffic" => {
                    let v = value_of("--traffic", &mut it)?;
                    cli.traffic = Self::parse_traffic(&v)?;
                }
                "--duration" => {
                    let v = value_of("--duration", &mut it)?;
                    let secs: u64 = v
                        .parse()
                        .map_err(|_| ParseError(format!("bad duration '{v}'")))?;
                    cli.duration = Duration::from_secs(secs);
                }
                "--seed" => {
                    let v = value_of("--seed", &mut it)?;
                    cli.seed = v
                        .parse()
                        .map_err(|_| ParseError(format!("bad seed '{v}'")))?;
                }
                "--seeds" => {
                    let v = value_of("--seeds", &mut it)?;
                    cli.seeds = v
                        .parse()
                        .map_err(|_| ParseError(format!("bad seed count '{v}'")))?;
                    if cli.seeds == 0 {
                        return Err(ParseError("--seeds must be at least 1".into()));
                    }
                }
                "--jobs" => {
                    let v = value_of("--jobs", &mut it)?;
                    cli.jobs = v
                        .parse()
                        .map_err(|_| ParseError(format!("bad job count '{v}'")))?;
                    if cli.jobs == 0 {
                        return Err(ParseError("--jobs must be at least 1".into()));
                    }
                }
                "--shards" => {
                    let v = value_of("--shards", &mut it)?;
                    cli.shards = v
                        .parse()
                        .map_err(|_| ParseError(format!("bad shard count '{v}'")))?;
                    if cli.shards == 0 {
                        return Err(ParseError("--shards must be at least 1".into()));
                    }
                }
                "--threads" => {
                    let v = value_of("--threads", &mut it)?;
                    cli.threads = v
                        .parse()
                        .map_err(|_| ParseError(format!("bad thread count '{v}'")))?;
                    if cli.threads == 0 {
                        return Err(ParseError("--threads must be at least 1".into()));
                    }
                }
                "--sf" => {
                    let v = value_of("--sf", &mut it)?;
                    let n: u8 = v.parse().map_err(|_| ParseError(format!("bad SF '{v}'")))?;
                    cli.sf = SpreadingFactor::from_value(n)
                        .ok_or_else(|| ParseError(format!("SF must be 7..=12, got {n}")))?;
                }
                "--rng-streams" => cli.rng_streams = true,
                "--grey-zone" => cli.grey_zone = true,
                "--no-link-cache" => cli.link_cache = false,
                "--eu868" => cli.eu868 = true,
                "--per-node" => cli.per_node = true,
                "--snr-tiebreak" => cli.snr_tiebreak = true,
                "--gateway" => {
                    let v = value_of("--gateway", &mut it)?;
                    let node = v
                        .parse()
                        .map_err(|_| ParseError(format!("bad node index '{v}'")))?;
                    cli.gateways.push(node);
                }
                "--kill" => {
                    let v = value_of("--kill", &mut it)?;
                    cli.kills.push(parse_at(&v)?);
                }
                "--revive" => {
                    let v = value_of("--revive", &mut it)?;
                    cli.revives.push(parse_at(&v)?);
                }
                other => return Err(ParseError(format!("unknown argument '{other}'"))),
            }
        }
        cli.validate()?;
        Ok(cli)
    }

    fn parse_traffic(value: &str) -> Result<Traffic, ParseError> {
        if value == "none" {
            return Ok(Traffic::None);
        }
        let parts: Vec<&str> = value.split(':').collect();
        let int = |s: &str| -> Result<u64, ParseError> {
            s.parse()
                .map_err(|_| ParseError(format!("bad number '{s}' in --traffic")))
        };
        match parts.as_slice() {
            ["pair", from, to, secs] => Ok(Traffic::Pair {
                from: int(from)? as usize,
                to: int(to)? as usize,
                interval_secs: int(secs)?,
            }),
            ["all-to-one", secs] => Ok(Traffic::AllToOne {
                interval_secs: int(secs)?,
            }),
            ["bulk", from, to, bytes] => Ok(Traffic::Bulk {
                from: int(from)? as usize,
                to: int(to)? as usize,
                bytes: int(bytes)? as usize,
            }),
            _ => Err(ParseError(format!(
                "bad --traffic '{value}' (try pair:0:2:10, all-to-one:30, bulk:0:1:4096 or none)"
            ))),
        }
    }

    fn validate(&self) -> Result<(), ParseError> {
        if self.threads > 1 && !self.rng_streams {
            return Err(ParseError(
                "--threads > 1 requires --rng-streams: parallel band workers \
                 mint per-node RNG streams independently"
                    .into(),
            ));
        }
        let check = |i: usize, what: &str| {
            if i >= self.nodes {
                Err(ParseError(format!(
                    "{what} index {i} out of range (nodes = {})",
                    self.nodes
                )))
            } else {
                Ok(())
            }
        };
        match self.traffic {
            Traffic::Pair {
                from,
                to,
                interval_secs,
            } => {
                check(from, "--traffic sender")?;
                check(to, "--traffic receiver")?;
                if interval_secs == 0 {
                    return Err(ParseError("traffic interval must be positive".into()));
                }
            }
            Traffic::Bulk { from, to, bytes } => {
                check(from, "--traffic sender")?;
                check(to, "--traffic receiver")?;
                if bytes == 0 {
                    return Err(ParseError("bulk size must be positive".into()));
                }
            }
            Traffic::AllToOne { interval_secs } => {
                if interval_secs == 0 {
                    return Err(ParseError("traffic interval must be positive".into()));
                }
            }
            Traffic::None => {}
        }
        for (node, _) in self.kills.iter().chain(&self.revives) {
            check(*node, "--kill/--revive")?;
        }
        for node in &self.gateways {
            check(*node, "--gateway")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Cli, ParseError> {
        Cli::parse(args.iter().copied())
    }

    #[test]
    fn defaults_with_no_args() {
        let cli = parse(&[]).unwrap();
        assert_eq!(cli, Cli::default());
    }

    #[test]
    fn full_command_line() {
        let cli = parse(&[
            "--topology",
            "grid",
            "--nodes",
            "9",
            "--spacing-frac",
            "0.7",
            "--protocol",
            "flooding",
            "--traffic",
            "pair:0:8:15",
            "--duration",
            "1200",
            "--seed",
            "99",
            "--sf",
            "9",
            "--grey-zone",
            "--eu868",
            "--per-node",
            "--kill",
            "4@300",
            "--revive",
            "4@600",
        ])
        .unwrap();
        assert_eq!(cli.topology, Topology::Grid);
        assert_eq!(cli.nodes, 9);
        assert_eq!(cli.protocol, Protocol::Flooding);
        assert_eq!(
            cli.traffic,
            Traffic::Pair {
                from: 0,
                to: 8,
                interval_secs: 15
            }
        );
        assert_eq!(cli.duration, Duration::from_secs(1200));
        assert_eq!(cli.sf, SpreadingFactor::Sf9);
        assert!(cli.grey_zone && cli.eu868 && cli.per_node);
        assert_eq!(cli.kills, vec![(4, Duration::from_secs(300))]);
        assert_eq!(cli.revives, vec![(4, Duration::from_secs(600))]);
    }

    #[test]
    fn traffic_variants() {
        assert_eq!(
            parse(&["--traffic", "none"]).unwrap().traffic,
            Traffic::None
        );
        assert_eq!(
            parse(&["--nodes", "6", "--traffic", "all-to-one:30"])
                .unwrap()
                .traffic,
            Traffic::AllToOne { interval_secs: 30 }
        );
        assert_eq!(
            parse(&["--nodes", "2", "--traffic", "bulk:0:1:4096"])
                .unwrap()
                .traffic,
            Traffic::Bulk {
                from: 0,
                to: 1,
                bytes: 4096
            }
        );
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse(&["--topology", "moebius"]).is_err());
        assert!(parse(&["--nodes", "0"]).is_err());
        assert!(parse(&["--nodes"]).is_err());
        assert!(parse(&["--sf", "6"]).is_err());
        assert!(
            parse(&["--traffic", "pair:0:9:10"]).is_err(),
            "receiver out of range"
        );
        assert!(parse(&["--traffic", "pair:0:1"]).is_err());
        assert!(parse(&["--kill", "7@10"]).is_err(), "node out of range");
        assert!(parse(&["--kill", "1-10"]).is_err());
        assert!(parse(&["--spacing-frac", "5.0"]).is_err());
        assert!(parse(&["--bogus"]).is_err());
    }

    #[test]
    fn protocol_names_and_alias_parse() {
        assert_eq!(parse(&[]).unwrap().protocol, Protocol::Mesh);
        assert_eq!(
            parse(&["--protocol", "loramesher"]).unwrap().protocol,
            Protocol::Mesh
        );
        assert_eq!(
            parse(&["--protocol", "mesh"]).unwrap().protocol,
            Protocol::Mesh,
            "historic alias keeps working"
        );
        assert_eq!(
            parse(&["--protocol", "flooding"]).unwrap().protocol,
            Protocol::Flooding
        );
        assert_eq!(
            parse(&["--protocol", "star"]).unwrap().protocol,
            Protocol::Star
        );
    }

    #[test]
    fn unknown_protocol_error_names_the_choices() {
        let err = parse(&["--protocol", "meshtastic"]).unwrap_err();
        assert!(
            err.0.contains("unknown protocol 'meshtastic'"),
            "unhelpful error: {err}"
        );
        assert!(
            err.0.contains("loramesher") && err.0.contains("flooding"),
            "error should list the valid protocols: {err}"
        );
    }

    #[test]
    fn link_cache_flag() {
        assert!(parse(&[]).unwrap().link_cache, "cache on by default");
        assert!(!parse(&["--no-link-cache"]).unwrap().link_cache);
    }

    #[test]
    fn seeds_and_jobs_parse() {
        let cli = parse(&["--seeds", "16", "--jobs", "4"]).unwrap();
        assert_eq!(cli.seeds, 16);
        assert_eq!(cli.jobs, 4);
        assert_eq!(parse(&[]).unwrap().seeds, 1, "single run by default");
        assert!(parse(&["--seeds", "0"]).is_err());
        assert!(parse(&["--jobs", "0"]).is_err());
        assert!(parse(&["--seeds", "many"]).is_err());
    }

    #[test]
    fn shards_parse() {
        assert_eq!(parse(&[]).unwrap().shards, 1, "sequential by default");
        assert_eq!(parse(&["--shards", "4"]).unwrap().shards, 4);
        assert!(parse(&["--shards", "0"]).is_err());
        assert!(parse(&["--shards", "lots"]).is_err());
    }

    #[test]
    fn threads_parse() {
        assert_eq!(
            parse(&[]).unwrap().threads,
            1,
            "coordinator only by default"
        );
        assert_eq!(
            parse(&["--threads", "2", "--rng-streams"]).unwrap().threads,
            2
        );
        assert!(parse(&["--threads", "0"]).is_err());
        assert!(parse(&["--threads", "lots"]).is_err());
    }

    #[test]
    fn rng_streams_parse_and_threads_guard() {
        assert!(!parse(&[]).unwrap().rng_streams, "fork-chain by default");
        assert!(parse(&["--rng-streams"]).unwrap().rng_streams);
        // Parallel band workers mint per-node streams; the fork-chain
        // family cannot serve them, so the combination is rejected at
        // parse time rather than panicking inside the simulator.
        let err = parse(&["--threads", "2"]).unwrap_err();
        assert!(err.0.contains("--rng-streams"), "unhelpful error: {err}");
        assert!(parse(&["--threads", "2", "--rng-streams"]).is_ok());
    }

    #[test]
    fn help_is_signalled() {
        assert_eq!(parse(&["--help"]), Err(ParseError("help".into())));
    }

    #[test]
    fn traffic_interval_must_be_positive() {
        assert!(parse(&["--nodes", "3", "--traffic", "all-to-one:0"]).is_err());
        assert!(parse(&["--nodes", "3", "--traffic", "bulk:0:1:0"]).is_err());
    }
}
