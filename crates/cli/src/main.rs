//! `meshsim` binary shell: parse, execute, print.

use meshsim::args::{Cli, ParseError, USAGE};

fn main() {
    let cli = match Cli::parse(std::env::args().skip(1)) {
        Ok(cli) => cli,
        Err(ParseError(msg)) if msg == "help" => {
            print!("{USAGE}");
            return;
        }
        Err(e) => {
            eprintln!("error: {e}\n");
            eprint!("{USAGE}");
            std::process::exit(2);
        }
    };
    print!("{}", meshsim::execute(&cli));
}
