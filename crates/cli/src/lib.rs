//! `meshsim` — command-line driver for the loramesher-rs simulator.
//!
//! Declaratively builds a network, runs a workload, and prints the
//! delivery/latency/airtime report plus per-node protocol statistics.
//! The argument parser and the scenario execution live in this library
//! crate so they are unit-testable; `main.rs` is a thin shell.
//!
//! ```text
//! meshsim --topology line --nodes 5 --protocol mesh \
//!         --traffic pair:0:4:10 --duration 600 --seed 7
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod run;

pub use args::{Cli, ParseError, Protocol, Topology, Traffic};
pub use run::execute;
