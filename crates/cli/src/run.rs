//! Scenario execution for `meshsim`.

use std::time::Duration;

use lora_phy::modulation::{Bandwidth, CodingRate, LoRaModulation};
use lora_phy::region::Region;
use radio_sim::rng::SimRng;
use radio_sim::sim::SimConfig;
use radio_sim::topology;
use scenario::report::{fmt_ms, fmt_pct, fmt_secs, ExpTable};
use scenario::runner::{NetworkBuilder, ProtocolChoice, Runner, TrafficReport};
use scenario::workload::{self, Target};
use scenario::Summary;

use crate::args::{Cli, Protocol, Topology, Traffic};

/// Builds, runs and renders the scenario described by `cli`. Returns the
/// report text (printed by `main`, asserted by tests).
///
/// With `--seeds 1` (the default) this is a single narrated run. Beyond
/// that the same scenario is replicated across a spread seed set —
/// sharded over `--jobs` worker threads — and the report becomes a table
/// of mean ± sd / min / max / 95 % CI per metric. The aggregate is
/// identical for every `--jobs` value.
#[must_use]
pub fn execute(cli: &Cli) -> String {
    if cli.seeds <= 1 {
        return run_scenario(cli, cli.seed).0;
    }
    let seeds = scenario::seed_list(cli.seed, cli.seeds);
    let reports = scenario::run_parallel(&seeds, cli.jobs, |&seed| run_scenario(cli, seed).1);
    // The thread count is deliberately absent: output depends only on
    // the scenario, so any --jobs value prints byte-identical text.
    let mut out = format!(
        "{} nodes, {:?} topology, {:?} protocol — {} seeds (base {})\n\n",
        cli.nodes, cli.topology, cli.protocol, cli.seeds, cli.seed
    );
    let mut table = ExpTable::new(
        "aggregate over seeds",
        &["metric", "mean ± sd", "min", "max", "95% CI"],
    );
    let mut push = |name: &str, unit: &str, values: Vec<f64>| {
        let values: Vec<f64> = values.into_iter().filter(|v| v.is_finite()).collect();
        if values.is_empty() {
            table.push_row(vec![
                name.to_string(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
            ]);
            return;
        }
        let s = Summary::of(&values);
        let f = |v: f64| format!("{v:.2}{unit}");
        table.push_row(vec![
            name.to_string(),
            s.fmt_pm(f),
            f(s.min),
            f(s.max),
            format!("± {}", f(s.ci95_half_width())),
        ]);
    };
    push(
        "datagrams sent",
        "",
        reports.iter().map(|r| r.sent as f64).collect(),
    );
    push(
        "datagrams delivered",
        "",
        reports.iter().map(|r| r.delivered as f64).collect(),
    );
    push(
        "PDR",
        " %",
        reports
            .iter()
            .filter_map(|r| r.pdr().map(|p| p * 100.0))
            .collect(),
    );
    push(
        "mean latency",
        " ms",
        reports
            .iter()
            .filter_map(|r| r.mean_latency().map(|d| d.as_secs_f64() * 1e3))
            .collect(),
    );
    push(
        "frames transmitted",
        "",
        reports
            .iter()
            .map(|r| r.frames_transmitted as f64)
            .collect(),
    );
    push(
        "airtime",
        " s",
        reports
            .iter()
            .map(|r| r.total_airtime.as_secs_f64())
            .collect(),
    );
    push(
        "channel utilisation",
        " %",
        reports
            .iter()
            .map(|r| r.channel_utilisation() * 100.0)
            .collect(),
    );
    push(
        "collision losses",
        "",
        reports.iter().map(|r| r.collisions as f64).collect(),
    );
    out.push_str(&table.to_string());
    out
}

/// One simulation run: the narrated report text plus the raw traffic
/// report the multi-seed path aggregates.
fn run_scenario(cli: &Cli, seed: u64) -> (String, TrafficReport) {
    let mut out = String::new();
    let mut sim = SimConfig::default();
    sim.rf.modulation = LoRaModulation::new(cli.sf, Bandwidth::Khz125, CodingRate::Cr4_7);
    sim.rf.grey_zone = cli.grey_zone;
    sim.link_cache = cli.link_cache;
    sim.shards = cli.shards;
    sim.threads = cli.threads;
    sim.rng_streams = cli.rng_streams;
    let range = topology::radio_range_m(&sim.rf);
    let spacing = range * cli.spacing_frac;

    let positions = match cli.topology {
        Topology::Line => topology::line(cli.nodes, spacing),
        Topology::Grid => {
            let side = (cli.nodes as f64).sqrt().ceil() as usize;
            let mut g = topology::grid(side, side, spacing);
            g.truncate(cli.nodes);
            g
        }
        Topology::Ring => {
            let radius = if cli.nodes > 1 {
                spacing / (2.0 * (std::f64::consts::PI / cli.nodes as f64).sin())
            } else {
                0.0
            };
            topology::ring(cli.nodes, radius)
        }
        Topology::Star => topology::star(cli.nodes, spacing),
        Topology::Random => {
            let side = spacing * (cli.nodes as f64).sqrt() * 0.85;
            let mut rng = SimRng::new(seed);
            topology::connected_random(cli.nodes, side, side, spacing, &mut rng, 2000)
                .expect("no connected random placement found; try a larger --spacing-frac")
        }
    };

    out.push_str(&format!(
        "{} nodes, {:?} topology, {} (radio range {:.0} m, spacing {:.0} m)\n",
        cli.nodes, cli.topology, sim.rf.modulation, range, spacing
    ));

    let protocol = match cli.protocol {
        Protocol::Mesh => ProtocolChoice::mesh_fast(),
        Protocol::Flooding => ProtocolChoice::Flooding { ttl: 7 },
        Protocol::Star => ProtocolChoice::Star { gateway: 0 },
    };
    let region = if cli.eu868 {
        Region::Eu868
    } else {
        Region::Unlimited
    };
    let mut roles = vec![0u8; cli.nodes];
    for &g in &cli.gateways {
        roles[g] = loramesher::Role::GATEWAY.bits();
    }
    let mut net = NetworkBuilder::mesh(positions, seed)
        .protocol(protocol)
        .region(region)
        .snr_tiebreak(cli.snr_tiebreak)
        .roles(roles)
        .sim_config(sim)
        .build();

    // Fault schedule.
    for &(node, at) in &cli.kills {
        let id = net.id(node);
        net.sim_mut().schedule_kill(at, id);
    }
    for &(node, at) in &cli.revives {
        let id = net.id(node);
        net.sim_mut().schedule_revive(at, id);
    }

    // Mesh warm-up: converge (bounded by half the duration) before traffic.
    let traffic_start = if matches!(cli.protocol, Protocol::Mesh) {
        let deadline = cli.duration / 2;
        match net.run_until_converged(Duration::from_secs(2), deadline) {
            Some(t) => {
                out.push_str(&format!("mesh converged after {}\n", fmt_secs(t)));
                t + Duration::from_secs(1)
            }
            None => {
                out.push_str("mesh did not fully converge before traffic start\n");
                deadline
            }
        }
    } else {
        Duration::from_secs(5)
    };

    // Traffic.
    match cli.traffic {
        Traffic::None => {}
        Traffic::Pair {
            from,
            to,
            interval_secs,
        } => {
            let interval = Duration::from_secs(interval_secs);
            let count = ((cli.duration.saturating_sub(traffic_start)).as_secs()
                / interval_secs.max(1)) as usize;
            net.apply(&workload::periodic(
                from,
                Target::Node(to),
                16,
                traffic_start,
                interval,
                count,
            ));
        }
        Traffic::AllToOne { interval_secs } => {
            let count = ((cli.duration.saturating_sub(traffic_start)).as_secs()
                / interval_secs.max(1)) as usize;
            net.apply(&workload::all_to_one(
                cli.nodes,
                0,
                16,
                traffic_start,
                Duration::from_secs(interval_secs),
                count.max(1),
            ));
        }
        Traffic::Bulk { from, to, bytes } => {
            net.schedule(workload::bulk(from, to, bytes, traffic_start));
        }
    }

    net.run_until(cli.duration);
    let report = net.report();

    out.push_str(&format!("\nsimulated {}\n", fmt_secs(report.elapsed)));
    if report.sent > 0 {
        out.push_str(&format!(
            "datagrams: {} sent, {} delivered (PDR {}), {} duplicates, {} refused\n",
            report.sent,
            report.delivered,
            report.pdr().map_or("-".into(), fmt_pct),
            report.duplicates,
            report.send_errors,
        ));
        if let Some(mean) = report.mean_latency() {
            out.push_str(&format!(
                "latency: mean {}, p95 {}\n",
                fmt_ms(mean),
                report.latency_percentile(0.95).map_or("-".into(), fmt_ms),
            ));
        }
    }
    if report.reliable_attempted > 0 {
        out.push_str(&format!(
            "reliable transfers: {} attempted, {} completed, {} failed",
            report.reliable_attempted, report.reliable_completed, report.reliable_failed
        ));
        if let Some(d) = report.reliable_latencies.first() {
            out.push_str(&format!(" (first completed in {})", fmt_secs(*d)));
        }
        out.push('\n');
    }
    out.push_str(&format!(
        "channel: {} frames, {} airtime ({} utilisation), {} collision losses\n",
        report.frames_transmitted,
        fmt_secs(report.total_airtime),
        fmt_pct(report.channel_utilisation()),
        report.collisions,
    ));
    out.push_str(&format!(
        "scheduler: {} stale timers dropped\n",
        net.phy_metrics().stale_timers_dropped,
    ));

    if !cli.gateways.is_empty() {
        use loramesher::RoleQueries;
        out.push_str("\ngateway discovery:\n");
        for i in 0..net.len() {
            if let Some(mesh) = net.mesh_node(i) {
                match mesh.routing_table().closest_gateway() {
                    Some(gw) => {
                        let metric = mesh.routing_table().route(gw).map_or(0, |r| r.metric);
                        out.push_str(&format!("  node {i}: gateway {gw} at {metric} hop(s)\n"));
                    }
                    None if cli.gateways.contains(&i) => {
                        out.push_str(&format!("  node {i}: is a gateway\n"));
                    }
                    None => out.push_str(&format!("  node {i}: no gateway known\n")),
                }
            }
        }
    }

    if cli.per_node {
        out.push_str("\nper-node statistics:\n");
        out.push_str("  node  addr  frames  fwd  routes  hellos_rx  drops(no-route/ttl)\n");
        for i in 0..net.len() {
            if let Some(mesh) = net.mesh_node(i) {
                let s = mesh.stats();
                out.push_str(&format!(
                    "  {:>4}  {}  {:>6}  {:>3}  {:>6}  {:>9}  {:>4}/{}\n",
                    i,
                    mesh.address(),
                    s.frames_sent,
                    s.forwarded,
                    mesh.routing_table().len(),
                    s.hellos_received,
                    s.no_route_drops,
                    s.ttl_expired,
                ));
            } else {
                out.push_str(&format!("  {:>4}  {}\n", i, Runner::address_of(i)));
            }
        }
    }
    (out, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Cli;

    fn run(args: &[&str]) -> String {
        execute(&Cli::parse(args.iter().copied()).unwrap())
    }

    #[test]
    fn routing_only_run_reports_convergence() {
        let out = run(&["--topology", "line", "--nodes", "3", "--duration", "300"]);
        assert!(out.contains("mesh converged after"), "{out}");
        assert!(out.contains("frames"), "{out}");
    }

    #[test]
    fn pair_traffic_reports_pdr() {
        let out = run(&[
            "--topology",
            "line",
            "--nodes",
            "3",
            "--traffic",
            "pair:0:2:10",
            "--duration",
            "400",
        ]);
        assert!(out.contains("PDR 100.0 %"), "{out}");
        assert!(out.contains("latency"), "{out}");
    }

    #[test]
    fn bulk_traffic_reports_transfer() {
        let out = run(&[
            "--nodes",
            "2",
            "--traffic",
            "bulk:0:1:2048",
            "--duration",
            "400",
        ]);
        assert!(out.contains("1 completed"), "{out}");
    }

    #[test]
    fn flooding_and_star_protocols_run() {
        let out = run(&[
            "--protocol",
            "flooding",
            "--nodes",
            "4",
            "--traffic",
            "pair:0:3:10",
            "--duration",
            "300",
        ]);
        assert!(out.contains("PDR"), "{out}");
        let out = run(&[
            "--protocol",
            "star",
            "--topology",
            "star",
            "--nodes",
            "4",
            "--traffic",
            "all-to-one:20",
            "--duration",
            "300",
        ]);
        assert!(out.contains("PDR"), "{out}");
    }

    #[test]
    fn kill_schedule_affects_delivery() {
        let out = run(&[
            "--topology",
            "line",
            "--nodes",
            "3",
            "--traffic",
            "pair:0:2:10",
            "--duration",
            "500",
            "--kill",
            "1@250",
        ]);
        // The relay dies mid-run: some datagrams are lost.
        assert!(!out.contains("PDR 100.0 %"), "{out}");
    }

    #[test]
    fn gateway_discovery_section_is_printed() {
        let out = run(&[
            "--topology",
            "line",
            "--nodes",
            "3",
            "--gateway",
            "2",
            "--duration",
            "300",
        ]);
        assert!(out.contains("gateway discovery"), "{out}");
        assert!(out.contains("node 0: gateway 0003 at 2 hop(s)"), "{out}");
        assert!(out.contains("node 2: is a gateway"), "{out}");
    }

    #[test]
    fn snr_tiebreak_flag_parses_and_runs() {
        let out = run(&[
            "--nodes",
            "2",
            "--snr-tiebreak",
            "--traffic",
            "pair:0:1:20",
            "--duration",
            "200",
        ]);
        assert!(out.contains("PDR"), "{out}");
    }

    #[test]
    fn per_node_table_is_printed() {
        let out = run(&["--nodes", "2", "--per-node", "--duration", "120"]);
        assert!(out.contains("per-node statistics"), "{out}");
        assert!(out.contains("0001"), "{out}");
    }

    #[test]
    fn multi_seed_run_prints_aggregate_table() {
        let out = run(&[
            "--topology",
            "line",
            "--nodes",
            "3",
            "--traffic",
            "pair:0:2:10",
            "--duration",
            "300",
            "--seeds",
            "3",
        ]);
        assert!(out.contains("3 seeds (base 42)"), "{out}");
        assert!(out.contains("aggregate over seeds"), "{out}");
        assert!(out.contains("PDR"), "{out}");
        assert!(out.contains("±"), "{out}");
    }

    #[test]
    fn multi_seed_output_is_jobs_invariant() {
        let base = [
            "--topology",
            "line",
            "--nodes",
            "3",
            "--traffic",
            "pair:0:2:10",
            "--duration",
            "300",
            "--seeds",
            "4",
        ];
        let with_jobs = |jobs: &str| {
            let mut args: Vec<&str> = base.to_vec();
            args.extend(["--jobs", jobs]);
            run(&args)
        };
        assert_eq!(with_jobs("1"), with_jobs("4"));
    }

    #[test]
    fn single_seed_output_is_unchanged_by_seeds_flag() {
        // --seeds 1 must reproduce the legacy narrated single run.
        let args = [
            "--nodes",
            "3",
            "--traffic",
            "pair:0:2:10",
            "--duration",
            "300",
        ];
        let mut with_flag: Vec<&str> = args.to_vec();
        with_flag.extend(["--seeds", "1", "--jobs", "4"]);
        assert_eq!(run(&args), run(&with_flag));
    }

    #[test]
    fn grid_ring_random_topologies_build() {
        for topo in ["grid", "ring", "random"] {
            let out = run(&["--topology", topo, "--nodes", "6", "--duration", "300"]);
            assert!(out.contains("6 nodes"), "{topo}: {out}");
        }
    }
}
