//! Property tests for the fork-join worker regions: thread scheduling
//! may change *when* a chunk finishes, never *what* the region computes.
//!
//! 1. **Scripted uneven durations** — chunks are artificially delayed
//!    (including a reverse staircase where chunk 0 finishes last), so
//!    completion order is maximally different from chunk order; results
//!    must still land in item order, byte-for-byte equal to the serial
//!    reference.
//! 2. **Randomised schedules** — `forall` draws item counts, thread
//!    counts and sleep scripts; `map_chunks` / `run_chunks` must match
//!    the pure serial computation every time.
//! 3. **Whole-simulator property** — random tiny topologies run at
//!    random (shards, threads) pairs fingerprint-identically to the
//!    sequential single-threaded reference.
//!
//! Timing here is *injected* (`thread::sleep` with fixed durations),
//! never *measured* — the determinism lint (d2) bans clock reads in
//! this crate, tests included.

use std::thread;
use std::time::Duration;

use lora_phy::link::SignalQuality;
use lora_phy::propagation::Position;
use radio_sim::firmware::{Context, Firmware};
use radio_sim::mobility::Mobility;
use radio_sim::par::{map_chunks, run_chunks};
use radio_sim::{NodeId, SimConfig, SimRng, Simulator};
use testkit::forall;

/// The adversarial schedule: chunk 0 (the calling thread's chunk)
/// sleeps longest, the last spawned chunk returns instantly. Completion
/// order is the exact reverse of chunk order, yet concatenation must
/// restore item order.
#[test]
fn reverse_staircase_durations_cannot_reorder_results() {
    let items: Vec<u64> = (0..64).collect();
    let expected: Vec<u64> = items.iter().map(|&x| x.wrapping_mul(31) ^ 7).collect();
    for threads in [2usize, 4, 8] {
        let chunk = items.len().div_ceil(threads);
        let got = map_chunks(threads, &items, |i, &x| {
            let chunk_index = i / chunk;
            let rank = threads.saturating_sub(chunk_index);
            // Sleep once per chunk, on its first item.
            if i % chunk == 0 {
                // meshlint::allow(c1): rank <= threads <= 8
                thread::sleep(Duration::from_millis(3 * rank as u64));
            }
            x.wrapping_mul(31) ^ 7
        });
        assert_eq!(got, expected, "threads = {threads}");
    }
}

/// Same adversarial schedule for the in-place variant.
#[test]
fn run_chunks_with_reverse_staircase_matches_serial() {
    let mut expected: Vec<u64> = (0..60).collect();
    for v in &mut expected {
        *v = v.wrapping_mul(13) + 5;
    }
    for threads in [2usize, 4, 6] {
        let mut items: Vec<u64> = (0..60).collect();
        let chunk = items.len().div_ceil(threads);
        run_chunks(threads, &mut items, |start, slice| {
            let rank = threads.saturating_sub(start / chunk);
            // meshlint::allow(c1): rank <= threads <= 6
            thread::sleep(Duration::from_millis(2 * rank as u64));
            for v in slice.iter_mut() {
                *v = v.wrapping_mul(13) + 5;
            }
        });
        assert_eq!(items, expected, "threads = {threads}");
    }
}

#[test]
fn scripted_random_durations_never_change_map_results() {
    forall(
        "scripted_random_durations_never_change_map_results",
        |g| {
            let n = g.len_in(0, 120);
            let threads = g.usize_in(1, 8);
            // Sparse sleep script: a handful of item indices pause for
            // a few hundred microseconds, everywhere the draw lands.
            let stride = g.usize_in(7, 23);
            let phase = g.usize_in(0, 6);
            let micros = g.int_in(50, 400);
            (n, threads, stride, phase, micros)
        },
        |&(n, threads, stride, phase, micros)| {
            let items: Vec<u64> = (0..n as u64).collect();
            let expected: Vec<u64> = items.iter().map(|&x| x.rotate_left(9) ^ 0xA5).collect();
            let got = map_chunks(threads, &items, |i, &x| {
                if i % stride == phase {
                    thread::sleep(Duration::from_micros(micros));
                }
                x.rotate_left(9) ^ 0xA5
            });
            if got != expected {
                return Err(format!(
                    "map_chunks diverged: n={n}, threads={threads}, \
                     stride={stride}, phase={phase}"
                ));
            }
            Ok(())
        },
    );
}

#[test]
fn scripted_random_durations_never_change_in_place_results() {
    forall(
        "scripted_random_durations_never_change_in_place_results",
        |g| (g.len_in(0, 100), g.usize_in(1, 8), g.int_in(0, 300)),
        |&(n, threads, micros)| {
            let mut items: Vec<u64> = (0..n as u64).collect();
            let expected: Vec<u64> = items.iter().map(|&x| x * 7 + 3).collect();
            run_chunks(threads, &mut items, |start, slice| {
                // Delay scales with the chunk's position so chunks
                // never finish in spawn order.
                thread::sleep(Duration::from_micros(micros + (start % 5) as u64 * 90));
                for v in slice.iter_mut() {
                    *v = *v * 7 + 3;
                }
            });
            if items != expected {
                return Err(format!("run_chunks diverged: n={n}, threads={threads}"));
            }
            Ok(())
        },
    );
}

// ---------------------------------------------------------------------
// Whole-simulator property
// ---------------------------------------------------------------------

/// Beacon firmware with CAD-jittered backoff: every divergence in event
/// order or channel verdicts snowballs into a different timeline.
struct Beacon {
    next: Duration,
    len: usize,
    heard: u64,
    rng: SimRng,
}

impl Firmware for Beacon {
    fn on_timer(&mut self, ctx: &mut Context) {
        if ctx.now() >= self.next {
            self.next += Duration::from_millis(400);
            ctx.start_cad();
        }
    }
    fn on_cad_done(&mut self, busy: bool, ctx: &mut Context) {
        if busy {
            self.next = ctx.now() + Duration::from_millis(10 + self.rng.gen_range(40));
        } else {
            ctx.transmit(vec![0xB7; self.len]);
        }
    }
    fn on_frame(&mut self, _b: &[u8], _q: SignalQuality, _ctx: &mut Context) {
        self.heard += 1;
    }
    fn next_wake(&self) -> Option<Duration> {
        Some(self.next)
    }
}

fn run_case(
    seed: u64,
    nodes: usize,
    mobile_stride: usize,
    shards: usize,
    threads: usize,
) -> (Vec<u64>, u64, String) {
    let mut cfg = SimConfig::default();
    cfg.rf.grey_zone = true;
    cfg.shards = shards;
    cfg.threads = threads;
    // Threaded legs require the per-node stream family; use it for the
    // sequential reference too so the comparison is like-for-like.
    cfg.rng_streams = true;
    let mut sim = Simulator::new(cfg, seed);
    let walk = Mobility::RandomWaypoint {
        width_m: 500.0,
        height_m: 400.0,
        min_speed: 4.0,
        max_speed: 18.0,
        pause: Duration::ZERO,
    };
    for k in 0..nodes {
        let fw = Beacon {
            next: Duration::from_millis(17 * k as u64 + 3),
            len: 8 + k % 9,
            heard: 0,
            rng: SimRng::new(seed ^ (k as u64) << 3),
        };
        let pos = Position::new((k % 6) as f64 * 90.0, (k / 6) as f64 * 75.0);
        if k % mobile_stride == 0 {
            sim.add_mobile_node(fw, pos, walk.clone());
        } else {
            sim.add_node(fw, pos);
        }
    }
    sim.run_for(Duration::from_millis(1_500));
    let heard = (0..sim.node_count())
        .map(|i| sim.node(NodeId(i)).heard)
        .collect();
    let mut metrics = sim.metrics().clone();
    metrics.stale_timers_dropped = 0;
    (heard, sim.events_processed(), format!("{metrics:?}"))
}

#[test]
fn threaded_simulations_match_the_sequential_reference() {
    forall(
        "threaded_simulations_match_the_sequential_reference",
        |g| {
            (
                u64::from(g.u16()),
                g.usize_in(6, 24),
                g.usize_in(2, 5),
                [1usize, 2, 4, 8][g.usize_in(0, 3)],
                [2usize, 3, 4][g.usize_in(0, 2)],
            )
        },
        |&(seed, nodes, stride, shards, threads)| {
            let reference = run_case(seed, nodes, stride, 1, 1);
            let threaded = run_case(seed, nodes, stride, shards, threads);
            if reference != threaded {
                return Err(format!(
                    "divergence at seed={seed}, nodes={nodes}, stride={stride}, \
                     shards={shards}, threads={threads}"
                ));
            }
            Ok(())
        },
    );
}
