//! Property tests for the sharded engine's model, checked against
//! brute-force references (same style as `tests/queue_model.rs`):
//!
//! 1. **Partition soundness** — for random topologies and RF configs,
//!    no audible pair is ever split across bands without a boundary
//!    channel: every node a transmission can reach lies in a band the
//!    transmission's roster covers ([`Partitioner::reach`]).
//! 2. **Temporal soundness** — [`min_lookahead`] really is a lower
//!    bound on every airtime, so an event can never create cross-shard
//!    work earlier than one lookahead after itself.
//! 3. **Merge order** — random event schedules distributed over
//!    several shard queues (seqs drawn from one coordinator counter,
//!    pops spawning airtime-delayed cross-queue work exactly like
//!    `RxEnd`, and same-instant same-queue work like clamped timers)
//!    drain in *exactly* the `(time, seq)` order of a single reference
//!    queue, batched under the engine's lookahead bound — FIFO
//!    tie-break included, and no event released before a cross-shard
//!    dependency scheduled beneath the horizon.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::Duration;

use lora_phy::propagation::{Position, Shadowing};
use radio_sim::event::{EventQueue, SimEvent};
use radio_sim::medium::{Medium, RfConfig};
use radio_sim::shard::{max_audible_range, min_lookahead, Partitioner};
use radio_sim::time::SimTime;
use radio_sim::NodeId;
use testkit::{forall, Gen};

// ---------------------------------------------------------------------
// 1. Partition soundness
// ---------------------------------------------------------------------

fn gen_rf(g: &mut Gen) -> RfConfig {
    let mut rf = RfConfig::default();
    if g.bool(0.6) {
        let sigma = [2.0, 4.0, 6.0][g.usize_in(0, 2)];
        rf.shadowing = Shadowing::new(sigma, u64::from(g.u16()));
    }
    rf
}

fn gen_positions(g: &mut Gen) -> Vec<Position> {
    // A mix of dense clusters and lone far-away nodes, so some bands
    // end up narrower than the audible range and some pairs are only
    // audible through a lucky shadowing draw.
    let n = g.len_in(4, 40);
    (0..n)
        .map(|_| {
            let cluster = g.int_in(0, 3) as f64 * 2_500.0;
            Position::new(
                cluster + g.int_in(0, 2_000) as f64,
                g.int_in(0, 1_500) as f64,
            )
        })
        .collect()
}

#[test]
fn audible_pairs_are_never_split_across_unreachable_bands() {
    forall(
        "audible_pairs_are_never_split_across_unreachable_bands",
        |g| (gen_rf(g), gen_positions(g), g.usize_in(1, 8)),
        |(rf, positions, shards)| {
            let medium = Medium::new(rf.clone());
            let r_max = max_audible_range(rf);
            let xs: Vec<f64> = positions.iter().map(|p| p.x).collect();
            let parts = Partitioner::new(&xs, *shards, r_max);
            for (a, pa) in positions.iter().enumerate() {
                let (lo, hi) = parts.reach(pa.x);
                for (b, pb) in positions.iter().enumerate() {
                    if a == b {
                        continue;
                    }
                    let power = medium.received_power(pa, pb, NodeId(a), NodeId(b));
                    if medium.audible(power) {
                        let band = parts.band_of(pb.x);
                        if !(lo..=hi).contains(&band) {
                            return Err(format!(
                                "audible pair {a}->{b} split: band {band} outside \
                                 reach {lo}..={hi} (r_max {r_max}, {shards} shards)"
                            ));
                        }
                    }
                }
            }
            Ok(())
        },
    );
}

// ---------------------------------------------------------------------
// 2. Temporal soundness
// ---------------------------------------------------------------------

#[test]
fn lookahead_bounds_every_airtime() {
    forall(
        "lookahead_bounds_every_airtime",
        |g| (gen_rf(g), g.len_in(0, 255)),
        |(rf, len)| {
            let la = min_lookahead(rf);
            if la.is_zero() {
                return Err("lookahead must be positive".into());
            }
            let toa = rf.modulation.time_on_air(*len);
            if toa < la {
                return Err(format!(
                    "payload {len}: time_on_air {toa:?} beats lookahead {la:?}"
                ));
            }
            Ok(())
        },
    );
}

// ---------------------------------------------------------------------
// 3. Merge order
// ---------------------------------------------------------------------

/// The lookahead used by the merge harness (stands in for one preamble).
const DELTA: Duration = Duration::from_millis(10);

/// What a popped event spawns, scripted up front so the merged system
/// and the reference perform identical creations in lockstep.
#[derive(Clone, Debug)]
enum Spawn {
    /// Nothing.
    None,
    /// `RxEnd`-style: lands in another queue at `at + DELTA + extra`.
    Cross { queue_offset: usize, extra_ms: u64 },
    /// Timer-style: lands in the *same* queue at `at + extra` (possibly
    /// the same instant — the FIFO case).
    Local { extra_ms: u64 },
}

#[derive(Clone, Debug)]
struct MergeCase {
    queues: usize,
    /// Initial events: (millis, queue index; `queues` = coordinator).
    initial: Vec<(u64, usize)>,
    /// Spawn script, consumed one entry per pop.
    spawns: Vec<Spawn>,
}

fn gen_merge_case(g: &mut Gen) -> MergeCase {
    let queues = g.usize_in(1, 6);
    let initial = g.vec_of(1, 60, |g| {
        // Cluster times on shared instants to force FIFO ties.
        let at = g.int_in(0, 12) * 8 + g.int_in(0, 3);
        (at, g.usize_in(0, queues))
    });
    let spawns = g.vec_of(200, 200, |g| match g.int_in(0, 9) {
        0..=3 => Spawn::None,
        4..=6 => Spawn::Cross {
            queue_offset: g.usize_in(1, 6),
            extra_ms: g.int_in(0, 30),
        },
        _ => Spawn::Local {
            extra_ms: if g.bool(0.4) { 0 } else { g.int_in(1, 15) },
        },
    });
    MergeCase {
        queues,
        initial,
        spawns,
    }
}

/// Reference: one global `(time, seq)` min-heap fed the same inserts.
#[derive(Default)]
struct Reference {
    heap: BinaryHeap<Reverse<(SimTime, u64, u64)>>,
}

impl Reference {
    fn push(&mut self, at: SimTime, seq: u64, tag: u64) {
        self.heap.push(Reverse((at, seq, tag)));
    }
    fn pop(&mut self) -> Option<(SimTime, u64)> {
        self.heap.pop().map(|Reverse((at, _, tag))| (at, tag))
    }
}

/// Drains coordinator + shard queues with the engine's batching rule,
/// spawning scripted work on every pop, and checks the drain order
/// against the reference at every step.
fn check_merge(case: &MergeCase) -> Result<(), String> {
    let mut coord = EventQueue::new();
    let mut shards: Vec<EventQueue> = (0..case.queues).map(|_| EventQueue::new()).collect();
    let mut reference = Reference::default();
    let mut tag = 0u64;
    let mut schedule = |coord: &mut EventQueue,
                        shards: &mut Vec<EventQueue>,
                        reference: &mut Reference,
                        at: SimTime,
                        qi: usize| {
        let t = tag;
        tag += 1;
        let event = SimEvent::App(NodeId(qi), t);
        if qi == case.queues {
            // Coordinator events keep the queue's own counter in play;
            // mirror the seq it used.
            coord.schedule(at, event);
            reference.push(at, coord.alloc_seq() - 1, t);
        } else {
            let seq = coord.alloc_seq();
            shards[qi].schedule_at_seq(at, seq, event);
            reference.push(at, seq, t);
        }
        t
    };
    for &(ms, qi) in &case.initial {
        schedule(
            &mut coord,
            &mut shards,
            &mut reference,
            SimTime::from_millis(ms),
            qi,
        );
    }

    let mut pops = 0usize;
    let mut on_pop = |at: SimTime,
                      from: usize,
                      coord: &mut EventQueue,
                      shards: &mut Vec<EventQueue>,
                      reference: &mut Reference| {
        let spawn = case.spawns[pops % case.spawns.len()].clone();
        pops += 1;
        match spawn {
            Spawn::None => {}
            Spawn::Cross {
                queue_offset,
                extra_ms,
            } => {
                let target = (from + queue_offset) % case.queues;
                let when = at + DELTA + Duration::from_millis(extra_ms);
                schedule(coord, shards, reference, when, target);
            }
            Spawn::Local { extra_ms } => {
                let when = at + Duration::from_millis(extra_ms);
                schedule(coord, shards, reference, when, from);
            }
        }
    };

    // The engine's merge loop (sim.rs `run_merged`), specialised to the
    // harness: coordinator events one at a time, shard batches bounded
    // by min(pre-batch second-best head, t0 + DELTA).
    loop {
        let mut best = coord.peek_key();
        let mut from = usize::MAX;
        let mut second: Option<(SimTime, u64)> = None;
        for (qi, q) in shards.iter_mut().enumerate() {
            let Some(k) = q.peek_key() else { continue };
            if best.is_none_or(|b| k < b) {
                second = best;
                best = Some(k);
                from = qi;
            } else if second.is_none_or(|s| k < s) {
                second = Some(k);
            }
        }
        let Some((t0, _)) = best else { break };
        if from == usize::MAX {
            let (at, event) = coord.pop().expect("peeked");
            let SimEvent::App(_, got) = event else {
                return Err("unexpected event kind".into());
            };
            let want = reference.pop();
            if want != Some((at, got)) {
                return Err(format!(
                    "coordinator pop ({at:?}, {got}) but reference {want:?}"
                ));
            }
            // Coordinator events may spawn anywhere, including beneath
            // the horizon — which is exactly why they never batch.
            on_pop(at, 0, &mut coord, &mut shards, &mut reference);
            continue;
        }
        let horizon = t0 + DELTA;
        while let Some(k) = shards[from].peek_key() {
            if k.0 >= horizon || second.is_some_and(|s| k >= s) {
                break;
            }
            let (at, event) = shards[from].pop().expect("peeked");
            let SimEvent::App(_, got) = event else {
                return Err("unexpected event kind".into());
            };
            let want = reference.pop();
            if want != Some((at, got)) {
                return Err(format!(
                    "batch pop ({at:?}, {got}) from queue {from} but reference {want:?}"
                ));
            }
            on_pop(at, from, &mut coord, &mut shards, &mut reference);
        }
    }
    if let Some(left) = reference.pop() {
        return Err(format!(
            "merge finished early; reference still has {left:?}"
        ));
    }
    Ok(())
}

#[test]
fn sharded_merge_preserves_global_fifo_order() {
    forall(
        "sharded_merge_preserves_global_fifo_order",
        gen_merge_case,
        check_merge,
    );
}
