//! PR 9 differential property: the parallel batch commit's buffered
//! per-band side effects — trace entries, metrics deltas, created
//! events, frame registrations — merged in the global `(time, seq)`
//! order reproduce the sequential engine byte for byte.
//!
//! The scenarios force the planner's gates open
//! (`commit_batch_min_events = 1`) and script *cross-band* batches:
//! several clusters, far outside audible range of each other, whose
//! beacon phases align so every lookahead window carries work in two or
//! more zone-disjoint bands at once. Each case asserts
//! `Simulator::commit_batches > 0` — a battery that silently fell back
//! to the sequential drain would prove nothing about the merge.

use std::time::Duration;

use lora_phy::link::SignalQuality;
use lora_phy::propagation::Position;
use radio_sim::firmware::{Context, Firmware};
use radio_sim::metrics::Metrics;
use radio_sim::mobility::Mobility;
use radio_sim::time::SimTime;
use radio_sim::trace::TraceEvent;
use radio_sim::{NodeId, SimConfig, SimRng, Simulator};
use testkit::forall;

/// Distance between cluster origins — far beyond any audible range, so
/// the planner sees zone-disjoint bands whenever two clusters have
/// queued work in the same window.
const CLUSTER_SPACING_M: f64 = 1.0e5;

/// CAD-then-transmit beacon (the `tests/shard_diff.rs` shape): busy
/// verdicts move the next wake by an RNG-jittered delay, so any merge
/// defect — event order, interference sums, RNG draw order, a trace
/// entry shifted by one — snowballs into a visibly different timeline.
struct Chirp {
    next: Duration,
    interval: Duration,
    len: usize,
    heard: u64,
    rng: SimRng,
}

impl Chirp {
    fn new(phase_ms: u64, len: usize) -> Self {
        Chirp {
            next: Duration::from_millis(phase_ms),
            interval: Duration::from_millis(160),
            len,
            heard: 0,
            rng: SimRng::new(phase_ms ^ 0x9E37),
        }
    }
}

impl Firmware for Chirp {
    fn on_timer(&mut self, ctx: &mut Context) {
        if ctx.now() >= self.next {
            self.next += self.interval;
            ctx.start_cad();
        }
    }
    fn on_cad_done(&mut self, busy: bool, ctx: &mut Context) {
        if busy {
            self.next = ctx.now() + Duration::from_millis(5 + self.rng.gen_range(20));
        } else {
            ctx.transmit(vec![0xC4; self.len]);
        }
    }
    fn on_frame(&mut self, _b: &[u8], _q: SignalQuality, _ctx: &mut Context) {
        self.heard += 1;
    }
    fn next_wake(&self) -> Option<Duration> {
        Some(self.next)
    }
}

type Fingerprint = (Vec<(SimTime, TraceEvent)>, Metrics, Vec<u64>, u64);

fn fingerprint(s: &Simulator<Chirp>) -> Fingerprint {
    let mut metrics = s.metrics().clone();
    // The one engine-dependent counter (see tests/shard_diff.rs).
    metrics.stale_timers_dropped = 0;
    (
        s.trace().entries().cloned().collect(),
        metrics,
        (0..s.node_count())
            .map(|i| s.node(NodeId(i)).heard)
            .collect(),
        s.events_processed(),
    )
}

fn config(shards: usize, threads: usize) -> SimConfig {
    let mut cfg = SimConfig::default();
    cfg.rf.grey_zone = true;
    cfg.trace_capacity = 1 << 16;
    cfg.shards = shards;
    cfg.threads = threads;
    cfg.rng_streams = true;
    // Force the planner past its work-estimate gate: every window with
    // two zone-disjoint candidate bands commits in parallel.
    cfg.commit_batch_min_events = 1;
    cfg
}

/// `clusters` dense clusters along x, phases aligned across clusters so
/// lookahead windows carry several bands' work at once. One node per
/// cluster is mobile (short local walk) to keep scoped invalidation and
/// mobility ticks in the mix.
fn build(s: &mut Simulator<Chirp>, clusters: usize, per_cluster: usize, mobile: bool) {
    let walk = Mobility::RandomWaypoint {
        width_m: 60.0,
        height_m: 60.0,
        min_speed: 4.0,
        max_speed: 16.0,
        pause: Duration::ZERO,
    };
    for c in 0..clusters {
        let base = c as f64 * CLUSTER_SPACING_M;
        for j in 0..per_cluster {
            let fw = Chirp::new(40 * j as u64 + 5, 12 + j % 7);
            let pos = Position::new(base + (j % 3) as f64 * 25.0, (j / 3) as f64 * 25.0);
            if mobile && j == 0 {
                s.add_mobile_node(fw, pos, walk.clone());
            } else {
                s.add_node(fw, pos);
            }
        }
    }
}

fn run_case(
    seed: u64,
    clusters: usize,
    per_cluster: usize,
    mobile: bool,
    shards: usize,
    threads: usize,
) -> (Fingerprint, u64) {
    let mut s = Simulator::new(config(shards, threads), seed);
    build(&mut s, clusters, per_cluster, mobile);
    // Coordinator events mid-run: each caps a batch horizon and the
    // revive replays firmware start from the coordinator queue.
    s.schedule_kill(Duration::from_millis(900), NodeId(1));
    s.schedule_revive(Duration::from_millis(1_700), NodeId(1));
    s.run_for(Duration::from_secs(3));
    (fingerprint(&s), s.commit_batches())
}

#[test]
fn parallel_commit_merge_matches_sequential_on_scripted_batches() {
    forall(
        "parallel_commit_merge_matches_sequential_on_scripted_batches",
        |g| {
            (
                u64::from(g.u16()),
                g.usize_in(2, 4),
                g.usize_in(3, 6),
                g.usize_in(0, 1) == 1,
                [4usize, 8][g.usize_in(0, 1)],
                [2usize, 3, 4][g.usize_in(0, 2)],
            )
        },
        |&(seed, clusters, per_cluster, mobile, shards, threads)| {
            let (reference, _) = run_case(seed, clusters, per_cluster, mobile, 1, 1);
            if reference.1.frames_transmitted == 0 {
                return Err(format!("seed {seed}: no traffic, case proves nothing"));
            }
            let (threaded, batches) =
                run_case(seed, clusters, per_cluster, mobile, shards, threads);
            if batches == 0 {
                return Err(format!(
                    "seed {seed}, clusters={clusters}, shards={shards}, threads={threads}: \
                     no parallel batch ever committed — the comparison is vacuous"
                ));
            }
            if reference != threaded {
                return Err(format!(
                    "merge divergence at seed={seed}, clusters={clusters}, \
                     per_cluster={per_cluster}, mobile={mobile}, shards={shards}, \
                     threads={threads}"
                ));
            }
            Ok(())
        },
    );
}

/// The horizon boundary is exclusive: an event landing at exactly
/// `t0 + lookahead` belongs to the *next* window. Two clusters fire at
/// `t0` (opening a two-band parallel batch) while a third node's timer
/// lands at exactly the horizon; both engines must process it after the
/// batch, in the same global order.
#[test]
fn batch_boundary_event_lands_exactly_on_the_horizon() {
    let lookahead = SimConfig::default().rf.modulation.preamble_time();
    let t0 = Duration::from_millis(100);
    let run = |shards: usize, threads: usize| {
        let mut s = Simulator::new(config(shards, threads), 77);
        for c in 0..2usize {
            let base = c as f64 * CLUSTER_SPACING_M;
            for j in 0..4usize {
                // Every node in both clusters wakes at exactly t0...
                s.add_node(
                    Chirp::new(100, 10 + j),
                    Position::new(base + (j % 2) as f64 * 20.0, (j / 2) as f64 * 20.0),
                );
            }
        }
        // ...and one lone far node's first wake lands at exactly the
        // horizon of the batch that t0 opens.
        let mut boundary = Chirp::new(0, 16);
        boundary.next = t0 + lookahead;
        s.add_node(boundary, Position::new(4.0 * CLUSTER_SPACING_M, 0.0));
        s.run_for(Duration::from_secs(2));
        (fingerprint(&s), s.commit_batches())
    };
    let (reference, _) = run(1, 1);
    assert!(
        reference.1.frames_transmitted > 0,
        "boundary scenario produced no traffic"
    );
    for (shards, threads) in [(4usize, 2usize), (8, 4)] {
        let (threaded, batches) = run(shards, threads);
        assert!(
            batches > 0,
            "no parallel batch committed at shards={shards}, threads={threads}"
        );
        assert_eq!(
            reference, threaded,
            "boundary divergence at shards={shards}, threads={threads}"
        );
    }
}
