//! Property tests for the spatial candidate grid, checked against
//! brute-force references (same style as `tests/shard_model.rs`):
//!
//! 1. **Geometric soundness** — for random topologies and ranges, every
//!    node within `r_max` of a position appears in that position's
//!    candidate list, which stays ascending and duplicate-free, and
//!    [`Grid::degree`] agrees with the candidate count.
//! 2. **RF soundness** — with `r_max` taken from the engine's own
//!    [`max_audible_range`], the candidate set covers every *audible*
//!    node under random RF configs (shadowing included) — the exact
//!    property that lets a link-cache row omit non-candidates.
//! 3. **Mobility** — after random node displacements and a rebuild
//!    (the engine rebuilds on every mobility tick), soundness holds at
//!    the *new* positions.

use lora_phy::propagation::{Position, Shadowing};
use radio_sim::grid::Grid;
use radio_sim::medium::{Medium, RfConfig};
use radio_sim::shard::max_audible_range;
use radio_sim::NodeId;
use testkit::{forall, Gen};

fn gen_positions(g: &mut Gen) -> Vec<Position> {
    // Dense clusters plus lone far-away nodes, so cell occupancy is
    // wildly uneven and some 3×3 blocks are nearly empty.
    let n = g.len_in(1, 60);
    (0..n)
        .map(|_| {
            let cluster = g.int_in(0, 3) as f64 * 3_000.0;
            Position::new(
                cluster + g.int_in(0, 2_000) as f64,
                g.int_in(0, 1_500) as f64,
            )
        })
        .collect()
}

fn gen_r_max(g: &mut Gen) -> f64 {
    // Spans the interesting regimes: degenerate, smaller than a
    // cluster, cluster-sized, and bigger than the whole deployment
    // (single-cell collapse).
    [0.0, 15.0, 120.0, 800.0, 4_000.0, 1.0e7][g.usize_in(0, 5)]
}

/// Brute-force reference: indices of every position within `r` of `p`.
fn within(positions: &[Position], p: Position, r: f64) -> Vec<usize> {
    positions
        .iter()
        .enumerate()
        .filter(|(_, q)| p.distance(q) <= r)
        .map(|(j, _)| j)
        .collect()
}

fn check_sound_at(
    grid: &Grid,
    positions: &[Position],
    r_max: f64,
    label: &str,
) -> Result<(), String> {
    let mut cand = Vec::new();
    for (i, &pi) in positions.iter().enumerate() {
        grid.candidates_into(pi, &mut cand);
        if !cand.windows(2).all(|w| w[0] < w[1]) {
            return Err(format!(
                "{label}: candidates of node {i} not strictly ascending: {cand:?}"
            ));
        }
        if grid.degree(pi) != cand.len() {
            return Err(format!(
                "{label}: degree {} != candidate count {} at node {i}",
                grid.degree(pi),
                cand.len()
            ));
        }
        for j in within(positions, pi, r_max) {
            if cand.binary_search(&j).is_err() {
                return Err(format!(
                    "{label}: node {j} within r_max {r_max} of node {i} \
                     but missing from candidates {cand:?}"
                ));
            }
        }
    }
    Ok(())
}

#[test]
fn candidates_cover_brute_force_on_random_topologies() {
    forall(
        "candidates_cover_brute_force_on_random_topologies",
        |g| (gen_positions(g), gen_r_max(g)),
        |(positions, r_max)| {
            let mut grid = Grid::new();
            grid.rebuild(positions, *r_max);
            check_sound_at(&grid, positions, *r_max, "static")
        },
    );
}

#[test]
fn candidates_cover_every_audible_node_under_random_rf() {
    forall(
        "candidates_cover_every_audible_node_under_random_rf",
        |g| {
            let mut rf = RfConfig::default();
            if g.bool(0.6) {
                let sigma = [2.0, 4.0, 6.0][g.usize_in(0, 2)];
                rf.shadowing = Shadowing::new(sigma, u64::from(g.u16()));
            }
            (rf, gen_positions(g))
        },
        |(rf, positions)| {
            let medium = Medium::new(rf.clone());
            let r_max = max_audible_range(rf);
            let mut grid = Grid::new();
            grid.rebuild(positions, r_max);
            let mut cand = Vec::new();
            for (i, pi) in positions.iter().enumerate() {
                grid.candidates_into(*pi, &mut cand);
                for (j, pj) in positions.iter().enumerate() {
                    if i == j {
                        continue;
                    }
                    let power = medium.received_power(pi, pj, NodeId(i), NodeId(j));
                    if medium.audible(power) && cand.binary_search(&j).is_err() {
                        return Err(format!(
                            "audible node {j} missing from candidates of {i} \
                             (r_max {r_max}): {cand:?}"
                        ));
                    }
                }
            }
            Ok(())
        },
    );
}

#[test]
fn candidates_stay_sound_after_node_movement_and_rebuild() {
    forall(
        "candidates_stay_sound_after_node_movement_and_rebuild",
        |g| {
            let positions = gen_positions(g);
            // Per-node displacements, some far beyond the original
            // bounding box (waypoint jumps, late joiners drifting off).
            let moves: Vec<(f64, f64)> = positions
                .iter()
                .map(|_| {
                    let scale = [5.0, 80.0, 2_500.0][g.usize_in(0, 2)];
                    (
                        (g.int_in(0, 200) as f64 - 100.0) / 100.0 * scale,
                        (g.int_in(0, 200) as f64 - 100.0) / 100.0 * scale,
                    )
                })
                .collect();
            (positions, moves, gen_r_max(g))
        },
        |(positions, moves, r_max)| {
            let mut grid = Grid::new();
            grid.rebuild(positions, *r_max);
            check_sound_at(&grid, positions, *r_max, "before move")?;
            let moved: Vec<Position> = positions
                .iter()
                .zip(moves)
                .map(|(p, &(dx, dy))| Position::new(p.x + dx, p.y + dy))
                .collect();
            // The engine rebuilds on every mobility tick; mirror that.
            grid.rebuild(&moved, *r_max);
            check_sound_at(&grid, &moved, *r_max, "after move")
        },
    );
}
