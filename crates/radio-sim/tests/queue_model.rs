//! Property test: the calendar [`EventQueue`] is observationally
//! equivalent to a deliberately naive reference model — a single global
//! `BinaryHeap` keyed on `(time, seq)` with the same timer-generation
//! rules. Random interleavings of schedules, timer reschedules,
//! cancellations, pops and peeks must agree on every observable:
//! popped events (FIFO within same-instant ties), peeked times, lengths
//! with and without tombstones, and the stale-drop counter. Times span
//! the ring horizon, so near-ring placement, overflow migration and
//! past-event clamping are all crossed repeatedly.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use radio_sim::event::{EventQueue, SimEvent};
use radio_sim::time::SimTime;
use radio_sim::NodeId;
use testkit::{forall, Gen};

const NODES: usize = 5;

/// The reference: a global `(time, seq)` min-heap plus per-node timer
/// generations, dropping stale stamps lazily exactly like the real
/// queue claims to.
#[derive(Default)]
struct Model {
    heap: BinaryHeap<Reverse<(SimTime, u64)>>,
    events: Vec<(SimTime, SimEvent)>,
    gen: [u64; NODES],
    dropped: u64,
}

impl Model {
    fn is_live(&self, event: &SimEvent) -> bool {
        match event {
            SimEvent::Timer(n, g) => self.gen.get(n.0).copied() == Some(*g),
            _ => true,
        }
    }

    fn event_at(&self, seq: u64) -> (SimTime, SimEvent) {
        self.events
            .get(usize::try_from(seq).unwrap_or(usize::MAX))
            .cloned()
            .expect("model heap references a recorded event")
    }

    fn schedule(&mut self, at: SimTime, event: SimEvent) {
        let seq = self.events.len() as u64;
        self.events.push((at, event));
        self.heap.push(Reverse((at, seq)));
    }

    fn schedule_timer(&mut self, at: SimTime, node: NodeId) {
        if let Some(g) = self.gen.get_mut(node.0) {
            *g = g.wrapping_add(1);
        }
        let stamp = self.gen.get(node.0).copied().unwrap_or(0);
        self.schedule(at, SimEvent::Timer(node, stamp));
    }

    fn cancel_timer(&mut self, node: NodeId) {
        if let Some(g) = self.gen.get_mut(node.0) {
            *g = g.wrapping_add(1);
        }
    }

    fn pop(&mut self) -> Option<(SimTime, SimEvent)> {
        while let Some(Reverse((_, seq))) = self.heap.pop() {
            let (at, event) = self.event_at(seq);
            if self.is_live(&event) {
                return Some((at, event));
            }
            self.dropped += 1;
        }
        None
    }

    fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(&Reverse((at, seq))) = self.heap.peek() {
            let (_, event) = self.event_at(seq);
            if self.is_live(&event) {
                return Some(at);
            }
            self.heap.pop();
            self.dropped += 1;
        }
        None
    }

    fn len(&self) -> usize {
        self.heap.len()
    }

    fn live_len(&self) -> usize {
        self.heap
            .iter()
            .filter(|Reverse((_, seq))| self.is_live(&self.event_at(*seq).1))
            .count()
    }
}

#[derive(Clone, Debug)]
enum Op {
    /// A non-timer event (never tombstoned).
    App {
        node: usize,
        at: SimTime,
    },
    /// The invalidate-and-restamp path.
    ScheduleTimer {
        node: usize,
        at: SimTime,
    },
    /// Invalidate without rescheduling.
    CancelTimer {
        node: usize,
    },
    /// Raw `schedule` of a timer with the node's *current* stamp (the
    /// legacy engine's path: live until the next invalidation).
    RawLiveTimer {
        node: usize,
        at: SimTime,
    },
    /// Raw `schedule` of a timer with an unreachable stamp: a tombstone
    /// from birth.
    RawStaleTimer {
        node: usize,
        at: SimTime,
    },
    Pop,
    Peek,
}

/// Times cluster on shared instants (to force FIFO ties), span several
/// ring-horizon multiples (≈4.3 s each) and occasionally jump a minute
/// ahead, so every insert path (near ring / overflow / clamped past)
/// gets traffic.
fn gen_time(g: &mut Gen) -> SimTime {
    let base = g.int_in(0, 4) * 5_000;
    let jitter = g.int_in(0, 8) * 400;
    let far = if g.bool(0.1) { 60_000 } else { 0 };
    SimTime::from_millis(base + jitter + far)
}

fn gen_op(g: &mut Gen) -> Op {
    let node = g.usize_in(0, NODES - 1);
    match g.int_in(0, 9) {
        0 | 1 => Op::App {
            node,
            at: gen_time(g),
        },
        2 | 3 => Op::ScheduleTimer {
            node,
            at: gen_time(g),
        },
        4 => Op::CancelTimer { node },
        5 => Op::RawLiveTimer {
            node,
            at: gen_time(g),
        },
        6 => Op::RawStaleTimer {
            node,
            at: gen_time(g),
        },
        7 | 8 => Op::Pop,
        _ => Op::Peek,
    }
}

#[test]
fn calendar_queue_matches_reference_model() {
    forall(
        "calendar_queue_matches_reference_model",
        |g| g.vec_of(1, 240, gen_op),
        |ops| {
            let mut q = EventQueue::new();
            let mut m = Model::default();
            for (step, op) in ops.iter().enumerate() {
                match *op {
                    Op::App { node, at } => {
                        let ev = SimEvent::App(NodeId(node), step as u64);
                        q.schedule(at, ev.clone());
                        m.schedule(at, ev);
                    }
                    Op::ScheduleTimer { node, at } => {
                        q.schedule_timer(at, NodeId(node));
                        m.schedule_timer(at, NodeId(node));
                    }
                    Op::CancelTimer { node } => {
                        q.cancel_timer(NodeId(node));
                        m.cancel_timer(NodeId(node));
                    }
                    Op::RawLiveTimer { node, at } => {
                        let stamp = q.timer_generation(NodeId(node));
                        let model_stamp = m.gen.get(node).copied().unwrap_or(0);
                        if stamp != model_stamp {
                            return Err(format!(
                                "step {step}: generation skew {stamp} vs {model_stamp}"
                            ));
                        }
                        q.schedule(at, SimEvent::Timer(NodeId(node), stamp));
                        m.schedule(at, SimEvent::Timer(NodeId(node), stamp));
                    }
                    Op::RawStaleTimer { node, at } => {
                        let stamp = q.timer_generation(NodeId(node)).wrapping_add(100_000);
                        q.schedule(at, SimEvent::Timer(NodeId(node), stamp));
                        m.schedule(at, SimEvent::Timer(NodeId(node), stamp));
                    }
                    Op::Pop => {
                        let (got, want) = (q.pop(), m.pop());
                        if got != want {
                            return Err(format!("step {step}: pop {got:?}, model {want:?}"));
                        }
                    }
                    Op::Peek => {
                        let (got, want) = (q.peek_time(), m.peek_time());
                        if got != want {
                            return Err(format!("step {step}: peek {got:?}, model {want:?}"));
                        }
                    }
                }
                if q.len() != m.len() || q.live_len() != m.live_len() {
                    return Err(format!(
                        "step {step}: len {}/{} vs model {}/{}",
                        q.len(),
                        q.live_len(),
                        m.len(),
                        m.live_len()
                    ));
                }
                if q.stale_timers_dropped() != m.dropped {
                    return Err(format!(
                        "step {step}: stale drops {} vs model {}",
                        q.stale_timers_dropped(),
                        m.dropped
                    ));
                }
                if q.is_empty() != (m.len() == 0) {
                    return Err(format!("step {step}: is_empty disagrees"));
                }
            }
            // Drain both to the end: the full remaining order must match.
            loop {
                let (got, want) = (q.pop(), m.pop());
                if got != want {
                    return Err(format!("drain: pop {got:?}, model {want:?}"));
                }
                if got.is_none() {
                    break;
                }
            }
            if q.stale_timers_dropped() != m.dropped {
                return Err("drain: stale-drop counters disagree".into());
            }
            Ok(())
        },
    );
}
