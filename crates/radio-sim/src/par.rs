//! Deterministic fork-join parallelism for the simulator's worker
//! regions — `std::thread::scope` only, no dependencies, no unsafe.
//!
//! The parallel engine follows one rule: **workers evaluate, the
//! coordinator commits**. Events are still dispatched one at a time in
//! the global `(time, seq)` order — that is what keeps every thread
//! count byte-identical — but the *pure* computations between events
//! (mobility stepping, link-row construction) fan out across threads.
//! Purity makes thread count invisible: each item's result is a function
//! of the item alone, and results are merged back **in item order**,
//! never in thread completion order.
//!
//! Chunking is deterministic too: `items` is split into `threads`
//! contiguous chunks of near-equal length, chunk 0 runs on the calling
//! thread (no spawn when `threads == 1` — the sequential path allocates
//! nothing and touches no thread machinery), and each spawned worker
//! owns exactly one chunk. Scheduling jitter can change *when* a chunk
//! finishes but never *what* it computes or where its results land
//! (`tests/par_model.rs` scripts uneven chunk durations to prove it).

/// Runs `f` over contiguous chunks of `items`, in parallel on up to
/// `threads` threads. `f` receives the chunk's starting index in
/// `items` and the chunk itself; chunk boundaries and contents are a
/// pure function of `(items.len(), threads)`.
pub fn run_chunks<T, F>(threads: usize, items: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let n = items.len();
    if n == 0 {
        return;
    }
    if threads <= 1 || n == 1 {
        f(0, items);
        return;
    }
    let threads = threads.min(n);
    let chunk = n.div_ceil(threads);
    std::thread::scope(|scope| {
        let mut rest = items;
        let mut start = 0usize;
        let mut first: Option<(usize, &mut [T])> = None;
        while !rest.is_empty() {
            let take = chunk.min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            if first.is_none() {
                // Chunk 0 runs on the calling thread after the others
                // are spawned, saving one spawn per region.
                first = Some((start, head));
            } else {
                let fr = &f;
                scope.spawn(move || fr(start, head));
            }
            start += take;
            rest = tail;
        }
        if let Some((s, head)) = first {
            f(s, head);
        }
    });
}

/// Maps `f` over `items` in parallel on up to `threads` threads,
/// returning the results **in item order** regardless of which thread
/// finished first. `f` receives `(index, &item)`.
pub fn map_chunks<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    if threads <= 1 || n <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let threads = threads.min(n);
    let chunk = n.div_ceil(threads);
    let mut parts: Vec<Vec<R>> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        let mut chunks = items.chunks(chunk).enumerate();
        let first = chunks.next();
        for (ci, slice) in chunks {
            let fr = &f;
            handles.push(scope.spawn(move || {
                let base = ci * chunk;
                slice
                    .iter()
                    .enumerate()
                    .map(|(k, t)| fr(base + k, t))
                    .collect::<Vec<R>>()
            }));
        }
        let head: Vec<R> = first
            .map(|(_, slice)| {
                slice
                    .iter()
                    .enumerate()
                    .map(|(k, t)| f(k, t))
                    .collect::<Vec<R>>()
            })
            .into_iter()
            .flatten()
            .collect();
        parts.push(head);
        for h in handles {
            // A worker panic is a test/bug condition, not a recoverable
            // simulation state: propagate it.
            match h.join() {
                Ok(v) => parts.push(v),
                Err(p) => std::panic::resume_unwind(p),
            }
        }
    });
    // Spawn order == chunk order, so concatenation restores item order.
    parts.into_iter().flatten().collect()
}

/// Runs `f` over two equal-length slices in lockstep chunks: item `i` of
/// `a` is always paired with item `i` of `b`. Same chunking rule as
/// [`run_chunks`] (contiguous, `div_ceil`, chunk 0 on the caller).
///
/// Mismatched lengths truncate to the shorter slice (the debug build
/// asserts — a length drift is always a caller bug).
pub fn run_chunks_zip<A, B, F>(threads: usize, a: &mut [A], b: &mut [B], f: F)
where
    A: Send,
    B: Send,
    F: Fn(usize, &mut [A], &mut [B]) + Sync,
{
    debug_assert_eq!(a.len(), b.len(), "zip chunks need equal lengths");
    let n = a.len().min(b.len());
    let (a, b) = match (a.get_mut(..n), b.get_mut(..n)) {
        (Some(a), Some(b)) => (a, b),
        _ => return,
    };
    if n == 0 {
        return;
    }
    if threads <= 1 || n == 1 {
        f(0, a, b);
        return;
    }
    let threads = threads.min(n);
    let chunk = n.div_ceil(threads);
    std::thread::scope(|scope| {
        let mut rest_a = a;
        let mut rest_b = b;
        let mut start = 0usize;
        let mut first: Option<(usize, &mut [A], &mut [B])> = None;
        while !rest_a.is_empty() {
            let take = chunk.min(rest_a.len());
            let (head_a, tail_a) = rest_a.split_at_mut(take);
            let (head_b, tail_b) = rest_b.split_at_mut(take);
            if first.is_none() {
                first = Some((start, head_a, head_b));
            } else {
                let fr = &f;
                scope.spawn(move || fr(start, head_a, head_b));
            }
            start += take;
            rest_a = tail_a;
            rest_b = tail_b;
        }
        if let Some((s, head_a, head_b)) = first {
            f(s, head_a, head_b);
        }
    });
}

/// Runs one closure invocation per worker, in parallel: worker 0 on the
/// calling thread, the rest on scoped threads. This is the parallel
/// *commit* entry — unlike [`run_chunks`], each worker dispatches whole
/// per-band event batches (firmware, radio state, medium bookkeeping),
/// so the closure body is a commit region under meshlint's `p1` rule:
/// it must not reach coordinator-only state (the global event queue's
/// seq counter, the live trace writer) on pain of nondeterminism.
///
/// Worker panics propagate to the caller.
pub fn commit_bands<W, F>(workers: &mut [W], f: F)
where
    W: Send,
    F: Fn(&mut W) + Sync,
{
    let Some((first, rest)) = workers.split_first_mut() else {
        return;
    };
    if rest.is_empty() {
        f(first);
        return;
    }
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for w in rest {
            let fr = &f;
            handles.push(scope.spawn(move || fr(w)));
        }
        f(first);
        for h in handles {
            if let Err(p) = h.join() {
                std::panic::resume_unwind(p);
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_item_order_for_every_thread_count() {
        let items: Vec<u64> = (0..97).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        for threads in [1, 2, 3, 4, 8, 97, 200] {
            assert_eq!(
                map_chunks(threads, &items, |_, &x| x * 3 + 1),
                expected,
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn run_chunks_covers_every_item_exactly_once() {
        for threads in [1, 2, 3, 5, 16] {
            let mut items = vec![0u32; 61];
            run_chunks(threads, &mut items, |start, chunk| {
                for (k, v) in chunk.iter_mut().enumerate() {
                    *v += (start + k) as u32 + 1;
                }
            });
            let expected: Vec<u32> = (1..=61).collect();
            assert_eq!(items, expected, "threads = {threads}");
        }
    }

    #[test]
    fn chunk_starts_are_deterministic() {
        let items: Vec<usize> = (0..50).collect();
        let starts = map_chunks(4, &items, |i, &x| {
            assert_eq!(i, x, "index must match item position");
            i
        });
        assert_eq!(starts, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn zip_chunks_pair_items_for_every_thread_count() {
        for threads in [1, 2, 3, 5, 16] {
            let mut a: Vec<u32> = (0..53).collect();
            let mut b: Vec<u32> = (0..53).map(|x| x * 10).collect();
            run_chunks_zip(threads, &mut a, &mut b, |start, ca, cb| {
                for (k, (x, y)) in ca.iter_mut().zip(cb.iter_mut()).enumerate() {
                    assert_eq!(*y, *x * 10, "pairing broke at {}", start + k);
                    *x += *y;
                    *y = (start + k) as u32;
                }
            });
            let expected_a: Vec<u32> = (0..53).map(|x| x + x * 10).collect();
            let expected_b: Vec<u32> = (0..53).collect();
            assert_eq!(a, expected_a, "threads = {threads}");
            assert_eq!(b, expected_b, "threads = {threads}");
        }
    }

    #[test]
    fn commit_bands_runs_each_worker_once() {
        for n in [0usize, 1, 2, 5] {
            let mut workers: Vec<u32> = vec![0; n];
            commit_bands(&mut workers, |w| *w += 1);
            assert!(workers.iter().all(|&w| w == 1), "n = {n}");
        }
    }

    #[test]
    fn empty_and_tiny_inputs_do_not_spawn_trouble() {
        let empty: Vec<u8> = Vec::new();
        assert!(map_chunks(8, &empty, |_, &x| x).is_empty());
        let one = [7u8];
        assert_eq!(map_chunks(8, &one, |_, &x| x + 1), vec![8]);
        let mut none: [u8; 0] = [];
        run_chunks(8, &mut none, |_, _| panic!("no chunk to run"));
    }
}
