//! Deterministic fork-join parallelism for the simulator's worker
//! regions — `std::thread::scope` only, no dependencies, no unsafe.
//!
//! The parallel engine follows one rule: **workers evaluate, the
//! coordinator commits**. Events are still dispatched one at a time in
//! the global `(time, seq)` order — that is what keeps every thread
//! count byte-identical — but the *pure* computations between events
//! (mobility stepping, link-row construction) fan out across threads.
//! Purity makes thread count invisible: each item's result is a function
//! of the item alone, and results are merged back **in item order**,
//! never in thread completion order.
//!
//! Chunking is deterministic too: `items` is split into `threads`
//! contiguous chunks of near-equal length, chunk 0 runs on the calling
//! thread (no spawn when `threads == 1` — the sequential path allocates
//! nothing and touches no thread machinery), and each spawned worker
//! owns exactly one chunk. Scheduling jitter can change *when* a chunk
//! finishes but never *what* it computes or where its results land
//! (`tests/par_model.rs` scripts uneven chunk durations to prove it).

/// Runs `f` over contiguous chunks of `items`, in parallel on up to
/// `threads` threads. `f` receives the chunk's starting index in
/// `items` and the chunk itself; chunk boundaries and contents are a
/// pure function of `(items.len(), threads)`.
pub fn run_chunks<T, F>(threads: usize, items: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let n = items.len();
    if n == 0 {
        return;
    }
    if threads <= 1 || n == 1 {
        f(0, items);
        return;
    }
    let threads = threads.min(n);
    let chunk = n.div_ceil(threads);
    std::thread::scope(|scope| {
        let mut rest = items;
        let mut start = 0usize;
        let mut first: Option<(usize, &mut [T])> = None;
        while !rest.is_empty() {
            let take = chunk.min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            if first.is_none() {
                // Chunk 0 runs on the calling thread after the others
                // are spawned, saving one spawn per region.
                first = Some((start, head));
            } else {
                let fr = &f;
                scope.spawn(move || fr(start, head));
            }
            start += take;
            rest = tail;
        }
        if let Some((s, head)) = first {
            f(s, head);
        }
    });
}

/// Maps `f` over `items` in parallel on up to `threads` threads,
/// returning the results **in item order** regardless of which thread
/// finished first. `f` receives `(index, &item)`.
pub fn map_chunks<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    if threads <= 1 || n <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let threads = threads.min(n);
    let chunk = n.div_ceil(threads);
    let mut parts: Vec<Vec<R>> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        let mut chunks = items.chunks(chunk).enumerate();
        let first = chunks.next();
        for (ci, slice) in chunks {
            let fr = &f;
            handles.push(scope.spawn(move || {
                let base = ci * chunk;
                slice
                    .iter()
                    .enumerate()
                    .map(|(k, t)| fr(base + k, t))
                    .collect::<Vec<R>>()
            }));
        }
        let head: Vec<R> = first
            .map(|(_, slice)| {
                slice
                    .iter()
                    .enumerate()
                    .map(|(k, t)| f(k, t))
                    .collect::<Vec<R>>()
            })
            .into_iter()
            .flatten()
            .collect();
        parts.push(head);
        for h in handles {
            // A worker panic is a test/bug condition, not a recoverable
            // simulation state: propagate it.
            match h.join() {
                Ok(v) => parts.push(v),
                Err(p) => std::panic::resume_unwind(p),
            }
        }
    });
    // Spawn order == chunk order, so concatenation restores item order.
    parts.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_item_order_for_every_thread_count() {
        let items: Vec<u64> = (0..97).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        for threads in [1, 2, 3, 4, 8, 97, 200] {
            assert_eq!(
                map_chunks(threads, &items, |_, &x| x * 3 + 1),
                expected,
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn run_chunks_covers_every_item_exactly_once() {
        for threads in [1, 2, 3, 5, 16] {
            let mut items = vec![0u32; 61];
            run_chunks(threads, &mut items, |start, chunk| {
                for (k, v) in chunk.iter_mut().enumerate() {
                    *v += (start + k) as u32 + 1;
                }
            });
            let expected: Vec<u32> = (1..=61).collect();
            assert_eq!(items, expected, "threads = {threads}");
        }
    }

    #[test]
    fn chunk_starts_are_deterministic() {
        let items: Vec<usize> = (0..50).collect();
        let starts = map_chunks(4, &items, |i, &x| {
            assert_eq!(i, x, "index must match item position");
            i
        });
        assert_eq!(starts, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_tiny_inputs_do_not_spawn_trouble() {
        let empty: Vec<u8> = Vec::new();
        assert!(map_chunks(8, &empty, |_, &x| x).is_empty());
        let one = [7u8];
        assert_eq!(map_chunks(8, &one, |_, &x| x + 1), vec![8]);
        let mut none: [u8; 0] = [];
        run_chunks(8, &mut none, |_, _| panic!("no chunk to run"));
    }
}
