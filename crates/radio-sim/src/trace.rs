//! Bounded structured event trace.
//!
//! The trace records what happened on the medium in order — useful for
//! debugging protocol behaviour and for asserting determinism (two runs
//! with the same seed must produce identical traces). It is bounded so
//! long experiments cannot exhaust memory; when full, the oldest entries
//! are dropped and a counter records the overflow.

use std::collections::VecDeque;

use crate::event::FrameId;
use crate::firmware::NodeId;
use crate::medium::LossReason;
use crate::time::SimTime;

/// One traced occurrence.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A node began transmitting a frame of the given length.
    TxStart {
        /// Transmitting node.
        node: NodeId,
        /// Frame identifier.
        frame: FrameId,
        /// Frame length in bytes.
        len: usize,
    },
    /// A transmission completed.
    TxEnd {
        /// Transmitting node.
        node: NodeId,
        /// Frame identifier.
        frame: FrameId,
    },
    /// A frame was delivered to a receiver.
    Delivered {
        /// Receiving node.
        node: NodeId,
        /// Frame identifier.
        frame: FrameId,
    },
    /// A reception attempt failed.
    Lost {
        /// Receiving node.
        node: NodeId,
        /// Frame identifier.
        frame: FrameId,
        /// Why it failed.
        reason: LossReason,
    },
    /// A node was killed (fault injection).
    Killed {
        /// The node.
        node: NodeId,
    },
    /// A node was revived.
    Revived {
        /// The node.
        node: NodeId,
    },
}

/// A bounded in-order log of [`TraceEvent`]s with timestamps.
#[derive(Clone, Debug)]
pub struct Trace {
    entries: VecDeque<(SimTime, TraceEvent)>,
    capacity: usize,
    dropped: u64,
    enabled: bool,
}

impl Trace {
    /// Creates a trace holding at most `capacity` entries.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Trace {
            entries: VecDeque::new(),
            capacity,
            dropped: 0,
            enabled: capacity > 0,
        }
    }

    /// A disabled trace that records nothing.
    #[must_use]
    pub fn disabled() -> Self {
        Trace::new(0)
    }

    /// Appends an event (dropping the oldest when at capacity).
    pub fn push(&mut self, at: SimTime, event: TraceEvent) {
        if !self.enabled {
            return;
        }
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
            self.dropped += 1;
        }
        self.entries.push_back((at, event));
    }

    /// The retained entries, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &(SimTime, TraceEvent)> {
        self.entries.iter()
    }

    /// Number of retained entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing is retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// How many entries were evicted due to the capacity bound.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order() {
        let mut t = Trace::new(10);
        t.push(
            SimTime::from_millis(1),
            TraceEvent::Killed { node: NodeId(0) },
        );
        t.push(
            SimTime::from_millis(2),
            TraceEvent::Revived { node: NodeId(0) },
        );
        let v: Vec<_> = t.entries().cloned().collect();
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].0, SimTime::from_millis(1));
        assert!(matches!(v[1].1, TraceEvent::Revived { .. }));
    }

    #[test]
    fn bounded_eviction() {
        let mut t = Trace::new(3);
        for i in 0..5 {
            t.push(
                SimTime::from_millis(i),
                TraceEvent::Killed {
                    node: NodeId(i as usize),
                },
            );
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
        assert_eq!(t.entries().next().unwrap().0, SimTime::from_millis(2));
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::disabled();
        t.push(SimTime::ZERO, TraceEvent::Killed { node: NodeId(0) });
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 0);
    }
}
