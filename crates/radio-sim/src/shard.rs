//! Spatial partitioning for the sharded event engine.
//!
//! The sharded engine splits the plane into contiguous *bands* along the
//! x-axis (a degenerate grid of range-sized cells: one column per shard)
//! and gives each band its own calendar queue. The partition is sound
//! because audibility is *distance-bounded*: with the shadowing offset
//! truncated at ±[`Shadowing::MAX_OFFSET_SIGMA`]·σ, there is a finite
//! [`max_audible_range`] beyond which no link can ever exceed the
//! modulation's sensitivity. A transmission from `x` can therefore only
//! be heard (or interfere audibly, or trip a CAD scan) inside
//! `[x − r_max, x + r_max]`, so it only needs to be visible to the bands
//! overlapping that interval ([`Partitioner::reach`]); everything else
//! is provably shard-local.
//!
//! The matching *temporal* bound is [`min_lookahead`]: every frame is on
//! the air for at least one preamble, so an event processed at `t` can
//! only create events in *other* shards (an `RxEnd` at a receiver homed
//! elsewhere) at `t + preamble` or later. The engine's merge loop uses
//! this window to drain one shard's queue in batches without consulting
//! the others (see `sim.rs`).
//!
//! Band edges are chosen once — quantiles of the node x-coordinates at
//! `start()` — and never move, so `band_of` is a pure function for the
//! whole run and both engines agree on it forever.

use std::time::Duration;

use lora_phy::link::sensitivity;
use lora_phy::propagation::Shadowing;

use crate::medium::RfConfig;

/// The farthest distance (metres) at which any link under `config` can
/// be audible, shadowing included.
///
/// A link is audible when `tx_power + 2·antenna_gain − loss(d) + shadow`
/// reaches the SF/BW sensitivity; the best case is the maximum shadowing
/// offset `+MAX_OFFSET_SIGMA·σ`. Path loss is monotone in distance, so
/// the bound is found by bisection. Returns `0.0` when even adjacent
/// nodes can never hear each other (a degenerate but safe partition:
/// every audibility claim is then vacuous).
#[must_use]
pub fn max_audible_range(config: &RfConfig) -> f64 {
    let sens = sensitivity(
        config.modulation.spreading_factor,
        config.modulation.bandwidth,
    );
    // Maximum tolerable path loss for an audible link.
    let margin = config.tx_power.value() + 2.0 * config.antenna_gain_db - sens.value()
        + Shadowing::MAX_OFFSET_SIGMA * config.shadowing.sigma_db;
    if config.path_loss.loss_db(0.0) > margin {
        return 0.0;
    }
    // Exponential search for an inaudible distance, then bisect. The cap
    // only guards pathological configs (margin so large the model never
    // crosses it within 10^12 m); real LoRa budgets converge in ~40 steps.
    let mut hi = 1.0;
    while config.path_loss.loss_db(hi) <= margin {
        hi *= 2.0;
        if hi >= 1.0e12 {
            return hi;
        }
    }
    let mut lo = 0.0;
    for _ in 0..64 {
        let mid = 0.5 * (lo + hi);
        if config.path_loss.loss_db(mid) <= margin {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    // `hi` is inaudible, so every audible distance is strictly below it.
    hi
}

/// The conservative lookahead window of the sharded engine: the shortest
/// possible airtime under `config`, which is one preamble
/// (`time_on_air(n) = preamble_time() + payload time` for every `n`).
#[must_use]
pub fn min_lookahead(config: &RfConfig) -> Duration {
    config.modulation.preamble_time()
}

/// Fixed partition of the x-axis into contiguous bands.
///
/// `shards` bands are separated by `shards − 1` edges placed at
/// quantiles of the initial node x-coordinates — snapped to the widest
/// nearby inter-node gap — so load balances even for clustered
/// topologies and distant clusters land in distinct bands. Edges never
/// move after construction.
#[derive(Clone, Debug)]
pub struct Partitioner {
    /// Ascending interior band boundaries (`bands() == edges.len() + 1`).
    edges: Vec<f64>,
    /// Maximum audible distance (metres) used for reach computations.
    r_max: f64,
}

/// Neighbourhood searched by [`gap_snapped_edges`], in inter-node gaps:
/// a fraction of the per-band node count, floored so tiny topologies
/// can still reach a cluster gap a couple of nodes away.
fn gap_window(len: usize, shards: usize) -> usize {
    (len / (4 * shards)).max(3)
}

/// Snaps tentative cut positions to the widest inter-node gap in a
/// small neighbourhood and places each edge at the gap's midpoint.
///
/// `cuts` are ascending indices into `sorted`, each meaning "the first
/// node of the next band". Quantile placement puts edges *at node
/// coordinates*, which can weld two distant clusters into one band
/// whenever a cut lands a node or two past the gap between them; such a
/// straddling band serializes both clusters under the parallel batch
/// planner (its metre span covers everything in between) and bloats
/// every reach computation across the gap. Searching the `window`
/// nearest gaps keeps the split within a few nodes of the quantile —
/// preserving balance — while strongly preferring natural cluster
/// boundaries. On uniform topologies every nearby gap ties and the
/// tie-break (closest to the quantile) reproduces the plain quantile
/// split, so band membership is unchanged where it already was good.
fn gap_snapped_edges(sorted: &[f64], cuts: &[usize], window: usize) -> Vec<f64> {
    let mut edges = Vec::with_capacity(cuts.len());
    if sorted.len() < 2 {
        return edges;
    }
    // Gaps below this index are already claimed by an earlier cut;
    // keeping cuts on distinct gaps keeps the edges strictly increasing
    // and every band non-empty.
    let mut min_gap = 0usize;
    for &c in cuts {
        let ideal = c.saturating_sub(1);
        let lo = ideal.saturating_sub(window).max(min_gap);
        let hi = (ideal + window).min(sorted.len() - 2);
        // (gap, dist, j, midpoint) of the best gap seen so far.
        let mut best: Option<(f64, usize, usize, f64)> = None;
        let candidates = sorted.get(lo..=hi.saturating_add(1)).unwrap_or(&[]);
        for (off, pair) in candidates.windows(2).enumerate() {
            let &[x0, x1] = pair else { continue };
            let j = lo + off;
            let gap = x1 - x0;
            let dist = ideal.abs_diff(j);
            if best.is_none_or(|(bg, bd, _, _)| gap > bg || (gap == bg && dist < bd)) {
                best = Some((gap, dist, j, 0.5 * (x0 + x1)));
            }
        }
        if let Some((gap, _, j, mid)) = best {
            // Every candidate gap is zero-width (duplicate coordinates):
            // dropping the cut merges the would-be empty band, exactly
            // like the old duplicate-edge dedup.
            if gap > 0.0 {
                edges.push(mid);
                min_gap = j + 1;
            }
        }
    }
    edges
}

impl Partitioner {
    /// Builds a partition of `shards` bands from the given node
    /// x-coordinates. With no nodes (or `shards <= 1`) the partition
    /// degenerates to a single band, which is always sound. Cuts start
    /// at count quantiles and snap to the widest nearby inter-node gap
    /// (see [`gap_snapped_edges`]).
    #[must_use]
    pub fn new(xs: &[f64], shards: usize, r_max: f64) -> Self {
        let mut edges = Vec::new();
        if shards > 1 && !xs.is_empty() {
            let mut sorted = xs.to_vec();
            sorted.sort_by(f64::total_cmp);
            let cuts: Vec<usize> = (1..shards).map(|k| k * sorted.len() / shards).collect();
            edges = gap_snapped_edges(&sorted, &cuts, gap_window(sorted.len(), shards));
        }
        Partitioner { edges, r_max }
    }

    /// Builds an **occupancy-weighted** partition: edges split the
    /// x-axis into `shards` bands of near-equal *summed weight* instead
    /// of equal node count. With the audible-degree weights from
    /// [`crate::grid::Grid`], a band's weight tracks the event-dispatch
    /// work it will actually see (fan-out, interferer seeding and row
    /// fills all scale with local density), so clustered topologies no
    /// longer starve some workers while drowning others — the cause of
    /// the 16384-node shards=8 regression the count-quantile split had.
    ///
    /// Edge placement only changes *which queue hosts whose events*,
    /// never the merged `(time, seq)` order, so any weighting is
    /// behaviourally transparent (tests/shard_diff.rs runs on this).
    /// `weights` is indexed like `xs`; missing or zero weights count
    /// as 1 so every node retains nonzero mass.
    #[must_use]
    pub fn weighted(xs: &[f64], weights: &[usize], shards: usize, r_max: f64) -> Self {
        let mut edges = Vec::new();
        if shards > 1 && !xs.is_empty() {
            let mut order: Vec<usize> = (0..xs.len()).collect();
            order.sort_by(|&a, &b| {
                let (xa, xb) = (xs.get(a), xs.get(b));
                match (xa, xb) {
                    (Some(xa), Some(xb)) => xa.total_cmp(xb),
                    _ => a.cmp(&b),
                }
            });
            let weight_of =
                |i: usize| -> u64 { weights.get(i).copied().max(Some(1)).map_or(1, |w| w as u64) };
            let total: u64 = order.iter().map(|&i| weight_of(i)).sum();
            let sorted: Vec<f64> = order.iter().filter_map(|&i| xs.get(i).copied()).collect();
            let mut cuts = Vec::new();
            let mut cumulative = 0u64;
            let mut next_cut = 1u64;
            for (si, &i) in order.iter().enumerate() {
                if cuts.len() + 1 >= shards {
                    break;
                }
                cumulative += weight_of(i);
                // Cut each time the running weight crosses the next
                // k·total/shards threshold; a single heavy node can
                // cross several, collapsing the bands between them.
                while cuts.len() + 1 < shards && cumulative * shards as u64 >= next_cut * total {
                    cuts.push(si);
                    next_cut += 1;
                }
            }
            // Collapsed cuts would create empty bands; dropping the
            // duplicates merges them instead.
            cuts.dedup();
            edges = gap_snapped_edges(&sorted, &cuts, gap_window(sorted.len(), shards));
        }
        Partitioner { edges, r_max }
    }

    /// Number of bands.
    #[must_use]
    pub fn bands(&self) -> usize {
        self.edges.len() + 1
    }

    /// The audible-range bound the partition was built with.
    #[must_use]
    pub fn r_max(&self) -> f64 {
        self.r_max
    }

    /// The band containing coordinate `x`. Band `b` covers
    /// `[edges[b-1], edges[b])` with unbounded first and last bands.
    #[must_use]
    pub fn band_of(&self, x: f64) -> usize {
        self.edges.partition_point(|e| *e <= x)
    }

    /// The inclusive band range a transmission originating at `x` can
    /// reach: every band overlapping `[x − r_max, x + r_max]`.
    #[must_use]
    pub fn reach(&self, x: f64) -> (usize, usize) {
        self.reach_interval(x, x)
    }

    /// The inclusive band range within `r_max` of the x-interval
    /// `[lo, hi]` — used to scope link-cache invalidation to the bands a
    /// node's move could affect.
    #[must_use]
    pub fn reach_interval(&self, lo: f64, hi: f64) -> (usize, usize) {
        (self.band_of(lo - self.r_max), self.band_of(hi + self.r_max))
    }

    /// Whether a node at `x` is *interior* to its band: no transmission
    /// from `x` can be heard outside the band, and nothing audible at
    /// `x` can originate outside it.
    #[must_use]
    pub fn is_interior(&self, x: f64) -> bool {
        let (lo, hi) = self.reach(x);
        lo == hi
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lora_phy::propagation::PathLossModel;

    #[test]
    fn range_bound_is_conservative_and_finite() {
        let config = RfConfig::default();
        let r = max_audible_range(&config);
        assert!(r.is_finite() && r > 0.0, "r_max = {r}");
        // Just inside must be at most the margin; just outside must
        // exceed it (monotone loss ⇒ the bisection bracketed the edge).
        let sens = sensitivity(
            config.modulation.spreading_factor,
            config.modulation.bandwidth,
        );
        let margin = config.tx_power.value() + 2.0 * config.antenna_gain_db - sens.value();
        assert!(config.path_loss.loss_db(r * 0.999) <= margin + 1e-6);
        assert!(config.path_loss.loss_db(r * 1.001) > margin - 1e-6);
    }

    #[test]
    fn shadowing_widens_the_range_bound() {
        let base = RfConfig::default();
        let shadowed = RfConfig {
            shadowing: Shadowing::new(4.0, 7),
            ..RfConfig::default()
        };
        assert!(max_audible_range(&shadowed) > max_audible_range(&base));
    }

    #[test]
    fn hopeless_link_budget_gives_zero_range() {
        // Reference loss far beyond any link budget.
        let config = RfConfig {
            path_loss: PathLossModel::LogDistance {
                reference_loss_db: 500.0,
                reference_distance_m: 1.0,
                exponent: 2.0,
            },
            ..RfConfig::default()
        };
        assert_eq!(max_audible_range(&config), 0.0);
    }

    #[test]
    fn lookahead_is_the_preamble_and_bounds_every_airtime() {
        let config = RfConfig::default();
        let la = min_lookahead(&config);
        assert!(la > Duration::ZERO);
        for len in [0, 1, 16, 255] {
            assert!(config.modulation.time_on_air(len) >= la);
        }
    }

    #[test]
    fn quantile_edges_balance_a_uniform_line() {
        let xs: Vec<f64> = (0..100).map(f64::from).collect();
        let p = Partitioner::new(&xs, 4, 5.0);
        assert_eq!(p.bands(), 4);
        let mut counts = [0usize; 4];
        for &x in &xs {
            counts[p.band_of(x)] += 1;
        }
        assert_eq!(counts, [25, 25, 25, 25]);
    }

    #[test]
    fn weighted_edges_balance_summed_weight_not_node_count() {
        // A dense cluster of 80 heavy nodes and a sparse tail of 20
        // light ones. Count quantiles put 3 of 4 edges inside the
        // cluster *by count*; weight quantiles must split so each band
        // carries ~¼ of the total weight.
        let mut xs: Vec<f64> = (0..80).map(|i| f64::from(i) * 1.0).collect();
        xs.extend((0..20).map(|i| 1000.0 + f64::from(i) * 50.0));
        let mut weights = vec![80usize; 80];
        weights.extend(vec![1usize; 20]);
        let p = Partitioner::weighted(&xs, &weights, 4, 10.0);
        assert_eq!(p.bands(), 4);
        let total: usize = weights.iter().sum();
        let mut band_weight = vec![0usize; p.bands()];
        for (x, w) in xs.iter().zip(&weights) {
            band_weight[p.band_of(*x)] += *w;
        }
        for (b, w) in band_weight.iter().enumerate() {
            assert!(
                *w * 4 <= total * 2,
                "band {b} carries {w} of {total} — not balanced: {band_weight:?}"
            );
        }
    }

    #[test]
    fn uniform_weights_degenerate_to_near_count_quantiles() {
        let xs: Vec<f64> = (0..100).map(f64::from).collect();
        let p = Partitioner::weighted(&xs, &vec![3; 100], 4, 5.0);
        assert_eq!(p.bands(), 4);
        let mut counts = [0usize; 4];
        for &x in &xs {
            counts[p.band_of(x)] += 1;
        }
        for c in counts {
            assert!((20..=30).contains(&c), "counts {counts:?}");
        }
    }

    #[test]
    fn weighted_handles_missing_weights_and_heavy_singletons() {
        // Short weight vector: missing entries count as 1.
        let xs: Vec<f64> = (0..10).map(f64::from).collect();
        let p = Partitioner::weighted(&xs, &[5, 5], 2, 1.0);
        assert_eq!(p.bands(), 2);
        // One node holding nearly all weight: its crossing may collapse
        // several cuts; the partition must stay valid (≤ shards bands,
        // strictly increasing edges).
        let p = Partitioner::weighted(&xs, &[1, 1, 1, 1000, 1, 1, 1, 1, 1, 1], 8, 1.0);
        assert!(p.bands() <= 8 && p.bands() >= 1);
        let mut last = 0;
        for &x in &xs {
            let b = p.band_of(x);
            assert!(b >= last && b < p.bands());
            last = b;
        }
    }

    #[test]
    fn band_of_is_monotone_and_total() {
        let p = Partitioner::new(&[0.0, 10.0, 20.0, 30.0], 4, 1.0);
        let mut last = 0;
        for x in [-1.0e9, -5.0, 3.0, 11.0, 29.0, 1.0e9] {
            let b = p.band_of(x);
            assert!(b >= last);
            assert!(b < p.bands());
            last = b;
        }
    }

    #[test]
    fn reach_covers_every_band_within_r_max() {
        let xs: Vec<f64> = (0..64).map(|i| f64::from(i) * 10.0).collect();
        let p = Partitioner::new(&xs, 8, 35.0);
        for &x in &xs {
            let (lo, hi) = p.reach(x);
            assert!(lo <= p.band_of(x) && p.band_of(x) <= hi);
            for &y in &xs {
                if (x - y).abs() <= 35.0 {
                    let b = p.band_of(y);
                    assert!(
                        (lo..=hi).contains(&b),
                        "{y} within reach of {x} but band {b} outside {lo}..={hi}"
                    );
                }
            }
        }
    }

    #[test]
    fn interior_nodes_cannot_reach_other_bands() {
        let xs: Vec<f64> = (0..64).map(|i| f64::from(i) * 10.0).collect();
        let p = Partitioner::new(&xs, 4, 15.0);
        let interior: Vec<f64> = xs.iter().copied().filter(|&x| p.is_interior(x)).collect();
        assert!(!interior.is_empty(), "some nodes must be interior");
        for &x in &interior {
            assert_eq!(p.band_of(x - 15.0), p.band_of(x + 15.0));
        }
    }

    #[test]
    fn degenerate_partitions_are_single_band() {
        assert_eq!(Partitioner::new(&[], 8, 10.0).bands(), 1);
        assert_eq!(Partitioner::new(&[1.0, 2.0], 1, 10.0).bands(), 1);
    }

    #[test]
    fn bands_narrower_than_r_max_reach_multiple_neighbors() {
        // Dense cluster: every band is narrower than r_max, so reach must
        // span several bands, not just adjacent ones.
        let xs: Vec<f64> = (0..80).map(|i| f64::from(i) * 1.0).collect();
        let p = Partitioner::new(&xs, 8, 50.0);
        let (lo, hi) = p.reach(40.0);
        assert!(hi - lo >= 4, "reach {lo}..={hi} too narrow");
    }
}
