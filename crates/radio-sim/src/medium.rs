//! The shared radio channel.
//!
//! The [`Medium`] owns the set of in-flight transmissions and answers the
//! RF questions the simulator asks: *how strongly does node B hear node
//! A's frame?* and *does this reception survive its interference?* All
//! LoRaMesher traffic shares a single channel and modulation (the library
//! configures one radio profile for the whole mesh), so frames interfere
//! whenever they overlap in time.
//!
//! ## Reception model
//!
//! A frame is delivered to a receiver iff all of the following hold:
//!
//! 1. **Audibility** — the received power exceeds the SF/BW sensitivity,
//!    and the receiver was listening when the frame started (LoRa
//!    receivers lock onto the first audible preamble).
//! 2. **SNR** — the signal-to-noise ratio exceeds the spreading factor's
//!    demodulation floor; with the *grey zone* enabled, success near the
//!    floor is probabilistic following the measured waterfall curve.
//! 3. **SIR / capture** — the signal is at least
//!    [`lora_phy::link::CAPTURE_THRESHOLD_DB`] stronger than the worst
//!    instantaneous sum of overlapping same-channel transmissions.
//!    A *later* frame that is 6 dB stronger steals the receiver lock if it
//!    arrives while the first frame is still in its preamble.

use lora_phy::link::{
    noise_floor, packet_success_probability, sensitivity, snr_demodulation_floor, LinkBudget,
    SignalQuality, CAPTURE_THRESHOLD_DB,
};
use lora_phy::modulation::LoRaModulation;
use lora_phy::power::Dbm;
use lora_phy::propagation::{PathLossModel, Position, Shadowing};

use std::sync::Arc;

use crate::event::FrameId;
use crate::firmware::NodeId;
use crate::radio::Reception;
use crate::rng::SimRng;
use crate::time::SimTime;

/// RF parameters shared by the whole simulation.
#[derive(Clone, Debug)]
pub struct RfConfig {
    /// The single modulation used by every node (as in LoRaMesher).
    pub modulation: LoRaModulation,
    /// Path-loss model between node positions.
    pub path_loss: PathLossModel,
    /// Per-link log-normal shadowing (deterministic).
    pub shadowing: Shadowing,
    /// Transmit power used by every node.
    pub tx_power: Dbm,
    /// Antenna gain applied at both ends, in dBi.
    pub antenna_gain_db: f64,
    /// Minimum advantage for the capture effect, in dB.
    pub capture_threshold_db: f64,
    /// When true, reception near the SNR floor is probabilistic
    /// (logistic waterfall); when false it is a hard threshold.
    pub grey_zone: bool,
}

impl RfConfig {
    /// The capture threshold as a linear power ratio (`10^(dB/10)`).
    ///
    /// Hot paths compare linear powers against this; computing it here
    /// (and caching it in [`Medium`]) keeps the `powf` out of the
    /// per-interferer loop.
    #[must_use]
    pub fn capture_ratio_linear(&self) -> f64 {
        10f64.powf(self.capture_threshold_db / 10.0)
    }
}

impl Default for RfConfig {
    fn default() -> Self {
        RfConfig {
            modulation: LoRaModulation::default(),
            path_loss: PathLossModel::urban_868(),
            shadowing: Shadowing::none(),
            tx_power: Dbm::new(14.0),
            antenna_gain_db: 0.0,
            capture_threshold_db: CAPTURE_THRESHOLD_DB,
            grey_zone: false,
        }
    }
}

/// One transmission currently on the air.
#[derive(Clone, Debug)]
pub struct ActiveTx {
    /// The frame's identifier.
    pub frame: FrameId,
    /// The transmitting node.
    pub sender: NodeId,
    /// Position of the sender at transmission start.
    pub origin: Position,
    /// When the transmission began.
    pub start: SimTime,
    /// When it will end.
    pub end: SimTime,
    /// The frame contents, shared zero-copy with every locked receiver.
    pub payload: Arc<[u8]>,
}

/// What [`Medium::begin_tx`] hands back: the frame id plus the airtime
/// and length the medium already computed, so callers don't re-derive
/// (or re-look-up) either.
#[derive(Clone, Copy, Debug)]
pub struct TxHandle {
    /// The new frame's identifier.
    pub frame: FrameId,
    /// Time on air of the frame under the shared modulation.
    pub airtime: std::time::Duration,
    /// Payload length in bytes.
    pub len: usize,
}

/// Why a reception attempt failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LossReason {
    /// The frame was too weak to demodulate (below the SNR floor, or the
    /// grey-zone coin came up tails).
    BelowFloor,
    /// Overlapping transmissions destroyed the frame.
    Collision,
    /// The sender stopped mid-frame (fault injection) or the lock was
    /// stolen by a stronger frame.
    Truncated,
    /// Dropped by an injected per-link loss probability
    /// ([`crate::Simulator::set_link_loss`]).
    Injected,
}

/// The outcome of a completed reception attempt.
#[derive(Clone, Debug)]
pub enum RxOutcome {
    /// The frame was decoded; deliver it to the firmware.
    Delivered(SignalQuality),
    /// The frame was lost.
    Lost(LossReason),
}

/// The shared channel: active transmissions plus the RF decision logic.
#[derive(Debug)]
pub struct Medium {
    config: RfConfig,
    /// In-flight transmissions, ascending by [`FrameId`]. Frame ids are
    /// assigned monotonically, so `begin_tx` appends in order and the
    /// iteration order matches the old `BTreeMap` exactly — without the
    /// per-transmission node allocations.
    active: Vec<ActiveTx>,
    next_frame: u64,
    /// [`RfConfig::capture_ratio_linear`], hoisted out of the hot loops.
    capture_ratio_linear: f64,
}

impl Medium {
    /// Creates an empty medium with the given RF configuration.
    #[must_use]
    pub fn new(config: RfConfig) -> Self {
        Medium {
            capture_ratio_linear: config.capture_ratio_linear(),
            config,
            active: Vec::new(),
            next_frame: 0,
        }
    }

    /// The RF configuration.
    #[must_use]
    pub fn config(&self) -> &RfConfig {
        &self.config
    }

    /// The precomputed linear capture ratio
    /// ([`RfConfig::capture_ratio_linear`]).
    #[inline]
    #[must_use]
    pub fn capture_ratio_linear(&self) -> f64 {
        self.capture_ratio_linear
    }

    /// The airtime of a frame of `len` bytes under the shared modulation.
    #[must_use]
    pub fn airtime(&self, len: usize) -> std::time::Duration {
        self.config.modulation.time_on_air(len)
    }

    /// Received power at `rx_pos` for a transmitter at `tx_pos`, with the
    /// deterministic per-link shadowing for the node pair `(a, b)`.
    #[must_use]
    pub fn received_power(
        &self,
        tx_pos: &Position,
        rx_pos: &Position,
        a: NodeId,
        b: NodeId,
    ) -> Dbm {
        let loss = self.config.path_loss.loss_db(tx_pos.distance(rx_pos))
            // meshlint::allow(c1): shadowing hash-mix input — node-id wraparound is deterministic and harmless.
            + self.config.shadowing.offset_db(a.0 as u16, b.0 as u16);
        LinkBudget {
            tx_power: self.config.tx_power,
            tx_antenna_gain_db: self.config.antenna_gain_db,
            rx_antenna_gain_db: self.config.antenna_gain_db,
            path_loss_db: loss,
        }
        .received_power()
    }

    /// Whether a signal of the given power is audible (above sensitivity)
    /// under the shared modulation.
    #[must_use]
    pub fn audible(&self, power: Dbm) -> bool {
        power
            >= sensitivity(
                self.config.modulation.spreading_factor,
                self.config.modulation.bandwidth,
            )
    }

    /// The signal quality a receiver would measure for `power`.
    #[must_use]
    pub fn quality(&self, power: Dbm) -> SignalQuality {
        SignalQuality {
            rssi: power,
            snr: power.value() - noise_floor(self.config.modulation.bandwidth).value(),
        }
    }

    /// Registers a new transmission, returning its frame id together with
    /// the airtime and payload length (so the caller needs no re-lookup).
    pub fn begin_tx(
        &mut self,
        sender: NodeId,
        origin: Position,
        start: SimTime,
        payload: impl Into<Arc<[u8]>>,
    ) -> TxHandle {
        let payload: Arc<[u8]> = payload.into();
        let len = payload.len();
        let airtime = self.airtime(len);
        let frame = FrameId(self.next_frame);
        self.next_frame += 1;
        self.active.push(ActiveTx {
            frame,
            sender,
            origin,
            start,
            end: start + airtime,
            payload,
        });
        TxHandle {
            frame,
            airtime,
            len,
        }
    }

    /// Removes a completed (or aborted) transmission, returning it.
    /// Order-preserving: the remaining transmissions stay ascending.
    pub fn end_tx(&mut self, frame: FrameId) -> Option<ActiveTx> {
        self.active
            .binary_search_by_key(&frame, |tx| tx.frame)
            .ok()
            .map(|pos| self.active.remove(pos))
    }

    /// Looks up an in-flight transmission.
    #[must_use]
    pub fn get(&self, frame: FrameId) -> Option<&ActiveTx> {
        self.active
            .binary_search_by_key(&frame, |tx| tx.frame)
            .ok()
            .and_then(|pos| self.active.get(pos))
    }

    /// Iterates over the in-flight transmissions in ascending frame order.
    pub fn active(&self) -> impl Iterator<Item = &ActiveTx> {
        self.active.iter()
    }

    /// Whether any in-flight transmission (other than `except`) is audible
    /// at `pos` — the CAD predicate.
    #[must_use]
    pub fn channel_busy_at(
        &self,
        pos: &Position,
        listener: NodeId,
        except: Option<NodeId>,
    ) -> bool {
        self.active.iter().any(|tx| {
            Some(tx.sender) != except
                && tx.sender != listener
                && self.audible(self.received_power(&tx.origin, pos, tx.sender, listener))
        })
    }

    /// Whether the preamble of `tx` is still being transmitted at `now`
    /// (the window during which a stronger frame may steal the lock).
    #[must_use]
    pub fn in_preamble(&self, tx: &ActiveTx, now: SimTime) -> bool {
        now.since(tx.start) < self.config.modulation.preamble_time()
    }

    /// Decides the fate of a completed reception attempt.
    ///
    /// `rng` supplies the grey-zone coin; it is only consulted when
    /// [`RfConfig::grey_zone`] is enabled.
    #[must_use]
    pub fn judge(&self, reception: &Reception, rng: &mut SimRng) -> RxOutcome {
        if reception.corrupted {
            return RxOutcome::Lost(LossReason::Truncated);
        }
        let sf = self.config.modulation.spreading_factor;
        let snr_margin = reception.quality.snr - snr_demodulation_floor(sf);

        // Interference: signal must beat the worst instantaneous
        // interference by the capture threshold.
        if let Some(sir) = reception.sir_db() {
            if sir < self.config.capture_threshold_db {
                return RxOutcome::Lost(LossReason::Collision);
            }
        }

        let ok = if self.config.grey_zone {
            rng.gen_bool(packet_success_probability(snr_margin))
        } else {
            snr_margin >= 0.0
        };
        if ok {
            RxOutcome::Delivered(reception.quality)
        } else {
            RxOutcome::Lost(LossReason::BelowFloor)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn medium() -> Medium {
        Medium::new(RfConfig::default())
    }

    fn pos(x: f64) -> Position {
        Position::new(x, 0.0)
    }

    #[test]
    fn frame_ids_are_unique_and_increasing() {
        let mut m = medium();
        let a = m.begin_tx(NodeId(0), pos(0.0), SimTime::ZERO, vec![0; 10]);
        let b = m.begin_tx(NodeId(1), pos(1.0), SimTime::ZERO, vec![0; 10]);
        assert!(b.frame > a.frame);
        assert!(m.get(a.frame).is_some());
        assert_eq!(m.active().count(), 2);
        let ended = m.end_tx(a.frame).unwrap();
        assert_eq!(ended.sender, NodeId(0));
        assert!(m.get(a.frame).is_none());
    }

    #[test]
    fn tx_end_time_matches_airtime() {
        let mut m = medium();
        let h = m.begin_tx(NodeId(0), pos(0.0), SimTime::from_secs(1), vec![0; 20]);
        assert_eq!(h.airtime, m.airtime(20));
        assert_eq!(h.len, 20);
        let tx = m.get(h.frame).unwrap();
        assert_eq!(tx.end, SimTime::from_secs(1) + m.airtime(20));
    }

    #[test]
    fn near_node_is_audible_far_is_not() {
        let m = medium();
        let near = m.received_power(&pos(0.0), &pos(100.0), NodeId(0), NodeId(1));
        let far = m.received_power(&pos(0.0), &pos(60_000.0), NodeId(0), NodeId(1));
        assert!(m.audible(near), "rssi at 100 m: {near}");
        assert!(!m.audible(far), "rssi at 60 km: {far}");
    }

    #[test]
    fn received_power_is_symmetric() {
        let m = medium();
        let ab = m.received_power(&pos(0.0), &pos(500.0), NodeId(0), NodeId(1));
        let ba = m.received_power(&pos(500.0), &pos(0.0), NodeId(1), NodeId(0));
        assert_eq!(ab, ba);
    }

    #[test]
    fn channel_busy_sees_only_audible_senders() {
        let mut m = medium();
        let _ = m.begin_tx(NodeId(0), pos(0.0), SimTime::ZERO, vec![0; 10]);
        assert!(m.channel_busy_at(&pos(100.0), NodeId(1), None));
        assert!(!m.channel_busy_at(&pos(80_000.0), NodeId(2), None));
        // The sender itself does not hear its own frame as "busy".
        assert!(!m.channel_busy_at(&pos(0.0), NodeId(0), None));
        // Excluding the sender silences it for others too.
        assert!(!m.channel_busy_at(&pos(100.0), NodeId(1), Some(NodeId(0))));
    }

    #[test]
    fn judge_delivers_clean_strong_frame() {
        let m = medium();
        let q = m.quality(Dbm::new(-80.0));
        let rec = Reception::new(
            FrameId(0),
            crate::firmware::NodeId(0),
            q,
            Dbm::new(-80.0).to_milliwatts().value(),
            vec![],
        );
        match m.judge(&rec, &mut SimRng::new(1)) {
            RxOutcome::Delivered(quality) => assert_eq!(quality, q),
            other => panic!("expected delivery, got {other:?}"),
        }
    }

    #[test]
    fn judge_rejects_below_floor() {
        let m = medium();
        // SF7 floor is -7.5 dB SNR; -130 dBm is ~13 dB below the noise floor.
        let q = m.quality(Dbm::new(-130.0));
        let rec = Reception::new(
            FrameId(0),
            crate::firmware::NodeId(0),
            q,
            Dbm::new(-130.0).to_milliwatts().value(),
            vec![],
        );
        match m.judge(&rec, &mut SimRng::new(1)) {
            RxOutcome::Lost(LossReason::BelowFloor) => {}
            other => panic!("expected BelowFloor, got {other:?}"),
        }
    }

    #[test]
    fn judge_rejects_collision_without_capture_margin() {
        let m = medium();
        let q = m.quality(Dbm::new(-80.0));
        let signal = Dbm::new(-80.0).to_milliwatts().value();
        let mut rec = Reception::new(FrameId(0), crate::firmware::NodeId(0), q, signal, vec![]);
        // Interferer only 3 dB weaker: SIR 3 dB < 6 dB threshold.
        rec.add_interferer(FrameId(1), Dbm::new(-83.0).to_milliwatts().value());
        match m.judge(&rec, &mut SimRng::new(1)) {
            RxOutcome::Lost(LossReason::Collision) => {}
            other => panic!("expected Collision, got {other:?}"),
        }
    }

    #[test]
    fn judge_captures_over_weak_interferer() {
        let m = medium();
        let q = m.quality(Dbm::new(-80.0));
        let signal = Dbm::new(-80.0).to_milliwatts().value();
        let mut rec = Reception::new(FrameId(0), crate::firmware::NodeId(0), q, signal, vec![]);
        rec.add_interferer(FrameId(1), Dbm::new(-90.0).to_milliwatts().value());
        assert!(matches!(
            m.judge(&rec, &mut SimRng::new(1)),
            RxOutcome::Delivered(_)
        ));
    }

    #[test]
    fn judge_rejects_truncated() {
        let m = medium();
        let q = m.quality(Dbm::new(-80.0));
        let mut rec = Reception::new(FrameId(0), crate::firmware::NodeId(0), q, 1.0, vec![]);
        rec.corrupted = true;
        assert!(matches!(
            m.judge(&rec, &mut SimRng::new(1)),
            RxOutcome::Lost(LossReason::Truncated)
        ));
    }

    #[test]
    fn grey_zone_is_probabilistic_near_floor() {
        let m = Medium::new(RfConfig {
            grey_zone: true,
            ..RfConfig::default()
        });
        // Exactly at the floor: 50/50.
        let floor_rssi = Dbm::new(
            noise_floor(m.config().modulation.bandwidth).value()
                + snr_demodulation_floor(m.config().modulation.spreading_factor),
        );
        let q = m.quality(floor_rssi);
        let rec = Reception::new(
            FrameId(0),
            crate::firmware::NodeId(0),
            q,
            floor_rssi.to_milliwatts().value(),
            vec![],
        );
        let mut rng = SimRng::new(42);
        let delivered = (0..2000)
            .filter(|_| matches!(m.judge(&rec, &mut rng), RxOutcome::Delivered(_)))
            .count();
        assert!((800..1200).contains(&delivered), "delivered {delivered}");
    }

    #[test]
    fn capture_ratio_linear_matches_threshold() {
        let m = medium();
        let expected = 10f64.powf(m.config().capture_threshold_db / 10.0);
        assert_eq!(m.capture_ratio_linear(), expected);
        assert_eq!(m.config().capture_ratio_linear(), expected);
    }

    #[test]
    fn preamble_window() {
        let mut m = medium();
        let f = m
            .begin_tx(NodeId(0), pos(0.0), SimTime::ZERO, vec![0; 10])
            .frame;
        let tx = m.get(f).unwrap().clone();
        let preamble = m.config().modulation.preamble_time();
        assert!(m.in_preamble(&tx, SimTime::ZERO + preamble / 2));
        assert!(!m.in_preamble(&tx, SimTime::ZERO + preamble * 2));
    }
}
