//! Uniform spatial grid over node positions — the audibility-candidate
//! index that flattens link-cache row construction from O(n) to
//! O(local density).
//!
//! Audibility is distance-bounded (see [`crate::shard::max_audible_range`]):
//! beyond `r_max` no link can ever reach the modulation's sensitivity,
//! shadowing included. The grid buckets nodes into square cells of side
//! **at least** `r_max`, so every node within `r_max` of a position `p`
//! lies in the 3×3 block of cells around `p`'s cell — any point closer
//! than one cell side can shift the cell index by at most one per axis.
//! [`Grid::candidates_into`] therefore returns a *superset* of the
//! audible set by scanning at most nine cells instead of all n nodes.
//!
//! Two properties keep the grid behaviourally invisible:
//!
//! * **Soundness** — candidates ⊇ every node within `r_max`
//!   (`tests/grid_model.rs` checks this against brute force). A node
//!   *outside* the candidate set is provably inaudible, so a link-cache
//!   row may simply omit it: the omitted entry reads as silent, exactly
//!   what the full computation would conclude for the audibility flag,
//!   and sub-sensitivity powers are never read (interference sums are
//!   audibility-gated — DESIGN.md, "Sharded engine").
//! * **Determinism** — candidates are emitted in ascending node-index
//!   order, so audible lists and float-sum orders are byte-identical to
//!   the full scan's.
//!
//! The grid is value-only state, rebuilt from scratch (O(n)) on exactly
//! the invalidation events the link cache already handles: mobility
//! ticks, explicit `set_position` calls and node additions.

use lora_phy::propagation::Position;

/// Cap on cells per axis: bounds grid memory to O(n) even when `r_max`
/// is tiny relative to the deployment area (cells just get coarser,
/// which only ever *adds* candidates — soundness is one-sided).
const MAX_CELLS_PER_AXIS: usize = 256;

/// A uniform cell grid over the current node positions.
///
/// Storage is a counting-sort CSR layout: `starts[c]..starts[c + 1]`
/// indexes the slice of `items` (node indices, ascending) bucketed in
/// cell `c`. Rebuilds reuse both allocations.
#[derive(Debug, Default)]
pub struct Grid {
    /// Cell side length in metres (≥ the `r_max` the grid was built
    /// with; +∞ collapses everything into one cell, which stays sound).
    cell: f64,
    /// Bounding-box origin of the node positions.
    min_x: f64,
    min_y: f64,
    /// Cells per axis.
    cols: usize,
    rows: usize,
    /// CSR cell offsets into `items` (`cols * rows + 1` entries).
    starts: Vec<u32>,
    /// Node indices grouped by cell, ascending within each cell.
    items: Vec<u32>,
}

impl Grid {
    /// An empty grid (no nodes, no cells).
    #[must_use]
    pub fn new() -> Self {
        Grid::default()
    }

    /// Rebuilds the grid over `positions` with audibility bound `r_max`,
    /// reusing existing allocations. An empty position set or a
    /// non-positive/non-finite `r_max` yields a degenerate single-cell
    /// grid (every node is everyone's candidate — trivially sound).
    pub fn rebuild(&mut self, positions: &[Position], r_max: f64) {
        self.rebuild_from(positions.iter().copied(), r_max);
    }

    /// [`Grid::rebuild`] over any re-iterable position source, so callers
    /// holding positions inside larger records need not copy them out.
    pub fn rebuild_from<I>(&mut self, positions: I, r_max: f64)
    where
        I: Iterator<Item = Position> + ExactSizeIterator + Clone,
    {
        let n = positions.len();
        let (mut min_x, mut min_y) = (f64::INFINITY, f64::INFINITY);
        let (mut max_x, mut max_y) = (f64::NEG_INFINITY, f64::NEG_INFINITY);
        for p in positions.clone() {
            min_x = min_x.min(p.x);
            min_y = min_y.min(p.y);
            max_x = max_x.max(p.x);
            max_y = max_y.max(p.y);
        }
        if n == 0 {
            min_x = 0.0;
            min_y = 0.0;
            max_x = 0.0;
            max_y = 0.0;
        }
        // The cell side must be at least r_max for the 3×3 soundness
        // argument, at least the span/MAX_CELLS quotient for the memory
        // bound, and positive so the index math below is well defined.
        let span = (max_x - min_x).max(max_y - min_y).max(1.0);
        let mut cell = r_max.max(span / MAX_CELLS_PER_AXIS as f64);
        if !cell.is_finite() || cell <= 0.0 {
            cell = f64::INFINITY;
        }
        self.cell = cell;
        self.min_x = min_x;
        self.min_y = min_y;
        self.cols = Self::axis_cells(max_x - min_x, cell);
        self.rows = Self::axis_cells(max_y - min_y, cell);

        // Counting sort by cell; pushing nodes in index order keeps each
        // cell's slice ascending.
        let cells = self.cols * self.rows;
        self.starts.clear();
        self.starts.resize(cells + 1, 0);
        for p in positions.clone() {
            let c = self.cell_of(p);
            if let Some(count) = self.starts.get_mut(c + 1) {
                *count += 1;
            }
        }
        let mut running = 0u32;
        for s in &mut self.starts {
            running = running.wrapping_add(*s);
            *s = running;
        }
        self.items.clear();
        self.items.resize(n, 0);
        let mut cursor = self.starts.clone();
        for (i, p) in positions.enumerate() {
            let c = self.cell_of(p);
            if let Some(slot) = cursor.get_mut(c) {
                let at = *slot as usize;
                if let Some(item) = self.items.get_mut(at) {
                    // Node count < 2^32 by construction.
                    *item = i as u32;
                }
                *slot += 1;
            }
        }
    }

    /// Number of cells along one axis covering a span of `extent`.
    fn axis_cells(extent: f64, cell: f64) -> usize {
        if !extent.is_finite() || extent <= 0.0 || cell == f64::INFINITY {
            return 1;
        }
        // The quotient is clamped to MAX_CELLS_PER_AXIS right away.
        (((extent / cell).floor() as usize) + 1).min(MAX_CELLS_PER_AXIS)
    }

    /// The flat cell index containing `p` (clamped into range, so
    /// positions outside the build-time bounding box are still valid).
    fn cell_of(&self, p: Position) -> usize {
        let col = Self::axis_index(p.x - self.min_x, self.cell, self.cols);
        let row = Self::axis_index(p.y - self.min_y, self.cell, self.rows);
        row * self.cols + col
    }

    /// One axis of `cell_of`, clamped to `[0, cells)`.
    fn axis_index(offset: f64, cell: f64, cells: usize) -> usize {
        if cell == f64::INFINITY || cells <= 1 {
            return 0;
        }
        let idx = (offset / cell).floor();
        if idx <= 0.0 {
            0
        } else {
            // Clamped to the cell count right after the cast.
            (idx as usize).min(cells - 1)
        }
    }

    /// Appends to `out` every node index whose cell is within one cell
    /// of `p`'s — a superset of all nodes within `r_max` of `p` — in
    /// ascending index order. `out` is cleared first.
    pub fn candidates_into(&self, p: Position, out: &mut Vec<usize>) {
        out.clear();
        let col = Self::axis_index(p.x - self.min_x, self.cell, self.cols);
        let row = Self::axis_index(p.y - self.min_y, self.cell, self.rows);
        for r in row.saturating_sub(1)..(row + 2).min(self.rows) {
            for c in col.saturating_sub(1)..(col + 2).min(self.cols) {
                let cell = r * self.cols + c;
                let lo = self.starts.get(cell).map_or(0, |&s| s as usize);
                let hi = self.starts.get(cell + 1).map_or(0, |&s| s as usize);
                if let Some(slice) = self.items.get(lo..hi) {
                    out.extend(slice.iter().map(|&i| i as usize));
                }
            }
        }
        // Cells are disjoint and each slice is ascending, so a sort (no
        // dedup) restores one global ascending order. The 3×3 block is
        // small; sort_unstable on tens of entries is cheap.
        out.sort_unstable();
    }

    /// The number of candidates around `p` — the node's *audible degree
    /// upper bound*, used as the occupancy weight when partitioning the
    /// world into shard bands.
    #[must_use]
    pub fn degree(&self, p: Position) -> usize {
        let col = Self::axis_index(p.x - self.min_x, self.cell, self.cols);
        let row = Self::axis_index(p.y - self.min_y, self.cell, self.rows);
        let mut total = 0usize;
        for r in row.saturating_sub(1)..(row + 2).min(self.rows) {
            for c in col.saturating_sub(1)..(col + 2).min(self.cols) {
                let cell = r * self.cols + c;
                let lo = self.starts.get(cell).map_or(0, |&s| s as usize);
                let hi = self.starts.get(cell + 1).map_or(0, |&s| s as usize);
                total += hi.saturating_sub(lo);
            }
        }
        total
    }

    /// The cell side the last rebuild settled on (test introspection).
    #[must_use]
    pub fn cell_side(&self) -> f64 {
        self.cell
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_over(ps: &[(f64, f64)], r_max: f64) -> (Grid, Vec<Position>) {
        let positions: Vec<Position> = ps.iter().map(|&(x, y)| Position::new(x, y)).collect();
        let mut g = Grid::new();
        g.rebuild(&positions, r_max);
        (g, positions)
    }

    fn candidates(g: &Grid, p: Position) -> Vec<usize> {
        let mut out = Vec::new();
        g.candidates_into(p, &mut out);
        out
    }

    #[test]
    fn candidates_cover_everything_within_r_max() {
        let pts: Vec<(f64, f64)> = (0..40)
            .map(|i| (f64::from(i % 8) * 37.0, f64::from(i / 8) * 53.0))
            .collect();
        let (g, positions) = grid_over(&pts, 60.0);
        for (i, &pi) in positions.iter().enumerate() {
            let cand = candidates(&g, pi);
            for (j, &pj) in positions.iter().enumerate() {
                if pi.distance(&pj) <= 60.0 {
                    assert!(
                        cand.binary_search(&j).is_ok(),
                        "node {j} within r_max of node {i} but not a candidate"
                    );
                }
            }
        }
    }

    #[test]
    fn candidates_are_ascending_and_unique() {
        let pts: Vec<(f64, f64)> = (0..30).map(|i| (f64::from(i) * 11.0, 0.0)).collect();
        let (g, positions) = grid_over(&pts, 25.0);
        for &p in &positions {
            let cand = candidates(&g, p);
            assert!(cand.windows(2).all(|w| w[0] < w[1]), "{cand:?}");
        }
    }

    #[test]
    fn far_clusters_are_not_candidates_of_each_other() {
        let mut pts: Vec<(f64, f64)> = (0..5).map(|i| (f64::from(i) * 10.0, 0.0)).collect();
        pts.extend((0..5).map(|i| (1.0e6 + f64::from(i) * 10.0, 0.0)));
        let (g, positions) = grid_over(&pts, 100.0);
        let near = candidates(&g, positions[0]);
        assert!(
            near.iter().all(|&j| j < 5),
            "distant cluster leaked: {near:?}"
        );
    }

    #[test]
    fn zero_and_infinite_r_max_are_sound() {
        // r_max = 0 (hopeless link budget): candidate sets may be anything
        // ⊇ ∅; the grid must simply not panic and stay ascending.
        let (g, positions) = grid_over(&[(0.0, 0.0), (5.0, 5.0)], 0.0);
        for &p in &positions {
            let cand = candidates(&g, p);
            assert!(cand.windows(2).all(|w| w[0] < w[1]));
        }
        // Gigantic r_max collapses to one cell: everyone is a candidate.
        let (g, positions) = grid_over(&[(0.0, 0.0), (1.0e9, 0.0), (0.0, 1.0e9)], 1.0e12);
        for &p in &positions {
            assert_eq!(candidates(&g, p), vec![0, 1, 2]);
        }
    }

    #[test]
    fn cell_cap_coarsens_but_stays_sound() {
        // Span 1e6 m with r_max 1 m would want a million cells; the cap
        // forces coarser cells, which must still cover the r_max ball.
        let pts: Vec<(f64, f64)> = (0..100).map(|i| (f64::from(i) * 10_101.0, 0.0)).collect();
        let (g, positions) = grid_over(&pts, 1.0);
        assert!(g.cell_side() >= 1.0);
        for (i, &pi) in positions.iter().enumerate() {
            let cand = candidates(&g, pi);
            assert!(cand.binary_search(&i).is_ok(), "node {i} misses itself");
        }
    }

    #[test]
    fn degree_matches_candidate_count() {
        let pts: Vec<(f64, f64)> = (0..25)
            .map(|i| (f64::from(i % 5) * 40.0, f64::from(i / 5) * 40.0))
            .collect();
        let (g, positions) = grid_over(&pts, 50.0);
        for &p in &positions {
            assert_eq!(g.degree(p), candidates(&g, p).len());
        }
    }

    #[test]
    fn empty_grid_is_fine() {
        let mut g = Grid::new();
        g.rebuild(&[], 10.0);
        let mut out = vec![7usize];
        g.candidates_into(Position::new(3.0, 4.0), &mut out);
        assert!(out.is_empty());
        assert_eq!(g.degree(Position::new(0.0, 0.0)), 0);
    }

    #[test]
    fn rebuild_reflects_moved_nodes() {
        let mut positions = vec![Position::new(0.0, 0.0), Position::new(1.0e6, 0.0)];
        let mut g = Grid::new();
        g.rebuild(&positions, 100.0);
        assert_eq!(candidates(&g, positions[0]), vec![0]);
        positions[1] = Position::new(50.0, 0.0);
        g.rebuild(&positions, 100.0);
        assert_eq!(candidates(&g, positions[0]), vec![0, 1]);
    }
}
