//! Node placement generators.
//!
//! The LoRaMesher demo arranges a handful of boards so that not every node
//! hears every other — that is what makes routing necessary. These
//! generators reproduce the standard layouts used in mesh evaluations:
//! lines (maximum hop count), grids, rings, stars, and uniform random
//! scatters, plus a helper that computes the radio range so spacings can
//! be chosen relative to it.

use lora_phy::link::{sensitivity, LinkBudget};
use lora_phy::propagation::Position;

use crate::medium::RfConfig;
use crate::rng::SimRng;

/// The distance at which a link under `config` stops closing (ignoring
/// shadowing), found by bisection on the path-loss model.
///
/// Topology builders use this to space nodes as "k × range" so that a
/// 100 m-range urban profile and a 10 km free-space profile produce the
/// same connectivity graph.
#[must_use]
pub fn radio_range_m(config: &RfConfig) -> f64 {
    let sens = sensitivity(
        config.modulation.spreading_factor,
        config.modulation.bandwidth,
    );
    let closes = |d: f64| {
        let budget = LinkBudget {
            tx_power: config.tx_power,
            tx_antenna_gain_db: config.antenna_gain_db,
            rx_antenna_gain_db: config.antenna_gain_db,
            path_loss_db: config.path_loss.loss_db(d),
        };
        budget.received_power() >= sens
    };
    if !closes(1.0) {
        return 0.0;
    }
    let (mut lo, mut hi) = (1.0, 1.0e7);
    if closes(hi) {
        return hi;
    }
    for _ in 0..200 {
        let mid = (lo + hi) / 2.0;
        if closes(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

/// `n` nodes on a straight line with the given spacing.
///
/// With spacing between 0.5× and 1× the radio range this produces a chain
/// where each node hears only its immediate neighbours — the worst case
/// for hop count.
#[must_use]
pub fn line(n: usize, spacing_m: f64) -> Vec<Position> {
    (0..n)
        .map(|i| Position::new(i as f64 * spacing_m, 0.0))
        .collect()
}

/// `nx × ny` nodes on a rectangular grid.
#[must_use]
pub fn grid(nx: usize, ny: usize, spacing_m: f64) -> Vec<Position> {
    let mut v = Vec::with_capacity(nx * ny);
    for j in 0..ny {
        for i in 0..nx {
            v.push(Position::new(i as f64 * spacing_m, j as f64 * spacing_m));
        }
    }
    v
}

/// `n` nodes evenly spaced on a circle of the given radius.
#[must_use]
pub fn ring(n: usize, radius_m: f64) -> Vec<Position> {
    (0..n)
        .map(|i| {
            let theta = core::f64::consts::TAU * i as f64 / n as f64;
            Position::new(radius_m * theta.cos(), radius_m * theta.sin())
        })
        .collect()
}

/// A hub at the origin plus `n - 1` spokes on a circle of the given
/// radius (LoRaWAN-like star; `n` must be at least 1).
#[must_use]
pub fn star(n: usize, radius_m: f64) -> Vec<Position> {
    let mut v = vec![Position::new(0.0, 0.0)];
    if n > 1 {
        v.extend(ring(n - 1, radius_m));
    }
    v
}

/// `n` nodes uniformly random in a `width × height` rectangle.
#[must_use]
pub fn random(n: usize, width_m: f64, height_m: f64, rng: &mut SimRng) -> Vec<Position> {
    (0..n)
        .map(|_| Position::new(rng.gen_f64() * width_m, rng.gen_f64() * height_m))
        .collect()
}

/// Whether the geometric graph over `positions` with the given link range
/// is connected.
#[must_use]
pub fn is_connected(positions: &[Position], range_m: f64) -> bool {
    let n = positions.len();
    if n <= 1 {
        return true;
    }
    let mut seen = vec![false; n];
    let mut stack = vec![0usize];
    seen[0] = true;
    let mut count = 1;
    while let Some(i) = stack.pop() {
        for j in 0..n {
            if !seen[j] && positions[i].distance(&positions[j]) <= range_m {
                seen[j] = true;
                count += 1;
                stack.push(j);
            }
        }
    }
    count == n
}

/// Random placement resampled until the resulting geometric graph at
/// `range_m` is connected, up to `max_attempts` tries.
///
/// Returns `None` when no connected placement was found — callers should
/// enlarge the area, the range or the attempt budget.
#[must_use]
pub fn connected_random(
    n: usize,
    width_m: f64,
    height_m: f64,
    range_m: f64,
    rng: &mut SimRng,
    max_attempts: usize,
) -> Option<Vec<Position>> {
    for _ in 0..max_attempts {
        let placement = random(n, width_m, height_m, rng);
        if is_connected(&placement, range_m) {
            return Some(placement);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_spacing() {
        let l = line(4, 100.0);
        assert_eq!(l.len(), 4);
        assert!((l[3].x - 300.0).abs() < 1e-9);
        assert!(l.iter().all(|p| p.y == 0.0));
    }

    #[test]
    fn grid_layout() {
        let g = grid(3, 2, 50.0);
        assert_eq!(g.len(), 6);
        assert_eq!(g[0], Position::new(0.0, 0.0));
        assert_eq!(g[5], Position::new(100.0, 50.0));
    }

    #[test]
    fn ring_is_equidistant_from_centre() {
        let r = ring(8, 200.0);
        let centre = Position::new(0.0, 0.0);
        for p in &r {
            assert!((p.distance(&centre) - 200.0).abs() < 1e-9);
        }
    }

    #[test]
    fn star_has_hub_at_origin() {
        let s = star(5, 300.0);
        assert_eq!(s.len(), 5);
        assert_eq!(s[0], Position::new(0.0, 0.0));
        assert_eq!(star(1, 300.0).len(), 1);
    }

    #[test]
    fn random_stays_in_bounds_and_is_deterministic() {
        let mut rng = SimRng::new(5);
        let a = random(20, 1000.0, 500.0, &mut rng);
        assert!(a
            .iter()
            .all(|p| (0.0..1000.0).contains(&p.x) && (0.0..500.0).contains(&p.y)));
        let mut rng2 = SimRng::new(5);
        let b = random(20, 1000.0, 500.0, &mut rng2);
        assert_eq!(a, b);
    }

    #[test]
    fn connectivity_detection() {
        let connected = line(5, 90.0);
        assert!(is_connected(&connected, 100.0));
        // Break the chain.
        let mut broken = connected.clone();
        broken[4] = Position::new(10_000.0, 0.0);
        assert!(!is_connected(&broken, 100.0));
        assert!(is_connected(&[], 1.0));
        assert!(is_connected(&[Position::new(0.0, 0.0)], 1.0));
    }

    #[test]
    fn connected_random_respects_range() {
        let mut rng = SimRng::new(9);
        let p = connected_random(10, 500.0, 500.0, 250.0, &mut rng, 100).expect("placement");
        assert!(is_connected(&p, 250.0));
    }

    #[test]
    fn connected_random_gives_up() {
        let mut rng = SimRng::new(9);
        // 2 nodes in a huge area with tiny range: essentially impossible.
        assert!(connected_random(2, 1.0e6, 1.0e6, 1.0, &mut rng, 5).is_none());
    }

    #[test]
    fn radio_range_is_positive_and_monotone_in_sf() {
        use lora_phy::modulation::{Bandwidth, CodingRate, LoRaModulation, SpreadingFactor};
        let mut cfg = RfConfig {
            modulation: LoRaModulation::new(
                SpreadingFactor::Sf7,
                Bandwidth::Khz125,
                CodingRate::Cr4_5,
            ),
            ..RfConfig::default()
        };
        let r7 = radio_range_m(&cfg);
        cfg.modulation =
            LoRaModulation::new(SpreadingFactor::Sf12, Bandwidth::Khz125, CodingRate::Cr4_5);
        let r12 = radio_range_m(&cfg);
        assert!(r7 > 100.0, "SF7 range {r7}");
        assert!(r12 > r7, "SF12 range {r12} should exceed SF7 range {r7}");
    }

    #[test]
    fn radio_range_boundary_is_tight() {
        let cfg = RfConfig::default();
        let r = radio_range_m(&cfg);
        let m = crate::medium::Medium::new(cfg);
        let at = |d: f64| {
            m.received_power(
                &Position::new(0.0, 0.0),
                &Position::new(d, 0.0),
                crate::firmware::NodeId(0),
                crate::firmware::NodeId(1),
            )
        };
        assert!(m.audible(at(r * 0.999)));
        assert!(!m.audible(at(r * 1.001)));
    }
}
