//! Node movement models.
//!
//! Most LoRa mesh deployments are static, but the demo paper's motivation
//! (ad-hoc deployments on tiny nodes) includes movable nodes. The
//! simulator samples positions on a fixed tick; between ticks nodes move
//! in straight lines. Movement is deterministic given the seed.

use lora_phy::propagation::Position;

use crate::rng::SimRng;
use std::time::Duration;

/// A movement model for one node.
#[derive(Clone, Debug)]
pub enum Mobility {
    /// The node never moves.
    Static,
    /// Random-waypoint: pick a uniform destination in the area, travel at
    /// a uniform speed from the range, pause, repeat.
    RandomWaypoint {
        /// Area width in metres.
        width_m: f64,
        /// Area height in metres.
        height_m: f64,
        /// Minimum speed in m/s.
        min_speed: f64,
        /// Maximum speed in m/s.
        max_speed: f64,
        /// Pause at each waypoint.
        pause: Duration,
    },
}

/// Per-node mobility state advanced on each tick.
#[derive(Clone, Debug)]
pub struct MobilityState {
    model: Mobility,
    /// Current destination and speed, when moving.
    leg: Option<(Position, f64)>,
    /// Remaining pause time, when paused.
    pause_left: Duration,
}

impl MobilityState {
    /// Creates state for the given model.
    #[must_use]
    pub fn new(model: Mobility) -> Self {
        MobilityState {
            model,
            leg: None,
            pause_left: Duration::ZERO,
        }
    }

    /// Whether the node can ever move.
    #[must_use]
    pub fn is_mobile(&self) -> bool {
        !matches!(self.model, Mobility::Static)
    }

    /// Advances the node from `pos` by `dt`, returning its new position.
    pub fn step(&mut self, pos: Position, dt: Duration, rng: &mut SimRng) -> Position {
        let Mobility::RandomWaypoint {
            width_m,
            height_m,
            min_speed,
            max_speed,
            pause,
        } = self.model
        else {
            return pos;
        };

        if !self.pause_left.is_zero() {
            self.pause_left = self.pause_left.saturating_sub(dt);
            return pos;
        }

        let (dest, speed) = match self.leg {
            Some(leg) => leg,
            None => {
                let dest = Position::new(rng.gen_f64() * width_m, rng.gen_f64() * height_m);
                let speed = min_speed + rng.gen_f64() * (max_speed - min_speed).max(0.0);
                self.leg = Some((dest, speed));
                (dest, speed)
            }
        };

        let dist = pos.distance(&dest);
        let travel = speed * dt.as_secs_f64();
        if travel >= dist {
            // Arrived: start the pause, next tick picks a new waypoint.
            self.leg = None;
            self.pause_left = pause;
            dest
        } else {
            let f = travel / dist;
            Position::new(pos.x + (dest.x - pos.x) * f, pos.y + (dest.y - pos.y) * f)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_never_moves() {
        let mut s = MobilityState::new(Mobility::Static);
        let p = Position::new(3.0, 4.0);
        assert!(!s.is_mobile());
        let moved = s.step(p, Duration::from_secs(100), &mut SimRng::new(1));
        assert_eq!(moved, p);
    }

    fn waypoint() -> Mobility {
        Mobility::RandomWaypoint {
            width_m: 1000.0,
            height_m: 1000.0,
            min_speed: 1.0,
            max_speed: 2.0,
            pause: Duration::from_secs(5),
        }
    }

    #[test]
    fn waypoint_moves_at_bounded_speed() {
        let mut s = MobilityState::new(waypoint());
        let mut rng = SimRng::new(2);
        let mut pos = Position::new(500.0, 500.0);
        for _ in 0..50 {
            let next = s.step(pos, Duration::from_secs(1), &mut rng);
            let d = pos.distance(&next);
            assert!(d <= 2.0 + 1e-9, "moved {d} m in 1 s");
            pos = next;
        }
        assert!(pos.distance(&Position::new(500.0, 500.0)) > 0.0);
    }

    #[test]
    fn waypoint_stays_in_area() {
        let mut s = MobilityState::new(waypoint());
        let mut rng = SimRng::new(3);
        let mut pos = Position::new(0.0, 0.0);
        for _ in 0..2000 {
            pos = s.step(pos, Duration::from_secs(2), &mut rng);
            assert!((0.0..=1000.0).contains(&pos.x), "x {}", pos.x);
            assert!((0.0..=1000.0).contains(&pos.y), "y {}", pos.y);
        }
    }

    #[test]
    fn waypoint_pauses_on_arrival() {
        let mut s = MobilityState::new(Mobility::RandomWaypoint {
            width_m: 10.0,
            height_m: 10.0,
            min_speed: 100.0,
            max_speed: 100.0,
            pause: Duration::from_secs(10),
        });
        let mut rng = SimRng::new(4);
        // Fast node in a tiny area arrives within the first step.
        let p0 = Position::new(5.0, 5.0);
        let p1 = s.step(p0, Duration::from_secs(1), &mut rng);
        // Now paused: the next short step must not move it.
        let p2 = s.step(p1, Duration::from_secs(1), &mut rng);
        assert_eq!(p1, p2);
    }

    #[test]
    fn deterministic_under_same_seed() {
        let run = |seed| {
            let mut s = MobilityState::new(waypoint());
            let mut rng = SimRng::new(seed);
            let mut pos = Position::new(0.0, 0.0);
            for _ in 0..20 {
                pos = s.step(pos, Duration::from_secs(3), &mut rng);
            }
            pos
        };
        assert_eq!(run(7), run(7));
    }
}
