//! Per-node half-duplex radio state machine.
//!
//! Each simulated node owns a [`Radio`] that mirrors the operating modes
//! of an SX127x-class transceiver: listening ([`RadioState::Idle`]),
//! transmitting, locked onto an incoming frame, performing channel
//! activity detection, or powered off. The radio also keeps the node-local
//! accounting the experiments need: time spent per state (for the energy
//! model) and cumulative transmit airtime (for duty-cycle reporting).

use std::sync::Arc;

use lora_phy::link::SignalQuality;
use lora_phy::power::StateDurations;

use crate::event::FrameId;
use crate::time::SimTime;

/// The operating mode of a node's radio.
#[derive(Clone, Debug, PartialEq)]
pub enum RadioState {
    /// Powered off (killed node). Hears nothing, sends nothing.
    Off,
    /// Listening for preambles.
    Idle,
    /// Transmitting `frame` until the given instant.
    Tx {
        /// The frame being transmitted.
        frame: FrameId,
        /// When the transmission completes.
        until: SimTime,
    },
    /// Locked onto incoming `frame` until the given instant.
    Rx {
        /// The frame being received.
        frame: FrameId,
        /// When the reception attempt concludes.
        until: SimTime,
    },
    /// Running a channel-activity-detection scan.
    Cad {
        /// When the scan concludes.
        until: SimTime,
        /// Whether activity has been observed so far during the scan.
        busy_seen: bool,
    },
}

/// Progress of one in-flight reception at a node.
#[derive(Clone, Debug)]
pub struct Reception {
    /// The frame the receiver is locked to.
    pub frame: FrameId,
    /// The node transmitting the locked frame.
    pub sender: crate::firmware::NodeId,
    /// Signal quality of the locked frame in the absence of interference.
    pub quality: SignalQuality,
    /// Linear received power of the locked frame in milliwatts.
    pub signal_mw: f64,
    /// The frame contents (delivered to the firmware on success), shared
    /// zero-copy with the medium's [`crate::medium::ActiveTx`].
    pub payload: Arc<[u8]>,
    /// Currently overlapping interferers and their received powers (mW).
    /// Ascending by frame id: the set is seeded from the medium's
    /// ordered iteration and later arrivals carry higher ids, so the
    /// float summation order (and thus every bit of the result) matches
    /// the old `BTreeMap` storage exactly.
    pub interferers: Vec<(FrameId, f64)>,
    /// The worst instantaneous total interference seen so far (mW).
    pub peak_interference_mw: f64,
    /// Set when the frame can no longer be decoded regardless of power
    /// (e.g. the sender died mid-frame, or the lock was stolen).
    pub corrupted: bool,
}

impl Reception {
    /// Starts tracking a reception.
    #[must_use]
    pub fn new(
        frame: FrameId,
        sender: crate::firmware::NodeId,
        quality: SignalQuality,
        signal_mw: f64,
        payload: impl Into<Arc<[u8]>>,
    ) -> Self {
        Reception {
            frame,
            sender,
            quality,
            signal_mw,
            payload: payload.into(),
            interferers: Vec::new(),
            peak_interference_mw: 0.0,
            corrupted: false,
        }
    }

    /// Records that an interfering transmission became active.
    pub fn add_interferer(&mut self, frame: FrameId, power_mw: f64) {
        match self.interferers.iter_mut().find(|(f, _)| *f == frame) {
            Some(entry) => entry.1 = power_mw,
            None => self.interferers.push((frame, power_mw)),
        }
        let current: f64 = self.interferers.iter().map(|&(_, p)| p).sum();
        if current > self.peak_interference_mw {
            self.peak_interference_mw = current;
        }
    }

    /// Records that an interfering transmission ended.
    pub fn remove_interferer(&mut self, frame: FrameId) {
        if let Some(pos) = self.interferers.iter().position(|&(f, _)| f == frame) {
            self.interferers.remove(pos);
        }
    }

    /// Signal-to-interference ratio in dB against the worst overlap
    /// moment, or `None` when no interference occurred.
    #[must_use]
    pub fn sir_db(&self) -> Option<f64> {
        if self.peak_interference_mw <= 0.0 {
            None
        } else {
            Some(10.0 * (self.signal_mw / self.peak_interference_mw).log10())
        }
    }
}

/// A node's radio: state machine plus per-state time accounting.
#[derive(Clone, Debug)]
pub struct Radio {
    state: RadioState,
    state_since: SimTime,
    /// Accumulated time per state (feeds [`lora_phy::power::EnergyModel`]).
    pub durations: StateDurations,
    /// The reception in progress when the state is [`RadioState::Rx`].
    pub reception: Option<Reception>,
}

impl Radio {
    /// A powered-on, idle radio.
    #[must_use]
    pub fn new() -> Self {
        Radio {
            state: RadioState::Idle,
            state_since: SimTime::ZERO,
            durations: StateDurations::default(),
            reception: None,
        }
    }

    /// The current state.
    #[must_use]
    pub fn state(&self) -> &RadioState {
        &self.state
    }

    /// Whether the radio is listening and can lock onto a new frame.
    #[must_use]
    pub fn can_receive(&self) -> bool {
        matches!(self.state, RadioState::Idle)
    }

    /// Whether the radio may start a transmission or CAD scan.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        matches!(self.state, RadioState::Idle)
    }

    /// Whether the node is powered off.
    #[must_use]
    pub fn is_off(&self) -> bool {
        matches!(self.state, RadioState::Off)
    }

    fn accumulate(&mut self, now: SimTime) {
        let elapsed = now.since(self.state_since);
        match self.state {
            RadioState::Off => self.durations.sleep += elapsed,
            RadioState::Idle => self.durations.rx += elapsed, // receiver powered, listening
            RadioState::Tx { .. } => self.durations.tx += elapsed,
            RadioState::Rx { .. } => self.durations.rx += elapsed,
            RadioState::Cad { .. } => self.durations.idle += elapsed,
        }
        self.state_since = now;
    }

    /// Transitions to a new state at `now`, accumulating time spent in the
    /// old one.
    pub fn set_state(&mut self, now: SimTime, state: RadioState) {
        self.accumulate(now);
        if !matches!(state, RadioState::Rx { .. }) {
            self.reception = None;
        }
        self.state = state;
    }

    /// Begins a transmission of `frame` ending at `until`.
    pub fn begin_tx(&mut self, now: SimTime, frame: FrameId, until: SimTime) {
        debug_assert!(self.is_idle());
        self.set_state(now, RadioState::Tx { frame, until });
    }

    /// Locks onto incoming `frame`, tracking its reception.
    pub fn begin_rx(&mut self, now: SimTime, reception: Reception, until: SimTime) {
        let frame = reception.frame;
        self.set_state(now, RadioState::Rx { frame, until });
        self.reception = Some(reception);
    }

    /// Begins a CAD scan ending at `until`.
    pub fn begin_cad(&mut self, now: SimTime, until: SimTime, busy_seen: bool) {
        debug_assert!(self.is_idle());
        self.set_state(now, RadioState::Cad { until, busy_seen });
    }

    /// Returns to listening.
    pub fn to_idle(&mut self, now: SimTime) {
        self.set_state(now, RadioState::Idle);
    }

    /// Powers the radio off (fault injection).
    pub fn power_off(&mut self, now: SimTime) {
        self.set_state(now, RadioState::Off);
    }

    /// Powers the radio back on into the listening state.
    pub fn power_on(&mut self, now: SimTime) {
        debug_assert!(self.is_off());
        self.set_state(now, RadioState::Idle);
    }

    /// Marks channel activity observed during an ongoing CAD scan.
    pub fn note_cad_activity(&mut self) {
        if let RadioState::Cad { busy_seen, .. } = &mut self.state {
            *busy_seen = true;
        }
    }

    /// Finalises time accounting at the end of a run so that
    /// [`Radio::durations`] covers the full simulated interval.
    pub fn finish(&mut self, now: SimTime) {
        self.accumulate(now);
    }

    /// Rewrites every frame id stored in the radio (the Tx/Rx state, the
    /// locked reception and its interferer set) through `f`. Used by the
    /// parallel commit merge to replace a band worker's provisional
    /// frame ids with the real ones the coordinator allocated; `f` must
    /// be order-preserving on the ids it renames so the interferer set
    /// stays ascending.
    pub fn remap_frames(&mut self, f: impl Fn(FrameId) -> FrameId) {
        match &mut self.state {
            RadioState::Tx { frame, .. } | RadioState::Rx { frame, .. } => *frame = f(*frame),
            RadioState::Off | RadioState::Idle | RadioState::Cad { .. } => {}
        }
        if let Some(rec) = &mut self.reception {
            rec.frame = f(rec.frame);
            for (id, _) in &mut rec.interferers {
                *id = f(*id);
            }
        }
    }
}

impl Default for Radio {
    fn default() -> Self {
        Radio::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn q() -> SignalQuality {
        SignalQuality::ideal()
    }

    #[test]
    fn new_radio_is_idle() {
        let r = Radio::new();
        assert!(r.is_idle());
        assert!(r.can_receive());
        assert!(!r.is_off());
    }

    #[test]
    fn tx_rx_transitions_accumulate_time() {
        let mut r = Radio::new();
        r.begin_tx(SimTime::from_secs(1), FrameId(1), SimTime::from_secs(2));
        r.to_idle(SimTime::from_secs(2));
        r.begin_rx(
            SimTime::from_secs(3),
            Reception::new(FrameId(2), crate::firmware::NodeId(0), q(), 1e-9, vec![]),
            SimTime::from_secs(4),
        );
        r.to_idle(SimTime::from_secs(4));
        r.finish(SimTime::from_secs(5));
        assert_eq!(r.durations.tx, Duration::from_secs(1));
        // Idle counts as rx (receiver on): 0..1, 2..3, 4..5 plus the
        // actual reception 3..4.
        assert_eq!(r.durations.rx, Duration::from_secs(4));
    }

    #[test]
    fn off_time_counts_as_sleep() {
        let mut r = Radio::new();
        r.power_off(SimTime::from_secs(10));
        r.power_on(SimTime::from_secs(25));
        r.finish(SimTime::from_secs(30));
        assert_eq!(r.durations.sleep, Duration::from_secs(15));
        assert_eq!(r.durations.rx, Duration::from_secs(15));
    }

    #[test]
    fn reception_cleared_when_leaving_rx() {
        let mut r = Radio::new();
        r.begin_rx(
            SimTime::ZERO,
            Reception::new(FrameId(7), crate::firmware::NodeId(0), q(), 1e-9, vec![]),
            SimTime::from_millis(50),
        );
        assert!(r.reception.is_some());
        r.to_idle(SimTime::from_millis(50));
        assert!(r.reception.is_none());
    }

    #[test]
    fn cad_busy_flag_latches() {
        let mut r = Radio::new();
        r.begin_cad(SimTime::ZERO, SimTime::from_millis(2), false);
        r.note_cad_activity();
        match r.state() {
            RadioState::Cad { busy_seen, .. } => assert!(busy_seen),
            s => panic!("unexpected state {s:?}"),
        }
        // Latching outside CAD is a no-op.
        r.to_idle(SimTime::from_millis(2));
        r.note_cad_activity();
        assert!(r.is_idle());
    }

    #[test]
    fn reception_tracks_peak_interference() {
        let mut rec = Reception::new(FrameId(1), crate::firmware::NodeId(0), q(), 8.0e-9, vec![]);
        rec.add_interferer(FrameId(2), 1.0e-9);
        rec.add_interferer(FrameId(3), 1.0e-9);
        rec.remove_interferer(FrameId(2));
        rec.add_interferer(FrameId(4), 0.5e-9);
        // Peak was when 2 and 3 overlapped: 2e-9.
        assert!((rec.peak_interference_mw - 2.0e-9).abs() < 1e-18);
        // SIR against the peak: 10*log10(8/2) ≈ 6.02 dB.
        let sir = rec.sir_db().unwrap();
        assert!((sir - 6.02).abs() < 0.01, "sir {sir}");
    }

    #[test]
    fn reception_without_interference_has_no_sir() {
        let rec = Reception::new(FrameId(1), crate::firmware::NodeId(0), q(), 1e-9, vec![]);
        assert_eq!(rec.sir_db(), None);
    }
}
