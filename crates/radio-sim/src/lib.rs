//! Deterministic discrete-event simulator for LoRa radio networks.
//!
//! This crate replaces the physical testbed of the LoRaMesher demo paper:
//! instead of TTGO boards on rooftops, protocol firmware runs against a
//! simulated shared radio medium with propagation loss, collisions,
//! capture effect and regulatory duty cycles, under a virtual clock.
//!
//! The design goals, in order:
//!
//! 1. **Determinism** — a simulation is a pure function of its
//!    configuration and seed. Every run with the same inputs produces the
//!    same event sequence, making experiments replayable bit-for-bit.
//! 2. **Fidelity where it matters** — time-on-air, sensitivity, SNR
//!    floors, same-SF capture and half-duplex radios are modelled exactly,
//!    because they determine mesh behaviour. RF minutiae that do not
//!    change protocol outcomes (frequency error, antenna patterns) are not.
//! 3. **Protocol neutrality** — anything implementing [`Firmware`] can be
//!    hosted, which is how the LoRaMesher core and the baseline protocols
//!    run on identical physics.
//!
//! # Architecture
//!
//! * [`time`] — the virtual clock ([`SimTime`]).
//! * [`rng`] — a seedable, forkable xoshiro256++ PRNG ([`SimRng`]).
//! * [`event`] — the deterministic event queue.
//! * [`medium`] — the shared channel: who hears whom, collisions, capture.
//! * [`link_cache`] — per-topology-epoch cache of link budgets and
//!   audible-neighbor lists (the hot-path accelerator).
//! * [`grid`] — uniform spatial grid bounding each node's audibility
//!   candidates (flattens link-row fills from O(n) to local density).
//! * [`shard`] — spatial partitioning for the sharded event engine.
//! * [`par`] — deterministic fork-join helper for the worker-thread
//!   regions (`SimConfig::threads`).
//! * [`radio`] — per-node half-duplex radio state machine.
//! * [`firmware`] — the [`Firmware`] trait protocol implementations adapt to.
//! * [`topology`] — node placement generators.
//! * [`mobility`] — optional node movement models.
//! * [`sim`] — the [`Simulator`] tying it all together.
//! * [`metrics`] — PHY-level counters collected during a run.
//! * [`trace`] — a bounded structured event trace for debugging.
//!
//! # Example
//!
//! ```
//! use radio_sim::{Simulator, SimConfig, firmware::Firmware, firmware::Context};
//! use lora_phy::link::SignalQuality;
//! use lora_phy::propagation::Position;
//! use std::time::Duration;
//!
//! /// A firmware that broadcasts one frame at start-up.
//! struct Beacon;
//! impl Firmware for Beacon {
//!     fn on_start(&mut self, ctx: &mut Context) { ctx.transmit(vec![0xAB; 10]); }
//!     fn on_frame(&mut self, _b: &[u8], _q: SignalQuality, _ctx: &mut Context) {}
//!     fn next_wake(&self) -> Option<Duration> { None }
//! }
//!
//! let mut sim = Simulator::new(SimConfig::default(), 42);
//! // Out of range of each other: both broadcasts go out unimpeded.
//! sim.add_node(Beacon, Position::new(0.0, 0.0));
//! sim.add_node(Beacon, Position::new(5000.0, 0.0));
//! sim.run_for(Duration::from_secs(1));
//! assert_eq!(sim.metrics().frames_transmitted, 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod firmware;
pub mod grid;
pub mod link_cache;
pub mod medium;
pub mod metrics;
pub mod mobility;
pub mod par;
pub mod radio;
pub mod rng;
pub mod shard;
pub mod sim;
pub mod time;
pub mod topology;
pub mod trace;

pub use firmware::{Context, Firmware, NodeId};
pub use rng::SimRng;
pub use sim::{SimConfig, Simulator};
pub use time::SimTime;
