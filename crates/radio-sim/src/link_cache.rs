//! Per-topology-epoch cache of link budgets and audible-neighbor lists.
//!
//! Path-loss and shadowing math is deterministic in the endpoint
//! positions, so between position changes every `(a, b)` pair has a
//! fixed received power. The uncached simulator nevertheless recomputes
//! it (two `log10` calls and a `powf`) for every pair on every frame —
//! the dominant cost of large simulations. [`LinkCache`] computes each
//! link budget **once per topology epoch**:
//!
//! * Rows are filled lazily: the first transmission from node `i` in an
//!   epoch computes row `i`; later frames are lookups.
//! * Links are symmetric (equal antenna gains, per-pair shadowing), so a
//!   row reuses entries already computed by other rows bit-for-bit.
//! * Each row carries the node's **audible-neighbor list** — the sorted
//!   indices of nodes that can hear it — so transmission fan-out,
//!   interferer seeding and CAD scans iterate only nodes that matter
//!   instead of all N.
//!
//! Rows are **sparse**: a row holds links only for the *candidate set*
//! it was filled with — the 3×3-cell neighborhood from
//! [`crate::grid::Grid`] when the spatial grid is on, or every node when
//! it is off. A node absent from the candidate set is farther than
//! `max_audible_range`, so [`LinkRow::get`] answers [`Link::silent`] for
//! it: the audibility flag matches what a fresh computation would
//! conclude, and sub-sensitivity powers are never read (interference
//! sums are audibility-gated), so sparse and dense rows are
//! behaviourally identical. This drops both the O(n) scan per row fill
//! and the O(n²) memory of dense rows.
//!
//! The cache holds *values*, never decisions: the simulator invalidates
//! it wholesale on every mobility tick, node addition and explicit
//! position change, which keeps cached and uncached runs byte-identical
//! (see `tests/link_cache_diff.rs`).

use lora_phy::power::Dbm;

/// The cached budget of one directed link (symmetric in practice).
#[derive(Clone, Copy, Debug)]
pub struct Link {
    /// Received power in dBm.
    pub power: Dbm,
    /// Received power in linear milliwatts (interference sums).
    pub power_mw: f64,
    /// Whether the power exceeds the shared modulation's sensitivity.
    pub audible: bool,
}

impl Link {
    /// A self-link / beyond-range placeholder carrying no power.
    #[must_use]
    pub fn silent() -> Self {
        Link {
            power: Dbm::new(f64::NEG_INFINITY),
            power_mw: 0.0,
            audible: false,
        }
    }
}

/// One node's cached links to its audibility candidates.
#[derive(Clone, Debug)]
pub struct LinkRow {
    /// Sorted node indices this row holds links for: the candidate set
    /// at fill time (every node when the spatial grid is off).
    cand: Vec<usize>,
    /// Link budgets parallel to `cand`.
    links: Vec<Link>,
    /// Sorted indices of the nodes that can hear this node (⊆ `cand`).
    pub audible: Vec<usize>,
}

impl LinkRow {
    /// The link toward node `j`; [`Link::silent`] when `j` is not a
    /// candidate (which proves `j` is beyond audible range).
    #[must_use]
    pub fn get(&self, j: usize) -> Link {
        // Dense rows (grid off) have cand[k] == k: O(1) fast path.
        if let (Some(&cj), Some(&link)) = (self.cand.get(j), self.links.get(j)) {
            if cj == j {
                return link;
            }
        }
        match self.cand.binary_search(&j) {
            Ok(k) => self.links.get(k).copied().unwrap_or_else(Link::silent),
            Err(_) => Link::silent(),
        }
    }

    /// Iterates `(node index, link)` pairs in ascending index order.
    pub fn entries(&self) -> impl Iterator<Item = (usize, Link)> + '_ {
        self.cand.iter().copied().zip(self.links.iter().copied())
    }
}

/// Lazily filled symmetric matrix of link budgets, invalidated wholesale
/// whenever any position may have changed — or row-by-row by the sharded
/// engine, which knows which spatial bands a mobility tick touched.
#[derive(Debug, Default)]
pub struct LinkCache {
    rows: Vec<Option<LinkRow>>,
    /// Rows filled since construction (cache-rebuild accounting for the
    /// scoped-invalidation regression tests; not part of any metric).
    rebuilds: u64,
}

impl LinkCache {
    /// An empty cache for a simulation with no nodes yet.
    #[must_use]
    pub fn new() -> Self {
        LinkCache::default()
    }

    /// Number of nodes the cache is sized for.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the cache is sized for zero nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Resizes for `n` nodes, dropping every cached row (a new node
    /// changes neighbor lists).
    pub fn resize(&mut self, n: usize) {
        self.rows.clear();
        self.rows.resize_with(n, || None);
    }

    /// Drops every cached row. Called on any event that may move a node
    /// (mobility tick, explicit position change).
    pub fn invalidate_all(&mut self) {
        for row in &mut self.rows {
            *row = None;
        }
    }

    /// Drops one node's cached row, leaving the others in place. The
    /// sharded engine calls this for exactly the rows a mobility tick
    /// could have changed; rows it leaves cached may retain stale
    /// *sub-sensitivity* powers toward moved far-away nodes, which the
    /// simulator provably never reads (interference is audibility-gated).
    pub fn invalidate_row(&mut self, i: usize) {
        if let Some(row) = self.rows.get_mut(i) {
            *row = None;
        }
    }

    /// Whether row `i` is currently cached (prefetch planning).
    #[must_use]
    pub fn has_row(&self, i: usize) -> bool {
        self.rows.get(i).is_some_and(Option::is_some)
    }

    /// The cached row for `i`, if one is filled this epoch.
    #[must_use]
    pub fn cached(&self, i: usize) -> Option<&LinkRow> {
        self.rows.get(i).and_then(Option::as_ref)
    }

    /// Number of row fills since construction — how many times a
    /// (re-)computation of some node's links actually ran.
    #[must_use]
    pub fn rebuilds(&self) -> u64 {
        self.rebuilds
    }

    /// Row `i`, computing it on first access this epoch over the given
    /// sorted candidate set. `compute(j)` must return the link budget
    /// between nodes `i` and `j`; it is only invoked for pairs no other
    /// cached row already covers (links are symmetric, so entry `i` of a
    /// cached row `j` is reused directly).
    pub fn row(
        &mut self,
        i: usize,
        cands: &[usize],
        compute: impl FnMut(usize) -> Link,
    ) -> &LinkRow {
        if !self.has_row(i) {
            let row = self.compute_row(i, cands, compute);
            self.install(i, row);
        }
        self.rows
            .get(i)
            .and_then(Option::as_ref)
            .expect("row just filled")
    }

    /// Installs a row computed elsewhere (the parallel prefetch path).
    /// Counts as a rebuild; an already-cached row is left untouched so
    /// prefetch can never clobber fresher lazy fills.
    pub fn install(&mut self, i: usize, row: LinkRow) {
        if !self.has_row(i) {
            self.rebuilds += 1;
            if let Some(slot) = self.rows.get_mut(i) {
                *slot = Some(row);
            }
        }
    }

    /// Computes the row value for `i` over `cands` without touching the
    /// cache — the pure function worker threads evaluate during parallel
    /// prefetch. Symmetric reuse only consults rows already cached at
    /// call time (deterministic: the cached set is fixed while workers
    /// run), so an installed prefetched row is bit-identical to the row
    /// a lazy fill would have produced.
    #[must_use]
    pub fn compute_row(
        &self,
        i: usize,
        cands: &[usize],
        mut compute: impl FnMut(usize) -> Link,
    ) -> LinkRow {
        let mut links = Vec::with_capacity(cands.len());
        let mut audible = Vec::new();
        for &j in cands {
            let link = if j == i {
                Link::silent()
            } else if let Some(other) = self.rows.get(j).and_then(Option::as_ref) {
                other.get(i)
            } else {
                compute(j)
            };
            if link.audible {
                audible.push(j);
            }
            links.push(link);
        }
        LinkRow {
            cand: cands.to_vec(),
            links,
            audible,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link(power_dbm: f64, audible: bool) -> Link {
        Link {
            power: Dbm::new(power_dbm),
            power_mw: Dbm::new(power_dbm).to_milliwatts().value(),
            audible,
        }
    }

    fn all(n: usize) -> Vec<usize> {
        (0..n).collect()
    }

    #[test]
    fn rows_fill_lazily_and_reuse_symmetry() {
        let mut cache = LinkCache::new();
        cache.resize(4);
        let mut computed = Vec::new();
        let row0 = cache.row(0, &all(4), |j| {
            computed.push((0, j));
            link(-80.0 - j as f64, true)
        });
        assert_eq!(row0.audible, vec![1, 2, 3]);
        assert_eq!(computed, vec![(0, 1), (0, 2), (0, 3)]);

        // Row 1 must reuse (0,1) from row 0 and only compute (1,2), (1,3).
        let mut computed = Vec::new();
        let row1 = cache.row(1, &all(4), |j| {
            computed.push((1, j));
            link(-90.0, false)
        });
        assert_eq!(computed, vec![(1, 2), (1, 3)]);
        assert!((row1.get(0).power.value() - (-81.0)).abs() < 1e-12);
        assert_eq!(row1.audible, vec![0]);

        // A second access computes nothing.
        let _ = cache.row(0, &all(4), |_| panic!("row 0 is cached"));
    }

    #[test]
    fn sparse_rows_answer_silent_for_non_candidates() {
        let mut cache = LinkCache::new();
        cache.resize(5);
        // Row 2's candidates are {1, 2, 3} only.
        let row = cache.row(2, &[1, 2, 3], |_| link(-70.0, true));
        assert_eq!(row.audible, vec![1, 3]);
        assert!(row.get(1).audible);
        assert!(!row.get(0).audible, "non-candidate must read silent");
        assert!(!row.get(4).audible);
        assert_eq!(row.get(4).power_mw, 0.0);
        // Entries iterate the candidate set in order.
        let idx: Vec<usize> = row.entries().map(|(j, _)| j).collect();
        assert_eq!(idx, vec![1, 2, 3]);
    }

    #[test]
    fn symmetric_reuse_across_sparse_rows() {
        let mut cache = LinkCache::new();
        cache.resize(4);
        let _ = cache.row(0, &[0, 1], |_| link(-77.0, true));
        // Row 1 reuses (0,1) from row 0; only (1,2) is fresh.
        let mut computed = Vec::new();
        let row1 = cache.row(1, &[0, 1, 2], |j| {
            computed.push(j);
            link(-95.0, false)
        });
        assert_eq!(computed, vec![2]);
        assert!((row1.get(0).power.value() - (-77.0)).abs() < 1e-12);
    }

    #[test]
    fn invalidate_all_recomputes() {
        let mut cache = LinkCache::new();
        cache.resize(2);
        let _ = cache.row(0, &all(2), |_| link(-80.0, true));
        cache.invalidate_all();
        let mut calls = 0;
        let _ = cache.row(0, &all(2), |_| {
            calls += 1;
            link(-80.0, true)
        });
        assert_eq!(calls, 1);
    }

    #[test]
    fn invalidate_row_is_scoped_and_counted() {
        let mut cache = LinkCache::new();
        cache.resize(3);
        let _ = cache.row(0, &all(3), |_| link(-80.0, true));
        let _ = cache.row(1, &all(3), |_| link(-85.0, true));
        assert_eq!(cache.rebuilds(), 2);
        cache.invalidate_row(0);
        // Row 1 must survive; row 0 must refill (one more rebuild).
        let _ = cache.row(1, &all(3), |_| panic!("row 1 was not invalidated"));
        let mut calls = 0;
        let _ = cache.row(0, &all(3), |_| {
            calls += 1;
            link(-80.0, true)
        });
        assert_eq!(calls, 1, "only the uncached pair (0,2) is recomputed");
        assert_eq!(cache.rebuilds(), 3);
    }

    #[test]
    fn resize_clears_and_grows() {
        let mut cache = LinkCache::new();
        cache.resize(2);
        let _ = cache.row(1, &all(2), |_| link(-80.0, true));
        cache.resize(3);
        assert_eq!(cache.len(), 3);
        let mut calls = 0;
        let row = cache.row(1, &all(3), |_| {
            calls += 1;
            link(-120.0, false)
        });
        assert_eq!(calls, 2, "old rows must not survive a resize");
        assert!(row.audible.is_empty());
    }

    #[test]
    fn compute_row_matches_lazy_fill_bit_for_bit() {
        let budget = |i: usize, j: usize| link(-70.0 - (i + j) as f64, !(i + j).is_multiple_of(3));
        let mut lazy = LinkCache::new();
        lazy.resize(4);
        let _ = lazy.row(1, &all(4), |j| budget(1, j));
        let expected = lazy.row(2, &all(4), |j| budget(2, j)).clone();

        let mut pre = LinkCache::new();
        pre.resize(4);
        let _ = pre.row(1, &all(4), |j| budget(1, j));
        let computed = pre.compute_row(2, &all(4), |j| budget(2, j));
        pre.install(2, computed);
        let row = pre.row(2, &all(4), |_| panic!("row 2 was installed"));
        assert_eq!(row.audible, expected.audible);
        for j in 0..4 {
            assert_eq!(
                row.get(j).power.value().to_bits(),
                expected.get(j).power.value().to_bits()
            );
            assert_eq!(
                row.get(j).power_mw.to_bits(),
                expected.get(j).power_mw.to_bits()
            );
            assert_eq!(row.get(j).audible, expected.get(j).audible);
        }
        assert_eq!(pre.rebuilds(), lazy.rebuilds());
    }

    #[test]
    fn install_never_clobbers_a_cached_row() {
        let mut cache = LinkCache::new();
        cache.resize(2);
        let _ = cache.row(0, &all(2), |_| link(-60.0, true));
        let stale = cache.compute_row(0, &all(2), |_| link(-120.0, false));
        cache.install(0, stale);
        assert!(cache.row(0, &all(2), |_| panic!("cached")).get(1).audible);
    }
}
