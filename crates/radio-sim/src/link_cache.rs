//! Per-topology-epoch cache of link budgets and audible-neighbor lists.
//!
//! Path-loss and shadowing math is deterministic in the endpoint
//! positions, so between position changes every `(a, b)` pair has a
//! fixed received power. The uncached simulator nevertheless recomputes
//! it (two `log10` calls and a `powf`) for every pair on every frame —
//! the dominant cost of large simulations. [`LinkCache`] computes each
//! link budget **once per topology epoch**:
//!
//! * Rows are filled lazily: the first transmission from node `i` in an
//!   epoch computes row `i`; later frames are array lookups.
//! * Links are symmetric (equal antenna gains, per-pair shadowing), so a
//!   row reuses entries already computed by other rows bit-for-bit.
//! * Each row carries the node's **audible-neighbor list** — the sorted
//!   indices of nodes that can hear it — so transmission fan-out,
//!   interferer seeding and CAD scans iterate only nodes that matter
//!   instead of all N.
//!
//! The cache holds *values*, never decisions: the simulator invalidates
//! it wholesale on every mobility tick, node addition and explicit
//! position change, which keeps cached and uncached runs byte-identical
//! (see `tests/link_cache_diff.rs`).

use lora_phy::power::Dbm;

/// The cached budget of one directed link (symmetric in practice).
#[derive(Clone, Copy, Debug)]
pub struct Link {
    /// Received power in dBm.
    pub power: Dbm,
    /// Received power in linear milliwatts (interference sums).
    pub power_mw: f64,
    /// Whether the power exceeds the shared modulation's sensitivity.
    pub audible: bool,
}

impl Link {
    /// A self-link / placeholder carrying no power.
    fn silent() -> Self {
        Link {
            power: Dbm::new(f64::NEG_INFINITY),
            power_mw: 0.0,
            audible: false,
        }
    }
}

/// One node's cached links to every other node.
#[derive(Clone, Debug)]
pub struct LinkRow {
    /// Link budget to every node index (entry `i` of row `i` is silent).
    pub links: Vec<Link>,
    /// Sorted indices of the nodes that can hear this node.
    pub audible: Vec<usize>,
}

/// Lazily filled symmetric matrix of link budgets, invalidated wholesale
/// whenever any position may have changed — or row-by-row by the sharded
/// engine, which knows which spatial bands a mobility tick touched.
#[derive(Debug, Default)]
pub struct LinkCache {
    rows: Vec<Option<LinkRow>>,
    /// Rows filled since construction (cache-rebuild accounting for the
    /// scoped-invalidation regression tests; not part of any metric).
    rebuilds: u64,
}

impl LinkCache {
    /// An empty cache for a simulation with no nodes yet.
    #[must_use]
    pub fn new() -> Self {
        LinkCache::default()
    }

    /// Number of nodes the cache is sized for.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the cache is sized for zero nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Resizes for `n` nodes, dropping every cached row (a new node
    /// changes row lengths and neighbor lists).
    pub fn resize(&mut self, n: usize) {
        self.rows.clear();
        self.rows.resize_with(n, || None);
    }

    /// Drops every cached row. Called on any event that may move a node
    /// (mobility tick, explicit position change).
    pub fn invalidate_all(&mut self) {
        for row in &mut self.rows {
            *row = None;
        }
    }

    /// Drops one node's cached row, leaving the others in place. The
    /// sharded engine calls this for exactly the rows a mobility tick
    /// could have changed; rows it leaves cached may retain stale
    /// *sub-sensitivity* powers toward moved far-away nodes, which the
    /// simulator provably never reads (interference is audibility-gated).
    pub fn invalidate_row(&mut self, i: usize) {
        if let Some(row) = self.rows.get_mut(i) {
            *row = None;
        }
    }

    /// Number of row fills since construction — how many times a
    /// (re-)computation of some node's links actually ran.
    #[must_use]
    pub fn rebuilds(&self) -> u64 {
        self.rebuilds
    }

    /// Row `i`, computing it on first access this epoch. `compute(j)`
    /// must return the link budget between nodes `i` and `j`; it is only
    /// invoked for pairs no other cached row already covers (links are
    /// symmetric, so entry `i` of a cached row `j` is reused directly).
    pub fn row(&mut self, i: usize, mut compute: impl FnMut(usize) -> Link) -> &LinkRow {
        if self.rows[i].is_none() {
            self.rebuilds += 1;
            let n = self.rows.len();
            let mut links = Vec::with_capacity(n);
            let mut audible = Vec::new();
            for j in 0..n {
                let link = if j == i {
                    Link::silent()
                } else if let Some(other) = &self.rows[j] {
                    other.links[i]
                } else {
                    compute(j)
                };
                if link.audible {
                    audible.push(j);
                }
                links.push(link);
            }
            self.rows[i] = Some(LinkRow { links, audible });
        }
        self.rows[i].as_ref().expect("row just filled")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link(power_dbm: f64, audible: bool) -> Link {
        Link {
            power: Dbm::new(power_dbm),
            power_mw: Dbm::new(power_dbm).to_milliwatts().value(),
            audible,
        }
    }

    #[test]
    fn rows_fill_lazily_and_reuse_symmetry() {
        let mut cache = LinkCache::new();
        cache.resize(4);
        let mut computed = Vec::new();
        let row0 = cache.row(0, |j| {
            computed.push((0, j));
            link(-80.0 - j as f64, true)
        });
        assert_eq!(row0.audible, vec![1, 2, 3]);
        assert_eq!(computed, vec![(0, 1), (0, 2), (0, 3)]);

        // Row 1 must reuse (0,1) from row 0 and only compute (1,2), (1,3).
        let mut computed = Vec::new();
        let row1 = cache.row(1, |j| {
            computed.push((1, j));
            link(-90.0, false)
        });
        assert_eq!(computed, vec![(1, 2), (1, 3)]);
        assert!((row1.links[0].power.value() - (-81.0)).abs() < 1e-12);
        assert_eq!(row1.audible, vec![0]);

        // A second access computes nothing.
        let _ = cache.row(0, |_| panic!("row 0 is cached"));
    }

    #[test]
    fn invalidate_all_recomputes() {
        let mut cache = LinkCache::new();
        cache.resize(2);
        let _ = cache.row(0, |_| link(-80.0, true));
        cache.invalidate_all();
        let mut calls = 0;
        let _ = cache.row(0, |_| {
            calls += 1;
            link(-80.0, true)
        });
        assert_eq!(calls, 1);
    }

    #[test]
    fn invalidate_row_is_scoped_and_counted() {
        let mut cache = LinkCache::new();
        cache.resize(3);
        let _ = cache.row(0, |_| link(-80.0, true));
        let _ = cache.row(1, |_| link(-85.0, true));
        assert_eq!(cache.rebuilds(), 2);
        cache.invalidate_row(0);
        // Row 1 must survive; row 0 must refill (one more rebuild).
        let _ = cache.row(1, |_| panic!("row 1 was not invalidated"));
        let mut calls = 0;
        let _ = cache.row(0, |_| {
            calls += 1;
            link(-80.0, true)
        });
        assert_eq!(calls, 1, "only the uncached pair (0,2) is recomputed");
        assert_eq!(cache.rebuilds(), 3);
    }

    #[test]
    fn resize_clears_and_grows() {
        let mut cache = LinkCache::new();
        cache.resize(2);
        let _ = cache.row(1, |_| link(-80.0, true));
        cache.resize(3);
        assert_eq!(cache.len(), 3);
        let mut calls = 0;
        let row = cache.row(1, |_| {
            calls += 1;
            link(-120.0, false)
        });
        assert_eq!(calls, 2, "old rows must not survive a resize");
        assert!(row.audible.is_empty());
    }
}
