//! Parallel batch commit: per-band worker execution of lookahead batches.
//!
//! The sharded run loop drains one band's queue per lookahead window on
//! the coordinator. This module promotes that window to a unit of
//! *parallel* work: several zone-disjoint bands commit their entire
//! batches concurrently — firmware dispatch, radio state machines,
//! medium bookkeeping and all — and the coordinator then replays their
//! buffered side effects in the global `(time, seq)` order, so every
//! observable output (traces, metrics, RNG draws, queue contents,
//! `events_processed`) is byte-identical to the sequential engine.
//!
//! # The planner
//!
//! A batch window is `[t0, H)` where `H = min(t0 + lookahead,
//! coordinator head, until + 1ns)`. Every band with homed nodes gets a
//! *span*: the x-interval within `r_max` of its extent (the interval
//! spanned by its homed nodes' current positions and the origins of
//! in-flight transmissions by its homed senders — everything a batch
//! over that band can touch). Bands whose spans overlap are merged into
//! *groups*; group spans are pairwise disjoint in metres by
//! construction, which is the actual physical isolation criterion —
//! band *indices* routinely collide (two far-apart clusters both reach
//! into the one empty band between them) while their metre spans stay
//! a hundred kilometres apart. A group is runnable when one of its
//! member queues has a head before `H`; if more groups are runnable
//! than workers, the earliest-headed ones run and `H` shrinks to the
//! first excluded head, so the batch still consumes *exactly* the set
//! of events before `H` — a contiguous prefix of the global order.
//! Within a window, cross-band effects are impossible by the lookahead
//! argument (see [`crate::shard`]), and span disjointness makes each
//! worker's writes — radios, RNG streams, link rows — touch only nodes
//! it owns (ownership is by current position: the group whose span
//! contains the node's x-coordinate). Band rosters are *frozen* during
//! the window: workers read them (plus their own staged overlay —
//! remote groups' in-window frames would be filtered by the distance
//! bound anyway) and the merge walk performs every registration and
//! removal in global order, exactly like the sequential engine.
//!
//! # Determinism
//!
//! * **Sequence numbers.** Workers never touch the coordinator's seq
//!   counter. A worker records each event it creates with a *local*
//!   index; the merge walk allocates real seqs from
//!   [`EventQueue::alloc_seq`] in global replay order, which is exactly
//!   the order the sequential engine would have allocated them.
//! * **Frame ids.** A worker registers transmissions under provisional
//!   ids (bit 63 set, worker index + local counter below). The merge
//!   walk calls [`Medium::begin_tx`] in global order, so real ids come
//!   out identical to the sequential run; provisional ids in rosters,
//!   radios, traces and flushed events are then rewritten. Provisional
//!   ids sort above all real ids and ascend per worker, so every
//!   ordered structure stays ordered across the rewrite and interferer
//!   float sums are bit-identical.
//! * **RNG.** Parallel commit requires [`SimConfig::rng_streams`]
//!   (enforced at [`Simulator::start`]): per-node generators are
//!   pre-minted, each worker gets `&mut` access to exactly its owned
//!   nodes' streams, and draw order per stream is band-local.
//! * **Timers.** A worker owns its band's queue, so generation
//!   tombstoning works unchanged; in-window timers live in a local
//!   `(at, local idx)` min-heap, which replays the same order the
//!   queue would have (pre-window seqs all precede in-window ones).
//!
//! The closure run by [`par::commit_bands`] is a meshlint `p1` commit
//! region: it must not reach coordinator-only state (the global seq
//! counter, the live trace writer, the shared `Medium` registry's
//! mutable half).

use std::collections::BinaryHeap;
use std::sync::Arc;
use std::time::Duration;

use lora_phy::modulation::LoRaModulation;
use lora_phy::power::Dbm;
use lora_phy::propagation::Position;

use super::{link_between, NodeSlot, NodeState, SimConfig, Simulator};
use crate::event::{EventQueue, FrameId, SimEvent};
use crate::firmware::{Context, Firmware, NodeId, RadioCommand};
use crate::grid::Grid;
use crate::link_cache::{Link, LinkCache, LinkRow};
use crate::medium::{Medium, RxOutcome};
use crate::metrics::Metrics;
use crate::par;
use crate::radio::{RadioState, Reception};
use crate::rng::SimRng;
use crate::shard::Partitioner;
use crate::time::SimTime;
use crate::trace::TraceEvent;

/// Provisional frame ids set bit 63 — above every real id the medium
/// will ever allocate, so rosters stay sorted when workers append them.
const PROVISIONAL: u64 = 1 << 63;
/// Bits 40..63 carry the worker index, bits 0..40 the staging counter.
const WORKER_SHIFT: u32 = 40;
const COUNTER_MASK: u64 = (1 << WORKER_SHIFT) - 1;

/// No owner: the node's band is outside every accepted zone this batch.
const NO_OWNER: u8 = u8::MAX;

/// Where a buffered record's sequence number comes from.
#[derive(Clone, Copy, Debug)]
enum SeqSrc {
    /// A pre-batch event popped from the band queue: its real seq.
    Real(u64),
    /// An in-window creation: the worker-local creation index, resolved
    /// to a real seq by the merge walk.
    Local(u32),
}

/// One dispatched event and the counts of side-channel entries it
/// appended (consumed in order by the merge walk).
#[derive(Clone, Copy, Debug)]
struct Rec {
    at: SimTime,
    src: SeqSrc,
    trace_n: u32,
    creat_n: u32,
    staged_n: u32,
    ended_n: u32,
}

/// An event created in-window, flushed to its home queue after the
/// batch unless consumed in-window (`consumed` flag in the scratch).
#[derive(Clone, Debug)]
struct Creation {
    at: SimTime,
    node: u32,
    ev: SimEvent,
}

/// A transmission begun in-window under a provisional id; the merge
/// walk performs the real [`Medium::begin_tx`] in global order.
#[derive(Clone, Debug)]
struct Staged {
    sender: NodeId,
    origin: Position,
    start: SimTime,
    payload: Arc<[u8]>,
}

/// An in-window creation that may fire within the same window: ordered
/// by `(at, local idx)`, which equals `(time, seq)` order because
/// in-window seqs are allocated in creation order and all exceed every
/// pre-batch seq.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Pending {
    at: SimTime,
    k: u32,
    ev: SimEvent,
}

impl Ord for Pending {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        other.at.cmp(&self.at).then_with(|| other.k.cmp(&self.k))
    }
}
impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Per-worker buffers, pooled in [`CommitScratch`] and reused batch to
/// batch. Firmware-free so the pool lives in the non-generic
/// [`super::ShardState`].
#[derive(Debug, Default)]
pub(super) struct WorkerScratch {
    records: Vec<Rec>,
    trace: Vec<(SimTime, TraceEvent)>,
    creations: Vec<Creation>,
    consumed: Vec<bool>,
    staged: Vec<Staged>,
    ended: Vec<FrameId>,
    rows: Vec<(usize, LinkRow)>,
    metrics: Metrics,
    events: u64,
    pending: BinaryHeap<Pending>,
    commands: Vec<RadioCommand>,
    fanout: Vec<(usize, Link)>,
    interferers: Vec<(FrameId, NodeId, Position)>,
    active: Vec<(NodeId, Position)>,
    cands: Vec<usize>,
    rx_view: Vec<usize>,
}

impl WorkerScratch {
    fn reset(&mut self) {
        self.records.clear();
        self.trace.clear();
        self.creations.clear();
        self.consumed.clear();
        self.staged.clear();
        self.ended.clear();
        self.rows.clear();
        self.metrics = Metrics::new();
        self.events = 0;
        self.pending.clear();
        self.fanout.clear();
        self.interferers.clear();
        self.active.clear();
        self.rx_view.clear();
    }
}

/// A *band group*: the unit one worker commits. Bands whose spans
/// overlap in metres are merged into one group (a dense cluster split
/// across several narrow bands is the common case), so group spans are
/// pairwise disjoint by construction and same-instant heads inside a
/// cluster never force the horizon shut.
#[derive(Clone, Copy, Debug)]
struct Group {
    /// Member bands: `members[mstart..mend]`. All of the group's bands,
    /// whether or not their queues have work this window — a worker may
    /// cancel or schedule timers on any member queue.
    mstart: usize,
    mend: usize,
    /// Inclusive span in metres the group's batch may touch.
    zlo: f64,
    zhi: f64,
    /// Earliest member head before the horizon — the group's place in
    /// the global order; `None` when no member has due work.
    head: Option<(SimTime, u64)>,
}

/// Planner + merge scratch, pooled in [`super::ShardState`].
#[derive(Debug, Default)]
pub(super) struct CommitScratch {
    workers: Vec<WorkerScratch>,
    /// Per band: x-extent of homed nodes and in-flight homed origins.
    extent: Vec<(f64, f64)>,
    /// Band → queue-head key when due before the horizon.
    heads: Vec<Option<(SimTime, u64)>>,
    /// Band spans `(lo_m, hi_m, band)`, sorted so overlapping spans are
    /// adjacent.
    zorder: Vec<(f64, f64, usize)>,
    /// Accepted band groups, sorted by span for ownership lookup.
    groups: Vec<Group>,
    /// Flat member-band storage the groups index into.
    members: Vec<usize>,
    /// Node → owning worker by current position (`NO_OWNER` if none).
    owner: Vec<u8>,
    /// Node → index into its owner's owned-slot list.
    oslot: Vec<u32>,
    /// Per worker: local creation index → real seq (merge walk).
    seq_maps: Vec<Vec<u64>>,
    /// Per worker: staging counter → real frame id (merge walk).
    frame_maps: Vec<Vec<FrameId>>,
    /// Post-batch rx-node index rebuild buffer.
    rx_rebuild: Vec<usize>,
}

/// The state every band worker reads *shared* during a batch. All of it
/// is immutable while workers run: positions, liveness, the medium's
/// in-flight registry, the link cache and the grid only change on
/// coordinator events, which are never inside a window.
struct Shared<'a> {
    medium: &'a Medium,
    cache: &'a LinkCache,
    grid: &'a Grid,
    state: &'a [NodeState],
    link_loss: &'a std::collections::BTreeMap<(usize, usize), f64>,
    cfg: &'a SimConfig,
    parts: &'a Partitioner,
    home: &'a [usize],
    /// Band rosters, frozen for the whole window: registrations and
    /// removals are buffered and replayed by the merge walk.
    active: &'a [Vec<(FrameId, NodeId, Position)>],
    owner: &'a [u8],
    oslot: &'a [u32],
    /// The exclusive batch horizon `H`.
    limit: SimTime,
    preamble: Duration,
    cad_duration: Duration,
}

/// One band group's executor: drains its member queues (plus in-window
/// creations) up to the horizon with a k-way `(time, seq)` merge,
/// buffering every side effect for the coordinator's merge walk.
struct BandWorker<'a, F: Firmware> {
    /// This worker's index (provisional-id namespace).
    w: u32,
    /// The group's member band queues, `(band, queue)`.
    queues: Vec<(usize, &'a mut EventQueue)>,
    owned_slots: Vec<&'a mut NodeSlot<F>>,
    owned_rngs: Vec<&'a mut SimRng>,
    scratch: &'a mut WorkerScratch,
    ctx: &'a Shared<'a>,
    now: SimTime,
}

impl<F: Firmware> BandWorker<'_, F> {
    fn slot(&mut self, i: usize) -> &mut NodeSlot<F> {
        debug_assert_eq!(u32::from(self.ctx.owner[i]), self.w, "node {i} not owned");
        self.owned_slots[self.ctx.oslot[i] as usize]
    }

    fn rng(&mut self, i: usize) -> &mut SimRng {
        debug_assert_eq!(u32::from(self.ctx.owner[i]), self.w, "node {i} not owned");
        self.owned_rngs[self.ctx.oslot[i] as usize]
    }

    /// The member queue owning `band` (every dispatch target and every
    /// in-window creation is homed in a member band).
    fn queue_for(&mut self, band: usize) -> &mut EventQueue {
        let qi = self
            .queues
            .iter()
            .position(|&(b, _)| b == band)
            .expect("home band not in this worker's group");
        self.queues[qi].1
    }

    /// Drains the group up to the horizon: pre-batch events k-way
    /// merged across member queues by `(time, seq)`, interleaved with
    /// in-window creations by `(time, creation idx)` — real before
    /// local at equal times, because every pre-batch seq precedes every
    /// in-window one.
    fn drain(&mut self) {
        loop {
            let mut qk: Option<(SimTime, u64, usize)> = None;
            for (qi, (_, q)) in self.queues.iter_mut().enumerate() {
                if let Some((at, seq)) = q.peek_key() {
                    if qk.is_none_or(|(bt, bs, _)| (at, seq) < (bt, bs)) {
                        qk = Some((at, seq, qi));
                    }
                }
            }
            let pk = self.scratch.pending.peek().map(|p| (p.at, p.k));
            let take_q = match (qk, pk) {
                (Some((qt, _, _)), Some((pt, _))) => qt <= pt,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            if take_q {
                let (at, seq, qi) = qk.expect("matched Some");
                if at >= self.ctx.limit {
                    break;
                }
                let (at, ev) = self.queues[qi].1.pop().expect("peeked");
                self.dispatch_w(at, SeqSrc::Real(seq), ev);
            } else {
                let (at, _) = pk.expect("matched Some");
                if at >= self.ctx.limit {
                    break;
                }
                let p = self.scratch.pending.pop().expect("peeked");
                self.scratch.consumed[p.k as usize] = true;
                if let SimEvent::Timer(node, gen) = p.ev {
                    // Tombstoned while pending (reschedule or cancel):
                    // the queue would have dropped it the same way.
                    if gen != self.queue_for(self.ctx.home[node.0]).timer_generation(node) {
                        continue;
                    }
                }
                self.dispatch_w(p.at, SeqSrc::Local(p.k), p.ev);
            }
        }
    }

    /// Advances the local clock and handles one event, recording the
    /// side-channel deltas it produced.
    fn dispatch_w(&mut self, at: SimTime, src: SeqSrc, event: SimEvent) {
        debug_assert!(at >= self.now, "time went backwards in batch");
        self.now = at;
        self.scratch.events += 1;
        let t0 = self.scratch.trace.len();
        let c0 = self.scratch.creations.len();
        let s0 = self.scratch.staged.len();
        let e0 = self.scratch.ended.len();
        match event {
            SimEvent::Timer(node, _) => self.handle_timer_w(node),
            SimEvent::TxEnd(node, frame) => self.handle_tx_end_w(node, frame),
            SimEvent::RxEnd(node, frame) => self.handle_rx_end_w(node, frame),
            SimEvent::CadEnd(node) => self.handle_cad_end_w(node),
            SimEvent::CadBusyReport(node) => {
                if self.ctx.state[node.0].alive {
                    self.scratch.metrics.record_cad(node, true);
                    self.fire_w(node.0, |fw, ctx| fw.on_cad_done(true, ctx));
                }
            }
            // Externally injected events live on the coordinator queue
            // and are never handed to a band worker.
            SimEvent::App(..) | SimEvent::Kill(_) | SimEvent::Revive(_) => {
                unreachable!("coordinator event in a band batch")
            }
            SimEvent::MobilityTick => unreachable!("coordinator event in a band batch"),
        }
        let rec = Rec {
            at,
            src,
            trace_n: (self.scratch.trace.len() - t0) as u32,
            creat_n: (self.scratch.creations.len() - c0) as u32,
            staged_n: (self.scratch.staged.len() - s0) as u32,
            ended_n: (self.scratch.ended.len() - e0) as u32,
        };
        self.scratch.records.push(rec);
    }

    /// Buffers an event creation; events due inside the window also go
    /// to the local pending heap (they are always group-local: the only
    /// sub-lookahead creations are a node's own timers and CAD endings).
    fn create(&mut self, at: SimTime, node: usize, ev: SimEvent) {
        let k = self.scratch.creations.len() as u32;
        let in_window = at < self.ctx.limit;
        if in_window {
            debug_assert!(
                self.queues.iter().any(|&(b, _)| b == self.ctx.home[node]),
                "in-window creation must stay on the worker's own queues"
            );
            self.scratch.pending.push(Pending {
                at,
                k,
                ev: ev.clone(),
            });
        }
        self.scratch.creations.push(Creation {
            at,
            node: node as u32,
            ev,
        });
        self.scratch.consumed.push(false);
    }

    /// [`Simulator::fire`], worker edition: runs a firmware callback on
    /// an owned node and processes its commands.
    fn fire_w<R>(&mut self, i: usize, f: impl FnOnce(&mut F, &mut Context) -> R) -> R {
        let now = self.now;
        let buffer = std::mem::take(&mut self.scratch.commands);
        let slot = self.slot(i);
        let mut ctx = Context::with_buffer(now.as_duration(), buffer);
        let result = f(&mut slot.firmware, &mut ctx);
        let mut commands = ctx.take_requests();
        for cmd in commands.drain(..) {
            match cmd {
                RadioCommand::Transmit(bytes) => self.start_tx_w(i, bytes),
                RadioCommand::StartCad => self.start_cad_w(i),
            }
        }
        self.scratch.commands = commands;
        self.sync_wake_w(i);
        result
    }

    /// [`Simulator::sync_wake`], worker edition. The node's home-band
    /// queue (a group member) owns its generation table, so tombstoning
    /// works unchanged: cancel-then-stamp here equals the sequential
    /// `schedule_timer_seq` (one bump, fresh stamp), with the enqueue
    /// deferred to the flush (or the pending heap when due in-window).
    fn sync_wake_w(&mut self, i: usize) {
        if !self.ctx.state[i].alive {
            return;
        }
        let now = self.now;
        let tombstones = self.ctx.cfg.timer_tombstones;
        let home = self.ctx.home[i];
        let slot = self.slot(i);
        let wake = slot.firmware.next_wake();
        if let Some(t) = wake {
            if slot.scheduled_wake != Some(t) {
                slot.scheduled_wake = Some(t);
                let at = SimTime::from(t).max(now);
                let node = NodeId(i);
                let q = self.queue_for(home);
                if tombstones {
                    q.cancel_timer(node);
                }
                let gen = q.timer_generation(node);
                self.create(at, i, SimEvent::Timer(node, gen));
            }
        } else {
            if tombstones && self.slot(i).scheduled_wake.is_some() {
                self.queue_for(home).cancel_timer(NodeId(i));
            }
            self.slot(i).scheduled_wake = None;
        }
    }

    fn handle_timer_w(&mut self, node: NodeId) {
        if !self.ctx.state[node.0].alive {
            return;
        }
        let now = self.now;
        if self.ctx.cfg.timer_tombstones {
            debug_assert!(
                self.slot(node.0)
                    .firmware
                    .next_wake()
                    .is_some_and(|t| SimTime::from(t) <= now),
                "live timer fired before its firmware wake time"
            );
            self.slot(node.0).scheduled_wake = None;
            self.fire_w(node.0, |fw, ctx| fw.on_timer(ctx));
            return;
        }
        match self.slot(node.0).firmware.next_wake() {
            Some(t) if SimTime::from(t) <= now => {
                self.slot(node.0).scheduled_wake = None;
                self.fire_w(node.0, |fw, ctx| fw.on_timer(ctx));
            }
            _ => {
                self.slot(node.0).scheduled_wake = None;
                self.sync_wake_w(node.0);
            }
        }
    }

    fn rx_insert_w(&mut self, i: usize) {
        if let Err(pos) = self.scratch.rx_view.binary_search(&i) {
            self.scratch.rx_view.insert(pos, i);
        }
    }

    fn rx_remove_w(&mut self, i: usize) {
        if let Ok(pos) = self.scratch.rx_view.binary_search(&i) {
            self.scratch.rx_view.remove(pos);
        }
    }

    /// Whether `frame` is still on the air with its preamble running —
    /// the worker view of `medium.get(..) + in_preamble(..)`, covering
    /// frames staged this window and frames ended this window.
    fn in_preamble_w(&self, frame: FrameId) -> bool {
        if self.scratch.ended.contains(&frame) {
            return false;
        }
        let start = if frame.0 & PROVISIONAL != 0 {
            debug_assert_eq!((frame.0 >> WORKER_SHIFT) & 0x7F_FFFF, u64::from(self.w));
            self.scratch.staged[(frame.0 & COUNTER_MASK) as usize].start
        } else {
            match self.ctx.medium.get(frame) {
                Some(tx) => tx.start,
                None => return false,
            }
        };
        self.now.since(start) < self.ctx.preamble
    }

    /// Sender and payload of an in-flight frame (staged or pre-batch).
    fn tx_info(&self, frame: FrameId) -> (NodeId, Arc<[u8]>) {
        if frame.0 & PROVISIONAL != 0 {
            let s = &self.scratch.staged[(frame.0 & COUNTER_MASK) as usize];
            (s.sender, s.payload.clone())
        } else {
            let tx = self.ctx.medium.get(frame).expect("frame just registered");
            (tx.sender, tx.payload.clone())
        }
    }

    /// Origin of an in-flight frame, `None` when it was aborted before
    /// the window (pre-window kill).
    fn tx_origin(&self, frame: FrameId) -> Option<Position> {
        if frame.0 & PROVISIONAL != 0 {
            Some(self.scratch.staged[(frame.0 & COUNTER_MASK) as usize].origin)
        } else {
            self.ctx.medium.get(frame).map(|tx| tx.origin)
        }
    }

    /// Makes sure a row value for `i` exists: in the shared cache (from
    /// before the batch) or in this worker's overlay. Overlay values are
    /// bit-identical to what the sequential lazy fill would have
    /// produced — [`LinkCache::compute_row`]'s symmetric reuse reads
    /// only pre-batch rows, and link budgets are symmetric bit-for-bit.
    fn ensure_row_w(&mut self, i: usize) {
        if self.ctx.cache.has_row(i) || self.scratch.rows.iter().any(|&(k, _)| k == i) {
            return;
        }
        let mut cands = std::mem::take(&mut self.scratch.cands);
        if self.ctx.cfg.spatial_grid {
            self.ctx
                .grid
                .candidates_into(self.ctx.state[i].position, &mut cands);
        } else {
            cands.clear();
            cands.extend(0..self.ctx.state.len());
        }
        let (medium, state) = (self.ctx.medium, self.ctx.state);
        let row = self
            .ctx
            .cache
            .compute_row(i, &cands, |k| link_between(medium, state, i, k));
        self.scratch.rows.push((i, row));
        self.scratch.cands = cands;
    }

    fn row_for(&self, i: usize) -> Option<&LinkRow> {
        if let Some(row) = self.ctx.cache.cached(i) {
            return Some(row);
        }
        self.scratch
            .rows
            .iter()
            .find(|&&(k, _)| k == i)
            .map(|(_, row)| row)
    }

    /// [`Simulator::link_for`], worker edition.
    fn link_for_w(&mut self, i: usize, j: usize) -> Link {
        self.ensure_row_w(i);
        self.row_for(i).map_or_else(Link::silent, |row| row.get(j))
    }

    fn active_tx_power_mw_w(&mut self, sender: usize, origin: Position, rx: usize) -> f64 {
        if self.ctx.cfg.link_cache && self.ctx.state[sender].position == origin {
            self.link_for_w(sender, rx).power_mw
        } else {
            self.ctx
                .medium
                .received_power(
                    &origin,
                    &self.ctx.state[rx].position,
                    NodeId(sender),
                    NodeId(rx),
                )
                .to_milliwatts()
                .value()
        }
    }

    fn active_tx_audible_w(&mut self, sender: usize, origin: Position, rx: usize) -> bool {
        if self.ctx.cfg.link_cache && self.ctx.state[sender].position == origin {
            self.link_for_w(sender, rx).audible
        } else {
            let power = self.ctx.medium.received_power(
                &origin,
                &self.ctx.state[rx].position,
                NodeId(sender),
                NodeId(rx),
            );
            self.ctx.medium.audible(power)
        }
    }

    /// Provisional id of this worker's `k`-th staged transmission.
    fn staged_id(&self, k: usize) -> FrameId {
        FrameId(PROVISIONAL | (u64::from(self.w) << WORKER_SHIFT) | k as u64)
    }

    /// [`Simulator::channel_busy`], worker edition. The frozen roster of
    /// the node's band minus this worker's in-window removals, plus its
    /// own staged overlay, yields the same audible set in the same scan
    /// order as the live sequential roster: remote groups' in-window
    /// frames (and their removed pre-window frames) all originate more
    /// than `r_max` away, so the audibility filter drops them either
    /// way, and this worker's own additions ascend in creation order —
    /// exactly their merged frame-id order.
    fn channel_busy_w(&mut self, i: usize, except: Option<NodeId>) -> bool {
        let mut active = std::mem::take(&mut self.scratch.active);
        active.clear();
        let band = self.ctx.parts.band_of(self.ctx.state[i].position.x);
        active.extend(
            self.ctx.active[band]
                .iter()
                .filter(|&&(f, _, _)| !self.scratch.ended.contains(&f))
                .map(|&(_, s, origin)| (s, origin)),
        );
        active.extend(self.scratch.staged.iter().map(|s| (s.sender, s.origin)));
        let mut busy = false;
        for &(sender, origin) in &active {
            if Some(sender) == except || sender.0 == i {
                continue;
            }
            if self.active_tx_audible_w(sender.0, origin, i) {
                busy = true;
                break;
            }
        }
        self.scratch.active = active;
        busy
    }

    /// [`Simulator::start_tx`], worker edition: the transmission is
    /// staged under a provisional frame id; the merge walk performs the
    /// real registration in global order.
    fn start_tx_w(&mut self, i: usize, bytes: Arc<[u8]>) {
        if bytes.len() > LoRaModulation::MAX_PHY_PAYLOAD {
            self.scratch.metrics.tx_oversized += 1;
            return;
        }
        if !self.ctx.state[i].alive {
            self.scratch.metrics.tx_while_dead += 1;
            return;
        }
        let now = self.now;
        match *self.slot(i).radio.state() {
            RadioState::Idle => {}
            RadioState::Rx { .. } => {
                self.scratch.metrics.rx_aborted_by_tx += 1;
                self.slot(i).radio.to_idle(now);
                self.rx_remove_w(i);
            }
            RadioState::Tx { .. } | RadioState::Cad { .. } | RadioState::Off => {
                self.scratch.metrics.tx_while_busy += 1;
                return;
            }
        }
        let sender = NodeId(i);
        let origin = self.ctx.state[i].position;
        let len = bytes.len();
        let airtime = self.ctx.medium.airtime(len);
        let frame = FrameId(
            PROVISIONAL | (u64::from(self.w) << WORKER_SHIFT) | self.scratch.staged.len() as u64,
        );
        let end = now + airtime;
        self.scratch.staged.push(Staged {
            sender,
            origin,
            start: now,
            payload: bytes,
        });
        self.slot(i).radio.begin_tx(now, frame, end);
        // airtime ≥ preamble = lookahead, so the TxEnd always lands at
        // or beyond the horizon: a creation, never a pending event.
        debug_assert!(end >= self.ctx.limit);
        self.create(end, i, SimEvent::TxEnd(sender, frame));
        // Roster registration happens in the merge walk (rosters are
        // frozen); until then the staged overlay stands in for it.
        self.scratch.metrics.record_tx(sender, airtime);
        self.scratch.trace.push((
            now,
            TraceEvent::TxStart {
                node: sender,
                frame,
                len,
            },
        ));

        // Fan-out, audible receivers only. The sequential uncached loop
        // visits inaudible nodes too, but provably mutates nothing
        // there (every branch is audibility-gated), so the filter keeps
        // the worker's writes inside its zone without changing any
        // outcome: audible ⇒ within r_max of the origin ⇒ owned.
        let mut fanout = std::mem::take(&mut self.scratch.fanout);
        fanout.clear();
        if self.ctx.cfg.link_cache {
            self.ensure_row_w(i);
            if let Some(row) = self.row_for(i) {
                fanout.extend(row.entries().filter(|&(_, link)| link.audible));
            }
        } else {
            let (medium, state) = (self.ctx.medium, self.ctx.state);
            fanout.extend(
                (0..state.len())
                    .filter(|&j| j != i && state[j].alive)
                    .map(|j| (j, link_between(medium, state, i, j)))
                    .filter(|&(_, link)| link.audible),
            );
        }
        for &(j, link) in &fanout {
            if j == i || !self.ctx.state[j].alive {
                continue;
            }
            let receiver = NodeId(j);
            match *self.slot(j).radio.state() {
                RadioState::Idle => {
                    if link.audible {
                        self.lock_receiver_w(j, frame, link.power, link.power_mw, end);
                    }
                }
                RadioState::Rx { frame: current, .. } => {
                    let steal = link.audible && {
                        let capture = self.ctx.medium.capture_ratio_linear();
                        let in_preamble = self.in_preamble_w(current);
                        let rec = self
                            .slot(j)
                            .radio
                            .reception
                            .as_mut()
                            .expect("Rx state implies a reception");
                        rec.add_interferer(frame, link.power_mw);
                        link.power_mw >= rec.signal_mw * capture && in_preamble
                    };
                    if steal {
                        self.scratch
                            .metrics
                            .record_loss(receiver, crate::medium::LossReason::Truncated);
                        self.scratch.trace.push((
                            now,
                            TraceEvent::Lost {
                                node: receiver,
                                frame: current,
                                reason: crate::medium::LossReason::Truncated,
                            },
                        ));
                        self.lock_receiver_w(j, frame, link.power, link.power_mw, end);
                    }
                }
                RadioState::Cad { .. } => {
                    if link.audible {
                        self.slot(j).radio.note_cad_activity();
                    }
                }
                RadioState::Tx { .. } | RadioState::Off => {}
            }
        }
        self.scratch.fanout = fanout;
    }

    /// [`Simulator::lock_receiver`], worker edition.
    fn lock_receiver_w(
        &mut self,
        j: usize,
        frame: FrameId,
        power: Dbm,
        power_mw: f64,
        end: SimTime,
    ) {
        let receiver = NodeId(j);
        let quality = self.ctx.medium.quality(power);
        let (sender, payload) = self.tx_info(frame);
        let mut reception = Reception::new(frame, sender, quality, power_mw, payload);
        let mut interferers = std::mem::take(&mut self.scratch.interferers);
        interferers.clear();
        // Frozen base minus own removals, then the own staged overlay
        // (see `channel_busy_w` for why this equals the live roster's
        // audible contents in id order — bit-identical float sums).
        let band = self.ctx.parts.band_of(self.ctx.state[j].position.x);
        interferers.extend(
            self.ctx.active[band]
                .iter()
                .filter(|&&(f, s, _)| {
                    f != frame && s != receiver && !self.scratch.ended.contains(&f)
                })
                .copied(),
        );
        interferers.extend(
            self.scratch
                .staged
                .iter()
                .enumerate()
                .map(|(k, s)| (self.staged_id(k), s.sender, s.origin))
                .filter(|&(f, s, _)| f != frame && s != receiver),
        );
        for &(f, s, origin) in &interferers {
            if self.active_tx_audible_w(s.0, origin, j) {
                let p = self.active_tx_power_mw_w(s.0, origin, j);
                reception.add_interferer(f, p);
            }
        }
        self.scratch.interferers = interferers;
        let now = self.now;
        self.slot(j).radio.begin_rx(now, reception, end);
        self.rx_insert_w(j);
        debug_assert!(end >= self.ctx.limit);
        self.create(end, j, SimEvent::RxEnd(receiver, frame));
    }

    /// [`Simulator::handle_tx_end`], worker edition: the medium removal
    /// and the roster sweep are deferred to the merge walk (registry and
    /// rosters are shared-read during the batch — the `ended` list makes
    /// this worker's own readers skip the frame meanwhile); locked
    /// receivers are ours to update.
    fn handle_tx_end_w(&mut self, node: NodeId, frame: FrameId) {
        // In-window TxEnds are always pre-batch frames (a staged frame's
        // end lands beyond the horizon), so a missing registry entry
        // means the sender was killed mid-frame before the window.
        debug_assert_eq!(frame.0 & PROVISIONAL, 0);
        if self.tx_origin(frame).is_none() {
            return;
        }
        self.scratch.ended.push(frame);
        // Locked receivers holding this frame as interference are all
        // within audible range of its origin, hence owned: the sweep
        // over our rx view covers every receiver the sequential sweep
        // would have mutated.
        for idx in 0..self.scratch.rx_view.len() {
            let j = self.scratch.rx_view[idx];
            if let Some(rec) = self.slot(j).radio.reception.as_mut() {
                rec.remove_interferer(frame);
            }
        }
        let now = self.now;
        self.scratch
            .trace
            .push((now, TraceEvent::TxEnd { node, frame }));
        if self.ctx.state[node.0].alive
            && matches!(self.slot(node.0).radio.state(), RadioState::Tx { frame: f, .. } if *f == frame)
        {
            self.slot(node.0).radio.to_idle(now);
            self.fire_w(node.0, |fw, ctx| fw.on_tx_done(ctx));
        }
    }

    /// [`Simulator::handle_rx_end`], worker edition. In-window RxEnds
    /// lock pre-batch frames only (an in-window lock ends beyond the
    /// horizon), so the reception's ids are all real.
    fn handle_rx_end_w(&mut self, node: NodeId, frame: FrameId) {
        if !self.ctx.state[node.0].alive
            || !matches!(self.slot(node.0).radio.state(), RadioState::Rx { frame: f, .. } if *f == frame)
        {
            return; // stale: the lock moved on
        }
        let reception = self
            .slot(node.0)
            .radio
            .reception
            .take()
            .expect("Rx state implies a reception");
        let now = self.now;
        self.slot(node.0).radio.to_idle(now);
        self.rx_remove_w(node.0);
        let ctx = self.ctx;
        let mut outcome = ctx.medium.judge(&reception, self.rng(node.0));
        if matches!(outcome, RxOutcome::Delivered(_)) {
            let key = (
                reception.sender.0.min(node.0),
                reception.sender.0.max(node.0),
            );
            if let Some(&p) = ctx.link_loss.get(&key) {
                if self.rng(node.0).gen_bool(p) {
                    outcome = RxOutcome::Lost(crate::medium::LossReason::Injected);
                }
            }
        }
        match outcome {
            RxOutcome::Delivered(quality) => {
                self.scratch.metrics.record_delivery(node);
                self.scratch
                    .trace
                    .push((now, TraceEvent::Delivered { node, frame }));
                let payload = reception.payload;
                self.fire_w(node.0, |fw, ctx| fw.on_frame(&payload, quality, ctx));
            }
            RxOutcome::Lost(reason) => {
                self.scratch.metrics.record_loss(node, reason);
                self.scratch.trace.push((
                    now,
                    TraceEvent::Lost {
                        node,
                        frame,
                        reason,
                    },
                ));
            }
        }
    }

    /// [`Simulator::start_cad`], worker edition.
    fn start_cad_w(&mut self, i: usize) {
        if !self.ctx.state[i].alive {
            return;
        }
        let now = self.now;
        let duration = self.ctx.cad_duration;
        if !self.slot(i).radio.is_idle() {
            let at = now + duration;
            self.create(at, i, SimEvent::CadBusyReport(NodeId(i)));
            return;
        }
        let node = NodeId(i);
        let busy_now = self.channel_busy_w(i, None);
        let until = now + duration;
        self.slot(i).radio.begin_cad(now, until, busy_now);
        self.create(until, i, SimEvent::CadEnd(node));
    }

    /// [`Simulator::handle_cad_end`], worker edition.
    fn handle_cad_end_w(&mut self, node: NodeId) {
        if !self.ctx.state[node.0].alive {
            return;
        }
        let now = self.now;
        let RadioState::Cad { until, busy_seen } = *self.slot(node.0).radio.state() else {
            return; // stale (killed+revived mid-scan)
        };
        if until != now {
            return;
        }
        let busy = busy_seen || self.channel_busy_w(node.0, None);
        self.slot(node.0).radio.to_idle(now);
        self.scratch.metrics.record_cad(node, busy);
        self.fire_w(node.0, |fw, ctx| fw.on_cad_done(busy, ctx));
    }
}

/// Resolves a possibly provisional frame id through the per-worker maps
/// filled by the merge walk.
fn resolve(frame_maps: &[Vec<FrameId>], f: FrameId) -> FrameId {
    if f.0 & PROVISIONAL == 0 {
        return f;
    }
    let w = ((f.0 >> WORKER_SHIFT) & 0x7F_FFFF) as usize;
    frame_maps[w][(f.0 & COUNTER_MASK) as usize]
}

fn remap_trace(frame_maps: &[Vec<FrameId>], ev: TraceEvent) -> TraceEvent {
    match ev {
        TraceEvent::TxStart { node, frame, len } => TraceEvent::TxStart {
            node,
            frame: resolve(frame_maps, frame),
            len,
        },
        TraceEvent::TxEnd { node, frame } => TraceEvent::TxEnd {
            node,
            frame: resolve(frame_maps, frame),
        },
        TraceEvent::Delivered { node, frame } => TraceEvent::Delivered {
            node,
            frame: resolve(frame_maps, frame),
        },
        TraceEvent::Lost {
            node,
            frame,
            reason,
        } => TraceEvent::Lost {
            node,
            frame: resolve(frame_maps, frame),
            reason,
        },
        ev @ (TraceEvent::Killed { .. } | TraceEvent::Revived { .. }) => ev,
    }
}

fn remap_event(frame_maps: &[Vec<FrameId>], ev: SimEvent) -> SimEvent {
    match ev {
        SimEvent::TxEnd(node, frame) => SimEvent::TxEnd(node, resolve(frame_maps, frame)),
        SimEvent::RxEnd(node, frame) => SimEvent::RxEnd(node, resolve(frame_maps, frame)),
        other => other,
    }
}

impl<F: Firmware + Send> Simulator<F> {
    /// Attempts one parallel commit batch at window start `t0`. Returns
    /// `false` (having changed nothing) when the window is not worth —
    /// or not safe to — parallelise: fewer than two zone-disjoint
    /// candidate bands, or too little queued work to beat the
    /// coordinator's allocation-free sequential drain.
    pub(super) fn commit_batch(&mut self, t0: SimTime, until: SimTime) -> bool {
        let Some(mut sh) = self.shard.take() else {
            return false;
        };
        // The exclusive horizon H: the lookahead bound, capped by the
        // coordinator's head (coordinator events replay one at a time)
        // and the caller's end time (inclusive, hence +1ns).
        let mut limit = t0 + sh.lookahead;
        if let Some((ct, _)) = self.queue.peek_key() {
            limit = limit.min(ct);
        }
        limit = limit.min(until + Duration::from_nanos(1));
        if limit <= t0 {
            self.shard = Some(sh);
            return false;
        }

        // Cheap gate before any allocation: enough queued work across
        // enough candidate bands?
        let mut n_cand = 0usize;
        let mut queued = 0usize;
        for q in &mut sh.queues {
            if q.peek_key().is_some_and(|(at, _)| at < limit) {
                n_cand += 1;
                queued += q.live_len();
            }
        }
        if n_cand < 2 || queued < self.config.commit_batch_min_events {
            self.shard = Some(sh);
            return false;
        }

        self.ensure_grid();
        let mut cs = std::mem::take(&mut sh.commit);
        let bands = sh.parts.bands();
        let n = self.state.len();

        // Band extents: positions of homed nodes plus origins of
        // in-flight transmissions by homed senders — everything a
        // band's batch may touch is within r_max of this interval.
        cs.extent.clear();
        cs.extent.resize(bands, (f64::INFINITY, f64::NEG_INFINITY));
        for (i, st) in self.state.iter().enumerate() {
            let e = &mut cs.extent[sh.home[i]];
            e.0 = e.0.min(st.position.x);
            e.1 = e.1.max(st.position.x);
        }
        for tx in self.medium.active() {
            let e = &mut cs.extent[sh.home[tx.sender.0]];
            e.0 = e.0.min(tx.origin.x);
            e.1 = e.1.max(tx.origin.x);
        }

        // Band spans → band groups. Bands whose spans overlap in metres
        // merge into one group (overlapping spans sorted by their low
        // edge are adjacent, so a single run-merge suffices); group
        // spans are pairwise disjoint by construction. Every band with
        // homed nodes joins a group — even ones with no due work — so a
        // worker holds the home queue of every node it can touch.
        // Nothing shrinks H here: same-instant heads inside one cluster
        // simply share a worker.
        cs.heads.clear();
        cs.heads.resize(bands, None);
        for (b, q) in sh.queues.iter_mut().enumerate() {
            if let Some(k) = q.peek_key() {
                if k.0 < limit {
                    cs.heads[b] = Some(k);
                }
            }
        }
        let r_max = sh.parts.r_max();
        cs.zorder.clear();
        for b in 0..bands {
            let (lo_x, hi_x) = cs.extent[b];
            if lo_x > hi_x {
                debug_assert!(
                    cs.heads[b].is_none(),
                    "band {b} has work but no homed nodes"
                );
                continue;
            }
            cs.zorder.push((lo_x - r_max, hi_x + r_max, b));
        }
        cs.zorder
            .sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.2.cmp(&b.2)));
        cs.groups.clear();
        cs.members.clear();
        for &(zlo, zhi, b) in &cs.zorder {
            let head = cs.heads[b];
            match cs.groups.last_mut() {
                Some(g) if zlo <= g.zhi => {
                    g.mend += 1;
                    if zhi > g.zhi {
                        g.zhi = zhi;
                    }
                    g.head = match (g.head, head) {
                        (Some(a), Some(k)) => Some(a.min(k)),
                        (a, k) => a.or(k),
                    };
                }
                _ => cs.groups.push(Group {
                    mstart: cs.members.len(),
                    mend: cs.members.len() + 1,
                    zlo,
                    zhi,
                    head,
                }),
            }
            cs.members.push(b);
        }
        // Runnable groups only; then, with more groups than workers, run
        // the earliest-headed ones and shrink H to the first excluded
        // head, so the batch is still exactly the set of events before
        // H — a contiguous prefix of the global (time, seq) order.
        cs.groups.retain(|g| g.head.is_some());
        let max_workers = self.config.threads;
        if cs.groups.len() > max_workers {
            cs.groups.sort_unstable_by_key(|g| g.head);
            limit = limit.min(cs.groups[max_workers].head.expect("runnable groups only").0);
            cs.groups.truncate(max_workers);
            cs.groups
                .retain(|g| g.head.expect("runnable groups only").0 < limit);
        }
        if cs.groups.len() < 2 {
            sh.commit = cs;
            self.shard = Some(sh);
            return false;
        }
        // Worker index = span rank: group spans are disjoint intervals,
        // so sorting by the low edge makes the ownership lookup below a
        // single binary search.
        cs.groups.sort_unstable_by(|a, b| a.zlo.total_cmp(&b.zlo));
        let nw = cs.groups.len();

        // Ownership map: a node belongs to the worker whose metre span
        // contains its *current* position, making every dispatch target
        // and every fan-out receiver of a batch exclusively one
        // worker's. (Member extents include every homed node's
        // position, wherever it has wandered, so a member queue's
        // dispatch targets always fall inside the group span; and an
        // owned node's home-band extent intersects the span, so its
        // home queue is always a group member.)
        cs.owner.clear();
        cs.owner.resize(n, NO_OWNER);
        cs.oslot.clear();
        cs.oslot.resize(n, 0);
        for (i, st) in self.state.iter().enumerate() {
            let x = st.position.x;
            let gi = cs.groups.partition_point(|g| g.zlo <= x);
            if gi > 0 && x <= cs.groups[gi - 1].zhi {
                // The planner caps groups at the worker count, far below
                // `NO_OWNER`; an overflowing index degrades to unowned
                // (committed on the coordinator) rather than mis-owned.
                cs.owner[i] = u8::try_from(gi - 1).unwrap_or(NO_OWNER);
            }
        }

        while cs.workers.len() < nw {
            cs.workers.push(WorkerScratch::default());
        }
        let preamble = self.medium.config().modulation.preamble_time();
        let cad_duration = self
            .medium
            .config()
            .modulation
            .symbol_time()
            .mul_f64(f64::from(self.config.cad_symbols));

        {
            // Split the mutable state between the workers: each gets its
            // group's member queues and its owned nodes' slots and RNG
            // streams; everything else — rosters included — is shared `&`.
            let owner = &cs.owner[..];
            let mut queues: Vec<Vec<(usize, &mut EventQueue)>> =
                (0..nw).map(|_| Vec::new()).collect();
            for (b, q) in sh.queues.iter_mut().enumerate() {
                let Some((w, _)) = cs
                    .groups
                    .iter()
                    .enumerate()
                    .find(|(_, g)| cs.members[g.mstart..g.mend].contains(&b))
                else {
                    continue;
                };
                queues[w].push((b, q));
            }
            debug_assert_eq!(
                queues.iter().map(Vec::len).sum::<usize>(),
                cs.groups.iter().map(|g| g.mend - g.mstart).sum::<usize>(),
                "every kept group member must get its queue"
            );
            let mut owned_slots: Vec<Vec<&mut NodeSlot<F>>> = (0..nw).map(|_| Vec::new()).collect();
            let mut owned_rngs: Vec<Vec<&mut SimRng>> = (0..nw).map(|_| Vec::new()).collect();
            for ((i, slot), rng) in self.nodes.iter_mut().enumerate().zip(self.rngs.iter_mut()) {
                let w = owner[i];
                if w != NO_OWNER {
                    cs.oslot[i] = owned_slots[w as usize].len() as u32;
                    owned_slots[w as usize].push(slot);
                    owned_rngs[w as usize].push(rng);
                }
            }
            for (w, ws) in cs.workers.iter_mut().enumerate().take(nw) {
                ws.reset();
                ws.rx_view.extend(
                    self.rx_nodes
                        .iter()
                        .copied()
                        .filter(|&j| usize::from(owner[j]) == w),
                );
            }
            let ctx = Shared {
                medium: &self.medium,
                cache: &self.link_cache,
                grid: &self.grid,
                state: &self.state,
                link_loss: &self.link_loss,
                cfg: &self.config,
                parts: &sh.parts,
                home: &sh.home,
                active: &sh.active,
                owner,
                oslot: &cs.oslot,
                limit,
                preamble,
                cad_duration,
            };
            let mut band_workers: Vec<BandWorker<F>> = Vec::with_capacity(nw);
            {
                let mut scratches = cs.workers[..nw].iter_mut();
                let mut queues_it = queues.into_iter();
                let mut slots_it = owned_slots.into_iter();
                let mut rngs_it = owned_rngs.into_iter();
                for w in 0..nw {
                    band_workers.push(BandWorker {
                        w: w as u32,
                        queues: queues_it.next().expect("one queue set per worker"),
                        owned_slots: slots_it.next().expect("one slot set per worker"),
                        owned_rngs: rngs_it.next().expect("one rng set per worker"),
                        scratch: scratches.next().expect("one scratch per worker"),
                        ctx: &ctx,
                        now: t0,
                    });
                }
            }
            par::commit_bands(&mut band_workers, |bw| bw.drain());
        }

        // ---- Merge walk: replay buffered side effects in the global
        // (time, seq) order, allocating real seqs and frame ids exactly
        // as the sequential engine would have.
        while cs.seq_maps.len() < nw {
            cs.seq_maps.push(Vec::new());
        }
        while cs.frame_maps.len() < nw {
            cs.frame_maps.push(Vec::new());
        }
        for m in cs.seq_maps.iter_mut().take(nw) {
            m.clear();
        }
        for m in cs.frame_maps.iter_mut().take(nw) {
            m.clear();
        }
        let mut rec_i = vec![0usize; nw];
        let mut trace_i = vec![0usize; nw];
        let mut creat_i = vec![0usize; nw];
        let mut staged_i = vec![0usize; nw];
        let mut ended_i = vec![0usize; nw];
        let mut walked = 0u64;
        loop {
            let mut best: Option<(SimTime, u64, usize)> = None;
            for (w, (ws, &ri)) in cs.workers.iter().zip(rec_i.iter()).enumerate() {
                let Some(r) = ws.records.get(ri) else {
                    continue;
                };
                let seq = match r.src {
                    SeqSrc::Real(s) => s,
                    // The creator record precedes this one in the same
                    // worker, so its seq is already resolved.
                    SeqSrc::Local(k) => cs.seq_maps[w][k as usize],
                };
                if best.is_none_or(|(at, s, _)| (r.at, seq) < (at, s)) {
                    best = Some((r.at, seq, w));
                }
            }
            let Some((at, _, w)) = best else { break };
            let r = cs.workers[w].records[rec_i[w]];
            rec_i[w] += 1;
            for _ in 0..r.ended_n {
                let f = cs.workers[w].ended[ended_i[w]];
                ended_i[w] += 1;
                debug_assert_eq!(f.0 & PROVISIONAL, 0);
                let ended = self.medium.end_tx(f);
                debug_assert!(ended.is_some(), "worker ended a frame twice");
                if let Some(tx) = ended {
                    sh.unregister(f, tx.origin);
                }
            }
            for _ in 0..r.staged_n {
                let s = &cs.workers[w].staged[staged_i[w]];
                staged_i[w] += 1;
                let frame = self
                    .medium
                    .begin_tx(s.sender, s.origin, s.start, s.payload.clone())
                    .frame;
                cs.frame_maps[w].push(frame);
                // Registration in walk order is exactly the sequential
                // engine's: ids ascend, so rosters stay sorted.
                sh.register(frame, s.sender, s.origin);
            }
            for _ in 0..r.creat_n {
                creat_i[w] += 1;
                cs.seq_maps[w].push(self.queue.alloc_seq());
            }
            for _ in 0..r.trace_n {
                let (tat, ev) = cs.workers[w].trace[trace_i[w]].clone();
                trace_i[w] += 1;
                self.trace.push(tat, remap_trace(&cs.frame_maps, ev));
            }
            debug_assert!(at >= self.now, "merge walked backwards");
            self.now = at;
            walked += 1;
        }
        self.events_processed += walked;
        debug_assert_eq!(
            walked,
            cs.workers.iter().take(nw).map(|ws| ws.events).sum::<u64>()
        );

        // ---- Flush: unconsumed creations to their home queues (under
        // their walk-allocated seqs), per-band metrics, overlay link
        // rows, and the provisional→real frame rewrite in owned radios
        // (rosters already carry real ids — the walk registered them);
        // then rebuild the rx-node index.
        for w in 0..nw {
            let ws = &cs.workers[w];
            for (k, c) in ws.creations.iter().enumerate() {
                if ws.consumed[k] {
                    continue;
                }
                debug_assert!(c.at >= limit, "unconsumed creation inside the window");
                let ev = remap_event(&cs.frame_maps, c.ev.clone());
                let node = c.node as usize;
                sh.queues[sh.home[node]].schedule_at_seq(c.at, cs.seq_maps[w][k], ev);
            }
            self.metrics.absorb(&ws.metrics);
        }
        for ws in cs.workers.iter_mut().take(nw) {
            for (i, row) in ws.rows.drain(..) {
                self.link_cache.install(i, row);
            }
        }
        for (i, slot) in self.nodes.iter_mut().enumerate() {
            if cs.owner[i] != NO_OWNER {
                slot.radio.remap_frames(|f| resolve(&cs.frame_maps, f));
            }
        }
        cs.rx_rebuild.clear();
        cs.rx_rebuild.extend(
            self.rx_nodes
                .iter()
                .copied()
                .filter(|&j| cs.owner[j] == NO_OWNER),
        );
        for ws in cs.workers.iter().take(nw) {
            cs.rx_rebuild.extend(ws.rx_view.iter().copied());
        }
        cs.rx_rebuild.sort_unstable();
        std::mem::swap(&mut self.rx_nodes, &mut cs.rx_rebuild);

        sh.commit = cs;
        self.shard = Some(sh);
        self.commit_batches += 1;
        true
    }
}
