//! The simulator's virtual clock.
//!
//! Simulated time is an offset from the start of the run, represented as a
//! [`std::time::Duration`] wrapped in [`SimTime`]. Using an offset (rather
//! than a wall-clock instant) lets protocol code that takes `now: Duration`
//! run unchanged under the simulator and on real hardware, where the host
//! supplies uptime instead.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};
use std::time::Duration;

/// An instant of simulated time, measured from the start of the run.
///
/// `SimTime` is totally ordered and supports the arithmetic a scheduler
/// needs: adding a [`Duration`] yields a later instant, subtracting two
/// instants yields the elapsed [`Duration`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimTime(Duration);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(Duration::ZERO);

    /// An instant `micros` microseconds after the start.
    #[must_use]
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(Duration::from_micros(micros))
    }

    /// An instant `millis` milliseconds after the start.
    #[must_use]
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(Duration::from_millis(millis))
    }

    /// An instant `secs` seconds after the start.
    #[must_use]
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(Duration::from_secs(secs))
    }

    /// The offset from the start of the run.
    #[must_use]
    pub const fn as_duration(self) -> Duration {
        self.0
    }

    /// The offset in whole microseconds.
    #[must_use]
    pub const fn as_micros(self) -> u128 {
        self.0.as_micros()
    }

    /// The offset in seconds as a float (for reporting).
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0.as_secs_f64()
    }

    /// Elapsed time since `earlier`, saturating to zero if `earlier` is
    /// actually later.
    #[must_use]
    pub fn since(self, earlier: SimTime) -> Duration {
        self.0.saturating_sub(earlier.0)
    }
}

impl From<Duration> for SimTime {
    fn from(d: Duration) -> Self {
        SimTime(d)
    }
}

impl From<SimTime> for Duration {
    fn from(t: SimTime) -> Self {
        t.0
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    fn add(self, d: Duration) -> SimTime {
        SimTime(self.0 + d)
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, d: Duration) {
        self.0 += d;
    }
}

impl Sub for SimTime {
    type Output = Duration;
    /// Elapsed time between two instants.
    ///
    /// # Panics
    ///
    /// Panics if `other` is later than `self`; use [`SimTime::since`] for
    /// a saturating version.
    fn sub(self, other: SimTime) -> Duration {
        self.0 - other.0
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:.6}s", self.0.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_and_arithmetic() {
        let a = SimTime::from_millis(10);
        let b = a + Duration::from_millis(5);
        assert!(b > a);
        assert_eq!(b - a, Duration::from_millis(5));
        assert_eq!(b.since(a), Duration::from_millis(5));
        assert_eq!(a.since(b), Duration::ZERO);
    }

    #[test]
    fn conversions_round_trip() {
        let t = SimTime::from_micros(1_234_567);
        let d: Duration = t.into();
        assert_eq!(SimTime::from(d), t);
        assert_eq!(t.as_micros(), 1_234_567);
    }

    #[test]
    fn add_assign_advances() {
        let mut t = SimTime::ZERO;
        t += Duration::from_secs(2);
        assert_eq!(t, SimTime::from_secs(2));
    }

    #[test]
    fn display_format() {
        assert_eq!(SimTime::from_millis(1500).to_string(), "t+1.500000s");
    }
}
