//! The simulator: event loop, node hosting and fault injection.
//!
//! [`Simulator`] owns the nodes (each a [`Firmware`] plus a [`Radio`] and a
//! position), the shared [`Medium`] and the event queue, and advances
//! virtual time event by event. See the crate-level docs for the overall
//! model; this module implements the mechanics:
//!
//! * **Transmission** — a `Transmit` command registers an [`ActiveTx`] on
//!   the medium, schedules its end, and immediately decides which other
//!   nodes lock onto it (listening + audible) or suffer it as
//!   interference.
//! * **Reception** — at the frame's end each locked receiver asks the
//!   medium to judge the attempt against noise and the worst interference
//!   overlap; winners get `on_frame`, losers are counted by reason.
//! * **Capture** — a ≥6 dB stronger frame arriving during the preamble of
//!   the currently locked frame steals the receiver.
//! * **Timers** — firmware exposes `next_wake()`; the simulator keeps at
//!   most one live timer per node and ignores stale ones.
//! * **Faults** — nodes can be killed (radio off, mid-frame transmissions
//!   truncated) and revived at scheduled instants.
//!
//! [`ActiveTx`]: crate::medium::ActiveTx

use std::time::Duration;

use lora_phy::modulation::LoRaModulation;
use lora_phy::power::Dbm;
use lora_phy::propagation::Position;

use crate::event::{EventQueue, FrameId, SimEvent};
use crate::firmware::{Context, Firmware, NodeId, RadioCommand};
use crate::grid::Grid;
use crate::link_cache::{Link, LinkCache, LinkRow};
use crate::medium::{Medium, RfConfig, RxOutcome};
use crate::metrics::Metrics;
use crate::mobility::{Mobility, MobilityState};
use crate::par;
use crate::radio::{Radio, RadioState, Reception};
use crate::rng::SimRng;
use crate::shard::{self, Partitioner};
use crate::time::SimTime;
use crate::trace::{Trace, TraceEvent};

mod commit;

/// Worker regions are only spun up when at least this many independent
/// items are queued; below it, spawn overhead dwarfs the work.
const PAR_MIN_ITEMS: usize = 64;

/// Minimum link-row prefetch items *per worker* before the fork-join
/// pays for itself. A compile-time constant measured offline with
/// `scripts/bench.sh` (runtime timing is banned in this crate — lint
/// `d2` — and would make the gate nondeterministic across hosts): row
/// fills are ~1 µs each, thread park/unpark costs tens of µs, so a
/// worker needs on the order of a hundred rows to win. Below the
/// threshold the coordinator fills rows inline, which is what fixed the
/// mobile 4096-node `threads > 1` throughput regression: its wake-gated
/// prefetch batches are usually far smaller than the node count.
const PREFETCH_MIN_PER_WORKER: usize = 128;

/// Simulation-wide configuration.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// RF parameters shared by all nodes.
    pub rf: RfConfig,
    /// Duration of a CAD scan, in symbol times (SX127x: ~2).
    pub cad_symbols: u32,
    /// Capacity of the debug trace (0 disables tracing).
    pub trace_capacity: usize,
    /// Interval between mobility position updates.
    pub mobility_tick: Duration,
    /// Cache per-pair link budgets between topology changes and cull
    /// transmission fan-out to audible neighbors (see
    /// [`crate::link_cache`]). Behaviourally transparent — cached and
    /// uncached runs produce identical traces, metrics and RNG draws —
    /// so this stays on except when differential-testing the cache
    /// itself.
    pub link_cache: bool,
    /// Drop superseded wake-up timers inside the event queue as O(1)
    /// generation tombstones instead of re-querying
    /// [`Firmware::next_wake`] on every stale pop. Behaviourally
    /// transparent — firmware observes identical callbacks, RNG draws,
    /// traces and metrics either way; only `events_processed` and the
    /// stale-timer counters differ — so this stays on except when
    /// differential-testing the engine itself (tests/engine_diff.rs).
    pub timer_tombstones: bool,
    /// Number of spatial shards the event engine partitions the world
    /// into (see [`crate::shard`]). `1` (the default) runs the classic
    /// sequential engine; `> 1` gives each spatial band its own calendar
    /// queue, range-scoped medium roster and range-scoped link-cache
    /// invalidation, merged under a conservative lookahead window.
    /// Behaviourally transparent — traces, metrics, RNG draws and
    /// firmware callbacks are byte-identical for every shard count; only
    /// the stale-timer drop *timing* differs (tests/shard_diff.rs) — so
    /// the sequential engine remains the differential reference.
    pub shards: usize,
    /// Number of worker threads for the parallel regions: the evaluate
    /// regions (mobility stepping and link-row prefetch; see
    /// [`crate::par`]) and — when [`SimConfig::shards`] > 1 — the
    /// parallel *commit* of per-band lookahead batches (see
    /// [`crate::sim::commit`]). `1` (the default) runs everything on
    /// the coordinator thread and never touches thread machinery.
    /// Behaviourally transparent for every value — a parallel batch
    /// replays exactly the global `(time, seq)` order through a
    /// deterministic merge, and evaluate results merge in item order —
    /// so traces, metrics and RNG draws are byte-identical across
    /// thread counts (tests/shard_diff.rs). Values above `1` require
    /// [`SimConfig::rng_streams`]: band workers must mint per-node
    /// streams without touching a shared root generator, and making
    /// the requirement explicit keeps a misconfiguration a startup
    /// error instead of silent nondeterminism.
    pub threads: usize,
    /// Minimum number of queued events (summed over the candidate
    /// bands) before the sharded engine commits a lookahead batch on
    /// worker threads instead of draining it on the coordinator.
    /// Parallel batches buffer per-band outputs and therefore allocate;
    /// below this threshold the sequential drain is both faster and
    /// allocation-free, preserving the steady-state 0-allocs/event
    /// coordinator invariant for small simulations
    /// (tests/alloc_regression.rs).
    pub commit_batch_min_events: usize,
    /// Index audibility candidates with a uniform spatial grid
    /// ([`crate::grid`]) so a link-cache row fill visits only the 3×3
    /// cell neighborhood instead of all n nodes. Behaviourally
    /// transparent — a node outside the candidate set is provably
    /// beyond `max_audible_range`, so its omitted (silent) entry matches
    /// what the full computation would conclude — and differential-tested
    /// in tests/link_cache_diff.rs, so this stays on except when testing
    /// the grid itself.
    pub spatial_grid: bool,
    /// Derive per-node RNG streams with the counter-keyed
    /// [`SimRng::stream`] derivation (pure in `(master seed, node id)`,
    /// mintable on any worker without a shared root generator) instead
    /// of the classic [`SimRng::fork`] from the root generator's state.
    /// Both derivations are engine-invariant — per-*node* streams are
    /// untouched by shard or thread counts — but they produce different
    /// draws, so the fork derivation stays the default as the pinned
    /// differential reference (the same pattern as `timer_tombstones`);
    /// tests/shard_diff.rs runs the whole battery under both.
    pub rng_streams: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            rf: RfConfig::default(),
            cad_symbols: 2,
            trace_capacity: 0,
            mobility_tick: Duration::from_secs(1),
            link_cache: true,
            timer_tombstones: true,
            shards: 1,
            threads: 1,
            spatial_grid: true,
            rng_streams: false,
            commit_batch_min_events: 256,
        }
    }
}

/// The dispatch half of a node: firmware, radio state machine and timer
/// bookkeeping. Owned by the coordinator between batches; during a
/// parallel commit batch ([`commit`]) the slots of a band worker's zone
/// move to that worker thread, which is why the run methods require
/// `F: Send`.
struct NodeSlot<F> {
    firmware: F,
    radio: Radio,
    /// The firmware wake time for which a timer event is pending.
    scheduled_wake: Option<Duration>,
}

/// The per-node state every parallel region reads *shared* during a
/// batch (positions for link math, liveness for dispatch gates), split
/// out of [`NodeSlot`] so it can cross worker threads by `&` reference:
/// kills, revives and mobility ticks are coordinator-only events, so
/// nothing here changes inside a batch window.
struct NodeState {
    position: Position,
    mobility: MobilityState,
    alive: bool,
}

/// Runtime state of the sharded engine, built at [`Simulator::start`]
/// when [`SimConfig::shards`] > 1.
///
/// Each spatial band owns a calendar queue holding the *internal* events
/// (timers, `TxEnd`/`RxEnd`/CAD) of the nodes homed there; externally
/// injected events (app traffic, faults, mobility ticks) stay on the
/// coordinator queue ([`Simulator::queue`]), which also allocates every
/// sequence number so `(time, seq)` remains one global total order. The
/// run loop merges all queues in exactly that order — which is why the
/// sharded engine is byte-identical to the sequential one — and uses the
/// lookahead window to drain one band's queue in batches (see
/// [`crate::shard`] for the partitioning and lookahead arguments).
struct ShardState {
    /// The fixed spatial partition (band edges never move).
    parts: Partitioner,
    /// Each node's home queue: its band at the moment it was added.
    /// Fixed for the node's lifetime even if it migrates across band
    /// edges — routing is a pure load-balancing choice (the merge is
    /// global), and a fixed home keeps each queue's timer-generation
    /// table authoritative for its nodes.
    home: Vec<usize>,
    /// One calendar queue per band.
    queues: Vec<EventQueue>,
    /// δ: the conservative lookahead window (one preamble airtime).
    lookahead: Duration,
    /// Per band: in-flight transmissions visible there (every tx whose
    /// origin is within `r_max` of the band), ascending by frame id —
    /// frame ids are allocated monotonically, so pushes keep it sorted.
    active: Vec<Vec<(FrameId, NodeId, Position)>>,
    /// Scratch: bands touched by the current mobility tick.
    touched: Vec<bool>,
    /// Pooled scratch for the parallel commit planner and its band
    /// workers ([`commit`]), reused batch to batch.
    commit: commit::CommitScratch,
}

impl ShardState {
    /// Registers a transmission in every band it can reach.
    fn register(&mut self, frame: FrameId, sender: NodeId, origin: Position) {
        let (lo, hi) = self.parts.reach(origin.x);
        for band in lo..=hi {
            self.active[band].push((frame, sender, origin));
        }
    }

    /// Removes a transmission from every band it was registered in.
    /// Reach is recomputed from the (immutable) origin, so registration
    /// and removal always agree.
    fn unregister(&mut self, frame: FrameId, origin: Position) {
        let (lo, hi) = self.parts.reach(origin.x);
        for band in lo..=hi {
            if let Ok(pos) = self.active[band].binary_search_by_key(&frame, |e| e.0) {
                self.active[band].remove(pos);
            }
        }
    }
}

/// A deterministic discrete-event simulation of a LoRa network.
///
/// Generic over the hosted [`Firmware`] type; a run mixes protocols by
/// using an enum or trait-object firmware.
pub struct Simulator<F: Firmware> {
    config: SimConfig,
    medium: Medium,
    nodes: Vec<NodeSlot<F>>,
    /// Worker-visible per-node state, parallel to `nodes`.
    state: Vec<NodeState>,
    /// Per-node RNG streams, parallel to `nodes`. Split out of
    /// [`NodeState`] so a batch can hand each band worker `&mut` access
    /// to exactly its owned nodes' generators while every worker shares
    /// the rest of the state by `&` reference.
    rngs: Vec<SimRng>,
    queue: EventQueue,
    now: SimTime,
    metrics: Metrics,
    trace: Trace,
    root_rng: SimRng,
    started: bool,
    mobility_scheduled: bool,
    /// Injected per-link loss probabilities, keyed by unordered pair.
    /// A `BTreeMap` (meshlint rule D1): deterministic iteration order,
    /// so no observable behaviour can ever depend on hasher state.
    link_loss: std::collections::BTreeMap<(usize, usize), f64>,
    /// Cached link budgets for the current topology epoch.
    link_cache: LinkCache,
    /// Indices of nodes currently in [`RadioState::Rx`], kept sorted
    /// ascending. Interference sums are audibility-gated (sub-sensitivity
    /// power never enters one), so the culled fan-out no longer needs to
    /// visit receivers; this index powers the sharded engine's
    /// `TxEnd`/`kill` interferer sweeps, which visit only locked
    /// receivers instead of all N nodes. A sorted `Vec` rather than a
    /// `BTreeSet`: membership churn in the hot path must not allocate.
    rx_nodes: Vec<usize>,
    /// Reused fan-out buffer: `(node index, link)` pairs a transmission
    /// must visit, ascending (avoids a per-transmission alloc).
    fanout_scratch: Vec<(usize, Link)>,
    /// Reused firmware-command buffer for [`Simulator::fire`] (avoids a
    /// per-callback alloc).
    command_scratch: Vec<RadioCommand>,
    /// Reused in-flight-transmission snapshot for `lock_receiver`.
    interferer_scratch: Vec<(FrameId, NodeId, Position)>,
    /// Reused in-flight-transmission snapshot for `channel_busy`.
    active_scratch: Vec<(NodeId, Position)>,
    /// Events processed so far (throughput accounting for benches).
    events_processed: u64,
    /// Parallel batch commits performed ([`commit`]): lets tests and
    /// benches assert the threaded path genuinely ran, not just that
    /// its gates declined everywhere.
    commit_batches: u64,
    /// Sharded-engine state ([`SimConfig::shards`] > 1), built at start.
    shard: Option<ShardState>,
    /// The master seed (stream derivation for [`SimConfig::rng_streams`]).
    seed: u64,
    /// Audibility bound the grid and partitioner are built with.
    audible_range: f64,
    /// Spatial candidate index ([`SimConfig::spatial_grid`]).
    grid: Grid,
    /// Whether `grid` must be rebuilt before its next use (positions
    /// changed: mobility tick, `set_position`, node addition).
    grid_dirty: bool,
    /// Reused candidate-index buffer for link-row fills.
    cand_scratch: Vec<usize>,
    /// Reused row-index buffer for parallel prefetch planning.
    prefetch_scratch: Vec<usize>,
    /// Reused old-x snapshot for mobility ticks.
    xs_scratch: Vec<f64>,
}

impl<F: Firmware> Simulator<F> {
    /// Creates an empty simulation with the given configuration and seed.
    #[must_use]
    pub fn new(config: SimConfig, seed: u64) -> Self {
        let trace = Trace::new(config.trace_capacity);
        let audible_range = shard::max_audible_range(&config.rf);
        Simulator {
            medium: Medium::new(config.rf.clone()),
            trace,
            config,
            nodes: Vec::new(),
            state: Vec::new(),
            rngs: Vec::new(),
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            metrics: Metrics::new(),
            root_rng: SimRng::new(seed),
            started: false,
            mobility_scheduled: false,
            link_loss: std::collections::BTreeMap::new(),
            link_cache: LinkCache::new(),
            rx_nodes: Vec::new(),
            fanout_scratch: Vec::new(),
            command_scratch: Vec::new(),
            interferer_scratch: Vec::new(),
            active_scratch: Vec::new(),
            events_processed: 0,
            commit_batches: 0,
            shard: None,
            seed,
            audible_range,
            grid: Grid::new(),
            grid_dirty: true,
            cand_scratch: Vec::new(),
            prefetch_scratch: Vec::new(),
            xs_scratch: Vec::new(),
        }
    }

    /// Adds a stationary node running `firmware` at `position`.
    pub fn add_node(&mut self, firmware: F, position: Position) -> NodeId {
        self.add_mobile_node(firmware, position, Mobility::Static)
    }

    /// Adds a node with the given mobility model.
    pub fn add_mobile_node(
        &mut self,
        firmware: F,
        position: Position,
        mobility: Mobility,
    ) -> NodeId {
        let id = NodeId(self.nodes.len());
        // Both derivations are pure in (seed, node id), so adding a node
        // never perturbs another's stream; see `SimConfig::rng_streams`
        // for why two exist.
        let rng = if self.config.rng_streams {
            SimRng::stream(self.seed, id.0 as u64 + 1)
        } else {
            self.root_rng.fork(id.0 as u64 + 1)
        };
        self.nodes.push(NodeSlot {
            firmware,
            radio: Radio::new(),
            scheduled_wake: None,
        });
        self.state.push(NodeState {
            position,
            mobility: MobilityState::new(mobility),
            alive: true,
        });
        self.rngs.push(rng);
        self.link_cache.resize(self.nodes.len());
        self.grid_dirty = true;
        if let Some(sh) = &mut self.shard {
            // Late joiner: home it in the band it appears in.
            sh.home.push(sh.parts.band_of(position.x));
        }
        if self.started {
            self.fire(id.0, |fw, ctx| fw.on_start(ctx));
        }
        self.ensure_mobility_tick();
        id
    }

    /// Number of nodes in the simulation.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Immutable access to a node's firmware (for assertions/reports).
    #[must_use]
    pub fn node(&self, id: NodeId) -> &F {
        &self.nodes[id.0].firmware
    }

    /// Runs a closure against a node's firmware inside a proper callback
    /// context, processing any commands it issues — the way applications
    /// "call into" their protocol stack (e.g. to submit a datagram).
    pub fn with_node<R>(&mut self, id: NodeId, f: impl FnOnce(&mut F, &mut Context) -> R) -> R {
        self.fire(id.0, f)
    }

    /// A node's current position.
    #[must_use]
    pub fn position(&self, id: NodeId) -> Position {
        self.state[id.0].position
    }

    /// Moves a node instantly (tests and custom scenarios).
    pub fn set_position(&mut self, id: NodeId, position: Position) {
        self.state[id.0].position = position;
        self.link_cache.invalidate_all();
        self.grid_dirty = true;
    }

    /// A node's radio (state durations feed the energy model).
    #[must_use]
    pub fn radio(&self, id: NodeId) -> &Radio {
        &self.nodes[id.0].radio
    }

    /// Whether a node is currently alive.
    #[must_use]
    pub fn is_alive(&self, id: NodeId) -> bool {
        self.state[id.0].alive
    }

    /// The current simulated time.
    #[must_use]
    pub fn now(&self) -> Duration {
        self.now.as_duration()
    }

    /// PHY metrics collected so far.
    #[must_use]
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Number of events the simulator has processed (bench throughput).
    #[must_use]
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Number of parallel batch commits performed so far. Zero on
    /// single-threaded runs and on threaded runs whose windows never
    /// cleared the planner's gates ([`SimConfig::commit_batch_min_events`],
    /// two zone-disjoint candidate bands).
    #[must_use]
    pub fn commit_batches(&self) -> u64 {
        self.commit_batches
    }

    /// Number of link-cache row (re)builds so far — regression
    /// accounting for the sharded engine's scoped invalidation.
    #[must_use]
    pub fn link_rebuilds(&self) -> u64 {
        self.link_cache.rebuilds()
    }

    /// The debug trace (empty unless [`SimConfig::trace_capacity`] > 0).
    #[must_use]
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The shared modulation.
    #[must_use]
    pub fn modulation(&self) -> &LoRaModulation {
        &self.medium.config().modulation
    }

    /// Transmit power configured for all nodes.
    #[must_use]
    pub fn tx_power(&self) -> Dbm {
        self.medium.config().tx_power
    }

    /// Injects a loss probability on the (bidirectional) link between
    /// `a` and `b`: each otherwise-successful reception over that link is
    /// additionally dropped with probability `p`. Set `p = 0.0` to clear.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `0.0..=1.0`.
    pub fn set_link_loss(&mut self, a: NodeId, b: NodeId, p: f64) {
        assert!(
            (0.0..=1.0).contains(&p),
            "probability must be in 0..=1, got {p}"
        );
        let key = (a.0.min(b.0), a.0.max(b.0));
        if p == 0.0 {
            self.link_loss.remove(&key);
        } else {
            self.link_loss.insert(key, p);
        }
    }

    /// Schedules an application (workload) event for `node` at `at`.
    pub fn schedule_app(&mut self, at: Duration, node: NodeId, tag: u64) {
        self.queue
            .schedule(SimTime::from(at), SimEvent::App(node, tag));
    }

    /// Schedules `node` to fail at `at`.
    pub fn schedule_kill(&mut self, at: Duration, node: NodeId) {
        self.queue.schedule(SimTime::from(at), SimEvent::Kill(node));
    }

    /// Schedules `node` to restart at `at`.
    pub fn schedule_revive(&mut self, at: Duration, node: NodeId) {
        self.queue
            .schedule(SimTime::from(at), SimEvent::Revive(node));
    }

    /// Calls `on_start` on every node. Idempotent; run methods call this
    /// automatically.
    pub fn start(&mut self) {
        if self.started {
            return;
        }
        assert!(
            self.config.threads <= 1 || self.config.rng_streams,
            "SimConfig::threads > 1 requires SimConfig::rng_streams: band workers \
             must mint per-node RNG streams without a shared root generator, and \
             the fork-chain derivation cannot provide that (see DESIGN.md, \
             \"Parallel commit\")"
        );
        self.started = true;
        if self.config.shards > 1 && self.shard.is_none() {
            let xs: Vec<f64> = self.state.iter().map(|s| s.position.x).collect();
            let r_max = self.audible_range;
            // Band edges balance expected *work*, not node count: with
            // the grid available, a node's weight is its audible-degree
            // bound (fan-out, interferer sums and row fills all scale
            // with it). Edge placement is pure load balancing — the
            // merge stays in global (time, seq) order either way.
            let parts = if self.config.spatial_grid {
                self.ensure_grid();
                let weights: Vec<usize> = self
                    .state
                    .iter()
                    .map(|s| self.grid.degree(s.position))
                    .collect();
                Partitioner::weighted(&xs, &weights, self.config.shards, r_max)
            } else {
                Partitioner::new(&xs, self.config.shards, r_max)
            };
            let bands = parts.bands();
            let mut sh = ShardState {
                home: self
                    .state
                    .iter()
                    .map(|s| parts.band_of(s.position.x))
                    .collect(),
                queues: (0..bands).map(|_| EventQueue::new()).collect(),
                lookahead: shard::min_lookahead(self.medium.config()),
                active: vec![Vec::new(); bands],
                touched: vec![false; bands],
                commit: commit::CommitScratch::default(),
                parts,
            };
            // Transmissions begun before start (tests driving `with_node`
            // early) predate the rosters; enroll them now. `active()`
            // iterates ascending by frame id, preserving sortedness.
            for tx in self.medium.active() {
                sh.register(tx.frame, tx.sender, tx.origin);
            }
            self.shard = Some(sh);
        }
        // Warm the link cache in parallel before the on_start storm:
        // every alive node's row is a pure function of positions, so
        // workers can build them all while the coordinator waits.
        if self.config.threads > 1 && self.config.link_cache {
            let mut rows = std::mem::take(&mut self.prefetch_scratch);
            rows.clear();
            rows.extend((0..self.state.len()).filter(|&i| self.state[i].alive));
            self.prefetch_rows(&rows);
            self.prefetch_scratch = rows;
        }
        for i in 0..self.nodes.len() {
            self.fire(i, |fw, ctx| fw.on_start(ctx));
        }
    }

    /// Advances the clock to `at` and handles one event.
    fn dispatch(&mut self, at: SimTime, event: SimEvent) {
        debug_assert!(at >= self.now, "time went backwards");
        self.now = at;
        self.events_processed += 1;
        match event {
            SimEvent::Timer(node, _) => self.handle_timer(node),
            SimEvent::TxEnd(node, frame) => self.handle_tx_end(node, frame),
            SimEvent::RxEnd(node, frame) => self.handle_rx_end(node, frame),
            SimEvent::CadEnd(node) => self.handle_cad_end(node),
            SimEvent::CadBusyReport(node) => {
                if self.state[node.0].alive {
                    self.metrics.record_cad(node, true);
                    self.fire(node.0, |fw, ctx| fw.on_cad_done(true, ctx));
                }
            }
            SimEvent::App(node, tag) => {
                if self.state[node.0].alive {
                    self.fire(node.0, |fw, ctx| fw.on_app(tag, ctx));
                }
            }
            SimEvent::Kill(node) => self.kill(node),
            SimEvent::Revive(node) => self.revive(node),
            SimEvent::MobilityTick => self.mobility_tick(),
        }
    }

    /// Pops the globally next event across the coordinator queue and
    /// every shard queue — the single-step form of the sharded merge.
    fn pop_next_merged(&mut self) -> Option<(SimTime, SimEvent)> {
        let mut best = self.queue.peek_key();
        let mut from = usize::MAX;
        let sh = self.shard.as_mut().expect("sharded engine");
        for (qi, q) in sh.queues.iter_mut().enumerate() {
            let Some(k) = q.peek_key() else { continue };
            if best.is_none_or(|b| k < b) {
                best = Some(k);
                from = qi;
            }
        }
        best?;
        if from == usize::MAX {
            self.queue.pop()
        } else {
            sh.queues[from].pop()
        }
    }

    /// Stale-timer tombstone drops across every queue.
    fn stale_dropped_total(&self) -> u64 {
        let mut total = self.queue.stale_timers_dropped();
        if let Some(sh) = &self.shard {
            total += sh
                .queues
                .iter()
                .map(EventQueue::stale_timers_dropped)
                .sum::<u64>();
        }
        total
    }

    /// Finalises per-node radio accounting (call before reading state
    /// durations / energy at the end of a run).
    pub fn finish(&mut self) {
        for slot in &mut self.nodes {
            slot.radio.finish(self.now);
        }
    }

    // ------------------------------------------------------------------
    // internals
    // ------------------------------------------------------------------

    /// Runs a firmware callback, then processes its commands and re-syncs
    /// its wake-up timer.
    fn fire<R>(&mut self, i: usize, f: impl FnOnce(&mut F, &mut Context) -> R) -> R {
        let now = self.now;
        let scratch = std::mem::take(&mut self.command_scratch);
        let slot = &mut self.nodes[i];
        let mut ctx = Context::with_buffer(now.as_duration(), scratch);
        let result = f(&mut slot.firmware, &mut ctx);
        let mut commands = ctx.take_requests();
        for cmd in commands.drain(..) {
            match cmd {
                RadioCommand::Transmit(bytes) => self.start_tx(i, bytes),
                RadioCommand::StartCad => self.start_cad(i),
            }
        }
        self.command_scratch = commands;
        self.sync_wake(i);
        result
    }

    /// Schedules an internal event owned by `node` — on the node's home
    /// shard queue when sharded (with a globally allocated sequence
    /// number, so the k-way merge reproduces insertion order), else on
    /// the global queue.
    fn schedule_for(&mut self, at: SimTime, node: usize, event: SimEvent) {
        match &mut self.shard {
            Some(sh) => {
                let seq = self.queue.alloc_seq();
                sh.queues[sh.home[node]].schedule_at_seq(at, seq, event);
            }
            None => self.queue.schedule(at, event),
        }
    }

    /// Tombstones any queued timer for `node` and schedules a fresh one
    /// in whichever queue owns the node.
    fn schedule_wake(&mut self, at: SimTime, node: NodeId) {
        match &mut self.shard {
            Some(sh) => {
                let seq = self.queue.alloc_seq();
                sh.queues[sh.home[node.0]].schedule_timer_seq(at, node, seq);
            }
            None => self.queue.schedule_timer(at, node),
        }
    }

    /// Cancels `node`'s pending timer in whichever queue owns it.
    fn cancel_wake(&mut self, node: NodeId) {
        match &mut self.shard {
            Some(sh) => sh.queues[sh.home[node.0]].cancel_timer(node),
            None => self.queue.cancel_timer(node),
        }
    }

    /// `node`'s timer generation in its owning queue (legacy engine).
    fn wake_generation(&mut self, node: NodeId) -> u64 {
        match &mut self.shard {
            Some(sh) => sh.queues[sh.home[node.0]].timer_generation(node),
            None => self.queue.timer_generation(node),
        }
    }

    /// Keeps exactly one pending timer event aligned with the firmware's
    /// requested wake time.
    fn sync_wake(&mut self, i: usize) {
        if !self.state[i].alive {
            return;
        }
        let slot = &mut self.nodes[i];
        let wake = slot.firmware.next_wake();
        if let Some(t) = wake {
            if slot.scheduled_wake != Some(t) {
                slot.scheduled_wake = Some(t);
                let at = SimTime::from(t).max(self.now);
                if self.config.timer_tombstones {
                    // Tombstones any previously queued timer for this
                    // node and stamps the new one with a fresh
                    // generation.
                    self.schedule_wake(at, NodeId(i));
                } else {
                    // Legacy engine behaviour: pile up timer events and
                    // sort out staleness in `handle_timer`. Stamping
                    // with the current (never-bumped) generation keeps
                    // them all live.
                    let node = NodeId(i);
                    let gen = self.wake_generation(node);
                    self.schedule_for(at, node.0, SimEvent::Timer(node, gen));
                }
            }
        } else {
            if self.config.timer_tombstones && slot.scheduled_wake.is_some() {
                self.cancel_wake(NodeId(i));
            }
            self.nodes[i].scheduled_wake = None;
        }
    }

    fn handle_timer(&mut self, node: NodeId) {
        if !self.state[node.0].alive {
            return;
        }
        let slot = &self.nodes[node.0];
        if self.config.timer_tombstones {
            // Every firmware mutation funnels through `fire` →
            // `sync_wake` (or `kill` → `cancel_timer`), so a timer that
            // survived tombstoning still matches the firmware's latest
            // wake request and is due by construction.
            debug_assert!(
                slot.firmware
                    .next_wake()
                    .is_some_and(|t| SimTime::from(t) <= self.now),
                "live timer fired before its firmware wake time"
            );
            self.nodes[node.0].scheduled_wake = None;
            self.fire(node.0, |fw, ctx| fw.on_timer(ctx));
            return;
        }
        match slot.firmware.next_wake() {
            Some(t) if SimTime::from(t) <= self.now => {
                self.nodes[node.0].scheduled_wake = None;
                self.fire(node.0, |fw, ctx| fw.on_timer(ctx));
            }
            // Stale timer: the firmware moved its wake. Re-sync in case
            // the new target has no pending event.
            _ => {
                self.nodes[node.0].scheduled_wake = None;
                self.sync_wake(node.0);
            }
        }
    }

    /// Adds `i` to the sorted receiving-node index.
    fn rx_insert(&mut self, i: usize) {
        if let Err(pos) = self.rx_nodes.binary_search(&i) {
            self.rx_nodes.insert(pos, i);
        }
    }

    /// Removes `i` from the sorted receiving-node index.
    fn rx_remove(&mut self, i: usize) {
        if let Ok(pos) = self.rx_nodes.binary_search(&i) {
            self.rx_nodes.remove(pos);
        }
    }

    /// Rebuilds the spatial grid over the current positions if any have
    /// changed since the last build. No-op when the grid is disabled.
    fn ensure_grid(&mut self) {
        if self.config.spatial_grid && self.grid_dirty {
            self.grid_dirty = false;
            let r_max = self.audible_range;
            let Self { grid, state, .. } = self;
            grid.rebuild_from(state.iter().map(|s| s.position), r_max);
        }
    }

    /// Fills `out` with row `i`'s candidate set: the grid's 3×3
    /// neighborhood when the grid is on (a superset of every audible
    /// node — see [`crate::grid`]), else every node.
    fn fill_candidates(&mut self, i: usize, out: &mut Vec<usize>) {
        if self.config.spatial_grid {
            self.ensure_grid();
            self.grid.candidates_into(self.state[i].position, out);
        } else {
            out.clear();
            out.extend(0..self.state.len());
        }
    }

    /// Makes sure row `i` of the link cache is filled for this epoch.
    /// Only call when [`SimConfig::link_cache`] is on.
    fn ensure_row(&mut self, i: usize) {
        if self.link_cache.has_row(i) {
            return;
        }
        let mut cands = std::mem::take(&mut self.cand_scratch);
        self.fill_candidates(i, &mut cands);
        let (medium, state) = (&self.medium, &self.state);
        let _ = self
            .link_cache
            .row(i, &cands, |k| link_between(medium, state, i, k));
        self.cand_scratch = cands;
    }

    /// The (cached) link budget between nodes `i` and `j` at their
    /// current positions. Only call when [`SimConfig::link_cache`] is on.
    fn link_for(&mut self, i: usize, j: usize) -> Link {
        self.ensure_row(i);
        self.link_cache
            .cached(i)
            .map_or_else(Link::silent, |row| row.get(j))
    }

    /// Received power (mW) at node `rx` of an active transmission by
    /// `sender` that started at `origin`. Uses the cache only when the
    /// sender has not moved since transmission start — after a mobility
    /// tick the cached (current-position) power would be wrong for a
    /// frame already on the air.
    fn active_tx_power_mw(&mut self, sender: usize, origin: Position, rx: usize) -> f64 {
        if self.config.link_cache && self.state[sender].position == origin {
            self.link_for(sender, rx).power_mw
        } else {
            self.medium
                .received_power(
                    &origin,
                    &self.state[rx].position,
                    NodeId(sender),
                    NodeId(rx),
                )
                .to_milliwatts()
                .value()
        }
    }

    /// Like [`Self::active_tx_power_mw`] but answering the CAD question:
    /// is the transmission audible at `rx`?
    fn active_tx_audible(&mut self, sender: usize, origin: Position, rx: usize) -> bool {
        if self.config.link_cache && self.state[sender].position == origin {
            self.link_for(sender, rx).audible
        } else {
            let power = self.medium.received_power(
                &origin,
                &self.state[rx].position,
                NodeId(sender),
                NodeId(rx),
            );
            self.medium.audible(power)
        }
    }

    /// The CAD predicate: any in-flight transmission (other than
    /// `except`) audible at node `i`?
    fn channel_busy(&mut self, i: usize, except: Option<NodeId>) -> bool {
        if self.shard.is_none() && !self.config.link_cache {
            return self
                .medium
                .channel_busy_at(&self.state[i].position, NodeId(i), except);
        }
        let mut active = std::mem::take(&mut self.active_scratch);
        active.clear();
        // The band roster is a superset of the transmissions audible at
        // `i` (audibility is distance-bounded), so scanning it instead of
        // the global registry yields the same boolean.
        match &self.shard {
            Some(sh) => {
                let band = sh.parts.band_of(self.state[i].position.x);
                active.extend(sh.active[band].iter().map(|&(_, s, origin)| (s, origin)));
            }
            None => active.extend(self.medium.active().map(|tx| (tx.sender, tx.origin))),
        }
        let mut busy = false;
        for &(sender, origin) in &active {
            if Some(sender) == except || sender.0 == i {
                continue;
            }
            if self.active_tx_audible(sender.0, origin, i) {
                busy = true;
                break;
            }
        }
        self.active_scratch = active;
        busy
    }

    /// Builds the given link-cache rows on worker threads and installs
    /// them in row order ([`crate::par`]). Purely a warm-up: every row is
    /// a value the coordinator's lazy fill would compute bit-identically
    /// anyway ([`LinkCache::compute_row`] reads only rows cached *before*
    /// the region starts, and link budgets are symmetric bit-for-bit), so
    /// thread count and scheduling stay invisible to the simulation.
    fn prefetch_rows(&mut self, rows: &[usize]) {
        // Adaptive inline gate: prefetching is purely a warm-up, so the
        // only question is whether the fork-join is *profitable*. Cap
        // the worker count by the hardware (on a single-core host a
        // spawned worker just timeslices against the coordinator) and
        // require a measured minimum of rows per worker; otherwise let
        // the coordinator fill rows lazily inline. Never affects
        // outcomes — only where the identical row values are computed.
        let threads = self
            .config
            .threads
            .min(std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get));
        if threads <= 1 || !self.config.link_cache || rows.len() < PREFETCH_MIN_PER_WORKER * threads
        {
            return;
        }
        self.ensure_grid();
        let use_grid = self.config.spatial_grid;
        let n = self.state.len();
        let Self {
            medium,
            state,
            link_cache,
            grid,
            ..
        } = self;
        let cache: &LinkCache = link_cache;
        let computed: Vec<(usize, LinkRow)> = par::map_chunks(threads, rows, |_, &i| {
            let mut cands = Vec::new();
            if use_grid {
                grid.candidates_into(state[i].position, &mut cands);
            } else {
                cands.extend(0..n);
            }
            let row = cache.compute_row(i, &cands, |k| link_between(medium, state, i, k));
            (i, row)
        });
        for (i, row) in computed {
            link_cache.install(i, row);
        }
    }

    fn start_tx(&mut self, i: usize, bytes: std::sync::Arc<[u8]>) {
        if bytes.len() > LoRaModulation::MAX_PHY_PAYLOAD {
            self.metrics.tx_oversized += 1;
            return;
        }
        if !self.state[i].alive {
            self.metrics.tx_while_dead += 1;
            return;
        }
        match self.nodes[i].radio.state() {
            RadioState::Idle => {}
            RadioState::Rx { .. } => {
                // Real transceivers abort an ongoing reception when
                // commanded to transmit (ALOHA-style protocols rely on
                // this). The pending RxEnd event goes stale.
                self.metrics.rx_aborted_by_tx += 1;
                self.nodes[i].radio.to_idle(self.now);
                self.rx_remove(i);
            }
            RadioState::Tx { .. } | RadioState::Cad { .. } | RadioState::Off => {
                self.metrics.tx_while_busy += 1;
                return;
            }
        }
        let sender = NodeId(i);
        let origin = self.state[i].position;
        let tx = self.medium.begin_tx(sender, origin, self.now, bytes);
        let frame = tx.frame;
        let end = self.now + tx.airtime;
        self.nodes[i].radio.begin_tx(self.now, frame, end);
        self.schedule_for(end, i, SimEvent::TxEnd(sender, frame));
        if let Some(sh) = &mut self.shard {
            sh.register(frame, sender, origin);
        }
        self.metrics.record_tx(sender, tx.airtime);
        self.trace.push(
            self.now,
            TraceEvent::TxStart {
                node: sender,
                frame,
                len: tx.len,
            },
        );

        // Decide how every other node experiences this frame. With the
        // cache on, the fan-out is `i`'s audible-neighbor list: every
        // skipped index is provably a no-op in the uncached loop
        // (inaudible ⇒ no lock, no CAD note, and — since interference
        // sums are audibility-gated — no interference entry either).
        // With the cache off it is simply every node, preserving the
        // historical iteration exactly.
        let mut fanout = std::mem::take(&mut self.fanout_scratch);
        fanout.clear();
        if self.config.link_cache {
            self.ensure_row(i);
            if let Some(row) = self.link_cache.cached(i) {
                fanout.extend(row.entries().filter(|&(_, link)| link.audible));
            }
        } else {
            let (medium, state) = (&self.medium, &self.state);
            fanout.extend(
                (0..state.len())
                    .filter(|&j| j != i && state[j].alive)
                    .map(|j| (j, link_between(medium, state, i, j))),
            );
        }
        for &(j, link) in &fanout {
            if j == i || !self.state[j].alive {
                continue;
            }
            let receiver = NodeId(j);

            match *self.nodes[j].radio.state() {
                RadioState::Idle => {
                    if link.audible {
                        self.lock_receiver(j, frame, link.power, link.power_mw, end);
                    }
                }
                RadioState::Rx { frame: current, .. } => {
                    // The new frame interferes with the ongoing reception
                    // — when audible. Sub-sensitivity power is orders of
                    // magnitude below both the noise floor already inside
                    // `judge` and any signal worth locking onto, so
                    // gating it out of the sum cannot move a judgement
                    // that matters; it is what makes range-scoped rosters
                    // and scoped cache invalidation exact (DESIGN.md,
                    // "Sharded engine").
                    let steal = link.audible && {
                        let rec = self.nodes[j]
                            .radio
                            .reception
                            .as_mut()
                            .expect("Rx state implies a reception");
                        rec.add_interferer(frame, link.power_mw);
                        link.power_mw >= rec.signal_mw * self.medium.capture_ratio_linear()
                            && self
                                .medium
                                .get(current)
                                .is_some_and(|tx| self.medium.in_preamble(tx, self.now))
                    };
                    if steal {
                        // The stronger late frame wins the receiver.
                        self.metrics
                            .record_loss(receiver, crate::medium::LossReason::Truncated);
                        self.trace.push(
                            self.now,
                            TraceEvent::Lost {
                                node: receiver,
                                frame: current,
                                reason: crate::medium::LossReason::Truncated,
                            },
                        );
                        self.lock_receiver(j, frame, link.power, link.power_mw, end);
                    }
                }
                RadioState::Cad { .. } => {
                    if link.audible {
                        self.nodes[j].radio.note_cad_activity();
                    }
                }
                RadioState::Tx { .. } | RadioState::Off => {}
            }
        }
        self.fanout_scratch = fanout;
    }

    /// Locks receiver `j` onto `frame`, seeding its interference set with
    /// every other transmission already on the air. `power`/`power_mw`
    /// are the received power `start_tx` already computed for this link.
    fn lock_receiver(&mut self, j: usize, frame: FrameId, power: Dbm, power_mw: f64, end: SimTime) {
        let receiver = NodeId(j);
        let quality = self.medium.quality(power);
        let tx = self.medium.get(frame).expect("frame just registered");
        let sender = tx.sender;
        let payload = tx.payload.clone(); // Arc bump, not a byte copy
        let mut reception = Reception::new(frame, sender, quality, power_mw, payload);
        let mut interferers = std::mem::take(&mut self.interferer_scratch);
        interferers.clear();
        // The sharded engine reads the receiver's band roster instead of
        // the global registry: every audible transmission is registered
        // there (coverage ∈ reach of its origin), and rosters are kept
        // ascending by frame id, so the audibility filter below yields
        // the same interferer set in the same order — bit-identical
        // float sums — as the sequential scan.
        match &self.shard {
            Some(sh) => {
                let band = sh.parts.band_of(self.state[j].position.x);
                interferers.extend(
                    sh.active[band]
                        .iter()
                        .filter(|&&(f, s, _)| f != frame && s != receiver)
                        .copied(),
                );
            }
            None => interferers.extend(
                self.medium
                    .active()
                    .filter(|a| a.frame != frame && a.sender != receiver)
                    .map(|a| (a.frame, a.sender, a.origin)),
            ),
        }
        for &(f, s, origin) in &interferers {
            if self.active_tx_audible(s.0, origin, j) {
                let p = self.active_tx_power_mw(s.0, origin, j);
                reception.add_interferer(f, p);
            }
        }
        self.interferer_scratch = interferers;
        self.nodes[j].radio.begin_rx(self.now, reception, end);
        self.rx_insert(j);
        self.schedule_for(end, j, SimEvent::RxEnd(receiver, frame));
    }

    fn handle_tx_end(&mut self, node: NodeId, frame: FrameId) {
        let Some(tx) = self.medium.end_tx(frame) else {
            // Aborted earlier (sender killed mid-frame).
            return;
        };
        debug_assert_eq!(tx.sender, node);
        // The frame stops interfering with ongoing receptions. The
        // sharded engine visits only locked receivers (the rx-node
        // index) instead of all N: a node outside it either has no
        // reception or a stale one left behind by an rx-abort, whose
        // contents are never read again (receptions are only consulted
        // under a matching `Rx` radio state and are overwritten by the
        // next lock).
        if let Some(sh) = &mut self.shard {
            sh.unregister(frame, tx.origin);
            let Self {
                nodes, rx_nodes, ..
            } = self;
            for &j in rx_nodes.iter() {
                if let Some(rec) = nodes[j].radio.reception.as_mut() {
                    rec.remove_interferer(frame);
                }
            }
        } else {
            for slot in &mut self.nodes {
                if let Some(rec) = slot.radio.reception.as_mut() {
                    rec.remove_interferer(frame);
                }
            }
        }
        self.trace.push(self.now, TraceEvent::TxEnd { node, frame });
        let slot = &self.nodes[node.0];
        if self.state[node.0].alive
            && matches!(slot.radio.state(), RadioState::Tx { frame: f, .. } if *f == frame)
        {
            self.nodes[node.0].radio.to_idle(self.now);
            self.fire(node.0, |fw, ctx| fw.on_tx_done(ctx));
        }
    }

    fn handle_rx_end(&mut self, node: NodeId, frame: FrameId) {
        let slot = &mut self.nodes[node.0];
        if !self.state[node.0].alive
            || !matches!(slot.radio.state(), RadioState::Rx { frame: f, .. } if *f == frame)
        {
            return; // stale: the lock moved on
        }
        let reception = slot
            .radio
            .reception
            .take()
            .expect("Rx state implies a reception");
        slot.radio.to_idle(self.now);
        self.rx_remove(node.0);
        let Self {
            rngs,
            medium,
            link_loss,
            ..
        } = &mut *self;
        let rng = &mut rngs[node.0];
        let mut outcome = medium.judge(&reception, rng);
        if matches!(outcome, RxOutcome::Delivered(_)) {
            let key = (
                reception.sender.0.min(node.0),
                reception.sender.0.max(node.0),
            );
            if let Some(&p) = link_loss.get(&key) {
                if rng.gen_bool(p) {
                    outcome = RxOutcome::Lost(crate::medium::LossReason::Injected);
                }
            }
        }
        match outcome {
            RxOutcome::Delivered(quality) => {
                self.metrics.record_delivery(node);
                self.trace
                    .push(self.now, TraceEvent::Delivered { node, frame });
                let payload = reception.payload;
                self.fire(node.0, |fw, ctx| fw.on_frame(&payload, quality, ctx));
            }
            RxOutcome::Lost(reason) => {
                self.metrics.record_loss(node, reason);
                self.trace.push(
                    self.now,
                    TraceEvent::Lost {
                        node,
                        frame,
                        reason,
                    },
                );
            }
        }
    }

    fn start_cad(&mut self, i: usize) {
        if !self.state[i].alive {
            return;
        }
        if !self.nodes[i].radio.is_idle() {
            // The radio is receiving or transmitting: the scan cannot run,
            // but the protocol still needs an answer — real CAD during
            // channel activity reports "busy". Keep the radio state
            // untouched and deliver the result after the scan duration.
            let duration = self
                .medium
                .config()
                .modulation
                .symbol_time()
                .mul_f64(f64::from(self.config.cad_symbols));
            let at = self.now + duration;
            self.schedule_for(at, i, SimEvent::CadBusyReport(NodeId(i)));
            return;
        }
        let node = NodeId(i);
        let busy_now = self.channel_busy(i, None);
        let duration = self
            .medium
            .config()
            .modulation
            .symbol_time()
            .mul_f64(f64::from(self.config.cad_symbols));
        let until = self.now + duration;
        self.nodes[i].radio.begin_cad(self.now, until, busy_now);
        self.schedule_for(until, i, SimEvent::CadEnd(node));
    }

    fn handle_cad_end(&mut self, node: NodeId) {
        if !self.state[node.0].alive {
            return;
        }
        let slot = &self.nodes[node.0];
        let RadioState::Cad { until, busy_seen } = *slot.radio.state() else {
            return; // stale (killed+revived mid-scan)
        };
        if until != self.now {
            return;
        }
        let busy = busy_seen || self.channel_busy(node.0, None);
        self.nodes[node.0].radio.to_idle(self.now);
        self.metrics.record_cad(node, busy);
        self.fire(node.0, |fw, ctx| fw.on_cad_done(busy, ctx));
    }

    fn kill(&mut self, node: NodeId) {
        let i = node.0;
        if !self.state[i].alive {
            return;
        }
        self.state[i].alive = false;
        // A transmission in progress is truncated: receivers locked to it
        // can no longer decode it, and it stops interfering.
        if let RadioState::Tx { frame, .. } = *self.nodes[i].radio.state() {
            let ended = self.medium.end_tx(frame);
            if let Some(sh) = &mut self.shard {
                // Same rx-node-scoped sweep as `handle_tx_end`.
                let origin = ended.expect("Tx state implies an active frame").origin;
                sh.unregister(frame, origin);
                let Self {
                    nodes, rx_nodes, ..
                } = self;
                for &j in rx_nodes.iter() {
                    if let Some(rec) = nodes[j].radio.reception.as_mut() {
                        if rec.frame == frame {
                            rec.corrupted = true;
                        } else {
                            rec.remove_interferer(frame);
                        }
                    }
                }
            } else {
                for slot in &mut self.nodes {
                    if let Some(rec) = slot.radio.reception.as_mut() {
                        if rec.frame == frame {
                            rec.corrupted = true;
                        } else {
                            rec.remove_interferer(frame);
                        }
                    }
                }
            }
        }
        self.nodes[i].radio.power_off(self.now);
        self.nodes[i].scheduled_wake = None;
        if self.config.timer_tombstones {
            // The legacy engine leaves dead-node timers queued and
            // filters them in `handle_timer`; tombstoning drops them
            // inside the queue instead.
            self.cancel_wake(node);
        }
        self.rx_remove(i);
        self.trace.push(self.now, TraceEvent::Killed { node });
    }

    fn revive(&mut self, node: NodeId) {
        let i = node.0;
        if self.state[i].alive {
            return;
        }
        self.state[i].alive = true;
        self.nodes[i].radio.power_on(self.now);
        self.trace.push(self.now, TraceEvent::Revived { node });
        self.fire(i, |fw, ctx| fw.on_start(ctx));
    }

    fn ensure_mobility_tick(&mut self) {
        if self.mobility_scheduled {
            return;
        }
        if self.state.iter().any(|s| s.mobility.is_mobile()) {
            self.mobility_scheduled = true;
            self.queue
                .schedule(self.now + self.config.mobility_tick, SimEvent::MobilityTick);
        }
    }

    /// Advances every mobile node by `dt` — on worker threads when
    /// configured. Thread-count invisible: each node's step is a pure
    /// function of its own mobility state and its own RNG stream, and
    /// [`par::run_chunks`] partitions deterministically.
    fn step_positions(&mut self, dt: Duration) {
        let threads = if self.state.len() >= PAR_MIN_ITEMS {
            self.config.threads
        } else {
            1
        };
        par::run_chunks_zip(
            threads,
            &mut self.state,
            &mut self.rngs,
            |_, chunk, rngs| {
                for (s, rng) in chunk.iter_mut().zip(rngs) {
                    if s.alive && s.mobility.is_mobile() {
                        s.position = s.mobility.step(s.position, dt, rng);
                    }
                }
            },
        );
    }

    fn mobility_tick(&mut self) {
        let dt = self.config.mobility_tick;
        if let Some(mut sh) = self.shard.take() {
            // Scoped invalidation: a move can only change links touching
            // nodes within audible range of the mover's old or new
            // position. Rows of nodes outside every such interval keep
            // correct audibility flags and bit-fresh audible powers —
            // their stale entries are all sub-sensitivity (distance
            // > r_max before *and* after the move, and distance ≥ |Δx|),
            // which gated interference never reads.
            for t in &mut sh.touched {
                *t = false;
            }
            let mut xs = std::mem::take(&mut self.xs_scratch);
            xs.clear();
            xs.extend(self.state.iter().map(|s| s.position.x));
            self.step_positions(dt);
            for (i, &old_x) in xs.iter().enumerate() {
                let s = &self.state[i];
                if s.alive && s.mobility.is_mobile() {
                    let (lo, hi) = sh
                        .parts
                        .reach_interval(old_x.min(s.position.x), old_x.max(s.position.x));
                    for band in lo..=hi {
                        sh.touched[band] = true;
                    }
                }
            }
            for i in 0..self.state.len() {
                if sh.touched[sh.parts.band_of(self.state[i].position.x)] {
                    self.link_cache.invalidate_row(i);
                }
            }
            self.xs_scratch = xs;
            self.shard = Some(sh);
        } else {
            self.step_positions(dt);
            // Positions changed: every cached link budget is now stale.
            self.link_cache.invalidate_all();
        }
        self.grid_dirty = true;
        // Wake-gated warm-up: refill, on worker threads, the rows of
        // nodes whose firmware will act before the next tick (their
        // transmissions/CADs would fill those rows on the coordinator
        // otherwise). Purely a prefetch — see `prefetch_rows`.
        if self.config.threads > 1 && self.config.link_cache {
            let horizon = self.now.as_duration() + dt;
            let mut rows = std::mem::take(&mut self.prefetch_scratch);
            rows.clear();
            rows.extend((0..self.state.len()).filter(|&i| {
                self.state[i].alive
                    && !self.link_cache.has_row(i)
                    && self.nodes[i].scheduled_wake.is_some_and(|w| w <= horizon)
            }));
            self.prefetch_rows(&rows);
            self.prefetch_scratch = rows;
        }
        self.queue.schedule(self.now + dt, SimEvent::MobilityTick);
    }
}

/// The run methods live in an `F: Send` impl because a parallel commit
/// batch ([`commit`]) moves each band worker's `&mut NodeSlot<F>` onto a
/// scoped worker thread. Every real firmware is `Send` (they own plain
/// data), so the bound costs callers nothing; it simply makes "firmware
/// crosses threads" part of the run-loop contract.
impl<F: Firmware + Send> Simulator<F> {
    /// Runs until simulated time `until` (an offset from the start),
    /// processing every event scheduled before it.
    pub fn run_until(&mut self, until: Duration) {
        self.start();
        let until = SimTime::from(until);
        if self.shard.is_some() {
            self.run_merged(until);
        } else {
            while let Some(at) = self.queue.peek_time() {
                if at > until {
                    break;
                }
                self.step();
            }
        }
        // Peeking may have discarded stale tombstones after the last step.
        self.metrics.stale_timers_dropped = self.stale_dropped_total();
        if until > self.now {
            self.now = until;
        }
    }

    /// Runs for `d` more simulated time.
    pub fn run_for(&mut self, d: Duration) {
        self.run_until(self.now.as_duration() + d);
    }

    /// Processes a single event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        self.start();
        let popped = if self.shard.is_some() {
            self.pop_next_merged()
        } else {
            self.queue.pop()
        };
        let Some((at, event)) = popped else {
            return false;
        };
        self.dispatch(at, event);
        self.metrics.stale_timers_dropped = self.stale_dropped_total();
        true
    }

    /// The sharded run loop: a k-way merge of the coordinator queue and
    /// every shard queue by `(time, seq)` — exactly the global order the
    /// sequential engine processes, which is why both engines are
    /// byte-identical. The winning shard queue is drained in a *batch*
    /// while its head is provably still the global minimum:
    ///
    /// * internal events only create cross-queue work (an `RxEnd` at a
    ///   receiver homed elsewhere) at `now + airtime ≥ t0 + lookahead`
    ///   (see [`crate::shard`]), bounding the batch by the lookahead
    ///   horizon;
    /// * nothing in a batch inserts into the coordinator queue (faults,
    ///   app traffic and mobility ticks are injected externally), and
    ///   coordinator events are processed one at a time because they
    ///   *can* create immediate work anywhere (a revive fires
    ///   `on_start` now);
    /// * same-queue insertions (timers clamped to now, CAD endings) are
    ///   handled by re-peeking the head every iteration;
    /// * the pre-batch second-best head caps the batch from the side of
    ///   the *existing* contents of the other queues.
    ///
    /// With [`SimConfig::threads`] > 1 the loop first offers the window
    /// to the parallel commit planner ([`Self::commit_batch`]), which
    /// executes several *zone-disjoint* band batches concurrently and
    /// replays their buffered outputs in the same global `(time, seq)`
    /// order. When the planner declines (conflicting zones, too little
    /// queued work, a coordinator event up next) the sequential
    /// single-band drain below is the unchanged fallback.
    fn run_merged(&mut self, until: SimTime) {
        loop {
            let mut best = self.queue.peek_key();
            let mut from = usize::MAX;
            let mut second: Option<(SimTime, u64)> = None;
            {
                let sh = self.shard.as_mut().expect("sharded engine");
                for (qi, q) in sh.queues.iter_mut().enumerate() {
                    let Some(k) = q.peek_key() else { continue };
                    if best.is_none_or(|b| k < b) {
                        second = best;
                        best = Some(k);
                        from = qi;
                    } else if second.is_none_or(|s| k < s) {
                        second = Some(k);
                    }
                }
            }
            let Some((t0, _)) = best else { return };
            if t0 > until {
                return;
            }
            if from == usize::MAX {
                let (at, event) = self.queue.pop().expect("peeked");
                self.dispatch(at, event);
                continue;
            }
            if self.config.threads > 1 && self.commit_batch(t0, until) {
                continue;
            }
            let horizon = t0 + self.shard.as_ref().expect("sharded engine").lookahead;
            loop {
                let sh = self.shard.as_mut().expect("sharded engine");
                let Some(k) = sh.queues[from].peek_key() else {
                    break;
                };
                if k.0 > until || k.0 >= horizon || second.is_some_and(|s| k >= s) {
                    break;
                }
                let (at, event) = sh.queues[from].pop().expect("peeked");
                self.dispatch(at, event);
            }
        }
    }
}

/// The link budget between nodes `i` and `j`, computed directly from
/// their current positions — the cache's fill function, and the whole
/// story when the cache is disabled. A free function over the
/// worker-visible [`NodeState`] slice so parallel prefetch can evaluate
/// it without the firmware type or the coordinator's `&mut` access.
fn link_between(medium: &Medium, state: &[NodeState], i: usize, j: usize) -> Link {
    let power = medium.received_power(&state[i].position, &state[j].position, NodeId(i), NodeId(j));
    Link {
        power,
        power_mw: power.to_milliwatts().value(),
        audible: medium.audible(power),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lora_phy::link::SignalQuality;

    /// The sweep engine runs one simulator per worker thread, so the
    /// simulator (with any Send firmware) must stay Send. Compile-time
    /// check: fails to build if someone introduces Rc/RefCell state.
    #[test]
    fn simulator_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<SimConfig>();
        assert_send::<Simulator<Probe>>();
    }

    /// The parallel evaluate regions share these by reference across
    /// worker threads; none may grow interior mutability. Compile-time
    /// check, like `simulator_is_send`.
    #[test]
    fn worker_shared_state_is_sync() {
        fn assert_sync<T: Sync>() {}
        fn assert_send<T: Send>() {}
        assert_sync::<Medium>();
        assert_sync::<LinkCache>();
        assert_sync::<Grid>();
        assert_sync::<NodeState>();
        assert_send::<NodeState>();
        assert_send::<Metrics>();
    }

    /// Test firmware: transmits a configured frame at a scheduled time and
    /// records everything it observes.
    #[derive(Default)]
    struct Probe {
        tx_at: Option<(Duration, Vec<u8>)>,
        sent: bool,
        received: Vec<(Vec<u8>, f64)>, // payload, rssi
        tx_done: u32,
        cad_results: Vec<bool>,
        start_cad_at: Option<Duration>,
        cad_done_time: Option<Duration>,
    }

    impl Firmware for Probe {
        fn on_timer(&mut self, ctx: &mut Context) {
            let now = ctx.now();
            if let Some((at, bytes)) = &self.tx_at {
                if !self.sent && now >= *at {
                    self.sent = true;
                    ctx.transmit(bytes.clone());
                    return;
                }
            }
            if let Some(at) = self.start_cad_at.take() {
                if now >= at {
                    ctx.start_cad();
                }
            }
        }
        fn on_frame(&mut self, bytes: &[u8], q: SignalQuality, _ctx: &mut Context) {
            self.received.push((bytes.to_vec(), q.rssi.value()));
        }
        fn on_tx_done(&mut self, _ctx: &mut Context) {
            self.tx_done += 1;
        }
        fn on_cad_done(&mut self, busy: bool, ctx: &mut Context) {
            self.cad_results.push(busy);
            self.cad_done_time = Some(ctx.now());
        }
        fn next_wake(&self) -> Option<Duration> {
            if self.sent {
                self.start_cad_at
            } else {
                match (&self.tx_at, self.start_cad_at) {
                    (Some((t, _)), Some(c)) => Some((*t).min(c)),
                    (Some((t, _)), None) => Some(*t),
                    (None, c) => c,
                }
            }
        }
    }

    fn sender_at(at: Duration, payload: Vec<u8>) -> Probe {
        Probe {
            tx_at: Some((at, payload)),
            ..Probe::default()
        }
    }

    fn sim() -> Simulator<Probe> {
        Simulator::new(SimConfig::default(), 1)
    }

    #[test]
    fn frame_delivered_to_near_listener() {
        let mut s = sim();
        let a = s.add_node(
            sender_at(Duration::from_millis(10), vec![1, 2, 3]),
            Position::new(0.0, 0.0),
        );
        let b = s.add_node(Probe::default(), Position::new(100.0, 0.0));
        s.run_for(Duration::from_secs(1));
        assert_eq!(s.node(a).tx_done, 1);
        assert_eq!(s.node(b).received.len(), 1);
        assert_eq!(s.node(b).received[0].0, vec![1, 2, 3]);
        assert_eq!(s.metrics().frames_transmitted, 1);
        assert_eq!(s.metrics().frames_delivered, 1);
    }

    #[test]
    fn far_listener_hears_nothing() {
        let mut s = sim();
        s.add_node(
            sender_at(Duration::from_millis(10), vec![9]),
            Position::new(0.0, 0.0),
        );
        let b = s.add_node(Probe::default(), Position::new(100_000.0, 0.0));
        s.run_for(Duration::from_secs(1));
        assert!(s.node(b).received.is_empty());
        // Not even counted as a loss: the node never locked on.
        assert_eq!(s.metrics().total_losses(), 0);
    }

    #[test]
    fn concurrent_equal_frames_collide() {
        let mut s = sim();
        // Two senders equidistant from the listener transmit simultaneously.
        s.add_node(
            sender_at(Duration::from_millis(10), vec![1; 20]),
            Position::new(-100.0, 0.0),
        );
        s.add_node(
            sender_at(Duration::from_millis(10), vec![2; 20]),
            Position::new(100.0, 0.0),
        );
        let c = s.add_node(Probe::default(), Position::new(0.0, 0.0));
        s.run_for(Duration::from_secs(1));
        assert!(s.node(c).received.is_empty());
        assert_eq!(s.metrics().lost_collision, 1);
    }

    #[test]
    fn capture_lets_much_stronger_frame_steal_the_lock() {
        let mut s = sim();
        // Weak sender A (110 m from the listener, ~-123.6 dBm) starts
        // first; strong sender B (30 m, ~-113.4 dBm) starts 5 ms later,
        // inside A's 12.5 ms preamble, 10 dB stronger. A and B are 140 m
        // apart so they cannot hear (and thus lock onto) each other.
        s.add_node(
            sender_at(Duration::from_millis(10), vec![1; 20]),
            Position::new(110.0, 0.0),
        );
        s.add_node(
            sender_at(Duration::from_millis(15), vec![2; 20]),
            Position::new(-30.0, 0.0),
        );
        let c = s.add_node(Probe::default(), Position::new(0.0, 0.0));
        s.run_for(Duration::from_secs(1));
        // The strong frame steals the lock and survives A's interference.
        assert_eq!(s.node(c).received.len(), 1);
        assert_eq!(s.node(c).received[0].0, vec![2; 20]);
        assert_eq!(s.metrics().lost_truncated, 1);
    }

    #[test]
    fn half_duplex_sender_misses_other_frame() {
        let mut s = sim();
        // Both transmit at the same time; they are out of range of each
        // other anyway, so neither hears the other's frame.
        let a = s.add_node(
            sender_at(Duration::from_millis(10), vec![1; 30]),
            Position::new(0.0, 0.0),
        );
        let b = s.add_node(
            sender_at(Duration::from_millis(10), vec![2; 30]),
            Position::new(5000.0, 0.0),
        );
        s.run_for(Duration::from_secs(1));
        assert!(s.node(a).received.is_empty());
        assert!(s.node(b).received.is_empty());
        assert_eq!(s.node(a).tx_done, 1);
        assert_eq!(s.node(b).tx_done, 1);
    }

    #[test]
    fn cad_detects_ongoing_transmission() {
        let mut s = sim();
        // B starts its CAD scan just before A's frame begins, so the frame
        // appears during the scan window (a listening B would otherwise
        // lock onto the frame instead of scanning).
        s.add_node(
            sender_at(Duration::from_millis(10), vec![0; 200]),
            Position::new(0.0, 0.0),
        );
        let b = s.add_node(
            Probe {
                start_cad_at: Some(Duration::from_micros(9500)),
                ..Probe::default()
            },
            Position::new(100.0, 0.0),
        );
        s.run_for(Duration::from_secs(1));
        assert_eq!(s.node(b).cad_results, vec![true]);
    }

    #[test]
    fn cad_reports_clear_channel() {
        let mut s = sim();
        let b = s.add_node(
            Probe {
                start_cad_at: Some(Duration::from_millis(50)),
                ..Probe::default()
            },
            Position::new(100.0, 0.0),
        );
        s.run_for(Duration::from_secs(1));
        assert_eq!(s.node(b).cad_results, vec![false]);
        // CAD takes 2 symbol times (SF7: 2.048 ms).
        let done = s.node(b).cad_done_time.unwrap();
        assert_eq!(
            done,
            Duration::from_millis(50) + Duration::from_micros(2048)
        );
    }

    #[test]
    fn cad_requested_while_receiving_reports_busy() {
        let mut s = sim();
        // A long frame starts at t=10ms; b locks onto it. At t=50ms b's
        // timer asks for a CAD: the radio is mid-reception, so the scan
        // cannot run — but the firmware still gets on_cad_done(true).
        s.add_node(
            sender_at(Duration::from_millis(10), vec![0; 200]),
            Position::new(0.0, 0.0),
        );
        let b = s.add_node(
            Probe {
                start_cad_at: Some(Duration::from_millis(50)),
                ..Probe::default()
            },
            Position::new(100.0, 0.0),
        );
        s.run_for(Duration::from_secs(1));
        assert_eq!(s.node(b).cad_results, vec![true]);
        // The reception itself still completed.
        assert_eq!(s.node(b).received.len(), 1);
        // The busy report arrived one CAD duration after the request.
        assert_eq!(
            s.node(b).cad_done_time.unwrap(),
            Duration::from_millis(50) + Duration::from_micros(2048)
        );
    }

    #[test]
    fn transmit_preempts_ongoing_reception() {
        let mut s = sim();
        // A long frame from node 0 starts at t=10ms; node 1 locks on.
        // At t=50ms node 1 transmits (ALOHA-style): its reception is
        // aborted, its own frame goes out and is heard by node 2.
        s.add_node(
            sender_at(Duration::from_millis(10), vec![0; 200]),
            Position::new(0.0, 0.0),
        );
        let b = s.add_node(
            sender_at(Duration::from_millis(50), vec![7; 10]),
            Position::new(100.0, 0.0),
        );
        let _c = s.add_node(Probe::default(), Position::new(190.0, 0.0));
        s.run_for(Duration::from_secs(1));
        assert_eq!(s.metrics().rx_aborted_by_tx, 1);
        assert!(
            s.node(b).received.is_empty(),
            "aborted reception must not deliver"
        );
        assert_eq!(
            s.node(b).tx_done,
            1,
            "the preempting transmission completes"
        );
        // Node 2 is out of range of node 0 (190 m) but in range of node 1
        // (90 m): it hears exactly the preempting frame... unless node
        // 0's continuing transmission interferes. Either way the frame
        // was sent and judged.
        assert_eq!(s.metrics().frames_transmitted, 2);
    }

    #[test]
    fn injected_link_loss_drops_fraction_of_frames() {
        let mut s = sim();
        // 50 senders' worth of traffic approximated by one sender firing
        // repeatedly via app events would need protocol logic; instead
        // run many single-frame sims... simpler: one sim where the sender
        // transmits once per second via repeated probes.
        let a = s.add_node(Probe::default(), Position::new(0.0, 0.0));
        let b = s.add_node(Probe::default(), Position::new(100.0, 0.0));
        s.set_link_loss(a, b, 0.5);
        s.start();
        for k in 0..200u64 {
            s.run_until(Duration::from_secs(k));
            s.with_node(a, |_fw, ctx| ctx.transmit(vec![k as u8; 4]));
        }
        s.run_for(Duration::from_secs(2));
        let delivered = s.node(b).received.len();
        assert!((60..140).contains(&delivered), "got {delivered}/200");
        assert_eq!(s.metrics().lost_injected, 200 - delivered as u64);
        // Clearing restores full delivery.
        s.set_link_loss(a, b, 0.0);
        let before = s.node(b).received.len();
        for k in 0..20u64 {
            s.run_until(Duration::from_secs(300 + k));
            s.with_node(a, |_fw, ctx| ctx.transmit(vec![k as u8; 4]));
        }
        s.run_for(Duration::from_secs(2));
        assert_eq!(s.node(b).received.len(), before + 20);
    }

    #[test]
    fn link_loss_is_directionless_and_per_pair() {
        let mut s = sim();
        let a = s.add_node(Probe::default(), Position::new(0.0, 0.0));
        let b = s.add_node(Probe::default(), Position::new(100.0, 0.0));
        let c = s.add_node(Probe::default(), Position::new(-100.0, 0.0));
        // Kill the a<->b link entirely; a<->c stays perfect.
        s.set_link_loss(b, a, 1.0);
        s.start();
        s.with_node(a, |_fw, ctx| ctx.transmit(vec![1; 4]));
        s.run_for(Duration::from_secs(1));
        s.with_node(b, |_fw, ctx| ctx.transmit(vec![2; 4]));
        s.run_for(Duration::from_secs(1));
        assert!(s.node(b).received.is_empty(), "a->b must be dead");
        assert!(s.node(a).received.is_empty(), "b->a must be dead");
        assert_eq!(s.node(c).received.len(), 1, "a->c unaffected");
    }

    #[test]
    fn killed_sender_truncates_frame() {
        let mut s = sim();
        let a = s.add_node(
            sender_at(Duration::from_millis(10), vec![0; 200]),
            Position::new(0.0, 0.0),
        );
        let b = s.add_node(Probe::default(), Position::new(100.0, 0.0));
        // Kill A mid-frame (a 200-byte SF7 frame lasts ~290 ms).
        s.schedule_kill(Duration::from_millis(100), a);
        s.run_for(Duration::from_secs(1));
        assert!(s.node(b).received.is_empty());
        assert_eq!(s.metrics().lost_truncated, 1);
        assert!(!s.is_alive(a));
    }

    #[test]
    fn revived_node_hears_again() {
        let mut s = sim();
        let a = s.add_node(
            sender_at(Duration::from_secs(10), vec![7; 5]),
            Position::new(0.0, 0.0),
        );
        let b = s.add_node(Probe::default(), Position::new(100.0, 0.0));
        s.schedule_kill(Duration::from_secs(1), b);
        s.schedule_revive(Duration::from_secs(5), b);
        s.run_for(Duration::from_secs(20));
        assert_eq!(s.node(b).received.len(), 1);
        assert_eq!(s.node(a).tx_done, 1);
    }

    #[test]
    fn dead_node_hears_nothing() {
        let mut s = sim();
        s.add_node(
            sender_at(Duration::from_secs(2), vec![7; 5]),
            Position::new(0.0, 0.0),
        );
        let b = s.add_node(Probe::default(), Position::new(100.0, 0.0));
        s.schedule_kill(Duration::from_secs(1), b);
        s.run_for(Duration::from_secs(20));
        assert!(s.node(b).received.is_empty());
    }

    #[test]
    fn determinism_same_seed_same_outcome() {
        let run = |seed: u64| {
            let mut cfg = SimConfig::default();
            cfg.rf.grey_zone = true;
            cfg.trace_capacity = 4096;
            let mut s = Simulator::new(cfg, seed);
            for k in 0..6 {
                s.add_node(
                    sender_at(Duration::from_millis(10 * k as u64), vec![k; 10]),
                    Position::new(f64::from(k) * 100.0, 0.0),
                );
            }
            s.run_for(Duration::from_secs(2));
            let trace: Vec<_> = s.trace().entries().cloned().collect();
            (
                s.metrics().frames_delivered,
                s.metrics().total_losses(),
                trace,
            )
        };
        let a = run(77);
        let b = run(77);
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
        assert_eq!(a.2, b.2);
        let c = run(78);
        // Different seed may differ (grey zone coin flips); at minimum the
        // run must still complete and produce trace activity. (Deliveries
        // can legitimately be zero: a node that starts transmitting
        // aborts its own ongoing reception.)
        assert!(!c.2.is_empty());
    }

    #[test]
    fn with_node_processes_commands() {
        let mut s = sim();
        let a = s.add_node(Probe::default(), Position::new(0.0, 0.0));
        let b = s.add_node(Probe::default(), Position::new(100.0, 0.0));
        s.start();
        s.with_node(a, |_fw, ctx| ctx.transmit(vec![5; 4]));
        s.run_for(Duration::from_secs(1));
        assert_eq!(s.node(b).received.len(), 1);
        assert_eq!(s.node(b).received[0].0, vec![5; 4]);
    }

    #[test]
    fn oversized_frame_is_refused() {
        let mut s = sim();
        let a = s.add_node(Probe::default(), Position::new(0.0, 0.0));
        s.start();
        s.with_node(a, |_fw, ctx| ctx.transmit(vec![0; 300]));
        s.run_for(Duration::from_secs(1));
        assert_eq!(s.metrics().tx_oversized, 1);
        assert_eq!(s.metrics().frames_transmitted, 0);
    }

    #[test]
    fn tx_while_busy_is_counted() {
        let mut s = sim();
        let a = s.add_node(Probe::default(), Position::new(0.0, 0.0));
        s.start();
        s.with_node(a, |_fw, ctx| {
            ctx.transmit(vec![0; 10]);
            ctx.transmit(vec![1; 10]); // radio already transmitting
        });
        s.run_for(Duration::from_secs(1));
        assert_eq!(s.metrics().tx_while_busy, 1);
        assert_eq!(s.metrics().tx_while_dead, 0);
        assert_eq!(s.metrics().frames_transmitted, 1);
    }

    #[test]
    fn tx_while_dead_is_counted_separately() {
        let mut s = sim();
        let a = s.add_node(Probe::default(), Position::new(0.0, 0.0));
        s.schedule_kill(Duration::from_millis(10), a);
        s.run_for(Duration::from_secs(1));
        s.with_node(a, |_fw, ctx| ctx.transmit(vec![0; 10]));
        s.run_for(Duration::from_secs(1));
        assert_eq!(s.metrics().tx_while_dead, 1);
        assert_eq!(s.metrics().tx_while_busy, 0);
        assert_eq!(s.metrics().frames_transmitted, 0);
    }

    #[test]
    fn events_processed_counts_steps() {
        let mut s = sim();
        s.add_node(
            sender_at(Duration::from_millis(10), vec![1, 2, 3]),
            Position::new(0.0, 0.0),
        );
        s.add_node(Probe::default(), Position::new(100.0, 0.0));
        assert_eq!(s.events_processed(), 0);
        s.run_for(Duration::from_secs(1));
        // At least: sender timer, TxEnd, RxEnd.
        assert!(s.events_processed() >= 3, "{}", s.events_processed());
    }

    /// A spot check that disabling the cache leaves outcomes unchanged
    /// (the exhaustive differential test lives in tests/link_cache_diff.rs).
    #[test]
    fn link_cache_off_matches_on() {
        let run = |link_cache: bool| {
            let mut cfg = SimConfig::default();
            cfg.rf.grey_zone = true;
            cfg.trace_capacity = 4096;
            cfg.link_cache = link_cache;
            let mut s = Simulator::new(cfg, 99);
            for k in 0..8 {
                s.add_node(
                    sender_at(Duration::from_millis(7 * k as u64), vec![k; 12]),
                    Position::new(f64::from(k) * 90.0, 0.0),
                );
            }
            s.run_for(Duration::from_secs(2));
            let trace: Vec<_> = s.trace().entries().cloned().collect();
            (s.metrics().clone(), trace)
        };
        let cached = run(true);
        let uncached = run(false);
        assert_eq!(cached.0, uncached.0);
        assert_eq!(cached.1, uncached.1);
    }

    /// A mobile, chatty 80-node run — large enough (> `PAR_MIN_ITEMS`)
    /// that the parallel stepping and prefetch regions genuinely fire.
    fn mobile_fingerprint(mut cfg: SimConfig) -> (Metrics, Vec<(SimTime, TraceEvent)>) {
        cfg.rf.grey_zone = true;
        cfg.trace_capacity = 1 << 14;
        let mut s = Simulator::new(cfg, 4242);
        for k in 0..80u8 {
            let mobility = if k % 3 == 0 {
                Mobility::RandomWaypoint {
                    width_m: 800.0,
                    height_m: 500.0,
                    min_speed: 1.0,
                    max_speed: 8.0,
                    pause: Duration::from_secs(1),
                }
            } else {
                Mobility::Static
            };
            s.add_mobile_node(
                sender_at(Duration::from_millis(13 * u64::from(k)), vec![k; 12]),
                Position::new(f64::from(k % 10) * 85.0, f64::from(k / 10) * 60.0),
                mobility,
            );
        }
        s.run_for(Duration::from_secs(6));
        let mut m = s.metrics().clone();
        // Tombstone drop timing differs across engines by design.
        m.stale_timers_dropped = 0;
        (m, s.trace().entries().cloned().collect())
    }

    /// Spot check: thread count is behaviourally invisible (the
    /// exhaustive battery lives in tests/shard_diff.rs). Threaded runs
    /// require per-node RNG streams, so the invariance is pinned within
    /// the stream family.
    #[test]
    fn threads_do_not_change_outcomes() {
        let seq = SimConfig {
            rng_streams: true,
            ..SimConfig::default()
        };
        let base = mobile_fingerprint(seq.clone());
        for threads in [2usize, 4] {
            let cfg = SimConfig {
                threads,
                ..seq.clone()
            };
            assert_eq!(mobile_fingerprint(cfg), base, "threads = {threads}");
        }
    }

    /// Threaded batch commit without per-node RNG streams would have to
    /// share the fork-chain root generator across workers — a
    /// configuration error, refused at startup.
    #[test]
    #[should_panic(expected = "requires SimConfig::rng_streams")]
    fn threads_without_rng_streams_refuse_to_start() {
        let cfg = SimConfig {
            threads: 2,
            ..SimConfig::default()
        };
        mobile_fingerprint(cfg);
    }

    /// Spot check: the spatial grid is behaviourally invisible (the
    /// exhaustive battery lives in tests/link_cache_diff.rs).
    #[test]
    fn spatial_grid_off_matches_on() {
        let on = mobile_fingerprint(SimConfig::default());
        let cfg = SimConfig {
            spatial_grid: false,
            ..SimConfig::default()
        };
        assert_eq!(mobile_fingerprint(cfg), on);
    }

    /// Per-node stream derivation is engine-invariant — shard and thread
    /// counts cannot perturb any node's draws — while still producing
    /// different draws than the fork derivation (it is a genuinely
    /// distinct stream family, which is why the fork stays the pinned
    /// differential reference).
    #[test]
    fn rng_streams_are_engine_invariant() {
        let cfg = SimConfig {
            rng_streams: true,
            ..SimConfig::default()
        };
        let seq = mobile_fingerprint(cfg.clone());
        let sharded = SimConfig {
            shards: 2,
            threads: 2,
            ..cfg
        };
        assert_eq!(mobile_fingerprint(sharded), seq);
        let forked = mobile_fingerprint(SimConfig::default());
        assert_ne!(seq.1, forked.1, "stream derivation must change draws");
    }

    #[test]
    fn radio_durations_account_airtime() {
        let mut s = sim();
        let a = s.add_node(
            sender_at(Duration::from_millis(0), vec![0; 100]),
            Position::new(0.0, 0.0),
        );
        s.run_for(Duration::from_secs(10));
        s.finish();
        let expected = s.modulation().time_on_air(100);
        assert_eq!(s.radio(a).durations.tx, expected);
        assert_eq!(
            s.radio(a).durations.tx + s.radio(a).durations.rx,
            Duration::from_secs(10)
        );
    }

    #[test]
    fn mobile_node_moves_during_run() {
        let mut s = sim();
        let m = s.add_mobile_node(
            Probe::default(),
            Position::new(0.0, 0.0),
            Mobility::RandomWaypoint {
                width_m: 1000.0,
                height_m: 1000.0,
                min_speed: 5.0,
                max_speed: 10.0,
                pause: Duration::ZERO,
            },
        );
        let before = s.position(m);
        s.run_for(Duration::from_secs(30));
        let after = s.position(m);
        assert!(before.distance(&after) > 1.0, "node did not move");
    }

    #[test]
    fn late_added_node_is_started() {
        let mut s = sim();
        let a = s.add_node(Probe::default(), Position::new(0.0, 0.0));
        s.run_for(Duration::from_secs(1));
        let b = s.add_node(
            sender_at(Duration::from_secs(2), vec![3; 3]),
            Position::new(100.0, 0.0),
        );
        s.run_for(Duration::from_secs(5));
        assert_eq!(s.node(a).received.len(), 1);
        assert_eq!(s.node(b).tx_done, 1);
    }
}
