//! The deterministic event queue at the heart of the simulator.
//!
//! Events are ordered by `(time, sequence)`: ties at the same instant are
//! broken by insertion order, never by heap internals, so runs are exactly
//! reproducible.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::firmware::NodeId;
use crate::time::SimTime;

/// Identifies one transmission on the medium.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FrameId(pub u64);

/// Something scheduled to happen at a point in simulated time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimEvent {
    /// A node's requested wake-up timer fires.
    Timer(NodeId),
    /// A transmission ends at the sender.
    TxEnd(NodeId, FrameId),
    /// A reception attempt concludes at a receiver.
    RxEnd(NodeId, FrameId),
    /// A channel-activity-detection scan concludes.
    CadEnd(NodeId),
    /// A CAD requested while the radio was busy (receiving or
    /// transmitting) completes: the result is unconditionally "busy",
    /// mirroring real hardware where CAD during activity reports it.
    CadBusyReport(NodeId),
    /// An application-level event (workload injection) for a node.
    App(NodeId, u64),
    /// Fault injection: the node's radio and firmware stop.
    Kill(NodeId),
    /// Fault injection: the node restarts.
    Revive(NodeId),
    /// A mobility step: recompute positions of mobile nodes.
    MobilityTick,
}

#[derive(Debug)]
struct Scheduled {
    at: SimTime,
    seq: u64,
    event: SimEvent,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert to pop the earliest first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A time-ordered queue of [`SimEvent`]s with deterministic tie-breaking.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Scheduled>,
    next_seq: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `event` at time `at`.
    pub fn schedule(&mut self, at: SimTime, event: SimEvent) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, event });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, SimEvent)> {
        self.heap.pop().map(|s| (s.at, s.event))
    }

    /// The time of the earliest pending event.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(i: u32) -> NodeId {
        NodeId(i as usize)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(30), SimEvent::Timer(node(3)));
        q.schedule(SimTime::from_millis(10), SimEvent::Timer(node(1)));
        q.schedule(SimTime::from_millis(20), SimEvent::Timer(node(2)));
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(
            order.iter().map(|(t, _)| *t).collect::<Vec<_>>(),
            vec![
                SimTime::from_millis(10),
                SimTime::from_millis(20),
                SimTime::from_millis(30)
            ]
        );
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..10 {
            q.schedule(t, SimEvent::App(node(i), u64::from(i)));
        }
        for i in 0..10 {
            let (_, e) = q.pop().unwrap();
            assert_eq!(e, SimEvent::App(node(i), u64::from(i)));
        }
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_secs(1), SimEvent::MobilityTick);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1)));
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), SimEvent::Timer(node(0)));
        q.schedule(SimTime::from_millis(5), SimEvent::Timer(node(1)));
        assert_eq!(q.pop().unwrap().0, SimTime::from_millis(5));
        q.schedule(SimTime::from_millis(1), SimEvent::Timer(node(2)));
        assert_eq!(q.pop().unwrap().0, SimTime::from_millis(1));
        assert_eq!(q.pop().unwrap().0, SimTime::from_millis(10));
    }
}
