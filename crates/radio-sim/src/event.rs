//! The deterministic event queue at the heart of the simulator.
//!
//! Events are ordered by `(time, sequence)`: ties at the same instant are
//! broken by insertion order, never by container internals, so runs are
//! exactly reproducible.
//!
//! # Calendar queue
//!
//! The queue is a two-level bucketed calendar queue. Near-future events
//! live in a ring of [`NUM_BUCKETS`] fixed-width time buckets (each
//! `2^BUCKET_SHIFT` nanoseconds wide); far-future events wait in an
//! overflow heap and migrate into the ring bucket-by-bucket as the
//! cursor reaches them. Each bucket is a small binary heap ordered by
//! `(time, seq)`, so draining the cursor bucket before advancing yields
//! exactly the global `(time, seq)` order the old single-heap
//! implementation produced. Events scheduled in the past (the simulator
//! clamps wake-ups to `now`) are folded into the cursor bucket, which is
//! always the global minimum, so ordering still holds.
//!
//! # Timer tombstones
//!
//! [`SimEvent::Timer`] carries a per-node generation stamp. The queue
//! owns the generation table: [`EventQueue::schedule_timer`] bumps the
//! node's generation (invalidating every previously queued timer for it)
//! and enqueues a fresh stamp; [`EventQueue::cancel_timer`] bumps without
//! enqueueing. Stale stamps are discarded in O(1) when they reach the
//! head of the queue — never surfacing to the simulator — and counted in
//! [`EventQueue::stale_timers_dropped`]. Because tombstones still occupy
//! queue slots, [`EventQueue::len`] includes them; use
//! [`EventQueue::live_len`] for the number of events that will actually
//! fire.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::firmware::NodeId;
use crate::time::SimTime;

/// Identifies one transmission on the medium.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FrameId(pub u64);

/// Something scheduled to happen at a point in simulated time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimEvent {
    /// A node's requested wake-up timer fires. The second field is the
    /// node's timer generation at scheduling time; stamps that no longer
    /// match the current generation are tombstones and are dropped
    /// inside the queue (see the module docs).
    Timer(NodeId, u64),
    /// A transmission ends at the sender.
    TxEnd(NodeId, FrameId),
    /// A reception attempt concludes at a receiver.
    RxEnd(NodeId, FrameId),
    /// A channel-activity-detection scan concludes.
    CadEnd(NodeId),
    /// A CAD requested while the radio was busy (receiving or
    /// transmitting) completes: the result is unconditionally "busy",
    /// mirroring real hardware where CAD during activity reports it.
    CadBusyReport(NodeId),
    /// An application-level event (workload injection) for a node.
    App(NodeId, u64),
    /// Fault injection: the node's radio and firmware stop.
    Kill(NodeId),
    /// Fault injection: the node restarts.
    Revive(NodeId),
    /// A mobility step: recompute positions of mobile nodes.
    MobilityTick,
}

#[derive(Debug)]
struct Scheduled {
    at: SimTime,
    seq: u64,
    event: SimEvent,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert to pop the earliest first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Width of one calendar bucket as a power-of-two nanosecond count:
/// `2^25` ns ≈ 33.6 ms, so the 128-bucket ring spans ≈ 4.3 s — wider
/// than the 3 s hello/beacon cadence, keeping steady-state traffic out
/// of the overflow heap.
const BUCKET_SHIFT: u32 = 25;
/// Number of buckets in the near-future ring.
const NUM_BUCKETS: u64 = 128;

/// A time-ordered queue of [`SimEvent`]s with deterministic tie-breaking.
///
/// See the module docs for the calendar-queue layout and the timer
/// tombstone rules.
#[derive(Debug)]
pub struct EventQueue {
    /// Ring of near-future buckets, indexed by `bucket % NUM_BUCKETS`.
    buckets: Vec<BinaryHeap<Scheduled>>,
    /// Bit `s` set iff ring slot `s` is non-empty.
    occupied: u128,
    /// Events currently held in the ring.
    near_len: usize,
    /// Far-future events (bucket beyond the ring horizon).
    overflow: BinaryHeap<Scheduled>,
    /// Absolute bucket index the ring is currently draining.
    cursor: u64,
    next_seq: u64,
    /// Total pending events, including stale timer tombstones.
    len: usize,
    /// Current timer generation per node.
    timer_gen: Vec<u64>,
    /// Pending timers per node whose stamp matches the current generation.
    live_timers: Vec<u32>,
    /// Pending timers whose stamp is stale (tombstones awaiting drop).
    stale_pending: usize,
    /// Stale timers silently discarded so far.
    stale_dropped: u64,
}

impl Default for EventQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl EventQueue {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            buckets: (0..NUM_BUCKETS).map(|_| BinaryHeap::new()).collect(),
            occupied: 0,
            near_len: 0,
            overflow: BinaryHeap::new(),
            cursor: 0,
            next_seq: 0,
            len: 0,
            timer_gen: Vec::new(),
            live_timers: Vec::new(),
            stale_pending: 0,
            stale_dropped: 0,
        }
    }

    /// Absolute bucket index for an instant.
    fn bucket_of(at: SimTime) -> u64 {
        u64::try_from(at.as_duration().as_nanos() >> BUCKET_SHIFT).unwrap_or(u64::MAX)
    }

    /// Ring slot for an absolute bucket index.
    fn slot_of(bucket: u64) -> usize {
        (bucket % NUM_BUCKETS) as usize
    }

    fn push_to_slot(&mut self, slot: usize, s: Scheduled) {
        if let Some(heap) = self.buckets.get_mut(slot) {
            heap.push(s);
            self.occupied |= 1u128 << slot;
            self.near_len += 1;
        }
    }

    fn insert(&mut self, s: Scheduled) {
        // Past events fold into the cursor bucket: it is the global
        // minimum and its heap orders by (time, seq), so they still pop
        // first.
        let bucket = Self::bucket_of(s.at).max(self.cursor);
        if bucket - self.cursor < NUM_BUCKETS {
            self.push_to_slot(Self::slot_of(bucket), s);
        } else {
            self.overflow.push(s);
        }
        self.len += 1;
    }

    /// Moves overflow events whose bucket the cursor has reached into
    /// the cursor bucket.
    fn migrate_due(&mut self) {
        while self
            .overflow
            .peek()
            .is_some_and(|s| Self::bucket_of(s.at) <= self.cursor)
        {
            if let Some(s) = self.overflow.pop() {
                self.push_to_slot(Self::slot_of(self.cursor), s);
            }
        }
    }

    /// Advances the cursor to the next non-empty slot, stopping early at
    /// the overflow heap's first bucket so far-future events migrate
    /// before the ring wraps past them.
    fn advance_cursor(&mut self) {
        debug_assert!(self.occupied != 0);
        let slot = Self::slot_of(self.cursor);
        // Rotating so that slot+1 lands at bit 0 makes trailing_zeros
        // the distance-minus-one to the next occupied slot; rotation is
        // mod 128, so slot 127 works too.
        let rot = (slot as u32 + 1) % 128;
        let d = u64::from(self.occupied.rotate_right(rot).trailing_zeros()) + 1;
        let mut next = self.cursor.saturating_add(d);
        if let Some(s) = self.overflow.peek() {
            next = next.min(Self::bucket_of(s.at).max(self.cursor));
        }
        self.cursor = next;
    }

    /// Positions the cursor on the bucket holding the earliest live
    /// event and discards stale timer tombstones encountered on the
    /// way. Returns `false` when no live event remains.
    fn settle(&mut self) -> bool {
        loop {
            if self.len == 0 {
                return false;
            }
            if self.near_len == 0 {
                // Ring is empty: jump straight to the overflow's first
                // bucket and pull it in.
                if let Some(s) = self.overflow.peek() {
                    self.cursor = self.cursor.max(Self::bucket_of(s.at));
                }
                self.migrate_due();
                continue;
            }
            self.migrate_due();
            let slot = Self::slot_of(self.cursor);
            if self.occupied & (1u128 << slot) == 0 {
                self.advance_cursor();
                continue;
            }
            let head_is_stale = self
                .buckets
                .get(slot)
                .and_then(|heap| heap.peek())
                .is_some_and(|s| match s.event {
                    SimEvent::Timer(node, gen) => !self.timer_is_live(node, gen),
                    _ => false,
                });
            if head_is_stale {
                if let Some(heap) = self.buckets.get_mut(slot) {
                    heap.pop();
                }
                self.note_removed(slot);
                self.stale_dropped += 1;
                self.stale_pending = self.stale_pending.saturating_sub(1);
                continue;
            }
            return true;
        }
    }

    /// Bookkeeping after removing one event from a ring slot.
    fn note_removed(&mut self, slot: usize) {
        self.near_len -= 1;
        self.len -= 1;
        if self.buckets.get(slot).is_some_and(BinaryHeap::is_empty) {
            self.occupied &= !(1u128 << slot);
        }
    }

    fn ensure_node(&mut self, node: NodeId) {
        if node.0 >= self.timer_gen.len() {
            self.timer_gen.resize(node.0 + 1, 0);
            self.live_timers.resize(node.0 + 1, 0);
        }
    }

    fn timer_is_live(&self, node: NodeId, gen: u64) -> bool {
        self.timer_gen.get(node.0).copied().unwrap_or(0) == gen
    }

    /// The node's current timer generation — the stamp a
    /// [`SimEvent::Timer`] must carry to fire rather than be dropped as
    /// a tombstone.
    #[must_use]
    pub fn timer_generation(&mut self, node: NodeId) -> u64 {
        self.ensure_node(node);
        self.timer_gen.get(node.0).copied().unwrap_or(0)
    }

    /// Invalidates every queued timer for `node` by bumping its
    /// generation; the orphaned entries become tombstones.
    fn invalidate(&mut self, node: NodeId) {
        self.ensure_node(node);
        if let Some(live) = self.live_timers.get_mut(node.0) {
            self.stale_pending += *live as usize;
            *live = 0;
        }
        if let Some(gen) = self.timer_gen.get_mut(node.0) {
            *gen = gen.wrapping_add(1);
        }
    }

    /// Schedules a wake-up timer for `node` at `at`, invalidating any
    /// timer previously queued for it (at most one live timer per node).
    pub fn schedule_timer(&mut self, at: SimTime, node: NodeId) {
        self.invalidate(node);
        let gen = self.timer_gen.get(node.0).copied().unwrap_or(0);
        self.schedule(at, SimEvent::Timer(node, gen));
    }

    /// Invalidates any queued timer for `node` without scheduling a new
    /// one.
    pub fn cancel_timer(&mut self, node: NodeId) {
        self.invalidate(node);
    }

    /// Schedules `event` at time `at`.
    ///
    /// A [`SimEvent::Timer`] passed here is booked against its stamp
    /// as-is: live if the stamp matches the node's current generation,
    /// a tombstone otherwise. Use [`EventQueue::schedule_timer`] for the
    /// invalidate-and-restamp flow.
    pub fn schedule(&mut self, at: SimTime, event: SimEvent) {
        let seq = self.alloc_seq();
        self.schedule_at_seq(at, seq, event);
    }

    /// Reserves the next sequence number without enqueueing anything.
    ///
    /// The sharded engine keeps the `(time, seq)` total order *global*
    /// across its per-shard queues by allocating every sequence number
    /// from one designated coordinator queue and inserting into shard
    /// queues via [`EventQueue::schedule_at_seq`].
    #[must_use]
    pub fn alloc_seq(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        seq
    }

    /// Schedules `event` at `at` under an externally allocated sequence
    /// number (see [`EventQueue::alloc_seq`]). Timer stamps are booked
    /// exactly as in [`EventQueue::schedule`]. The caller must keep the
    /// supplied numbers unique and creation-ordered; this queue's own
    /// counter is not consulted or advanced.
    pub fn schedule_at_seq(&mut self, at: SimTime, seq: u64, event: SimEvent) {
        if let SimEvent::Timer(node, gen) = event {
            self.ensure_node(node);
            if self.timer_is_live(node, gen) {
                if let Some(live) = self.live_timers.get_mut(node.0) {
                    *live = live.saturating_add(1);
                }
            } else {
                self.stale_pending += 1;
            }
        }
        self.insert(Scheduled { at, seq, event });
    }

    /// [`EventQueue::schedule_timer`] with an externally allocated
    /// sequence number: invalidates the node's queued timers, restamps,
    /// and enqueues under `seq`.
    pub fn schedule_timer_seq(&mut self, at: SimTime, node: NodeId, seq: u64) {
        self.invalidate(node);
        let gen = self.timer_gen.get(node.0).copied().unwrap_or(0);
        self.schedule_at_seq(at, seq, SimEvent::Timer(node, gen));
    }

    /// Removes and returns the earliest live event, if any. Stale timer
    /// tombstones encountered on the way are discarded silently.
    pub fn pop(&mut self) -> Option<(SimTime, SimEvent)> {
        if !self.settle() {
            return None;
        }
        let slot = Self::slot_of(self.cursor);
        let s = self.buckets.get_mut(slot).and_then(BinaryHeap::pop)?;
        self.note_removed(slot);
        if let SimEvent::Timer(node, _) = s.event {
            if let Some(live) = self.live_timers.get_mut(node.0) {
                *live = live.saturating_sub(1);
            }
        }
        Some((s.at, s.event))
    }

    /// The time of the earliest live pending event. Takes `&mut self`
    /// because stale tombstones ahead of it are discarded.
    #[must_use]
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.peek_key().map(|(at, _)| at)
    }

    /// The full `(time, seq)` key of the earliest live pending event —
    /// what the sharded engine's k-way merge compares across queues.
    /// Takes `&mut self` because stale tombstones ahead of it are
    /// discarded.
    #[must_use]
    pub fn peek_key(&mut self) -> Option<(SimTime, u64)> {
        if !self.settle() {
            return None;
        }
        let slot = Self::slot_of(self.cursor);
        self.buckets
            .get(slot)
            .and_then(|heap| heap.peek())
            .map(|s| (s.at, s.seq))
    }

    /// Number of pending events, including stale timer tombstones that
    /// will be dropped rather than fire.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Number of pending events that will actually fire (tombstones
    /// excluded).
    #[must_use]
    pub fn live_len(&self) -> usize {
        self.len.saturating_sub(self.stale_pending)
    }

    /// Whether no events are pending (tombstones included).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Stale timer tombstones discarded so far.
    #[must_use]
    pub fn stale_timers_dropped(&self) -> u64 {
        self.stale_dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(i: u32) -> NodeId {
        NodeId(i as usize)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(30), SimEvent::App(node(3), 0));
        q.schedule(SimTime::from_millis(10), SimEvent::App(node(1), 0));
        q.schedule(SimTime::from_millis(20), SimEvent::App(node(2), 0));
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(
            order.iter().map(|(t, _)| *t).collect::<Vec<_>>(),
            vec![
                SimTime::from_millis(10),
                SimTime::from_millis(20),
                SimTime::from_millis(30)
            ]
        );
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..10 {
            q.schedule(t, SimEvent::App(node(i), u64::from(i)));
        }
        for i in 0..10 {
            let (_, e) = q.pop().unwrap();
            assert_eq!(e, SimEvent::App(node(i), u64::from(i)));
        }
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_secs(1), SimEvent::MobilityTick);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1)));
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), SimEvent::App(node(0), 0));
        q.schedule(SimTime::from_millis(5), SimEvent::App(node(1), 0));
        assert_eq!(q.pop().unwrap().0, SimTime::from_millis(5));
        q.schedule(SimTime::from_millis(1), SimEvent::App(node(2), 0));
        assert_eq!(q.pop().unwrap().0, SimTime::from_millis(1));
        assert_eq!(q.pop().unwrap().0, SimTime::from_millis(10));
    }

    #[test]
    fn events_far_beyond_the_ring_horizon_pop_in_order() {
        // The ring spans ~4.3 s; these cross into the overflow heap and
        // must migrate back without disturbing global order.
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10), SimEvent::App(node(0), 0));
        q.schedule(SimTime::from_millis(1), SimEvent::App(node(1), 1));
        q.schedule(SimTime::from_secs(6), SimEvent::App(node(2), 2));
        q.schedule(SimTime::from_secs(10), SimEvent::App(node(3), 3));
        q.schedule(SimTime::from_secs(100), SimEvent::App(node(4), 4));
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(
            order,
            vec![
                SimEvent::App(node(1), 1),
                SimEvent::App(node(2), 2),
                SimEvent::App(node(0), 0),
                SimEvent::App(node(3), 3),
                SimEvent::App(node(4), 4),
            ]
        );
    }

    #[test]
    fn same_instant_ties_hold_across_the_overflow_boundary() {
        // Two events at the same far-future instant, one scheduled while
        // the instant is beyond the horizon (overflow) and one after the
        // cursor advanced near it (ring): FIFO must still hold.
        let mut q = EventQueue::new();
        let far = SimTime::from_secs(30);
        q.schedule(far, SimEvent::App(node(0), 0));
        q.schedule(SimTime::from_secs(28), SimEvent::App(node(9), 9));
        assert_eq!(q.pop().unwrap().1, SimEvent::App(node(9), 9));
        // Cursor is now within a ring's reach of `far`.
        q.schedule(far, SimEvent::App(node(1), 1));
        assert_eq!(q.pop().unwrap().1, SimEvent::App(node(0), 0));
        assert_eq!(q.pop().unwrap().1, SimEvent::App(node(1), 1));
    }

    #[test]
    fn past_events_clamp_into_the_cursor_bucket() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(100), SimEvent::App(node(0), 0));
        assert_eq!(q.pop().unwrap().0, SimTime::from_millis(100));
        // Scheduling in the past (the simulator clamps to `now`, but the
        // queue itself must tolerate it) still pops, with its own time.
        q.schedule(SimTime::from_millis(10), SimEvent::App(node(1), 1));
        q.schedule(SimTime::from_millis(120), SimEvent::App(node(2), 2));
        assert_eq!(q.pop().unwrap().0, SimTime::from_millis(10));
        assert_eq!(q.pop().unwrap().0, SimTime::from_millis(120));
    }

    #[test]
    fn rescheduling_a_timer_tombstones_the_old_one() {
        let mut q = EventQueue::new();
        q.schedule_timer(SimTime::from_millis(10), node(0));
        q.schedule_timer(SimTime::from_millis(20), node(0));
        assert_eq!(q.len(), 2);
        assert_eq!(q.live_len(), 1);
        let (at, event) = q.pop().unwrap();
        assert_eq!(at, SimTime::from_millis(20));
        assert!(matches!(event, SimEvent::Timer(n, _) if n == node(0)));
        assert_eq!(q.pop(), None);
        assert_eq!(q.stale_timers_dropped(), 1);
        assert!(q.is_empty());
        assert_eq!(q.live_len(), 0);
    }

    #[test]
    fn cancel_timer_tombstones_without_rescheduling() {
        let mut q = EventQueue::new();
        q.schedule_timer(SimTime::from_millis(10), node(0));
        q.schedule(SimTime::from_millis(30), SimEvent::MobilityTick);
        q.cancel_timer(node(0));
        assert_eq!(q.live_len(), 1);
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(30)));
        assert_eq!(q.pop().unwrap().1, SimEvent::MobilityTick);
        assert_eq!(q.pop(), None);
        assert_eq!(q.stale_timers_dropped(), 1);
    }

    #[test]
    fn raw_schedule_with_current_generation_stays_live() {
        // Legacy-engine mode stamps timers with the current generation
        // and never invalidates: multiple timers per node all fire.
        let mut q = EventQueue::new();
        let gen = q.timer_generation(node(7));
        q.schedule(SimTime::from_millis(1), SimEvent::Timer(node(7), gen));
        q.schedule(SimTime::from_millis(2), SimEvent::Timer(node(7), gen));
        assert_eq!(q.live_len(), 2);
        assert!(q.pop().is_some());
        assert!(q.pop().is_some());
        assert_eq!(q.stale_timers_dropped(), 0);
    }

    #[test]
    fn raw_schedule_with_stale_generation_is_a_tombstone() {
        let mut q = EventQueue::new();
        let gen = q.timer_generation(node(0));
        q.cancel_timer(node(0));
        q.schedule(SimTime::from_millis(1), SimEvent::Timer(node(0), gen));
        assert_eq!(q.len(), 1);
        assert_eq!(q.live_len(), 0);
        assert_eq!(q.pop(), None);
        assert_eq!(q.stale_timers_dropped(), 1);
    }

    #[test]
    fn stale_timers_do_not_block_peek() {
        let mut q = EventQueue::new();
        q.schedule_timer(SimTime::from_millis(5), node(0));
        q.schedule(SimTime::from_millis(10), SimEvent::MobilityTick);
        q.cancel_timer(node(0));
        // peek must skip the tombstone at 5 ms and report the live event.
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(10)));
        assert_eq!(q.stale_timers_dropped(), 1);
    }

    #[test]
    fn peek_key_exposes_the_insertion_sequence() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(5), SimEvent::App(node(0), 0));
        q.schedule(SimTime::from_millis(5), SimEvent::App(node(1), 1));
        let (at, seq) = q.peek_key().unwrap();
        assert_eq!(at, SimTime::from_millis(5));
        q.pop();
        let (_, seq2) = q.peek_key().unwrap();
        assert!(seq2 > seq, "ties must expose ascending seq");
    }

    #[test]
    fn external_seqs_merge_across_queues_in_global_order() {
        // Two shard queues fed from one coordinator counter: merging by
        // peek_key must reproduce the exact interleaved creation order.
        let mut coord = EventQueue::new();
        let mut a = EventQueue::new();
        let mut b = EventQueue::new();
        let t = SimTime::from_millis(9);
        for i in 0..12u32 {
            let seq = coord.alloc_seq();
            let q = if i % 3 == 0 { &mut a } else { &mut b };
            q.schedule_at_seq(t, seq, SimEvent::App(node(i), u64::from(i)));
        }
        let mut merged = Vec::new();
        loop {
            let ka = a.peek_key();
            let kb = b.peek_key();
            let from_a = match (ka, kb) {
                (Some(x), Some(y)) => x < y,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            let q = if from_a { &mut a } else { &mut b };
            merged.push(q.pop().unwrap().1);
        }
        let expected: Vec<_> = (0..12u32)
            .map(|i| SimEvent::App(node(i), u64::from(i)))
            .collect();
        assert_eq!(merged, expected);
    }

    #[test]
    fn schedule_timer_seq_tombstones_like_schedule_timer() {
        let mut coord = EventQueue::new();
        let mut q = EventQueue::new();
        let s1 = coord.alloc_seq();
        q.schedule_timer_seq(SimTime::from_millis(10), node(0), s1);
        let s2 = coord.alloc_seq();
        q.schedule_timer_seq(SimTime::from_millis(20), node(0), s2);
        assert_eq!(q.len(), 2);
        assert_eq!(q.live_len(), 1);
        let (at, event) = q.pop().unwrap();
        assert_eq!(at, SimTime::from_millis(20));
        assert!(matches!(event, SimEvent::Timer(n, _) if n == node(0)));
        assert_eq!(q.pop(), None);
        assert_eq!(q.stale_timers_dropped(), 1);
    }

    #[test]
    fn many_nodes_interleaved_timers_keep_global_order() {
        let mut q = EventQueue::new();
        for i in 0..32u32 {
            let at = SimTime::from_millis(u64::from(i % 8) * 40);
            q.schedule_timer(at, node(i));
        }
        let mut last = SimTime::ZERO;
        let mut count = 0;
        while let Some((at, _)) = q.pop() {
            assert!(at >= last);
            last = at;
            count += 1;
        }
        assert_eq!(count, 32);
        assert_eq!(q.stale_timers_dropped(), 0);
    }
}
