//! Deterministic pseudo-random number generation.
//!
//! The simulator cannot use `rand::thread_rng`-style entropy: every run
//! must be a pure function of its seed. [`SimRng`] implements
//! xoshiro256++ (Blackman & Vigna) seeded through SplitMix64, the same
//! construction the reference implementations use. It is small, fast and
//! has no external state.
//!
//! Independent streams (one per node, one for the workload, …) are derived
//! with [`SimRng::fork`], which mixes a stream identifier into the seed so
//! that adding a node never perturbs the random sequence of another.
//!
//! [`SimRng::stream`] is the parallel-engine variant of the same idea: a
//! counter-keyed SplitMix64 derivation straight from the *master seed*,
//! needing no root generator value at all. Any worker that knows
//! `(master_seed, stream_id)` can mint the stream locally, which is what
//! makes per-node streams reproducible independently of which shard or
//! thread hosts the node (see `SimConfig::rng_streams`).

/// A deterministic xoshiro256++ pseudo-random number generator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Derives an independent stream for `stream_id`.
    ///
    /// Forking is stable: the same `(seed, stream_id)` always yields the
    /// same stream, and distinct ids yield decorrelated streams.
    #[must_use]
    pub fn fork(&self, stream_id: u64) -> SimRng {
        let mut mix = self.s[0] ^ stream_id.wrapping_mul(0xd6e8_feb8_6659_fd93);
        let base = splitmix64(&mut mix);
        SimRng::new(base ^ self.s[3].rotate_left(23))
    }

    /// Derives an independent stream for `stream_id` directly from a
    /// master seed — a pure, counter-keyed SplitMix64 derivation.
    ///
    /// Unlike [`SimRng::fork`] (which mixes the *root generator's state*
    /// into the child), `stream` depends only on `(seed, stream_id)`:
    /// two SplitMix64 steps walk the counter away from the plain-seed
    /// sequence before the usual xoshiro seeding, so `stream(s, k)` is
    /// decorrelated both from `new(s)` and from every other counter.
    /// This is the derivation the parallel engine can evaluate on any
    /// worker thread without sharing a generator.
    #[must_use]
    pub fn stream(seed: u64, stream_id: u64) -> SimRng {
        let mut key = stream_id.wrapping_mul(0x9e6c_63d0_876a_46ad);
        let a = splitmix64(&mut key);
        let b = splitmix64(&mut key);
        SimRng::new(seed ^ a ^ b.rotate_left(17))
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform integer in `[0, bound)` using Lemire's method.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range bound must be positive");
        // Widening multiply rejection sampling (unbiased).
        loop {
            let x = self.next_u64();
            let m = u128::from(x) * u128::from(bound);
            let low = m as u64;
            if low >= bound {
                return (m >> 64) as u64;
            }
            let threshold = bound.wrapping_neg() % bound;
            if low >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// A uniform integer in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn gen_range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "invalid range [{lo}, {hi}]");
        if lo == hi {
            return lo;
        }
        lo + self.gen_range(hi - lo + 1)
    }

    /// A uniform float in `[0, 1)` with 53 bits of precision.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p.clamp(0.0, 1.0)
    }

    /// A standard-normal sample (Box–Muller).
    pub fn gen_normal(&mut self) -> f64 {
        let u1 = (self.gen_f64()).max(f64::MIN_POSITIVE);
        let u2 = self.gen_f64();
        (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos()
    }

    /// An exponentially distributed sample with the given mean.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not positive.
    pub fn gen_exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "mean must be positive, got {mean}");
        -mean * (1.0 - self.gen_f64()).ln()
    }

    /// Shuffles a slice (Fisher–Yates).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn fork_is_stable_and_decorrelated() {
        let root = SimRng::new(99);
        let mut f1 = root.fork(1);
        let mut f1_again = root.fork(1);
        let mut f2 = root.fork(2);
        assert_eq!(f1.next_u64(), f1_again.next_u64());
        assert_ne!(f1.next_u64(), f2.next_u64());
    }

    #[test]
    fn stream_is_pure_in_seed_and_counter() {
        let mut a = SimRng::stream(99, 7);
        let mut b = SimRng::stream(99, 7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut other_counter = SimRng::stream(99, 8);
        let mut other_seed = SimRng::stream(100, 7);
        let same_counter = (0..64)
            .filter(|_| a.next_u64() == other_counter.next_u64())
            .count();
        let same_seed = (0..64)
            .filter(|_| b.next_u64() == other_seed.next_u64())
            .count();
        assert_eq!(same_counter, 0);
        assert_eq!(same_seed, 0);
    }

    #[test]
    fn stream_is_decorrelated_from_plain_seeding_and_fork() {
        // The counter derivation must not collide with `new(seed)` (the
        // master generator itself) or with the fork-based node streams it
        // is an alternative to.
        let mut st = SimRng::stream(42, 0);
        let mut plain = SimRng::new(42);
        let mut forked = SimRng::new(42).fork(1);
        let vs_plain = (0..64)
            .filter(|_| st.next_u64() == plain.next_u64())
            .count();
        let mut st = SimRng::stream(42, 1);
        let vs_fork = (0..64)
            .filter(|_| st.next_u64() == forked.next_u64())
            .count();
        assert_eq!(vs_plain, 0);
        assert_eq!(vs_fork, 0);
    }

    #[test]
    fn gen_range_bounds_respected() {
        let mut rng = SimRng::new(3);
        for bound in [1u64, 2, 7, 100, 1 << 40] {
            for _ in 0..200 {
                assert!(rng.gen_range(bound) < bound);
            }
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = SimRng::new(5);
        let mut counts = [0u32; 10];
        for _ in 0..10_000 {
            counts[rng.gen_range(10) as usize] += 1;
        }
        for c in counts {
            assert!((800..1200).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn gen_range_inclusive_hits_both_ends() {
        let mut rng = SimRng::new(11);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..1000 {
            match rng.gen_range_inclusive(5, 8) {
                5 => saw_lo = true,
                8 => saw_hi = true,
                6 | 7 => {}
                v => panic!("out of range: {v}"),
            }
        }
        assert!(saw_lo && saw_hi);
        assert_eq!(rng.gen_range_inclusive(4, 4), 4);
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = SimRng::new(13);
        for _ in 0..1000 {
            let v = rng.gen_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = SimRng::new(17);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "got {hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn gen_normal_moments() {
        let mut rng = SimRng::new(19);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.gen_normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn gen_exponential_mean() {
        let mut rng = SimRng::new(23);
        let n = 20_000;
        let mean = (0..n).map(|_| rng.gen_exponential(5.0)).sum::<f64>() / f64::from(n);
        assert!((mean - 5.0).abs() < 0.2, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::new(29);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn gen_range_zero_bound_panics() {
        SimRng::new(1).gen_range(0);
    }
}
