//! PHY-level counters collected during a simulation run.

use std::time::Duration;

use crate::firmware::NodeId;
use crate::medium::LossReason;

/// Per-node transmit/receive counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NodeCounters {
    /// Frames this node put on the air.
    pub transmitted: u64,
    /// Frames this node successfully decoded.
    pub received: u64,
    /// Reception attempts that failed (any reason).
    pub lost: u64,
    /// CAD scans performed.
    pub cad_scans: u64,
    /// CAD scans that reported a busy channel.
    pub cad_busy: u64,
    /// Total airtime this node transmitted.
    pub airtime: Duration,
}

/// Aggregated PHY statistics for a run.
///
/// `PartialEq` so differential tests can assert two runs (e.g. link
/// cache on vs off) produced identical statistics wholesale.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Metrics {
    /// Total frames put on the air.
    pub frames_transmitted: u64,
    /// Total successful frame deliveries (a broadcast heard by three
    /// nodes counts three times).
    pub frames_delivered: u64,
    /// Reception attempts lost below the demodulation floor.
    pub lost_below_floor: u64,
    /// Reception attempts destroyed by collisions.
    pub lost_collision: u64,
    /// Reception attempts truncated by sender failure or lock stealing.
    pub lost_truncated: u64,
    /// Reception attempts dropped by injected per-link loss.
    pub lost_injected: u64,
    /// Transmit commands refused because the radio was busy.
    pub tx_while_busy: u64,
    /// Transmit commands refused because the node was dead (killed).
    pub tx_while_dead: u64,
    /// Transmit commands refused because the frame exceeded the PHY limit.
    pub tx_oversized: u64,
    /// Receptions aborted because the receiving node started transmitting
    /// (radios preempt RX on a TX command, as real transceivers do).
    pub rx_aborted_by_tx: u64,
    /// Total airtime across all nodes.
    pub total_airtime: Duration,
    /// Wake-up timers the event queue discarded as stale tombstones
    /// (superseded by a reschedule or cancelled by a kill) instead of
    /// delivering to firmware.
    pub stale_timers_dropped: u64,
    /// Per-node counters, indexed by `NodeId`. Dense storage: iteration
    /// order is node order, so reports and digests stay deterministic,
    /// and the per-frame counter updates in the simulator hot path are
    /// O(1) instead of a map lookup. Grown on first access per node.
    pub per_node: Vec<NodeCounters>,
}

impl Metrics {
    /// Creates zeroed metrics.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Mutable per-node counters, created (zeroed) on first access.
    pub fn node(&mut self, id: NodeId) -> &mut NodeCounters {
        if id.0 >= self.per_node.len() {
            self.per_node.resize(id.0 + 1, NodeCounters::default());
        }
        // meshlint::allow(r1): slot just created by the resize above
        &mut self.per_node[id.0]
    }

    /// Per-node counters for `id`; zeroed if the node never recorded.
    #[must_use]
    pub fn node_counters(&self, id: NodeId) -> NodeCounters {
        self.per_node.get(id.0).copied().unwrap_or_default()
    }

    /// Records a frame transmission of the given airtime.
    pub fn record_tx(&mut self, sender: NodeId, airtime: Duration) {
        self.frames_transmitted += 1;
        self.total_airtime += airtime;
        let n = self.node(sender);
        n.transmitted += 1;
        n.airtime += airtime;
    }

    /// Records a successful delivery at `receiver`.
    pub fn record_delivery(&mut self, receiver: NodeId) {
        self.frames_delivered += 1;
        self.node(receiver).received += 1;
    }

    /// Records a failed reception at `receiver`.
    pub fn record_loss(&mut self, receiver: NodeId, reason: LossReason) {
        match reason {
            LossReason::BelowFloor => self.lost_below_floor += 1,
            LossReason::Collision => self.lost_collision += 1,
            LossReason::Truncated => self.lost_truncated += 1,
            LossReason::Injected => self.lost_injected += 1,
        }
        self.node(receiver).lost += 1;
    }

    /// Records a CAD scan and its outcome.
    pub fn record_cad(&mut self, node: NodeId, busy: bool) {
        let n = self.node(node);
        n.cad_scans += 1;
        if busy {
            n.cad_busy += 1;
        }
    }

    /// Adds every counter from `other` into `self`.
    ///
    /// All fields are additive (counts and durations), so absorbing
    /// per-band deltas in any order yields exactly the totals the
    /// sequential engine would have accumulated event by event. The
    /// per-node vector grows to the longer of the two, matching the
    /// "max touched node + 1" length the incremental path produces.
    pub fn absorb(&mut self, other: &Metrics) {
        self.frames_transmitted += other.frames_transmitted;
        self.frames_delivered += other.frames_delivered;
        self.lost_below_floor += other.lost_below_floor;
        self.lost_collision += other.lost_collision;
        self.lost_truncated += other.lost_truncated;
        self.lost_injected += other.lost_injected;
        self.tx_while_busy += other.tx_while_busy;
        self.tx_while_dead += other.tx_while_dead;
        self.tx_oversized += other.tx_oversized;
        self.rx_aborted_by_tx += other.rx_aborted_by_tx;
        self.total_airtime += other.total_airtime;
        self.stale_timers_dropped += other.stale_timers_dropped;
        if other.per_node.len() > self.per_node.len() {
            self.per_node
                .resize(other.per_node.len(), NodeCounters::default());
        }
        for (mine, theirs) in self.per_node.iter_mut().zip(&other.per_node) {
            mine.transmitted += theirs.transmitted;
            mine.received += theirs.received;
            mine.lost += theirs.lost;
            mine.cad_scans += theirs.cad_scans;
            mine.cad_busy += theirs.cad_busy;
            mine.airtime += theirs.airtime;
        }
    }

    /// Total reception losses across all reasons.
    #[must_use]
    pub fn total_losses(&self) -> u64 {
        self.lost_below_floor + self.lost_collision + self.lost_truncated + self.lost_injected
    }

    /// Fraction of reception attempts that succeeded, or `None` when there
    /// were none.
    #[must_use]
    pub fn delivery_ratio(&self) -> Option<f64> {
        let attempts = self.frames_delivered + self.total_losses();
        if attempts == 0 {
            None
        } else {
            Some(self.frames_delivered as f64 / attempts as f64)
        }
    }

    /// Channel utilisation over `elapsed`: total airtime divided by
    /// simulated time (can exceed 1.0 with many concurrent senders).
    #[must_use]
    pub fn channel_utilisation(&self, elapsed: Duration) -> f64 {
        if elapsed.is_zero() {
            0.0
        } else {
            self.total_airtime.as_secs_f64() / elapsed.as_secs_f64()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate() {
        let mut m = Metrics::new();
        m.record_tx(NodeId(0), Duration::from_millis(50));
        m.record_tx(NodeId(0), Duration::from_millis(50));
        m.record_delivery(NodeId(1));
        m.record_loss(NodeId(2), LossReason::Collision);
        m.record_loss(NodeId(2), LossReason::BelowFloor);
        m.record_cad(NodeId(0), true);
        m.record_cad(NodeId(0), false);

        assert_eq!(m.frames_transmitted, 2);
        assert_eq!(m.total_airtime, Duration::from_millis(100));
        assert_eq!(m.frames_delivered, 1);
        assert_eq!(m.total_losses(), 2);
        assert_eq!(m.node_counters(NodeId(0)).transmitted, 2);
        assert_eq!(m.node_counters(NodeId(0)).cad_scans, 2);
        assert_eq!(m.node_counters(NodeId(0)).cad_busy, 1);
        assert_eq!(m.node_counters(NodeId(2)).lost, 2);
    }

    #[test]
    fn node_counters_is_zero_for_untouched_nodes() {
        let m = Metrics::new();
        assert_eq!(m.node_counters(NodeId(42)), NodeCounters::default());
        let mut m = Metrics::new();
        m.record_delivery(NodeId(3));
        // Nodes below the touched index exist, zeroed, for dense reports.
        assert_eq!(m.per_node.len(), 4);
        assert_eq!(m.node_counters(NodeId(1)), NodeCounters::default());
        assert_eq!(m.node_counters(NodeId(3)).received, 1);
    }

    #[test]
    fn absorb_matches_incremental_recording() {
        // Record one interleaved history, then the same history split in
        // two halves absorbed into a fresh accumulator — byte-identical.
        let mut whole = Metrics::new();
        let mut a = Metrics::new();
        let mut b = Metrics::new();
        whole.record_tx(NodeId(2), Duration::from_millis(40));
        a.record_tx(NodeId(2), Duration::from_millis(40));
        whole.record_delivery(NodeId(5));
        b.record_delivery(NodeId(5));
        whole.record_loss(NodeId(0), LossReason::Injected);
        a.record_loss(NodeId(0), LossReason::Injected);
        whole.record_cad(NodeId(1), true);
        b.record_cad(NodeId(1), true);
        whole.tx_while_busy += 1;
        b.tx_while_busy += 1;

        let mut merged = Metrics::new();
        merged.absorb(&a);
        merged.absorb(&b);
        assert_eq!(merged, whole);

        // Order independence.
        let mut flipped = Metrics::new();
        flipped.absorb(&b);
        flipped.absorb(&a);
        assert_eq!(flipped, whole);
    }

    #[test]
    fn delivery_ratio_handles_empty() {
        let mut m = Metrics::new();
        assert_eq!(m.delivery_ratio(), None);
        m.record_delivery(NodeId(0));
        m.record_loss(NodeId(0), LossReason::Collision);
        assert!((m.delivery_ratio().unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn channel_utilisation() {
        let mut m = Metrics::new();
        m.record_tx(NodeId(0), Duration::from_secs(1));
        assert!((m.channel_utilisation(Duration::from_secs(10)) - 0.1).abs() < 1e-12);
        assert_eq!(m.channel_utilisation(Duration::ZERO), 0.0);
    }
}
