//! The interface between the simulator and protocol implementations.
//!
//! The simulator hosts any [`loramesher::driver::NodeProtocol`]: an
//! event-driven sans-IO protocol stack that the simulator calls into
//! when something happens at its radio (a frame arrives, a transmission
//! completes, a CAD scan finishes, a timer fires) and that responds by
//! pushing commands — transmit a frame, start a CAD scan — into the
//! per-callback [`Context`] and by exposing the time at which it next
//! wants to be woken.
//!
//! Historically this crate defined its own `Firmware` trait of the same
//! shape and `scenario` bridged the two with a copying adapter; the
//! traits are now unified in `loramesher::driver` and this module is
//! simulator-flavoured aliases ([`Firmware`], [`Context`],
//! [`RadioCommand`]) plus the simulator's own [`NodeId`].

/// A protocol stack hosted by the simulator: the unified sans-IO host
/// trait from the core crate.
pub use loramesher::driver::NodeProtocol as Firmware;
/// Execution context passed to every firmware callback: the virtual
/// clock plus the command sink.
pub use loramesher::driver::RadioIo as Context;
/// A command issued by firmware to its radio.
///
/// `Transmit` carries a reference-counted payload so firmware that
/// retransmits a cached frame (periodic beacons, cached hellos) shares
/// one buffer with the medium instead of allocating per transmission.
/// The radio must be idle when one arrives; the simulator counts
/// violations instead of panicking so buggy protocols surface as
/// metrics, not crashes.
pub use loramesher::driver::RadioRequest as RadioCommand;

/// Index of a node within a simulation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

impl core::fmt::Display for NodeId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lora_phy::link::SignalQuality;
    use std::time::Duration;

    #[test]
    fn context_collects_commands_in_order() {
        let mut ctx = Context::new(Duration::from_millis(7));
        assert_eq!(ctx.now(), Duration::from_millis(7));
        ctx.start_cad();
        ctx.transmit(vec![1, 2, 3]);
        let cmds = ctx.take_requests();
        assert_eq!(
            cmds,
            vec![
                RadioCommand::StartCad,
                RadioCommand::Transmit(vec![1, 2, 3].into())
            ]
        );
    }

    #[test]
    fn with_buffer_reuses_and_clears_the_buffer() {
        let stale = vec![RadioCommand::StartCad; 3];
        let mut ctx = Context::with_buffer(Duration::ZERO, stale);
        let payload: std::sync::Arc<[u8]> = vec![9u8; 4].into();
        ctx.transmit(payload.clone());
        let cmds = ctx.take_requests();
        assert_eq!(cmds, vec![RadioCommand::Transmit(payload)]);
    }

    #[test]
    fn default_callbacks_are_no_ops() {
        struct Quiet;
        impl Firmware for Quiet {
            fn on_frame(&mut self, _: &[u8], _: SignalQuality, _: &mut Context) {}
            fn next_wake(&self) -> Option<Duration> {
                None
            }
        }
        let mut f = Quiet;
        let mut ctx = Context::new(Duration::ZERO);
        f.on_start(&mut ctx);
        f.on_timer(&mut ctx);
        f.on_tx_done(&mut ctx);
        f.on_cad_done(true, &mut ctx);
        f.on_app(9, &mut ctx);
        assert!(ctx.take_requests().is_empty());
    }
}
